/**
 * @file
 * The full model lifecycle the paper's workflow implies: train a
 * digit-recognition network (the paper's authors trained DeepFace
 * on PubFig83 themselves), save its weights, load them into a
 * fresh DjiNN service from disk, and verify the served predictions
 * are accurate end to end.
 *
 * Usage: train_and_serve [steps]   (default 60)
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/djinn_client.hh"
#include "core/djinn_server.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"
#include "nn/serialize.hh"
#include "tonic/image.hh"
#include "train/sgd.hh"

using namespace djinn;

namespace {

const char *digit_net_def = R"(
name trained_digits
input 1 28 28
layer conv1 conv out 6 kernel 5 stride 2
layer r1 relu
layer pool1 maxpool kernel 2 stride 2
layer fc1 fc out 32
layer r2 relu
layer fc2 fc out 10
)";

void
makeBatch(int64_t batch, Rng &rng, nn::Tensor &input,
          std::vector<int> &labels)
{
    input.resize(nn::Shape(batch, 1, 28, 28));
    labels.resize(static_cast<size_t>(batch));
    for (int64_t n = 0; n < batch; ++n) {
        int digit = static_cast<int>(n % 10);
        tonic::Image image = tonic::synthesizeDigit(digit, rng);
        for (int64_t i = 0; i < 28 * 28; ++i) {
            input.sample(n)[i] =
                static_cast<float>(image.pixels[i]) / 255.0f;
        }
        labels[static_cast<size_t>(n)] = digit;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    int steps = argc > 1 ? std::atoi(argv[1]) : 60;

    // 1. Train.
    auto net = nn::parseNetDefOrDie(digit_net_def);
    nn::initializeWeights(*net, 17);
    train::TrainConfig config;
    config.learningRate = 0.05;
    train::SgdTrainer trainer(*net, config);

    Rng rng(23);
    nn::Tensor input;
    std::vector<int> labels;
    for (int step = 0; step < steps; ++step) {
        makeBatch(30, rng, input, labels);
        double loss = trainer.step(input, labels);
        if (step % 10 == 0)
            std::printf("step %3d  loss %.4f\n", step, loss);
    }
    makeBatch(200, rng, input, labels);
    std::printf("training done: accuracy %.1f%% on fresh digits\n",
                100.0 * train::accuracy(*net, input, labels));

    // 2. Export the trained model the way a trainer hands a model
    //    to production DjiNN.
    std::string dir = "/tmp";
    std::string def_path = dir + "/trained_digits.def";
    std::string djw_path = dir + "/trained_digits.djw";
    {
        std::ofstream os(def_path);
        os << nn::formatNetDef(*net);
    }
    if (!nn::saveWeights(*net, djw_path).isOk()) {
        std::fprintf(stderr, "cannot save weights\n");
        return 1;
    }
    std::printf("exported %s + %s\n", def_path.c_str(),
                djw_path.c_str());

    // 3. Serve from the exported files and verify over TCP.
    core::ModelRegistry registry;
    Status loaded = registry.loadFromFiles(def_path, djw_path);
    if (!loaded.isOk()) {
        std::fprintf(stderr, "load failed: %s\n",
                     loaded.toString().c_str());
        return 1;
    }
    core::DjinnServer server(registry, core::ServerConfig{});
    if (!server.start().isOk())
        return 1;
    core::DjinnClient client;
    if (!client.connect("127.0.0.1", server.port()).isOk())
        return 1;

    makeBatch(100, rng, input, labels);
    std::vector<float> payload(input.data(),
                               input.data() + input.elems());
    auto result = client.infer("trained_digits", 100, payload);
    if (!result.isOk()) {
        std::fprintf(stderr, "infer failed: %s\n",
                     result.status().toString().c_str());
        return 1;
    }
    int correct = 0;
    for (int64_t n = 0; n < 100; ++n) {
        const float *row = result.value().data() + n * 10;
        int best = 0;
        for (int c = 1; c < 10; ++c) {
            if (row[c] > row[best])
                best = c;
        }
        if (best == labels[static_cast<size_t>(n)])
            ++correct;
    }
    std::printf("served accuracy over TCP: %d%%\n", correct);
    server.stop();
    return correct > 80 ? 0 : 1;
}
