/**
 * @file
 * Warehouse-scale planning tool: given a workload mix and the
 * fraction of the fleet that serves DNN queries, provision all
 * three WSC designs (paper Figure 14), print their inventories,
 * and compare lifetime TCO.
 *
 * Usage: wsc_planner [MIXED|IMAGE|NLP] [dnn_percent]
 * Defaults: MIXED 50
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "wsc/designs.hh"

using namespace djinn;
using namespace djinn::wsc;

int
main(int argc, char **argv)
{
    Mix mix = Mix::Mixed;
    if (argc > 1) {
        std::string name = argv[1];
        if (name == "IMAGE")
            mix = Mix::Image;
        else if (name == "NLP")
            mix = Mix::Nlp;
        else if (name != "MIXED") {
            std::fprintf(stderr, "unknown mix '%s'\n",
                         name.c_str());
            return 1;
        }
    }
    double fraction = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.5;
    if (fraction < 0.0 || fraction > 1.0) {
        std::fprintf(stderr, "dnn_percent must be 0..100\n");
        return 1;
    }

    DesignConfig config;
    std::printf("workload: %s, %.0f%% DNN services, baseline fleet "
                "%.0f servers\n\n",
                mixName(mix), fraction * 100.0,
                config.baselineServers);

    double cpu_total = 0.0;
    for (Design design : allDesigns()) {
        ProvisionResult result = provision(design, mix, fraction,
                                           config);
        if (design == Design::CpuOnly)
            cpu_total = result.tco.total();
        std::printf("%s\n", designName(design));
        std::printf("  beefy servers %8.0f   wimpy servers %8.0f\n",
                    result.fleet.beefyServers,
                    result.fleet.wimpyServers);
        std::printf("  GPUs          %8.0f   NIC units     %8.0f\n",
                    result.fleet.gpus, result.fleet.nicUnits);
        std::printf("  DNN capacity  %8.0f QPS\n", result.dnnQps);
        std::printf("  lifetime TCO  $%.2fM  (%.2fx vs CPU-only)\n\n",
                    result.tco.total() / 1e6,
                    cpu_total / result.tco.total());
    }
    return 0;
}
