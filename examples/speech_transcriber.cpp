/**
 * @file
 * The speech scenario: an utterance is synthesized (standing in
 * for a microphone capture), converted to spliced filterbank
 * features, pushed through the DjiNN-hosted Kaldi acoustic model,
 * and Viterbi-decoded into a phone sequence.
 *
 * Usage: speech_transcriber [seconds]
 * Default 1.0 second; the paper's ASR query shape is ~5.5 s
 * (548 feature vectors).
 */

#include <cstdio>
#include <cstdlib>

#include "core/djinn_client.hh"
#include "core/djinn_server.hh"
#include "tonic/apps.hh"
#include "tonic/audio.hh"

using namespace djinn;

int
main(int argc, char **argv)
{
    double seconds = argc > 1 ? std::atof(argv[1]) : 1.0;
    if (seconds <= 0.0 || seconds > 30.0) {
        std::fprintf(stderr, "duration must be in (0, 30]\n");
        return 1;
    }

    core::ModelRegistry registry;
    registry.addZooModel(nn::zoo::Model::KaldiAsr);

    core::DjinnServer server(registry, core::ServerConfig{});
    if (!server.start().isOk())
        return 1;
    core::DjinnClient client;
    if (!client.connect("127.0.0.1", server.port()).isOk())
        return 1;

    Rng rng(99);
    auto samples = tonic::synthesizeUtterance(seconds, rng);
    tonic::FeatureConfig features;
    std::printf("utterance: %.1f s, %zu samples -> %lld frames\n",
                seconds, samples.size(),
                static_cast<long long>(tonic::frameCount(
                    static_cast<int64_t>(samples.size()),
                    features)));

    tonic::AsrApp asr(client);
    auto result = asr.transcribe(samples);
    if (!result.isOk()) {
        std::fprintf(stderr, "transcription failed: %s\n",
                     result.status().toString().c_str());
        return 1;
    }
    const tonic::AppOutput &out = result.value();
    std::printf("phones: %s\n", out.text.c_str());
    std::printf("timing: pre %.1f ms | dnn service %.1f ms | "
                "post %.1f ms (dnn %.0f%%)\n",
                out.times.preprocess * 1e3,
                out.times.service * 1e3,
                out.times.postprocess * 1e3,
                100.0 * out.times.service / out.times.total());
    server.stop();
    return 0;
}
