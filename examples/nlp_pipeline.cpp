/**
 * @file
 * The NLP scenario: a sentence flows through all three SENNA-based
 * services. CHK demonstrates the paper's service composition - it
 * internally issues a POS request, folds the tags into its own
 * features, then queries the chunking network.
 *
 * Usage: nlp_pipeline ["a sentence to analyze"]
 */

#include <cstdio>

#include "core/djinn_client.hh"
#include "core/djinn_server.hh"
#include "tonic/apps.hh"

using namespace djinn;

int
main(int argc, char **argv)
{
    std::string sentence = argc > 1
        ? argv[1]
        : "john runs the large warehouse computer in paris";

    core::ModelRegistry registry;
    registry.addZooModel(nn::zoo::Model::SennaPos);
    registry.addZooModel(nn::zoo::Model::SennaChk);
    registry.addZooModel(nn::zoo::Model::SennaNer);

    core::ServerConfig config;
    config.batching = true;
    config.batchOptions.maxQueries = 64; // Table 3 NLP batch size
    core::DjinnServer server(registry, config);
    if (!server.start().isOk())
        return 1;
    core::DjinnClient client;
    if (!client.connect("127.0.0.1", server.port()).isOk())
        return 1;

    std::printf("input: %s\n\n", sentence.c_str());

    tonic::PosApp pos(client);
    auto pos_out = pos.tag(sentence);
    if (pos_out.isOk())
        std::printf("POS: %s\n", pos_out.value().text.c_str());

    tonic::ChkApp chk(client);
    auto chk_out = chk.chunk(sentence);
    if (chk_out.isOk())
        std::printf("CHK: %s\n", chk_out.value().text.c_str());

    tonic::NerApp ner(client);
    auto ner_out = ner.recognize(sentence);
    if (ner_out.isOk())
        std::printf("NER: %s\n", ner_out.value().text.c_str());

    std::printf("\nservice requests issued: %lu (CHK issues two: "
                "POS first, then its own)\n",
                static_cast<unsigned long>(
                    server.requestsServed()));
    server.stop();
    return 0;
}
