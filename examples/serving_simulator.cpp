/**
 * @file
 * CLI front end for the serving simulator: explore any point of
 * the paper's design space (app, batch size, MPS instances, GPU
 * count, interconnect) from the command line.
 *
 * Usage:
 *   serving_simulator [app] [batch] [instances] [gpus]
 *                     [mps|share] [pcie3|pcie4|qpi|none]
 * Defaults: IMC 16 4 1 mps pcie3
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "serve/simulation.hh"

using namespace djinn;

int
main(int argc, char **argv)
{
    serve::SimConfig config;
    config.app = argc > 1 ? serve::appFromName(argv[1])
                          : serve::App::IMC;
    config.batch = argc > 2 ? std::atoll(argv[2]) : 16;
    config.instancesPerGpu = argc > 3 ? std::atoi(argv[3]) : 4;
    config.gpuCount = argc > 4 ? std::atoi(argv[4]) : 1;
    if (argc > 5)
        config.mps = std::string(argv[5]) != "share";
    if (argc > 6) {
        std::string link = argv[6];
        if (link == "pcie4") {
            config.hostLink = gpu::pcieV4();
            config.hostLink.peakBandwidth *= 2.0;
        } else if (link == "qpi") {
            config.hostLink = gpu::qpiAggregate();
        } else if (link == "none") {
            config.hostLink = gpu::unlimitedLink();
        }
    }

    std::printf("app=%s batch=%lld instances=%d gpus=%d mode=%s "
                "link=%s\n",
                serve::appName(config.app),
                static_cast<long long>(config.batch),
                config.instancesPerGpu, config.gpuCount,
                config.mps ? "MPS" : "time-share",
                config.hostLink.name.c_str());

    serve::SimResult result = serve::runServingSim(config);
    double cpu_qps =
        1.0 / serve::cpuQueryTime(config.app, gpu::CpuSpec());

    std::printf("throughput       %12.1f QPS (%.1fx over one Xeon "
                "core)\n", result.throughputQps,
                result.throughputQps / cpu_qps);
    std::printf("latency mean     %12.3f ms\n",
                result.meanLatency * 1e3);
    std::printf("latency median   %12.3f ms\n",
                result.medianLatency * 1e3);
    std::printf("latency p99      %12.3f ms\n",
                result.p99Latency * 1e3);
    std::printf("GPU occupancy    %12.2f\n", result.gpuOccupancy);
    std::printf("GPU utilization  %12.2f\n", result.gpuUtilization);
    std::printf("host link util   %12.2f (%.2f GB/s)\n",
                result.hostLinkUtilization,
                result.hostLinkBytesPerSec / 1e9);
    return 0;
}
