/**
 * @file
 * The image scenario the paper's introduction motivates: a mobile
 * device ships photos to the datacenter, which classifies scenes
 * (IMC/AlexNet), reads handwritten digits (DIG/MNIST), and
 * identifies faces (FACE/DeepFace) against one shared DjiNN
 * service. Prints each application's prediction and its
 * Figure-4-style phase breakdown measured on the live system.
 *
 * Usage: image_pipeline [path/to/image.ppm]
 * Without an argument, deterministic synthetic photos are used.
 */

#include <cstdio>

#include "core/djinn_client.hh"
#include "core/djinn_server.hh"
#include "tonic/apps.hh"

using namespace djinn;

namespace {

void
report(const char *app, const tonic::AppOutput &out)
{
    double total = out.times.total();
    std::printf("%-5s -> %-28s pre %6.1f ms | dnn %8.1f ms | "
                "post %5.1f ms | dnn share %4.1f%%\n",
                app, out.text.c_str(), out.times.preprocess * 1e3,
                out.times.service * 1e3,
                out.times.postprocess * 1e3,
                total > 0 ? 100.0 * out.times.service / total : 0);
}

} // namespace

int
main(int argc, char **argv)
{
    core::ModelRegistry registry;
    registry.addZooModel(nn::zoo::Model::AlexNet);
    registry.addZooModel(nn::zoo::Model::Mnist);
    registry.addZooModel(nn::zoo::Model::DeepFace);
    std::printf("models resident: %.0f MiB shared read-only\n",
                registry.totalWeightBytes() / (1024.0 * 1024.0));

    core::DjinnServer server(registry, core::ServerConfig{});
    if (!server.start().isOk())
        return 1;
    core::DjinnClient client;
    if (!client.connect("127.0.0.1", server.port()).isOk())
        return 1;

    Rng rng(7);
    tonic::Image photo;
    if (argc > 1) {
        auto loaded = tonic::loadPnm(argv[1]);
        if (!loaded.isOk()) {
            std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                         loaded.status().toString().c_str());
            return 1;
        }
        photo = loaded.takeValue();
    } else {
        photo = tonic::synthesizePhoto(640, 480, 3, rng);
    }

    tonic::ImcApp imc(client);
    auto imc_out = imc.classify(photo);
    if (imc_out.isOk())
        report("IMC", imc_out.value());

    tonic::DigApp dig(client);
    std::vector<tonic::Image> digits;
    for (int i = 0; i < 100; ++i)
        digits.push_back(tonic::synthesizeDigit(i % 10, rng));
    auto dig_out = dig.recognize(digits);
    if (dig_out.isOk()) {
        tonic::AppOutput out = dig_out.takeValue();
        out.text = out.text.substr(0, 20) + "...";
        report("DIG", out);
    }

    tonic::FaceApp face(client);
    auto face_out = face.identify(photo);
    if (face_out.isOk())
        report("FACE", face_out.value());

    server.stop();
    return 0;
}
