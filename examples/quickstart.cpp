/**
 * @file
 * Quickstart: bring up a DjiNN service in-process, connect a
 * client over TCP, and serve two Tonic applications (digit
 * recognition and part-of-speech tagging).
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "core/djinn_client.hh"
#include "core/djinn_server.hh"
#include "tonic/apps.hh"

using namespace djinn;

int
main()
{
    // 1. Load models into the shared in-memory registry. The full
    //    Tonic set is available; the quickstart loads the two small
    //    networks to start instantly.
    core::ModelRegistry registry;
    registry.addZooModel(nn::zoo::Model::Mnist);
    registry.addZooModel(nn::zoo::Model::SennaPos);

    // 2. Start the DjiNN server on an ephemeral loopback port, with
    //    cross-request batching enabled (paper Section 5.1).
    core::ServerConfig server_config;
    server_config.batching = true;
    server_config.batchOptions.maxQueries = 16;
    core::DjinnServer server(registry, server_config);
    if (!server.start().isOk()) {
        std::fprintf(stderr, "failed to start DjiNN server\n");
        return 1;
    }
    std::printf("DjiNN serving %zu models on 127.0.0.1:%u\n",
                registry.size(), server.port());

    // 3. Connect a client and run the applications.
    core::DjinnClient client;
    if (!client.connect("127.0.0.1", server.port()).isOk()) {
        std::fprintf(stderr, "failed to connect\n");
        return 1;
    }

    // Digit recognition: one query carries a batch of digit images.
    tonic::DigApp dig(client);
    Rng rng(2026);
    std::vector<tonic::Image> digits;
    for (int d = 0; d < 10; ++d)
        digits.push_back(tonic::synthesizeDigit(d, rng));
    auto dig_result = dig.recognize(digits);
    if (dig_result.isOk()) {
        std::printf("DIG: 10 digit images -> \"%s\" "
                    "(service %.2f ms)\n",
                    dig_result.value().text.c_str(),
                    dig_result.value().times.service * 1e3);
    }

    // Part-of-speech tagging.
    tonic::PosApp pos(client);
    auto pos_result =
        pos.tag("the quick brown fox jumps over the lazy dog");
    if (pos_result.isOk()) {
        std::printf("POS: %s\n", pos_result.value().text.c_str());
    }

    std::printf("served %lu requests over %lu connections\n",
                static_cast<unsigned long>(server.requestsServed()),
                static_cast<unsigned long>(
                    server.connectionsAccepted()));
    server.stop();
    return 0;
}
