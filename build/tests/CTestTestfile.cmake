# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/zoo_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/serve_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/tonic_test[1]_include.cmake")
include("/root/repo/build/tests/tonic_apps_test[1]_include.cmake")
include("/root/repo/build/tests/wsc_test[1]_include.cmake")
