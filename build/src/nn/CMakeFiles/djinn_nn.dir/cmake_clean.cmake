file(REMOVE_RECURSE
  "CMakeFiles/djinn_nn.dir/gemm.cc.o"
  "CMakeFiles/djinn_nn.dir/gemm.cc.o.d"
  "CMakeFiles/djinn_nn.dir/init.cc.o"
  "CMakeFiles/djinn_nn.dir/init.cc.o.d"
  "CMakeFiles/djinn_nn.dir/layer.cc.o"
  "CMakeFiles/djinn_nn.dir/layer.cc.o.d"
  "CMakeFiles/djinn_nn.dir/layers/activation.cc.o"
  "CMakeFiles/djinn_nn.dir/layers/activation.cc.o.d"
  "CMakeFiles/djinn_nn.dir/layers/convolution.cc.o"
  "CMakeFiles/djinn_nn.dir/layers/convolution.cc.o.d"
  "CMakeFiles/djinn_nn.dir/layers/inner_product.cc.o"
  "CMakeFiles/djinn_nn.dir/layers/inner_product.cc.o.d"
  "CMakeFiles/djinn_nn.dir/layers/locally_connected.cc.o"
  "CMakeFiles/djinn_nn.dir/layers/locally_connected.cc.o.d"
  "CMakeFiles/djinn_nn.dir/layers/lrn.cc.o"
  "CMakeFiles/djinn_nn.dir/layers/lrn.cc.o.d"
  "CMakeFiles/djinn_nn.dir/layers/pooling.cc.o"
  "CMakeFiles/djinn_nn.dir/layers/pooling.cc.o.d"
  "CMakeFiles/djinn_nn.dir/layers/softmax.cc.o"
  "CMakeFiles/djinn_nn.dir/layers/softmax.cc.o.d"
  "CMakeFiles/djinn_nn.dir/net_def.cc.o"
  "CMakeFiles/djinn_nn.dir/net_def.cc.o.d"
  "CMakeFiles/djinn_nn.dir/network.cc.o"
  "CMakeFiles/djinn_nn.dir/network.cc.o.d"
  "CMakeFiles/djinn_nn.dir/serialize.cc.o"
  "CMakeFiles/djinn_nn.dir/serialize.cc.o.d"
  "CMakeFiles/djinn_nn.dir/tensor.cc.o"
  "CMakeFiles/djinn_nn.dir/tensor.cc.o.d"
  "CMakeFiles/djinn_nn.dir/zoo.cc.o"
  "CMakeFiles/djinn_nn.dir/zoo.cc.o.d"
  "libdjinn_nn.a"
  "libdjinn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djinn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
