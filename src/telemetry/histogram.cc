#include "telemetry/histogram.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.hh"

namespace djinn {
namespace telemetry {

namespace {

/** CAS loop: out += x on an atomic double. */
void
atomicAdd(std::atomic<double> &out, double x)
{
    double cur = out.load(std::memory_order_relaxed);
    while (!out.compare_exchange_weak(cur, cur + x,
                                      std::memory_order_relaxed)) {
    }
}

/** CAS loop: out = min(out, x) on an atomic double. */
void
atomicMin(std::atomic<double> &out, double x)
{
    double cur = out.load(std::memory_order_relaxed);
    while (x < cur &&
           !out.compare_exchange_weak(cur, x,
                                      std::memory_order_relaxed)) {
    }
}

/** CAS loop: out = max(out, x) on an atomic double. */
void
atomicMax(std::atomic<double> &out, double x)
{
    double cur = out.load(std::memory_order_relaxed);
    while (x > cur &&
           !out.compare_exchange_weak(cur, x,
                                      std::memory_order_relaxed)) {
    }
}

double
boundOf(const HistogramOptions &options, int i)
{
    if (i < 0)
        return -std::numeric_limits<double>::infinity();
    if (i >= options.bucketCount)
        return std::numeric_limits<double>::infinity();
    return options.firstBound * std::pow(options.growth, i);
}

/** Shared quantile walk over a finished bucket array. */
double
quantileOf(const HistogramOptions &options,
           const std::vector<uint64_t> &buckets, uint64_t count,
           double min, double max, double q)
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);

    // Rank of the requested order statistic, 1-based.
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    rank = std::clamp<uint64_t>(rank, 1, count);

    uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        if (seen + buckets[i] < rank) {
            seen += buckets[i];
            continue;
        }
        // Interpolate inside the covering bucket. The overflow
        // bucket has no finite upper bound; use the observed max.
        double lo = boundOf(options, static_cast<int>(i) - 1);
        double hi = boundOf(options, static_cast<int>(i));
        if (!std::isfinite(lo) || lo < min)
            lo = min;
        if (!std::isfinite(hi) || hi > max)
            hi = max;
        double frac = (static_cast<double>(rank - seen) - 0.5) /
                      static_cast<double>(buckets[i]);
        double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
        return std::clamp(v, min, max);
    }
    return max;
}

} // namespace

double
HistogramSnapshot::mean() const
{
    return count ? sum / static_cast<double>(count) : 0.0;
}

double
HistogramSnapshot::quantile(double q) const
{
    return quantileOf(options, buckets, count, min, max, q);
}

double
HistogramSnapshot::bucketUpperBound(int i) const
{
    return boundOf(options, i);
}

LogHistogram::LogHistogram(const HistogramOptions &options)
    : options_(options),
      buckets_(static_cast<size_t>(options.bucketCount) + 1),
      exemplars_(options.exemplars ? buckets_.size() : 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    if (options_.bucketCount < 1)
        fatal("LogHistogram: bucketCount must be >= 1");
    if (options_.growth <= 1.0)
        fatal("LogHistogram: growth must be > 1");
    if (options_.firstBound <= 0.0)
        fatal("LogHistogram: firstBound must be positive");
}

int
LogHistogram::bucketIndex(double value) const
{
    if (!(value > options_.firstBound))
        return 0;
    // log-based guess, then repair floating-point drift so the
    // invariant bound(i-1) < value <= bound(i) holds exactly.
    double guess = std::log(value / options_.firstBound) /
                   std::log(options_.growth);
    int idx = static_cast<int>(std::ceil(guess - 1e-9));
    idx = std::clamp(idx, 0, options_.bucketCount);
    while (idx > 0 && value <= bucketUpperBound(idx - 1))
        --idx;
    while (idx < options_.bucketCount && value > bucketUpperBound(idx))
        ++idx;
    return idx;
}

double
LogHistogram::bucketUpperBound(int i) const
{
    return boundOf(options_, i);
}

void
LogHistogram::record(double value)
{
    buckets_[static_cast<size_t>(bucketIndex(value))].fetch_add(
        1, std::memory_order_relaxed);
    atomicAdd(sum_, value);
    atomicMin(min_, value);
    atomicMax(max_, value);
    // Publish count last so a reader that sees count == n can see at
    // least n bucket increments.
    count_.fetch_add(1, std::memory_order_release);
}

void
LogHistogram::record(double value, uint64_t traceId, uint64_t ref)
{
    size_t bucket = static_cast<size_t>(bucketIndex(value));
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    if (!exemplars_.empty())
        writeExemplar(bucket, value, traceId, ref);
    atomicAdd(sum_, value);
    atomicMin(min_, value);
    atomicMax(max_, value);
    count_.fetch_add(1, std::memory_order_release);
}

void
LogHistogram::writeExemplar(size_t bucket, double value,
                            uint64_t traceId, uint64_t ref)
{
    ExemplarSlot &slot = exemplars_[bucket];
    // Most-recent-wins, best effort: if another writer holds the
    // slot mid-update, its sample is as recent as ours — drop.
    uint64_t stamp = slot.stamp.load(std::memory_order_relaxed);
    if (stamp & 1)
        return;
    if (!slot.stamp.compare_exchange_strong(
            stamp, stamp + 1, std::memory_order_acq_rel,
            std::memory_order_relaxed))
        return;
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    slot.traceId.store(traceId, std::memory_order_relaxed);
    slot.ref.store(ref, std::memory_order_relaxed);
    slot.valueBits.store(bits, std::memory_order_relaxed);
    slot.stamp.store(stamp + 2, std::memory_order_release);
}

bool
LogHistogram::readExemplar(size_t bucket, Exemplar &out) const
{
    const ExemplarSlot &slot = exemplars_[bucket];
    for (int attempt = 0; attempt < 16; ++attempt) {
        uint64_t before = slot.stamp.load(std::memory_order_acquire);
        if (before == 0)
            return false; // never written
        if (before & 1)
            continue; // mid-update; retry
        uint64_t traceId =
            slot.traceId.load(std::memory_order_relaxed);
        uint64_t ref = slot.ref.load(std::memory_order_relaxed);
        uint64_t bits =
            slot.valueBits.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.stamp.load(std::memory_order_relaxed) != before)
            continue;
        out.valid = true;
        out.traceId = traceId;
        out.ref = ref;
        std::memcpy(&out.value, &bits, sizeof(out.value));
        return true;
    }
    return false;
}

uint64_t
LogHistogram::count() const
{
    return count_.load(std::memory_order_acquire);
}

double
LogHistogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
LogHistogram::min() const
{
    return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double
LogHistogram::max() const
{
    return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

double
LogHistogram::mean() const
{
    uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
}

HistogramSnapshot
LogHistogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.options = options_;
    snap.count = count();
    snap.sum = sum();
    snap.min = min();
    snap.max = max();
    snap.buckets.resize(buckets_.size());
    for (size_t i = 0; i < buckets_.size(); ++i)
        snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    if (!exemplars_.empty()) {
        snap.exemplars.resize(buckets_.size());
        for (size_t i = 0; i < buckets_.size(); ++i)
            readExemplar(i, snap.exemplars[i]);
    }
    return snap;
}

double
LogHistogram::quantile(double q) const
{
    return snapshot().quantile(q);
}

} // namespace telemetry
} // namespace djinn
