#include "telemetry/flight_recorder.hh"

#include <algorithm>
#include <cstring>

#include "common/strings.hh"
#include "telemetry/exposition.hh"
#include "telemetry/metrics.hh"

namespace djinn {
namespace telemetry {

namespace {

/** Stable stamp for a record sequence: even, non-zero. */
uint64_t stableStamp(uint64_t seq) { return 2 * (seq + 1); }

/** Write-in-progress stamp for a record sequence: odd. */
uint64_t busyStamp(uint64_t seq) { return 2 * (seq + 1) + 1; }

/** The record sequence a stamp refers to (stable or busy). */
uint64_t stampSeq(uint64_t stamp) { return stamp / 2 - 1; }

/** Min-heap order on total latency, so the root is the fastest
 * retained record — the one a slower candidate evicts. */
bool slower(const FlightRecord &a, const FlightRecord &b)
{
    return a.totalSeconds > b.totalSeconds;
}

} // namespace

const char *flightOutcomeName(FlightOutcome outcome)
{
    switch (outcome) {
    case FlightOutcome::Ok: return "ok";
    case FlightOutcome::ShedQueueFull: return "shed_queue_full";
    case FlightOutcome::ShedDeadline: return "shed_deadline";
    case FlightOutcome::Error: return "error";
    }
    return "unknown";
}

void FlightRecord::setModel(const std::string &name)
{
    size_t n = std::min(name.size(), sizeof(model) - 1);
    std::memcpy(model, name.data(), n);
    model[n] = '\0';
}

std::string FlightRecord::modelName() const
{
    return std::string(model,
                       strnlen(model, sizeof(model)));
}

FlightRecorder::FlightRecorder(size_t capacity,
                               size_t reservoirCapacity,
                               MetricRegistry *metrics)
    : slots_(std::max<size_t>(capacity, 1)),
      reservoirCapacity_(reservoirCapacity)
{
    reservoir_.reserve(reservoirCapacity_);
    if (metrics)
        recordsCounter_ = &metrics->counter("djinn_tail_records_total");
}

uint64_t FlightRecorder::record(const FlightRecord &record)
{
    uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);

    FlightRecord stamped = record;
    stamped.seq = seq;

    uint64_t words[recordWords] = {};
    std::memcpy(words, &stamped, sizeof(stamped));

    Slot &slot = slots_[seq % slots_.size()];

    // Claim the slot: CAS the stamp from any stable (even) value to
    // our busy marker. Only the claim owner touches the words, so
    // two writers lapped onto the same slot never race on data.
    // The newer sequence wins; the older one abandons the ring (its
    // record can still reach the tail reservoir below).
    bool published = false;
    uint64_t current = slot.stamp.load(std::memory_order_relaxed);
    for (int spin = 0; spin < 1024; ++spin) {
        if (current & 1) {
            // Another writer is mid-publish on this slot.
            if (stampSeq(current) > seq)
                break; // superseded: a newer record owns the slot
            current = slot.stamp.load(std::memory_order_relaxed);
            continue; // older writer finishing; wait it out
        }
        if (current != 0 && stampSeq(current) >= seq)
            break; // slot already holds a newer record
        if (slot.stamp.compare_exchange_weak(
                current, busyStamp(seq), std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
            for (size_t i = 0; i < recordWords; ++i)
                slot.words[i].store(words[i],
                                    std::memory_order_relaxed);
            slot.stamp.store(stableStamp(seq),
                             std::memory_order_release);
            published = true;
            break;
        }
    }
    (void)published;

    offerTail(stamped);
    if (recordsCounter_)
        recordsCounter_->inc();
    return seq;
}

uint64_t FlightRecorder::recordCount() const
{
    return next_.load(std::memory_order_relaxed);
}

bool FlightRecorder::readSlot(const Slot &slot,
                              FlightRecord &out) const
{
    for (int attempt = 0; attempt < 16; ++attempt) {
        uint64_t before = slot.stamp.load(std::memory_order_acquire);
        if (before == 0 || (before & 1))
            return false; // empty, or write in progress
        uint64_t words[recordWords];
        for (size_t i = 0; i < recordWords; ++i)
            words[i] = slot.words[i].load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        uint64_t after = slot.stamp.load(std::memory_order_relaxed);
        if (before == after) {
            std::memcpy(&out, words, sizeof(out));
            return true;
        }
    }
    return false;
}

void FlightRecorder::offerTail(const FlightRecord &record)
{
    if (reservoirCapacity_ == 0)
        return;
    // Lock-free pre-check on the cached full flag + threshold only:
    // reservoir_ itself (including its size) is guarded by the
    // mutex, and a stale flag or threshold merely sends a borderline
    // record through the locked path, which re-checks exactly.
    if (reservoirFull_.load(std::memory_order_relaxed) &&
        record.totalSeconds <=
            tailThreshold_.load(std::memory_order_relaxed))
        return;

    std::lock_guard<std::mutex> lock(reservoirMutex_);
    if (reservoir_.size() >= reservoirCapacity_) {
        if (record.totalSeconds <= reservoir_.front().totalSeconds)
            return;
        std::pop_heap(reservoir_.begin(), reservoir_.end(), slower);
        reservoir_.back() = record;
    } else {
        reservoir_.push_back(record);
    }
    std::push_heap(reservoir_.begin(), reservoir_.end(), slower);
    if (reservoir_.size() >= reservoirCapacity_) {
        tailThreshold_.store(reservoir_.front().totalSeconds,
                             std::memory_order_relaxed);
        reservoirFull_.store(true, std::memory_order_relaxed);
    }
}

std::vector<FlightRecord> FlightRecorder::snapshot() const
{
    std::vector<FlightRecord> out;
    out.reserve(slots_.size() + reservoirCapacity_);
    for (const Slot &slot : slots_) {
        FlightRecord record;
        if (readSlot(slot, record))
            out.push_back(record);
    }
    {
        std::lock_guard<std::mutex> lock(reservoirMutex_);
        out.insert(out.end(), reservoir_.begin(), reservoir_.end());
    }
    std::sort(out.begin(), out.end(),
              [](const FlightRecord &a, const FlightRecord &b) {
                  return a.seq < b.seq;
              });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const FlightRecord &a,
                             const FlightRecord &b) {
                              return a.seq == b.seq;
                          }),
              out.end());
    return out;
}

bool FlightRecorder::find(uint64_t seq, FlightRecord &out) const
{
    for (const FlightRecord &record : snapshot())
        if (record.seq == seq) {
            out = record;
            return true;
        }
    return false;
}

std::string
renderFlightRecordJson(const FlightRecord &record)
{
    std::string out = "{";
    out += strprintf("\"seq\": %llu",
                     static_cast<unsigned long long>(record.seq));
    if (record.traceId != 0)
        out += strprintf(", \"trace_id\": \"%016llx\"",
                         static_cast<unsigned long long>(
                             record.traceId));
    out += strprintf(", \"timestamp_us\": %lld",
                     static_cast<long long>(record.timestampUs));
    out += ", \"model\": \"" + jsonEscape(record.modelName()) + "\"";
    out += std::string(", \"outcome\": \"") +
           flightOutcomeName(record.outcome) + "\"";
    out += strprintf(", \"total_seconds\": %.9g",
                     record.totalSeconds);
    out += strprintf(", \"read_seconds\": %.9g",
                     record.readSeconds);
    out += strprintf(", \"decode_seconds\": %.9g",
                     record.decodeSeconds);
    out += strprintf(", \"queue_wait_seconds\": %.9g",
                     record.queueWaitSeconds);
    out += strprintf(", \"forward_seconds\": %.9g",
                     record.forwardSeconds);
    out += strprintf(", \"encode_seconds\": %.9g",
                     record.encodeSeconds);
    out += strprintf(", \"retry_wait_seconds\": %.9g",
                     record.retryWaitSeconds);
    out += strprintf(", \"rows\": %d", record.rows);
    out += strprintf(", \"batch_queries\": %d",
                     record.batchQueries);
    out += strprintf(", \"batch_rows\": %d", record.batchRows);
    out += strprintf(", \"batch_position\": %d",
                     record.batchPosition);
    out += strprintf(", \"admit_queue_depth\": %d",
                     record.admitQueueDepth);
    out += strprintf(", \"retries\": %d", record.retries);
    out += strprintf(", \"hardware\": %s",
                     record.hardware ? "true" : "false");
    out += strprintf(", \"cycles\": %llu",
                     static_cast<unsigned long long>(record.cycles));
    out += strprintf(", \"instructions\": %llu",
                     static_cast<unsigned long long>(
                         record.instructions));
    out += strprintf(", \"cache_misses\": %llu}",
                     static_cast<unsigned long long>(
                         record.cacheMisses));
    return out;
}

bool FlightRecorder::findByTraceId(uint64_t traceId,
                                   FlightRecord &out) const
{
    if (traceId == 0)
        return false;
    bool found = false;
    for (const FlightRecord &record : snapshot())
        if (record.traceId == traceId) {
            out = record;
            found = true; // keep scanning: newest seq wins
        }
    return found;
}

} // namespace telemetry
} // namespace djinn
