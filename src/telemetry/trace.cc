#include "telemetry/trace.hh"

namespace djinn {
namespace telemetry {

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Decode:
        return "decode";
      case Phase::QueueWait:
        return "queue_wait";
      case Phase::Forward:
        return "forward";
      case Phase::Encode:
        return "encode";
      case Phase::Service:
        return "service";
    }
    return "unknown";
}

RequestTrace::RequestTrace(MetricRegistry &registry,
                           std::string model)
    : registry_(registry), model_(std::move(model))
{
    registry_.gauge(inflightMetricName).add(1.0);
}

RequestTrace::~RequestTrace()
{
    registry_.gauge(inflightMetricName).add(-1.0);
}

void
RequestTrace::record(Phase phase, double seconds)
{
    registry_
        .histogram(phaseMetricName,
                   {{"model", model_}, {"phase", phaseName(phase)}})
        .record(seconds);
}

void
RequestTrace::recordWork(Phase phase, const CounterDelta &delta)
{
    const LabelMap labels{{"model", model_},
                          {"phase", phaseName(phase)}};
    registry_.histogram(phaseCyclesMetricName, labels)
        .record(static_cast<double>(delta.work()));
    if (!delta.hardware)
        return;
    registry_.histogram(phaseInstructionsMetricName, labels)
        .record(static_cast<double>(delta.instructions));
    registry_.histogram(phaseIpcMetricName, labels)
        .record(delta.ipc());
    registry_.histogram(phaseCacheMissMetricName, labels)
        .record(static_cast<double>(delta.cacheMisses));
}

void
RequestTrace::recordRequestWork(const CounterDelta &delta)
{
    const LabelMap labels{{"model", model_}};
    registry_.histogram(requestCyclesMetricName, labels)
        .record(static_cast<double>(delta.work()));
    if (delta.hardware) {
        registry_.histogram(requestIpcMetricName, labels)
            .record(delta.ipc());
    }
}

void
RequestTrace::Span::stop()
{
    if (done_)
        return;
    done_ = true;
    double seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start_).count();
    trace_.record(phase_, seconds);
}

} // namespace telemetry
} // namespace djinn
