/**
 * @file
 * Rolling SLO accounting per model: every request is classified
 * good (service latency within the model's target) or bad, feeding
 * monotonic `djinn_slo_good_total` / `djinn_slo_bad_total`
 * counters plus a rolling-window burn-rate gauge
 * (`djinn_slo_burn_rate`): the fraction of bad requests over the
 * window divided by the error budget (1 - objective). Burn rate 1
 * means the service is consuming its budget exactly as fast as the
 * objective allows; above 1 the SLO is burning down; a sustained
 * rate of N exhausts a period's budget N times too fast — the
 * standard multi-window alerting signal.
 *
 * The tracker is registry-backed, so everything it maintains
 * appears in /metrics and the Metrics wire verb with no extra
 * plumbing. record() is called once per request and takes one
 * short mutex hold; the burn-rate gauges are refreshed by the
 * BackgroundSampler's update hook rather than on the request path.
 */

#ifndef DJINN_TELEMETRY_SLO_HH
#define DJINN_TELEMETRY_SLO_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hh"

namespace djinn {
namespace telemetry {

/** Metric family names the tracker maintains. */
inline const char *const sloGoodMetricName = "djinn_slo_good_total";
inline const char *const sloBadMetricName = "djinn_slo_bad_total";
inline const char *const sloBurnRateMetricName =
    "djinn_slo_burn_rate";
inline const char *const sloTargetMetricName =
    "djinn_slo_target_seconds";

/** SLO policy. */
struct SloOptions {
    /** Latency target applied to models without an explicit
     * setTarget() override, seconds. */
    double defaultTargetSeconds = 0.050;

    /** Availability objective; the error budget is
     * 1 - objective. */
    double objective = 0.99;

    /** Rolling window the burn rate is computed over, seconds. */
    double windowSeconds = 60.0;

    /**
     * A model with no traffic for this long reports burn rate 0.
     * The burn rate is a *fraction* of in-window requests: once a
     * model goes idle, a stale burst (even a single bad request)
     * would otherwise pin the gauge at up to 1/(1 - objective) for
     * the rest of the window and trip health alerting on a model
     * that is serving nothing. Seconds; must not exceed
     * windowSeconds to matter.
     */
    double idleResetSeconds = 15.0;
};

/**
 * Per-model SLO state over a shared registry. Thread-safe.
 * The clock is injectable so window-expiry behaviour is testable
 * without sleeping.
 */
class SloTracker
{
  public:
    /** Monotonic seconds source. */
    using Clock = std::function<double()>;

    /**
     * @param registry destination for counters and gauges; must
     *        outlive the tracker.
     * @param options SLO policy.
     * @param clock override for tests; defaults to the steady
     *        clock.
     */
    explicit SloTracker(MetricRegistry &registry,
                        const SloOptions &options = {},
                        Clock clock = {});

    SloTracker(const SloTracker &) = delete;
    SloTracker &operator=(const SloTracker &) = delete;

    /** Override the latency target for one model, seconds. */
    void setTarget(const std::string &model, double seconds);

    /** The target that applies to @p model, seconds. */
    double target(const std::string &model) const;

    /** Classify one served request. */
    void record(const std::string &model, double serviceSeconds);

    /**
     * Recompute every model's burn-rate gauge from its rolling
     * window. Called per sampler tick (and by tests directly).
     */
    void updateBurnRates();

    /** Current burn rate for @p model (0 when never served). */
    double burnRate(const std::string &model) const;

  private:
    /** One-second buckets forming the rolling window. */
    struct Bucket {
        int64_t second = -1; ///< absolute second this bucket holds
        uint64_t good = 0;
        uint64_t bad = 0;
    };

    struct ModelState {
        Counter *good = nullptr;
        Counter *bad = nullptr;
        Gauge *burn = nullptr;
        Gauge *targetGauge = nullptr;
        double targetSeconds = 0.0;
        std::vector<Bucket> window;

        /** Absolute second of the newest record(); -1 before the
         * first. Gates the idle burn-rate reset. */
        int64_t lastRecordSecond = -1;
    };

    ModelState &stateFor(const std::string &model);
    double windowBurnRate(const ModelState &state,
                          int64_t now_second) const;

    MetricRegistry &registry_;
    SloOptions options_;
    Clock clock_;

    mutable std::mutex mutex_;
    std::map<std::string, ModelState> models_;
};

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_SLO_HH
