/**
 * @file
 * The tail-latency flight recorder: an always-on, lock-free ring of
 * fixed-size per-request records written at request completion, plus
 * a tail-biased reservoir that keeps the slowest requests even after
 * the ring has wrapped many times. Every record carries the full
 * phase breakdown (frame read / decode / queue wait / forward /
 * encode), the queue depth observed at enqueue, the batch that
 * served the request, the shed/retry outcome, and perf-counter
 * deltas when hardware counters are available — enough to explain
 * any p99 sample without re-running the workload.
 *
 * The recorder never reads a clock and never allocates after
 * construction, so the cluster simulator can feed it from virtual
 * time with bit-identical results, and the live server pays a few
 * dozen nanoseconds per request.
 */

#ifndef DJINN_TELEMETRY_FLIGHT_RECORDER_HH
#define DJINN_TELEMETRY_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace djinn {
namespace telemetry {

class MetricRegistry;

/** How a request left the server. */
enum class FlightOutcome : uint8_t {
    Ok = 0,
    ShedQueueFull = 1,  ///< Overloaded at enqueue; never executed.
    ShedDeadline = 2,   ///< DeadlineExceeded before the forward pass.
    Error = 3,          ///< Any other non-Ok wire status.
};

/** Human label for an outcome ("ok", "shed_queue_full", ...). */
const char *flightOutcomeName(FlightOutcome outcome);

/**
 * One request's structured record. Trivially copyable and free of
 * owning members so the ring can publish it word-by-word through
 * atomics; the model name is a truncating fixed-size buffer.
 */
struct FlightRecord {
    /** Recorder-assigned sequence number; the exemplar "record"
     * ref that resolves back to this record. 0 until recorded. */
    uint64_t seq = 0;

    /** Wire trace id when the client sent one; 0 when untraced. */
    uint64_t traceId = 0;

    /** Completion timestamp, microseconds. Caller-supplied: the
     * server stamps traceNowUs(), the simulator virtual time. */
    int64_t timestampUs = 0;

    /** Phase durations, seconds. Zero when a phase did not run. */
    double readSeconds = 0.0;       ///< frame ingest (first byte on)
    double decodeSeconds = 0.0;
    double queueWaitSeconds = 0.0;
    double forwardSeconds = 0.0;
    double encodeSeconds = 0.0;

    /** Client-side retry inflation: time between the request's
     * first arrival and the admitted attempt (simulator only). */
    double retryWaitSeconds = 0.0;

    /** End-to-end server-side latency (read through encode; sim:
     * first arrival to completion). The tail-selection key. */
    double totalSeconds = 0.0;

    /** Input rows in this request. */
    int32_t rows = 0;

    /** Queries combined into the serving batch (1 unbatched). */
    int32_t batchQueries = 0;

    /** Total rows of the serving batch's forward pass. */
    int32_t batchRows = 0;

    /** This query's position within the serving batch. */
    int32_t batchPosition = 0;

    /** Queue depth observed at enqueue, before this query joined. */
    int32_t admitQueueDepth = 0;

    /** Retry attempts before this completion (simulator only). */
    int32_t retries = 0;

    /** How the request left the server. */
    FlightOutcome outcome = FlightOutcome::Ok;

    /** True when the perf-counter deltas below carry hardware
     * counts rather than zeros. */
    bool hardware = false;

    /** Whole-request perf-counter deltas (0 without hardware). */
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t cacheMisses = 0;

    /** The model (server) or app (simulator) name, truncated. */
    char model[24] = {};

    /** Set the model name (truncating). */
    void setModel(const std::string &name);

    /** The model name as a string. */
    std::string modelName() const;
};

/**
 * The recorder. record() is wait-free on the hot path: a fetch_add
 * claims a slot, a per-slot sequence stamp plus word-wise atomic
 * copies make concurrent reads tear-free (readers that race a wrap
 * simply retry or skip the slot). A separate fixed-size reservoir
 * keeps the slowest-ever requests past ring wraps: candidates are
 * rejected with one relaxed load against the current tail threshold
 * and only genuine tail entries take the reservoir mutex.
 */
class FlightRecorder
{
  public:
    /**
     * @param capacity ring slots (newest records win).
     * @param reservoirCapacity slowest-request slots kept across
     *        ring wraps; 0 disables the reservoir.
     * @param metrics optional registry for the
     *        `djinn_tail_records_total` counter.
     */
    explicit FlightRecorder(size_t capacity = 4096,
                            size_t reservoirCapacity = 256,
                            MetricRegistry *metrics = nullptr);

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Record one completed request. Thread-safe, wait-free apart
     * from rare tail-reservoir inserts.
     *
     * @return the assigned sequence number (the exemplar ref).
     */
    uint64_t record(const FlightRecord &record);

    /** Records ever written. */
    uint64_t recordCount() const;

    /** Ring capacity in slots. */
    size_t capacity() const { return slots_.size(); }

    /**
     * Copy out every live record: the ring's current contents plus
     * reservoir-retained tail records no longer in the ring,
     * deduplicated by sequence number and sorted by it (oldest
     * first). Safe against concurrent writers.
     */
    std::vector<FlightRecord> snapshot() const;

    /** Find the newest record with @p seq (exact match). */
    bool find(uint64_t seq, FlightRecord &out) const;

    /** Find the newest record carrying @p traceId. */
    bool findByTraceId(uint64_t traceId, FlightRecord &out) const;

  private:
    static constexpr size_t recordWords =
        (sizeof(FlightRecord) + sizeof(uint64_t) - 1) /
        sizeof(uint64_t);

    struct Slot {
        /** 0 empty; odd: write in progress; even non-zero:
         * 2 * (seq + 1) of the stored record. */
        std::atomic<uint64_t> stamp{0};
        std::atomic<uint64_t> words[recordWords];
    };

    bool readSlot(const Slot &slot, FlightRecord &out) const;
    void offerTail(const FlightRecord &record);

    std::vector<Slot> slots_;
    std::atomic<uint64_t> next_{0};

    // Tail reservoir: keep-K-slowest by totalSeconds. full_ and
    // threshold_ cache the reservoir's state (the vector itself is
    // mutex-guarded, so the lock-free pre-check must not touch it);
    // threshold_ caches the current minimum so the hot path can
    // reject non-tail records with one relaxed load.
    size_t reservoirCapacity_;
    std::atomic<bool> reservoirFull_{false};
    std::atomic<double> tailThreshold_{0.0};
    mutable std::mutex reservoirMutex_;
    std::vector<FlightRecord> reservoir_;

    class Counter *recordsCounter_ = nullptr;
};

/** Render one record as a JSON object (the /debug/flight payload
 * an exemplar's `record` ref resolves to). */
std::string renderFlightRecordJson(const FlightRecord &record);

/** Metric family for per-request end-to-end latency, recorded with
 * per-bucket exemplars resolving to flight records. */
inline const char *const requestSecondsMetricName =
    "djinn_request_seconds";

/** Metric family for queue depth observed at enqueue time. */
inline const char *const admitQueueDepthMetricName =
    "djinn_admit_queue_depth";

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_FLIGHT_RECORDER_HH
