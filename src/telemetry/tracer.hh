/**
 * @file
 * The trace buffer and timeline exporter behind end-to-end request
 * tracing. Components on the service path record completed spans
 * (client round-trip, server phases, batched forward passes,
 * per-layer compute) and counter samples (queue depth, in-flight
 * requests, process RSS) into a fixed-capacity ring; the buffer
 * renders as Chrome trace-event JSON, loadable in chrome://tracing
 * or Perfetto, with one named track per logical thread and the
 * trace/span/parent ids attached to every event's args.
 *
 * All timestamps share one process-wide steady-clock epoch
 * (`traceNowUs()`), so spans recorded by different Tracer instances
 * in one process merge onto a single timeline.
 */

#ifndef DJINN_TELEMETRY_TRACER_HH
#define DJINN_TELEMETRY_TRACER_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/metrics.hh"
#include "telemetry/trace_context.hh"

namespace djinn {
namespace telemetry {

/** Microseconds since the process-wide trace epoch (steady). */
int64_t traceNowUs();

/** One recorded timeline event. */
struct TraceEvent {
    /** Event name ("decode", "conv1", "queue_depth", ...). */
    std::string name;

    /** Coarse grouping: "client", "phase", "layer", "sampler". */
    std::string category;

    /** Track (rendered as a named Chrome thread) the event is on. */
    std::string track;

    /** Owning trace; 0 for counter samples. */
    uint64_t traceId = 0;

    /** This span's id. */
    uint64_t spanId = 0;

    /** Enclosing span's id; 0 for roots. */
    uint64_t parentSpanId = 0;

    /** Start time, traceNowUs() units. */
    int64_t startUs = 0;

    /** Span duration; ignored for counter samples. */
    int64_t durationUs = 0;

    /** True for counter samples (rendered as Chrome "C" events). */
    bool counter = false;

    /** Counter value when counter is true. */
    double value = 0.0;

    /** Extra args rendered into the event's args object. */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Thread-safe fixed-capacity event ring plus a smaller ring of
 * per-request summaries (the `djinn_cli metrics requests` view).
 * When full, the oldest events are overwritten; dropped() counts
 * the overwrites.
 */
class Tracer
{
  public:
    /**
     * @param capacity event ring size.
     * @param requestCapacity request-summary ring size.
     */
    explicit Tracer(size_t capacity = 16384,
                    size_t requestCapacity = 256);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** A fresh span id unique within the process. */
    uint64_t nextSpanId() { return nextGlobalSpanId(); }

    /** Append one event (span or counter). */
    void record(TraceEvent event);

    /** Append a counter sample stamped with the current time. */
    void recordCounter(const std::string &name, double value,
                       const std::string &track = "sampler");

    /**
     * One completed request, correlated with the batch that served
     * it. Rendered by the `requests` exposition format as CSV.
     */
    struct RequestSummary {
        uint64_t traceId = 0;
        std::string model;

        /** Rows the request itself carried. */
        int64_t rows = 0;

        /** Total rows of the forward pass that served it. */
        int64_t batchRows = 0;

        /** End-to-end service time, milliseconds. */
        double serviceMs = 0.0;
    };

    /** Append one request summary. */
    void recordRequest(RequestSummary summary);

    /**
     * Chronological copy of the buffered events.
     *
     * @param last_n keep only the newest N events; 0 keeps all.
     */
    std::vector<TraceEvent> events(size_t last_n = 0) const;

    /** Chronological copy of the request summaries. */
    std::vector<RequestSummary> recentRequests(
        size_t last_n = 0) const;

    /** Events overwritten because the ring was full. */
    uint64_t dropped() const;

    /** Buffered event count. */
    size_t size() const;

    /** Discard all buffered events and summaries. */
    void clear();

  private:
    const size_t capacity_;
    const size_t requestCapacity_;

    mutable std::mutex mutex_;
    std::vector<TraceEvent> ring_;
    size_t head_ = 0; // next write position once the ring is full
    uint64_t dropped_ = 0;
    std::vector<RequestSummary> requests_;
    size_t requestHead_ = 0;
};

/**
 * Render events as a Chrome trace-event JSON document
 * (`{"traceEvents": [...]}`): spans become complete ("X") events,
 * counters become "C" events, and every distinct track gets a
 * thread_name metadata record. Events are emitted in start-time
 * order.
 */
std::string renderChromeTrace(const std::vector<TraceEvent> &events);

/**
 * Render request summaries as CSV:
 * `trace_id,model,rows,batch_rows,service_ms` (one header line).
 */
std::string renderRequestsCsv(
    const std::vector<Tracer::RequestSummary> &requests);

/**
 * Background thread that periodically samples service vitals into a
 * tracer as counter events: every gauge in the registry (queue
 * depths, batch occupancy, in-flight requests, SLO burn rates)
 * plus the process's resident set size. Two optional hooks: an
 * update hook runs *before* the gauge sweep so owners can refresh
 * gauges whose source is not registry-backed (compute-pool
 * active-thread count, aggregate batcher queue depth, burn-rate
 * recomputation) and have them exported on the same tick — the
 * single sampling path for every saturation signal — and a record
 * hook runs after the sweep for direct extra samples.
 */
class BackgroundSampler
{
  public:
    using Hook = std::function<void(Tracer &)>;

    /** Pre-sweep gauge refresh callback. */
    using UpdateHook = std::function<void()>;

    /**
     * @param tracer destination buffer; must outlive the sampler.
     * @param metrics registry whose gauges are sampled.
     * @param period_seconds sampling interval.
     * @param hook optional extra per-tick sampling (post-sweep).
     * @param update optional gauge refresh run before each sweep.
     */
    BackgroundSampler(Tracer &tracer,
                      const MetricRegistry &metrics,
                      double period_seconds, Hook hook = {},
                      UpdateHook update = {});

    /** Stops the thread if running. */
    ~BackgroundSampler();

    BackgroundSampler(const BackgroundSampler &) = delete;
    BackgroundSampler &operator=(const BackgroundSampler &) = delete;

    /** Start sampling; no-op when already running. */
    void start();

    /** Stop and join the sampling thread. */
    void stop();

    /** Record one sample synchronously (also used per tick). */
    void sampleOnce();

  private:
    void loop();

    Tracer &tracer_;
    const MetricRegistry &metrics_;
    double period_;
    Hook hook_;
    UpdateHook update_;

    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool running_ = false;
    std::thread thread_;
};

/** Current process resident set size in bytes; 0 when unknown. */
double processRssBytes();

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_TRACER_HH
