/**
 * @file
 * Tail-latency attribution over flight-recorder records: compare
 * the slowest cohort of requests (at or above a chosen percentile
 * of end-to-end latency) against the p50-and-faster baseline and
 * report where the extra time went — frame read, decode, queue
 * wait, forward, encode, or retry inflation — per model, with the
 * supporting cohort statistics (batch position, admit-time queue
 * depth, retry counts). The engine is pure arithmetic over record
 * vectors, so the live server's /debug/tail endpoint and the
 * deterministic cluster simulator share it verbatim.
 */

#ifndef DJINN_TELEMETRY_ATTRIBUTION_HH
#define DJINN_TELEMETRY_ATTRIBUTION_HH

#include <string>
#include <vector>

#include "telemetry/flight_recorder.hh"
#include "telemetry/metrics.hh"

namespace djinn {
namespace telemetry {

/** One phase's contribution to the tail/baseline latency gap. */
struct TailContributor {
    /** Phase name: read, decode, queue_wait, forward, encode, or
     * retry_wait. */
    std::string phase;

    /** Mean seconds this phase took in the tail cohort. */
    double tailMeanSeconds = 0.0;

    /** Mean seconds this phase took in the baseline cohort. */
    double baselineMeanSeconds = 0.0;

    /** max(0, tail mean - baseline mean): the phase's share of the
     * slowdown in absolute seconds. */
    double excessSeconds = 0.0;

    /** excessSeconds / sum of all positive excesses; [0, 1]. */
    double share = 0.0;
};

/** The attribution verdict for one model (or the whole fleet). */
struct TailReport {
    /** Model filter applied; empty means all records. */
    std::string model;

    /** The tail percentile analysed (e.g. 99 for p99). */
    double pct = 99.0;

    /** Records considered after the model filter. */
    uint64_t records = 0;

    /** The pct-th percentile of end-to-end latency: the tail
     * cohort's admission threshold. */
    double thresholdSeconds = 0.0;

    /** Requests at or above the threshold. */
    uint64_t tailCount = 0;

    /** Requests at or below the median (the comparison cohort). */
    uint64_t baselineCount = 0;

    /** Mean end-to-end seconds, tail cohort. */
    double tailMeanSeconds = 0.0;

    /** Mean end-to-end seconds, baseline cohort. */
    double baselineMeanSeconds = 0.0;

    /** Per-phase breakdown, sorted by excessSeconds descending. */
    std::vector<TailContributor> contributors;

    /** contributors.front().phase when the report is conclusive
     * (some phase shows positive excess); empty otherwise. */
    std::string dominant;

    /** Supporting cohort statistics: tail vs baseline means. */
    double tailMeanBatchPosition = 0.0;
    double baselineMeanBatchPosition = 0.0;
    double tailMeanBatchQueries = 0.0;
    double baselineMeanBatchQueries = 0.0;
    double tailMeanAdmitDepth = 0.0;
    double baselineMeanAdmitDepth = 0.0;
    double tailMeanRetries = 0.0;
    double baselineMeanRetries = 0.0;
};

/**
 * Attribute the tail of @p records.
 *
 * @param records completed-request flight records (shed requests
 *        are excluded from cohorts: they have no phase breakdown).
 * @param pct tail percentile in (50, 100]; clamped.
 * @param model keep only records of this model; empty keeps all.
 */
TailReport attributeTail(const std::vector<FlightRecord> &records,
                         double pct, const std::string &model = "");

/**
 * One report per distinct model present in @p records, sorted by
 * model name (deterministic), plus no aggregate entry — callers
 * wanting the fleet-wide view use attributeTail directly.
 */
std::vector<TailReport> attributeTailByModel(
    const std::vector<FlightRecord> &records, double pct);

/** Render a report as human-readable text (djinn_cli tail). */
std::string renderTailReport(const TailReport &report);

/** Render a report as a JSON object (the /debug/tail payload). */
std::string renderTailReportJson(const TailReport &report);

/**
 * Publish a report into @p registry as `djinn_tail_*` gauges:
 * threshold, per-phase excess and share, and a one-hot
 * `djinn_tail_dominant{contributor=...}` marker. @p extraLabels is
 * merged into every gauge's label set (the cluster simulator adds
 * policy/scenario labels this way).
 */
void recordTailReport(MetricRegistry &registry,
                      const TailReport &report,
                      const LabelMap &extraLabels = {});

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_ATTRIBUTION_HH
