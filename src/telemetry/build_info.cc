#include "telemetry/build_info.hh"

#include <ctime>

namespace djinn {
namespace telemetry {

std::string
buildVersion()
{
#ifdef DJINN_VERSION
    return DJINN_VERSION;
#else
    return "dev";
#endif
}

std::string
buildCompiler()
{
#ifdef __VERSION__
    return __VERSION__;
#else
    return "unknown";
#endif
}

std::string
buildIsa()
{
#if defined(__AVX512F__)
    return "avx512";
#elif defined(__AVX2__)
    return "avx2";
#elif defined(__AVX__)
    return "avx";
#elif defined(__SSE2__) || defined(__x86_64__)
    return "sse2";
#elif defined(__aarch64__)
    return "neon";
#else
    return "generic";
#endif
}

void
exportBuildInfo(MetricRegistry &registry)
{
    registry
        .gauge("djinn_build_info",
               {{"version", buildVersion()},
                {"compiler", buildCompiler()},
                {"isa", buildIsa()}})
        .set(1.0);
    registry.gauge("djinn_start_time_seconds")
        .set(static_cast<double>(std::time(nullptr)));
}

} // namespace telemetry
} // namespace djinn
