#include "telemetry/exposition.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/strings.hh"

namespace djinn {
namespace telemetry {

namespace {

/** Format a double compactly but loss-tolerantly for exposition. */
std::string
num(double v)
{
    if (v == static_cast<double>(static_cast<int64_t>(v)) &&
        std::abs(v) < 1e15) {
        return strprintf("%lld",
                         static_cast<long long>(v));
    }
    return strprintf("%.9g", v);
}

/** Render `name{labels}` with one extra label appended. */
std::string
idWith(const MetricSample &sample, const std::string &key,
       const std::string &value)
{
    LabelMap labels = sample.labels;
    labels[key] = value;
    return renderMetricId(sample.name, labels);
}

std::string
quantileLabel(double q)
{
    std::string s = strprintf("%g", q);
    return s;
}

/** Render an exemplar suffix: ` # {trace_id="...",record="N"} v`.
 * The trace_id label is omitted for untraced requests; the record
 * ref always resolves through /debug/flight?record=N. */
std::string
exemplarSuffix(const Exemplar &ex)
{
    std::string labels;
    if (ex.traceId != 0)
        labels += strprintf("trace_id=\"%016llx\",",
                            static_cast<unsigned long long>(
                                ex.traceId));
    labels += strprintf("record=\"%llu\"",
                        static_cast<unsigned long long>(ex.ref));
    return " # {" + labels + "} " + num(ex.value);
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
renderPrometheus(const std::vector<MetricSample> &samples)
{
    std::string out;
    std::string last_family;
    for (const MetricSample &sample : samples) {
        if (sample.name != last_family) {
            last_family = sample.name;
            const char *type =
                sample.kind == MetricKind::Counter ? "counter" :
                sample.kind == MetricKind::Gauge ? "gauge" :
                "summary";
            out += "# TYPE " + sample.name + " " + type + "\n";
        }
        switch (sample.kind) {
          case MetricKind::Counter:
          case MetricKind::Gauge:
            out += renderMetricId(sample.name, sample.labels) + " " +
                   num(sample.value) + "\n";
            break;
          case MetricKind::Histogram:
            {
                const HistogramSnapshot &h = sample.histogram;
                for (double q : exportedQuantiles) {
                    out += idWith(sample, "quantile",
                                  quantileLabel(q)) +
                           " " + num(h.quantile(q)) + "\n";
                }
                out += renderMetricId(sample.name + "_count",
                                      sample.labels) +
                       " " + num(static_cast<double>(h.count)) + "\n";
                out += renderMetricId(sample.name + "_sum",
                                      sample.labels) +
                       " " + num(h.sum) + "\n";
                out += renderMetricId(sample.name + "_min",
                                      sample.labels) +
                       " " + num(h.min) + "\n";
                out += renderMetricId(sample.name + "_max",
                                      sample.labels) +
                       " " + num(h.max) + "\n";
            }
            break;
        }
    }
    return out;
}

std::string
renderOpenMetrics(const std::vector<MetricSample> &samples)
{
    std::string out;
    std::string last_family;
    for (const MetricSample &sample : samples) {
        if (sample.name != last_family) {
            last_family = sample.name;
            const char *type =
                sample.kind == MetricKind::Counter ? "counter" :
                sample.kind == MetricKind::Gauge ? "gauge" :
                "histogram";
            out += "# TYPE " + sample.name + " " + type + "\n";
        }
        switch (sample.kind) {
          case MetricKind::Counter:
          case MetricKind::Gauge:
            out += renderMetricId(sample.name, sample.labels) + " " +
                   num(sample.value) + "\n";
            break;
          case MetricKind::Histogram:
            {
                const HistogramSnapshot &h = sample.histogram;
                // Cumulative buckets; trailing all-zero finite
                // buckets collapse into the mandatory +Inf line.
                size_t last_used = 0;
                for (size_t i = 0; i < h.buckets.size(); ++i)
                    if (h.buckets[i] != 0)
                        last_used = i;
                uint64_t cumulative = 0;
                for (size_t i = 0; i < h.buckets.size(); ++i) {
                    cumulative += h.buckets[i];
                    bool overflow = i + 1 == h.buckets.size();
                    if (i > last_used && !overflow)
                        continue;
                    std::string le =
                        overflow ? "+Inf"
                                 : num(h.bucketUpperBound(
                                       static_cast<int>(i)));
                    LabelMap labels = sample.labels;
                    labels["le"] = le;
                    out += renderMetricId(sample.name + "_bucket",
                                          labels) +
                           " " + num(static_cast<double>(cumulative));
                    if (i < h.exemplars.size() &&
                        h.exemplars[i].valid)
                        out += exemplarSuffix(h.exemplars[i]);
                    out += "\n";
                }
                out += renderMetricId(sample.name + "_count",
                                      sample.labels) +
                       " " + num(static_cast<double>(h.count)) + "\n";
                out += renderMetricId(sample.name + "_sum",
                                      sample.labels) +
                       " " + num(h.sum) + "\n";
            }
            break;
        }
    }
    out += "# EOF\n";
    return out;
}

std::string
renderJson(const std::vector<MetricSample> &samples)
{
    std::string out = "{\n  \"metrics\": [\n";
    for (size_t i = 0; i < samples.size(); ++i) {
        const MetricSample &sample = samples[i];
        out += "    {\"name\": \"" + jsonEscape(sample.name) + "\"";
        if (!sample.labels.empty()) {
            out += ", \"labels\": {";
            bool first = true;
            for (const auto &[k, v] : sample.labels) {
                if (!first)
                    out += ", ";
                first = false;
                out += "\"" + jsonEscape(k) + "\": \"" +
                       jsonEscape(v) + "\"";
            }
            out += "}";
        }
        switch (sample.kind) {
          case MetricKind::Counter:
            out += ", \"kind\": \"counter\", \"value\": " +
                   num(sample.value);
            break;
          case MetricKind::Gauge:
            out += ", \"kind\": \"gauge\", \"value\": " +
                   num(sample.value);
            break;
          case MetricKind::Histogram:
            {
                const HistogramSnapshot &h = sample.histogram;
                out += ", \"kind\": \"histogram\"";
                out += ", \"count\": " +
                       num(static_cast<double>(h.count));
                out += ", \"sum\": " + num(h.sum);
                out += ", \"min\": " + num(h.min);
                out += ", \"max\": " + num(h.max);
                out += ", \"mean\": " + num(h.mean());
                for (double q : exportedQuantiles) {
                    out += strprintf(", \"p%g\": ", q * 100) +
                           num(h.quantile(q));
                }
            }
            break;
        }
        out += i + 1 < samples.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    return out;
}

Result<std::vector<ExpositionSample>>
parseExposition(const std::string &text)
{
    std::vector<ExpositionSample> out;
    for (std::string_view raw : split(text, '\n')) {
        std::string_view line = trim(raw);
        if (line.empty() || line.front() == '#')
            continue;

        // OpenMetrics exemplar suffixes ride after " # "; the
        // sample itself is everything before it.
        size_t exemplar = line.find(" # ");
        if (exemplar != std::string_view::npos)
            line = trim(line.substr(0, exemplar));

        ExpositionSample sample;
        size_t space = line.rfind(' ');
        if (space == std::string_view::npos) {
            return Status::protocolError(
                "exposition line without value: '" +
                std::string(line) + "'");
        }
        if (!parseDouble(trim(line.substr(space + 1)),
                         sample.value)) {
            return Status::protocolError(
                "bad exposition value in '" + std::string(line) +
                "'");
        }
        std::string_view id = trim(line.substr(0, space));

        size_t brace = id.find('{');
        if (brace == std::string_view::npos) {
            sample.name = std::string(id);
        } else {
            if (id.back() != '}') {
                return Status::protocolError(
                    "unterminated label set in '" +
                    std::string(line) + "'");
            }
            sample.name = std::string(id.substr(0, brace));
            std::string_view body =
                id.substr(brace + 1, id.size() - brace - 2);
            for (std::string_view item : split(body, ',')) {
                if (trim(item).empty())
                    continue;
                size_t eq = item.find('=');
                if (eq == std::string_view::npos) {
                    return Status::protocolError(
                        "bad label in '" + std::string(line) + "'");
                }
                std::string_view key = trim(item.substr(0, eq));
                std::string_view val = trim(item.substr(eq + 1));
                if (val.size() < 2 || val.front() != '"' ||
                    val.back() != '"') {
                    return Status::protocolError(
                        "unquoted label value in '" +
                        std::string(line) + "'");
                }
                sample.labels[std::string(key)] =
                    std::string(val.substr(1, val.size() - 2));
            }
        }
        if (sample.name.empty()) {
            return Status::protocolError(
                "empty metric name in '" + std::string(line) + "'");
        }
        out.push_back(std::move(sample));
    }
    return out;
}

Result<double>
findSample(const std::vector<ExpositionSample> &samples,
           const std::string &name, const LabelMap &labels)
{
    for (const ExpositionSample &sample : samples) {
        if (sample.name == name && sample.labels == labels)
            return sample.value;
    }
    return Status::notFound("no sample '" +
                            renderMetricId(name, labels) + "'");
}

} // namespace telemetry
} // namespace djinn
