/**
 * @file
 * The `djinn top` rendering: a plain-text operator dashboard
 * computed from the TimeSeriesStore. One frame shows per-model
 * QPS, windowed p50/p99 latency, shed rate, and batch occupancy
 * with an ASCII sparkline of the request-rate series, plus global
 * compute-pool-busy and queue-depth sparklines and the current
 * health verdict. The output is pure text (no escape codes), so it
 * is safe to pipe, diff in tests, and serve over the Metrics wire
 * verb `top`; the CLI adds the screen-clear when stdout is a tty.
 */

#ifndef DJINN_TELEMETRY_DASHBOARD_HH
#define DJINN_TELEMETRY_DASHBOARD_HH

#include <string>

#include "telemetry/health.hh"
#include "telemetry/timeseries.hh"

namespace djinn {
namespace telemetry {

/** Dashboard framing. */
struct DashboardOptions {
    /** Trailing window every figure is computed over. */
    double windowSeconds = 60.0;

    /** Sparkline width, characters. */
    int sparkWidth = 30;
};

/**
 * Render one dashboard frame from @p store. @p monitor may be null
 * (the health line is omitted).
 */
std::string renderTopDashboard(const TimeSeriesStore &store,
                               const HealthMonitor *monitor,
                               const DashboardOptions &options = {});

/**
 * Render @p values as a one-line ASCII sparkline of @p width
 * characters scaled to [0, max]; exposed for tests.
 */
std::string renderSparkline(const std::vector<double> &values,
                            int width);

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_DASHBOARD_HH
