#include "telemetry/timeseries.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "telemetry/exposition.hh"

namespace djinn {
namespace telemetry {

namespace {

/** True when every pair of @p want appears in @p have. */
bool
labelsMatch(const LabelMap &have, const LabelMap &want)
{
    for (const auto &[k, v] : want) {
        auto it = have.find(k);
        if (it == have.end() || it->second != v)
            return false;
    }
    return true;
}

} // namespace

TimeSeriesStore::TimeSeriesStore(const MetricRegistry &registry,
                                 const TimeSeriesOptions &options)
    : registry_(registry), options_(options)
{
    if (options_.capacity < 2)
        options_.capacity = 2;
    times_.resize(options_.capacity, 0.0);
    sync();
}

void
TimeSeriesStore::sync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    syncLocked();
}

void
TimeSeriesStore::syncLocked()
{
    registry_.forEach([this](const MetricRef &ref) {
        const void *key = ref.counter
            ? static_cast<const void *>(ref.counter)
            : ref.gauge ? static_cast<const void *>(ref.gauge)
                        : static_cast<const void *>(ref.histogram);
        if (known_.count(key))
            return;
        if (tracks_.size() >= options_.maxTracks) {
            // Only count a given skipped metric once.
            if (known_.emplace(key, SIZE_MAX).second)
                ++skipped_;
            return;
        }
        Track track;
        track.name = *ref.name;
        track.labels = *ref.labels;
        track.kind = ref.kind;
        track.counter = ref.counter;
        track.gauge = ref.gauge;
        track.histogram = ref.histogram;
        track.values.resize(options_.capacity, 0.0);
        if (ref.kind == MetricKind::Histogram) {
            track.bucketCount = ref.histogram->bucketCountTotal();
            track.counts.resize(options_.capacity, 0);
            track.sums.resize(options_.capacity, 0.0);
            track.buckets.resize(
                options_.capacity
                    * static_cast<size_t>(track.bucketCount),
                0);
        }
        known_.emplace(key, tracks_.size());
        tracks_.push_back(std::move(track));
    });
    syncedMetrics_ = registry_.size();
}

void
TimeSeriesStore::sample(double nowSeconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (registry_.size() != syncedMetrics_)
        syncLocked();

    const size_t slot = head_;
    times_[slot] = nowSeconds;
    for (Track &track : tracks_) {
        switch (track.kind) {
          case MetricKind::Counter:
            track.values[slot] =
                static_cast<double>(track.counter->value());
            break;
          case MetricKind::Gauge:
            track.values[slot] = track.gauge->value();
            break;
          case MetricKind::Histogram: {
            const LogHistogram *hist = track.histogram;
            track.counts[slot] = hist->count();
            track.sums[slot] = hist->sum();
            uint64_t *row = track.buckets.data()
                + slot * static_cast<size_t>(track.bucketCount);
            for (int i = 0; i < track.bucketCount; ++i)
                row[i] = hist->bucketValue(i);
            break;
          }
        }
    }
    head_ = (head_ + 1) % options_.capacity;
    if (filled_ < options_.capacity)
        ++filled_;
}

size_t
TimeSeriesStore::trackCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tracks_.size();
}

size_t
TimeSeriesStore::skippedTracks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return skipped_;
}

size_t
TimeSeriesStore::sampleCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return filled_;
}

bool
TimeSeriesStore::newestTime(double *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (filled_ == 0)
        return false;
    *out = times_[slotIndex(filled_ - 1)];
    return true;
}

size_t
TimeSeriesStore::slotIndex(size_t i) const
{
    return (head_ + options_.capacity - filled_ + i)
        % options_.capacity;
}

bool
TimeSeriesStore::windowRange(const Window &window, size_t *first,
                             size_t *last) const
{
    if (filled_ == 0)
        return false;
    double end = window.now;
    if (end < 0)
        end = times_[slotIndex(filled_ - 1)];
    const double begin = end - window.seconds;

    bool any = false;
    size_t lo = 0;
    size_t hi = 0;
    for (size_t i = 0; i < filled_; ++i) {
        const double t = times_[slotIndex(i)];
        if (t < begin || t > end)
            continue;
        if (!any)
            lo = i;
        hi = i;
        any = true;
    }
    if (!any)
        return false;
    *first = lo;
    *last = hi;
    return true;
}

bool
TimeSeriesStore::pointValue(const Track &track, size_t i,
                            double *out) const
{
    if (track.kind == MetricKind::Gauge) {
        *out = track.values[slotIndex(i)];
        return true;
    }
    // Cumulative kinds yield a per-step rate; the very first
    // retained slot has no predecessor to delta against.
    if (i == 0)
        return false;
    const size_t cur = slotIndex(i);
    const size_t prev = slotIndex(i - 1);
    const double dt = times_[cur] - times_[prev];
    if (dt <= 0)
        return false;
    double delta;
    if (track.kind == MetricKind::Counter) {
        delta = track.values[cur] - track.values[prev];
    } else {
        delta = static_cast<double>(track.counts[cur])
            - static_cast<double>(track.counts[prev]);
    }
    if (delta < 0)
        delta = 0;
    *out = delta / dt;
    return true;
}

std::vector<TrackId>
TimeSeriesStore::trackIds(const std::string &name,
                          const LabelMap &labels) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TrackId> out;
    for (const Track &track : tracks_) {
        if (!name.empty() && track.name != name)
            continue;
        if (!labelsMatch(track.labels, labels))
            continue;
        out.push_back({track.name, track.labels, track.kind});
    }
    return out;
}

TimeSeriesStore::Stat
TimeSeriesStore::windowStat(const Window &window, Op op,
                            double quantile) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t first = 0;
    size_t last = 0;
    if (!windowRange(window, &first, &last))
        return {};

    Stat stat;

    if (op == Op::Rate) {
        if (last == first)
            return {};
        double total = 0.0;
        bool any = false;
        for (const Track &track : tracks_) {
            if (track.name != window.name
                || !labelsMatch(track.labels, window.labels)
                || track.kind == MetricKind::Gauge) {
                continue;
            }
            const size_t a = slotIndex(first);
            const size_t b = slotIndex(last);
            const double dt = times_[b] - times_[a];
            if (dt <= 0)
                continue;
            double delta;
            if (track.kind == MetricKind::Counter) {
                delta = track.values[b] - track.values[a];
            } else {
                delta = static_cast<double>(track.counts[b])
                    - static_cast<double>(track.counts[a]);
            }
            if (delta < 0)
                delta = 0;
            total += delta / dt;
            any = true;
        }
        if (!any)
            return {};
        stat.valid = true;
        stat.value = total;
        return stat;
    }

    if (op == Op::Avg || op == Op::Min || op == Op::Max) {
        double sum = 0.0;
        double lo = 0.0;
        double hi = 0.0;
        size_t n = 0;
        for (const Track &track : tracks_) {
            if (track.name != window.name
                || !labelsMatch(track.labels, window.labels)) {
                continue;
            }
            for (size_t i = first; i <= last; ++i) {
                double v;
                if (!pointValue(track, i, &v))
                    continue;
                if (n == 0) {
                    lo = hi = v;
                } else {
                    lo = std::min(lo, v);
                    hi = std::max(hi, v);
                }
                sum += v;
                ++n;
            }
        }
        if (n == 0)
            return {};
        stat.valid = true;
        stat.value = op == Op::Avg ? sum / static_cast<double>(n)
            : op == Op::Min        ? lo
                                   : hi;
        return stat;
    }

    if (op == Op::Slope) {
        // Least-squares fit over per-slot sums across matching
        // gauge tracks.
        std::vector<double> xs;
        std::vector<double> ys;
        for (size_t i = first; i <= last; ++i) {
            double total = 0.0;
            bool any = false;
            for (const Track &track : tracks_) {
                if (track.name != window.name
                    || !labelsMatch(track.labels, window.labels)
                    || track.kind != MetricKind::Gauge) {
                    continue;
                }
                total += track.values[slotIndex(i)];
                any = true;
            }
            if (any) {
                xs.push_back(times_[slotIndex(i)]);
                ys.push_back(total);
            }
        }
        if (xs.size() < 2)
            return {};
        double mx = 0.0;
        double my = 0.0;
        for (size_t i = 0; i < xs.size(); ++i) {
            mx += xs[i];
            my += ys[i];
        }
        mx /= static_cast<double>(xs.size());
        my /= static_cast<double>(xs.size());
        double num = 0.0;
        double den = 0.0;
        for (size_t i = 0; i < xs.size(); ++i) {
            num += (xs[i] - mx) * (ys[i] - my);
            den += (xs[i] - mx) * (xs[i] - mx);
        }
        if (den <= 0)
            return {};
        stat.valid = true;
        stat.value = num / den;
        return stat;
    }

    // Op::Quantile: merge windowed bucket deltas across matching
    // histogram tracks into one synthetic snapshot.
    HistogramSnapshot merged;
    bool haveLayout = false;
    double liveMax = 0.0;
    for (const Track &track : tracks_) {
        if (track.name != window.name
            || !labelsMatch(track.labels, window.labels)
            || track.kind != MetricKind::Histogram) {
            continue;
        }
        if (!haveLayout) {
            merged.options = track.histogram->options();
            merged.buckets.assign(
                static_cast<size_t>(track.bucketCount), 0);
            haveLayout = true;
        }
        if (track.bucketCount
            != static_cast<int>(merged.buckets.size())) {
            continue; // Mixed layouts under one family; skip.
        }
        const size_t a =
            slotIndex(first) * static_cast<size_t>(track.bucketCount);
        const size_t b =
            slotIndex(last) * static_cast<size_t>(track.bucketCount);
        for (int i = 0; i < track.bucketCount; ++i) {
            const uint64_t lo = track.buckets[a + i];
            const uint64_t hi = track.buckets[b + i];
            if (hi > lo)
                merged.buckets[static_cast<size_t>(i)] += hi - lo;
        }
        const size_t sa = slotIndex(first);
        const size_t sb = slotIndex(last);
        if (track.counts[sb] > track.counts[sa]) {
            merged.count += track.counts[sb] - track.counts[sa];
            merged.sum += track.sums[sb] - track.sums[sa];
        }
        liveMax = std::max(liveMax, track.histogram->max());
    }
    if (!haveLayout || merged.count == 0 || last == first)
        return {};

    // quantile() clamps to [min, max]; derive plausible bounds from
    // the occupied buckets since exact extremes are not retained.
    int firstNonzero = -1;
    int lastNonzero = -1;
    for (int i = 0; i < static_cast<int>(merged.buckets.size());
         ++i) {
        if (merged.buckets[static_cast<size_t>(i)] == 0)
            continue;
        if (firstNonzero < 0)
            firstNonzero = i;
        lastNonzero = i;
    }
    if (firstNonzero > 0)
        merged.min = merged.bucketUpperBound(firstNonzero - 1);
    else
        merged.min = 0.0;
    if (lastNonzero + 1 < static_cast<int>(merged.buckets.size()))
        merged.max = merged.bucketUpperBound(lastNonzero);
    else
        merged.max = liveMax; // Overflow bucket: no finite bound.
    stat.valid = true;
    stat.value = merged.quantile(quantile);
    return stat;
}

std::vector<TimeSeriesStore::Series>
TimeSeriesStore::series(const Window &window, double step) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Series> out;
    size_t first = 0;
    size_t last = 0;
    if (!windowRange(window, &first, &last))
        return out;
    for (const Track &track : tracks_) {
        if (track.name != window.name
            || !labelsMatch(track.labels, window.labels)) {
            continue;
        }
        Series series;
        series.name = track.name;
        series.labels = track.labels;
        series.kind = track.kind;
        double lastEmitted = -1.0;
        bool emitted = false;
        for (size_t i = first; i <= last; ++i) {
            double v;
            if (!pointValue(track, i, &v))
                continue;
            const double t = times_[slotIndex(i)];
            if (step > 0 && emitted && t - lastEmitted < step)
                continue;
            series.points.push_back({t, v});
            lastEmitted = t;
            emitted = true;
        }
        out.push_back(std::move(series));
    }
    return out;
}

std::string
renderTimeSeriesJson(const TimeSeriesStore &store,
                     const TimeSeriesStore::Window &window,
                     double step)
{
    double now = window.now;
    if (now < 0 && !store.newestTime(&now))
        now = 0.0;

    const auto all = store.series(window, step);

    std::string out = "{\"metric\": \"" + jsonEscape(window.name)
        + "\", \"window\": ";
    char buf[64];
    snprintf(buf, sizeof(buf), "%.6g", window.seconds);
    out += buf;
    out += ", \"now\": ";
    snprintf(buf, sizeof(buf), "%.6f", now);
    out += buf;
    out += ", \"series\": [";
    bool firstSeries = true;
    for (const auto &series : all) {
        if (!firstSeries)
            out += ", ";
        firstSeries = false;
        out += "{\"labels\": {";
        bool firstLabel = true;
        for (const auto &[k, v] : series.labels) {
            if (!firstLabel)
                out += ", ";
            firstLabel = false;
            out += "\"" + jsonEscape(k) + "\": \"" + jsonEscape(v)
                + "\"";
        }
        out += "}, \"kind\": \"";
        switch (series.kind) {
          case MetricKind::Counter:
            out += "counter";
            break;
          case MetricKind::Gauge:
            out += "gauge";
            break;
          case MetricKind::Histogram:
            out += "histogram";
            break;
        }
        out += "\", \"points\": [";
        bool firstPoint = true;
        for (const auto &point : series.points) {
            if (!firstPoint)
                out += ", ";
            firstPoint = false;
            snprintf(buf, sizeof(buf), "[%.6f, %.9g]", point.t,
                     point.value);
            out += buf;
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

} // namespace telemetry
} // namespace djinn
