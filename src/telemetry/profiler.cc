#include "telemetry/profiler.hh"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>

#include "common/strings.hh"
#include "common/thread_pool.hh"

namespace djinn {
namespace telemetry {

namespace {

size_t
roundUpPow2(size_t v)
{
    size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/** Destination ring for the signal handler; null when stopped. */
std::atomic<StackRing *> g_ring{nullptr};

extern "C" void
profilerSignalHandler(int, siginfo_t *, void *)
{
    int saved_errno = errno;
    StackRing *ring = g_ring.load(std::memory_order_acquire);
    if (ring) {
        StackSample s;
        void *raw[StackSample::kMaxDepth + 2];
        int n = ::backtrace(raw, StackSample::kMaxDepth + 2);
        // Skip this handler and the kernel signal trampoline so
        // stacks start at the interrupted frame.
        int skip = n > 2 ? 2 : 0;
        s.depth = n - skip;
        std::memcpy(s.pcs, raw + skip,
                    static_cast<size_t>(s.depth) * sizeof(void *));
        const char *name = common::currentThreadName();
        size_t i = 0;
        for (; i + 1 < sizeof(s.thread) && name[i]; ++i)
            s.thread[i] = name[i];
        s.thread[i] = '\0';
        ring->push(s);
    }
    errno = saved_errno;
}

} // namespace

StackRing::StackRing(size_t capacity)
    : capacity_(roundUpPow2(std::max<size_t>(capacity, 8))),
      slots_(new Slot[capacity_])
{}

void
StackRing::push(const StackSample &sample)
{
    uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots_[ticket & (capacity_ - 1)];
    // Per-slot seqlock: odd marks write-in-progress; the final
    // value encodes the ticket so drain() can tell a fresh write
    // from a stale generation occupying the same slot.
    slot.seq.store(ticket * 2 + 1, std::memory_order_relaxed);
    slot.sample = sample;
    slot.seq.store(ticket * 2 + 2, std::memory_order_release);
}

std::vector<StackSample>
StackRing::drain()
{
    uint64_t end = next_.load(std::memory_order_acquire);
    uint64_t begin = readSeq_;
    if (end > capacity_ && begin < end - capacity_) {
        // Older slots were overwritten before we got here.
        dropped_.fetch_add((end - capacity_) - begin,
                           std::memory_order_relaxed);
        begin = end - capacity_;
    }
    std::vector<StackSample> out;
    out.reserve(static_cast<size_t>(end - begin));
    for (uint64_t t = begin; t < end; ++t) {
        Slot &slot = slots_[t & (capacity_ - 1)];
        uint64_t seq = slot.seq.load(std::memory_order_acquire);
        if (seq != t * 2 + 2) {
            // Torn (handler mid-write) or already recycled by a
            // newer generation.
            dropped_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        StackSample copy = slot.sample;
        if (slot.seq.load(std::memory_order_acquire) != t * 2 + 2) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        out.push_back(copy);
    }
    readSeq_ = end;
    return out;
}

std::string
defaultSymbolize(void *pc)
{
    Dl_info info;
    if (::dladdr(pc, &info) && info.dli_sname) {
        int status = 0;
        char *demangled = abi::__cxa_demangle(info.dli_sname,
                                              nullptr, nullptr,
                                              &status);
        std::string name = status == 0 && demangled
                               ? demangled
                               : info.dli_sname;
        std::free(demangled);
        // Drop the argument list; flamegraph frames only want the
        // qualified function name.
        size_t paren = name.find('(');
        if (paren != std::string::npos)
            name.resize(paren);
        return name;
    }
    if (::dladdr(pc, &info) && info.dli_fname) {
        const char *base = std::strrchr(info.dli_fname, '/');
        base = base ? base + 1 : info.dli_fname;
        return strprintf("%s+0x%zx", base,
                         reinterpret_cast<size_t>(pc) -
                             reinterpret_cast<size_t>(
                                 info.dli_fbase));
    }
    return strprintf("0x%zx", reinterpret_cast<size_t>(pc));
}

std::string
renderCollapsed(const std::vector<StackSample> &samples,
                const Symbolizer &symbolize)
{
    // Symbolize each distinct pc once; a 1-second window at 97 Hz
    // repeats the same hot frames over and over.
    std::map<void *, std::string> names;
    auto frameName = [&](void *pc) -> const std::string & {
        auto it = names.find(pc);
        if (it == names.end()) {
            std::string n = symbolize(pc);
            // Sanitize: the collapsed format tokenizes on ';' and
            // the final space.
            for (char &c : n) {
                if (c == ';' || c == ' ' || c == '\n')
                    c = '_';
            }
            if (n.empty())
                n = "?";
            it = names.emplace(pc, std::move(n)).first;
        }
        return it->second;
    };

    std::map<std::string, uint64_t> stacks;
    for (const StackSample &s : samples) {
        if (s.depth <= 0)
            continue;
        std::string line =
            s.thread[0] ? s.thread : "unnamed";
        // backtrace() is deepest-first; collapsed stacks read
        // root-first.
        for (int i = s.depth - 1; i >= 0; --i) {
            line += ';';
            line += frameName(s.pcs[i]);
        }
        ++stacks[line];
    }

    std::vector<std::pair<std::string, uint64_t>> sorted(
        stacks.begin(), stacks.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    std::string out;
    for (const auto &[line, count] : sorted) {
        out += line;
        out += strprintf(" %llu\n",
                         static_cast<unsigned long long>(count));
    }
    return out;
}

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

Status
Profiler::start(int hz)
{
    if (running_.load())
        return Status::invalidArgument("profiler already running");
    hz = std::clamp(hz, 1, 1000);

    // Pre-warm backtrace: its first call may load libgcc via
    // dlopen, which is not async-signal-safe; from here on the
    // handler's call is.
    void *warm[4];
    ::backtrace(warm, 4);

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = profilerSignalHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (::sigaction(SIGPROF, &sa, nullptr) != 0) {
        return Status::unavailable(
            std::string("sigaction(SIGPROF): ") +
            std::strerror(errno));
    }

    g_ring.store(&ring_, std::memory_order_release);

    itimerval timer;
    timer.it_interval.tv_sec = 0;
    timer.it_interval.tv_usec =
        static_cast<suseconds_t>(1000000 / hz);
    timer.it_value = timer.it_interval;
    if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
        g_ring.store(nullptr, std::memory_order_release);
        ::signal(SIGPROF, SIG_IGN);
        return Status::unavailable(
            std::string("setitimer(ITIMER_PROF): ") +
            std::strerror(errno));
    }
    hz_ = hz;
    running_.store(true);
    return Status::ok();
}

void
Profiler::stop()
{
    if (!running_.exchange(false))
        return;
    itimerval off;
    std::memset(&off, 0, sizeof(off));
    ::setitimer(ITIMER_PROF, &off, nullptr);
    // A signal delivered between the disarm and here still finds a
    // valid ring; detach it afterwards and ignore stragglers.
    g_ring.store(nullptr, std::memory_order_release);
    ::signal(SIGPROF, SIG_IGN);
    hz_ = 0;
}

Result<std::string>
Profiler::collect(double seconds, int temporaryHz)
{
    if (seconds <= 0.0 || seconds > 60.0) {
        return Status::invalidArgument(
            "profile window must be in (0, 60] seconds");
    }
    if (collecting_.exchange(true)) {
        return Status::unavailable(
            "another profile collection is in progress");
    }
    bool self_started = false;
    if (!running_.load()) {
        Status s = start(temporaryHz);
        if (!s.isOk()) {
            collecting_.store(false);
            return s;
        }
        self_started = true;
    }
    ring_.drain(); // discard anything captured before the window
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds));
    std::vector<StackSample> samples = ring_.drain();
    if (self_started)
        stop();
    collecting_.store(false);
    return renderCollapsed(samples);
}

} // namespace telemetry
} // namespace djinn
