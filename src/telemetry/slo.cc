#include "telemetry/slo.hh"

#include <chrono>
#include <cmath>

#include "common/logging.hh"

namespace djinn {
namespace telemetry {

namespace {

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

} // namespace

SloTracker::SloTracker(MetricRegistry &registry,
                       const SloOptions &options, Clock clock)
    : registry_(registry), options_(options),
      clock_(clock ? std::move(clock) : steadySeconds)
{
    if (options_.defaultTargetSeconds <= 0.0)
        fatal("SloTracker: default target must be positive");
    if (options_.objective <= 0.0 || options_.objective >= 1.0)
        fatal("SloTracker: objective must be in (0, 1)");
    if (options_.windowSeconds < 1.0)
        fatal("SloTracker: window must be at least one second");
    if (options_.idleResetSeconds < 1.0)
        fatal("SloTracker: idle reset must be at least one second");
}

SloTracker::ModelState &
SloTracker::stateFor(const std::string &model)
{
    auto it = models_.find(model);
    if (it != models_.end())
        return it->second;

    ModelState state;
    const LabelMap labels{{"model", model}};
    state.good = &registry_.counter(sloGoodMetricName, labels);
    state.bad = &registry_.counter(sloBadMetricName, labels);
    state.burn = &registry_.gauge(sloBurnRateMetricName, labels);
    state.targetGauge =
        &registry_.gauge(sloTargetMetricName, labels);
    state.targetSeconds = options_.defaultTargetSeconds;
    state.targetGauge->set(state.targetSeconds);
    state.window.resize(
        static_cast<size_t>(options_.windowSeconds));
    return models_.emplace(model, std::move(state)).first->second;
}

void
SloTracker::setTarget(const std::string &model, double seconds)
{
    if (seconds <= 0.0)
        fatal("SloTracker: target must be positive");
    std::lock_guard<std::mutex> lock(mutex_);
    ModelState &state = stateFor(model);
    state.targetSeconds = seconds;
    state.targetGauge->set(seconds);
}

double
SloTracker::target(const std::string &model) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(model);
    return it != models_.end() ? it->second.targetSeconds
                               : options_.defaultTargetSeconds;
}

void
SloTracker::record(const std::string &model,
                   double serviceSeconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ModelState &state = stateFor(model);
    bool good = serviceSeconds <= state.targetSeconds;
    (good ? state.good : state.bad)->inc();

    int64_t second = static_cast<int64_t>(clock_());
    state.lastRecordSecond = second;
    Bucket &bucket =
        state.window[static_cast<size_t>(second) %
                     state.window.size()];
    if (bucket.second != second) {
        bucket.second = second;
        bucket.good = 0;
        bucket.bad = 0;
    }
    ++(good ? bucket.good : bucket.bad);
}

double
SloTracker::windowBurnRate(const ModelState &state,
                           int64_t now_second) const
{
    // An idle model burns nothing: a stale burst still inside the
    // window is history, not live budget consumption, and must
    // not alarm a model that is serving no traffic.
    if (state.lastRecordSecond < 0 ||
        now_second - state.lastRecordSecond >=
            static_cast<int64_t>(options_.idleResetSeconds))
        return 0.0;

    uint64_t good = 0, bad = 0;
    int64_t window = static_cast<int64_t>(state.window.size());
    for (const Bucket &b : state.window) {
        if (b.second >= 0 && now_second - b.second < window) {
            good += b.good;
            bad += b.bad;
        }
    }
    uint64_t total = good + bad;
    if (total == 0)
        return 0.0;
    double bad_fraction =
        static_cast<double>(bad) / static_cast<double>(total);
    return bad_fraction / (1.0 - options_.objective);
}

void
SloTracker::updateBurnRates()
{
    std::lock_guard<std::mutex> lock(mutex_);
    int64_t now_second = static_cast<int64_t>(clock_());
    for (auto &[model, state] : models_)
        state.burn->set(windowBurnRate(state, now_second));
}

double
SloTracker::burnRate(const std::string &model) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(model);
    if (it == models_.end())
        return 0.0;
    return windowBurnRate(it->second,
                          static_cast<int64_t>(clock_()));
}

} // namespace telemetry
} // namespace djinn
