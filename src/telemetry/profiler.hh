/**
 * @file
 * Always-on sampling profiler: a SIGPROF timer fires at a
 * configurable rate against the process's consumed CPU time, the
 * handler captures the interrupted thread's backtrace into a
 * lock-free ring, and the aggregator collapses the ring into
 * Brendan-Gregg "collapsed stack" text
 * (`thread;outer;inner count` per line, flamegraph.pl input).
 *
 * The signal path is async-signal-safe: one backtrace() call
 * (pre-warmed at start so libgcc is already loaded), a read of the
 * thread's registered name, and a seqlock-slot write into the
 * ring — no locks, no allocation. Aggregation and symbolization
 * (dladdr + demangle) happen on the reader's thread at export
 * time, never in the handler.
 *
 * Because the timer counts CPU time (ITIMER_PROF), an idle server
 * produces no samples and costs nothing; `hz` means samples per
 * consumed CPU-second, summed over all running threads.
 */

#ifndef DJINN_TELEMETRY_PROFILER_HH
#define DJINN_TELEMETRY_PROFILER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hh"

namespace djinn {
namespace telemetry {

/** One captured backtrace. */
struct StackSample {
    /** Deepest-first program counters, as backtrace() returns. */
    static constexpr int kMaxDepth = 48;
    void *pcs[kMaxDepth];

    /** Captured frame count; 0 marks an empty sample. */
    int depth = 0;

    /** Registered name of the interrupted thread ("" when the
     * thread never registered). */
    char thread[16] = {0};
};

/**
 * Fixed-capacity lock-free sample ring. push() is safe from a
 * signal handler (and from concurrent handlers on different
 * threads); drain() runs on an ordinary thread. Each slot is a
 * seqlock: a drain that races a wrap-around simply skips the torn
 * slot and counts it dropped.
 */
class StackRing
{
  public:
    /** @param capacity slot count (rounded up to a power of 2). */
    explicit StackRing(size_t capacity = 4096);

    StackRing(const StackRing &) = delete;
    StackRing &operator=(const StackRing &) = delete;

    /** Append one sample. Signal-safe; overwrites the oldest slot
     * when full. */
    void push(const StackSample &sample);

    /** Remove and return every complete sample pushed since the
     * last drain (oldest first). Samples overwritten before being
     * drained are counted by dropped(). */
    std::vector<StackSample> drain();

    /** Samples lost to wrap-around or torn reads so far. */
    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Samples ever pushed. */
    uint64_t pushed() const
    {
        return next_.load(std::memory_order_relaxed);
    }

  private:
    struct Slot {
        std::atomic<uint64_t> seq{0};
        StackSample sample;
    };

    size_t capacity_;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<uint64_t> next_{0};
    uint64_t readSeq_ = 0; ///< drain() is single-consumer
    std::atomic<uint64_t> dropped_{0};
};

/** Turns one program counter into a frame name. */
using Symbolizer = std::function<std::string(void *pc)>;

/** dladdr-based symbolizer: demangled function name when the
 * symbol is exported (link with ENABLE_EXPORTS for main-binary
 * frames), else `module+0xoffset`, else the raw address. */
std::string defaultSymbolize(void *pc);

/**
 * Collapse samples into flamegraph.pl input: one
 * `thread;root;...;leaf count` line per distinct stack, sorted by
 * descending count then lexicographically. Frame names are
 * sanitized (spaces and semicolons replaced) so the output always
 * tokenizes. Empty input renders as an empty string.
 */
std::string renderCollapsed(const std::vector<StackSample> &samples,
                            const Symbolizer &symbolize =
                                defaultSymbolize);

/**
 * The process-wide profiler (SIGPROF has one handler, so there is
 * exactly one). start()/stop() are not async-signal-safe; call
 * them from ordinary threads only.
 */
class Profiler
{
  public:
    /** The singleton. */
    static Profiler &instance();

    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /**
     * Install the SIGPROF handler and arm the CPU-time timer.
     *
     * @param hz samples per consumed CPU-second, clamped to
     *        [1, 1000].
     * @return InvalidArgument when already running, Unavailable
     *         when the kernel refuses the handler or timer (e.g.
     *         seccomp-restricted sandboxes).
     */
    Status start(int hz);

    /** Disarm the timer and restore the previous handler. */
    void stop();

    /** True while sampling. */
    bool running() const
    {
        return running_.load(std::memory_order_relaxed);
    }

    /** Configured rate; 0 when stopped. */
    int hz() const { return hz_; }

    /** The sample ring (drain from one thread at a time). */
    StackRing &ring() { return ring_; }

    /**
     * Gather samples for @p seconds of wall time and render them
     * collapsed. When the profiler is stopped it is started at
     * @p temporaryHz for the window and stopped again, so
     * `/profile?seconds=N` works on servers that did not pass
     * --profile-hz. Blocks the calling thread for the window.
     */
    Result<std::string> collect(double seconds,
                                int temporaryHz = 97);

  private:
    Profiler() = default;

    std::atomic<bool> running_{false};
    std::atomic<bool> collecting_{false};
    int hz_ = 0;
    StackRing ring_;
};

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_PROFILER_HH
