/**
 * @file
 * Hardware cycle accounting via perf_event_open: a per-thread
 * counter group (cycles, instructions, cache-references,
 * cache-misses, task-clock) read at phase boundaries so every
 * sampled request yields a Figure-4-style breakdown of where its
 * cycles went, plus per-phase and per-layer IPC.
 *
 * perf_event_open is frequently unavailable (containers, seccomp,
 * perf_event_paranoid >= 3, missing PMU); every interface here
 * degrades gracefully to clock-only accounting: deltas keep their
 * wall-clock and thread-CPU nanoseconds, hardware fields read as
 * zero, and CounterDelta::work() reports nanoseconds instead of
 * cycles. Availability is probed once per process
 * (perfCountersAvailable()) and exported as the
 * `djinn_perf_counters_available` gauge so dashboards know which
 * unit `djinn_phase_cycles` carries.
 */

#ifndef DJINN_TELEMETRY_PERF_COUNTERS_HH
#define DJINN_TELEMETRY_PERF_COUNTERS_HH

#include <chrono>
#include <cstdint>

namespace djinn {
namespace telemetry {

/** Gauge name: 1 when hardware counters drive cycle accounting. */
inline const char *const perfAvailableMetricName =
    "djinn_perf_counters_available";

/**
 * Counter movement between two snapshots of one thread's group.
 * Hardware fields are zero when the group could not be opened.
 */
struct CounterDelta {
    /** CPU cycles retired by the thread. */
    uint64_t cycles = 0;

    /** Instructions retired by the thread. */
    uint64_t instructions = 0;

    /** Last-level cache references. */
    uint64_t cacheRefs = 0;

    /** Last-level cache misses. */
    uint64_t cacheMisses = 0;

    /** Thread CPU time (perf task-clock, or
     * CLOCK_THREAD_CPUTIME_ID when the software event is also
     * unavailable), nanoseconds. */
    uint64_t taskClockNs = 0;

    /** Wall time between the snapshots, nanoseconds. Always set. */
    uint64_t wallNs = 0;

    /** True when the hardware fields come from real counters. */
    bool hardware = false;

    /** Instructions per cycle; 0 when counters are unavailable. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /**
     * The phase-breakdown unit: cycles when hardware counters are
     * live, wall nanoseconds otherwise (the fallback unit the
     * `djinn_perf_counters_available` gauge disambiguates).
     */
    uint64_t
    work() const
    {
        return hardware ? cycles : wallNs;
    }

    /** Accumulate another delta (for per-layer -> per-phase sums). */
    void add(const CounterDelta &other);
};

/**
 * One thread's counter group. The perf fds count the opening
 * thread only, so a CounterSet must be created and read on the
 * same thread (enforced in debug by the owner's discipline, not a
 * runtime check — perf itself returns zeros for foreign threads).
 *
 * Construction never fails: when any perf fd cannot be opened the
 * set silently runs in fallback mode (hardware() == false) and
 * snapshots carry clock values only.
 */
class CounterSet
{
  public:
    /** Event configuration, overridable to force the fallback
     * path in tests (a bogus type makes perf_event_open fail with
     * EINVAL exactly like a restricted container fails with
     * EACCES). */
    struct Config {
        /** perf event type for the hardware group leader;
         * PERF_TYPE_HARDWARE normally, a bogus value in tests. */
        uint32_t leaderType = 0; // PERF_TYPE_HARDWARE

        /** Force fallback without touching the syscall at all. */
        bool disabled = false;
    };

    CounterSet();
    explicit CounterSet(const Config &config);

    /** Closes the perf fds. */
    ~CounterSet();

    CounterSet(const CounterSet &) = delete;
    CounterSet &operator=(const CounterSet &) = delete;

    /** True when the hardware group opened and is counting. */
    bool hardware() const { return groupFd_ >= 0; }

    /** Point-in-time reading used to form deltas. */
    struct Snapshot {
        uint64_t values[4] = {0, 0, 0, 0}; ///< hw counters, scaled
        uint64_t taskClockNs = 0;
        std::chrono::steady_clock::time_point wall;
        bool hardware = false;
    };

    /** Read the group now. Cheap: one read(2) when hardware. */
    Snapshot snapshot() const;

    /** Counter movement from @p begin to @p end. */
    static CounterDelta delta(const Snapshot &begin,
                              const Snapshot &end);

  private:
    int groupFd_ = -1;      ///< leader (cycles); -1 in fallback
    int memberFds_[3] = {-1, -1, -1};
    int taskClockFd_ = -1;  ///< software task-clock; own group
};

/**
 * The calling thread's lazily created CounterSet. Worker, batch
 * dispatcher, and HTTP threads all account through this so scopes
 * never pay an open() on the hot path.
 */
CounterSet &threadCounterSet();

/**
 * RAII accounting scope: snapshots the calling thread's counters
 * at construction, and stop() (or destruction) yields the delta.
 * Scopes nest like trace spans — each keeps its own begin
 * snapshot, so an inner scope's delta is a subset of its
 * enclosing scope's delta on the same thread.
 */
class CounterScope
{
  public:
    CounterScope() : begin_(threadCounterSet().snapshot()) {}

    CounterScope(const CounterScope &) = delete;
    CounterScope &operator=(const CounterScope &) = delete;

    /** Delta since construction. Idempotent: the snapshot is
     * taken on the first call; later calls return the same
     * delta. */
    const CounterDelta &stop();

    /** stop() without needing the result. */
    ~CounterScope()
    {
        if (!done_)
            stop();
    }

  private:
    CounterSet::Snapshot begin_;
    CounterDelta delta_;
    bool done_ = false;
};

/**
 * Whether this process can use hardware counters, probed once on
 * first call (by opening a throwaway group on the calling thread)
 * and cached. Export the result as the
 * `djinn_perf_counters_available` gauge at startup.
 */
bool perfCountersAvailable();

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_PERF_COUNTERS_HH
