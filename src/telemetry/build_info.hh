/**
 * @file
 * Build/provenance info gauges, the Prometheus `_info` idiom: a
 * constant-1 `djinn_build_info{version, compiler, isa}` gauge whose
 * labels carry the interesting data, plus `djinn_start_time_seconds`
 * (unix time, set once at export). Joining on these in a dashboard
 * answers "which build is this fleet running and since when" —
 * and the bench harness embeds the same triplet so a BENCH JSON is
 * attributable to a binary.
 */

#ifndef DJINN_TELEMETRY_BUILD_INFO_HH
#define DJINN_TELEMETRY_BUILD_INFO_HH

#include <string>

#include "telemetry/metrics.hh"

namespace djinn {
namespace telemetry {

/** Version string: the DJINN_VERSION compile definition, else
 * "dev". */
std::string buildVersion();

/** Compiler identification (__VERSION__). */
std::string buildCompiler();

/** Widest ISA the binary was compiled for (avx512/avx2/...). */
std::string buildIsa();

/**
 * Register djinn_build_info{version,compiler,isa} = 1 and set
 * djinn_start_time_seconds to the current unix time. Idempotent
 * apart from refreshing the start time; the server calls it once
 * per start().
 */
void exportBuildInfo(MetricRegistry &registry);

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_BUILD_INFO_HH
