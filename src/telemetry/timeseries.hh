/**
 * @file
 * A fixed-memory in-process time-series store over the metric
 * registry: every BackgroundSampler tick appends one ring slot
 * holding the cumulative value of every counter, the instantaneous
 * value of every gauge, and the cumulative count/sum/bucket array
 * of every histogram. History therefore survives between scrapes —
 * windowed rates, averages, slopes, and percentiles over any
 * trailing window up to the retention horizon can be computed
 * after the fact, which is what the health watchdog, the
 * `djinn_cli top` dashboard, and `/debug/timeseries` consume.
 *
 * Memory is bounded at sync() time: each track preallocates its
 * rings, and the sample path only stores into them through cached
 * instrument pointers (MetricRegistry references are stable for
 * the registry's lifetime), so recording a slot performs zero
 * allocations — asserted by the telemetry test suite. New metrics
 * registered after construction are adopted lazily: sample()
 * re-syncs (and allocates, once) only when the registry's entry
 * count has changed.
 *
 * Timestamps are explicit: the live server samples with
 * traceNowUs()-based seconds, while the cluster simulator replays
 * its virtual-time series into a store (cluster/telemetry
 * feedTimeSeries), making the health rules unit-testable with
 * bit-identical results.
 */

#ifndef DJINN_TELEMETRY_TIMESERIES_HH
#define DJINN_TELEMETRY_TIMESERIES_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hh"

namespace djinn {
namespace telemetry {

/** Sizing of a TimeSeriesStore. */
struct TimeSeriesOptions {
    /**
     * Ring slots retained per track. With the default 0.25 s
     * sampler period the default keeps 2.5 minutes of history.
     */
    size_t capacity = 600;

    /**
     * Cap on tracked series; metrics beyond the cap are skipped
     * (skippedTracks() counts them) so one labels explosion cannot
     * grow the store without bound.
     */
    size_t maxTracks = 2048;
};

/** A snapshot-free view over one track's identity. */
struct TrackId {
    std::string name;
    LabelMap labels;
    MetricKind kind = MetricKind::Counter;
};

/**
 * The store. sample() is thread-safe against queries; one sampler
 * thread is assumed (the BackgroundSampler's).
 */
class TimeSeriesStore
{
  public:
    /**
     * @param registry source of instruments; must outlive the
     *        store.
     * @param options ring sizing.
     */
    explicit TimeSeriesStore(const MetricRegistry &registry,
                             const TimeSeriesOptions &options = {});

    TimeSeriesStore(const TimeSeriesStore &) = delete;
    TimeSeriesStore &operator=(const TimeSeriesStore &) = delete;

    /**
     * Adopt registry entries that appeared since the last sync,
     * preallocating their rings (allocates). Called automatically
     * by sample() when the registry's size changed.
     */
    void sync();

    /**
     * Record one slot at @p nowSeconds (any monotonic epoch; the
     * server uses trace-clock seconds, the simulator virtual
     * time). Allocation-free once every metric has been synced.
     */
    void sample(double nowSeconds);

    /** Tracks currently recorded. */
    size_t trackCount() const;

    /** Metrics skipped because maxTracks was reached. */
    size_t skippedTracks() const;

    /** Slots filled so far (saturates at options().capacity). */
    size_t sampleCount() const;

    /** The configured sizing. */
    const TimeSeriesOptions &options() const { return options_; }

    /** Newest slot's timestamp; false when no slot was recorded. */
    bool newestTime(double *out) const;

    /**
     * Identities of tracks whose family matches @p name (empty
     * matches all) and whose labels contain every pair of
     * @p labels (subset match).
     */
    std::vector<TrackId> trackIds(const std::string &name = {},
                                  const LabelMap &labels = {}) const;

    /** Windowed aggregate selector. */
    enum class Op {
        /**
         * Sum over matching counter/histogram tracks of
         * (last - first) / (t_last - t_first) inside the window:
         * events per second. Invalid for gauges.
         */
        Rate,

        /** Mean over every in-window point of every matching
         * track (per-step rates for counters/histograms, raw
         * values for gauges). */
        Avg,

        /** Minimum over the same point set as Avg. */
        Min,

        /** Maximum over the same point set as Avg. */
        Max,

        /**
         * Least-squares slope (units per second) of the per-slot
         * SUM across matching tracks — the growth rate of a total
         * backlog. Gauges only.
         */
        Slope,

        /**
         * Quantile of the histogram formed by subtracting the
         * window-start bucket array from the window-end one,
         * merged across matching tracks. Histograms only.
         */
        Quantile,
    };

    /** A trailing-window query. */
    struct Window {
        /** Metric family (exact). */
        std::string name;

        /** Label subset every matching track must contain. */
        LabelMap labels;

        /** Window length, seconds. */
        double seconds = 60.0;

        /**
         * Window end; slots with t in [now - seconds, now] are
         * considered. Negative anchors at the newest slot.
         */
        double now = -1.0;
    };

    /** A windowed aggregate; valid is false when no matching track
     * has enough in-window data for the op. */
    struct Stat {
        bool valid = false;
        double value = 0.0;
    };

    /** Evaluate one windowed aggregate (see Op). */
    Stat windowStat(const Window &window, Op op,
                    double quantile = 0.99) const;

    /** One series point. */
    struct Point {
        double t = 0.0;
        double value = 0.0;
    };

    /** One track's windowed points. */
    struct Series {
        std::string name;
        LabelMap labels;
        MetricKind kind = MetricKind::Counter;
        std::vector<Point> points;
    };

    /**
     * Per-track point series over the window: per-step rates for
     * counters and histogram counts, raw values for gauges.
     * @p step > 0 decimates: consecutive emitted points are at
     * least @p step seconds apart.
     */
    std::vector<Series> series(const Window &window,
                               double step = 0.0) const;

  private:
    struct Track {
        std::string name;
        LabelMap labels;
        MetricKind kind = MetricKind::Counter;
        const Counter *counter = nullptr;
        const Gauge *gauge = nullptr;
        const LogHistogram *histogram = nullptr;

        /** Counter cumulative value or gauge value per slot. */
        std::vector<double> values;

        /** Histogram cumulative count / sum per slot. */
        std::vector<uint64_t> counts;
        std::vector<double> sums;

        /** Histogram cumulative buckets, capacity x bucketCount. */
        std::vector<uint64_t> buckets;
        int bucketCount = 0;
    };

    void syncLocked();

    /** Physical slot index of logical slot @p i (0 = oldest);
     * caller holds mutex_. */
    size_t slotIndex(size_t i) const;

    /** Logical slot range [first, last] covered by @p window;
     * false when fewer than one slot is inside. */
    bool windowRange(const Window &window, size_t *first,
                     size_t *last) const;

    /** The per-point value of @p track at logical slot @p i (rate
     * for cumulative kinds, value for gauges); false for the first
     * slot of a cumulative track. */
    bool pointValue(const Track &track, size_t i,
                    double *out) const;

    const MetricRegistry &registry_;
    TimeSeriesOptions options_;

    mutable std::mutex mutex_;
    std::vector<double> times_;
    std::vector<Track> tracks_;
    std::map<const void *, size_t> known_;
    size_t head_ = 0;
    size_t filled_ = 0;
    size_t syncedMetrics_ = 0;
    size_t skipped_ = 0;
};

/**
 * Render the windowed series of one metric family as JSON:
 * `{"metric": ..., "window": ..., "now": ..., "series": [{"labels":
 * {...}, "kind": ..., "points": [[t, v], ...]}, ...]}`. Counters
 * and histograms render per-step rates; gauges raw values. Served
 * by GET /debug/timeseries and the `series:` Metrics wire verb.
 */
std::string renderTimeSeriesJson(const TimeSeriesStore &store,
                                 const TimeSeriesStore::Window &window,
                                 double step = 0.0);

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_TIMESERIES_HH
