/**
 * @file
 * The telemetry metrics registry: named, optionally labeled
 * counters, gauges, and latency histograms shared by every
 * component on the DjiNN service path. Metric objects are created
 * on first use and live as long as the registry, so hot paths can
 * cache the returned references and update them lock-free.
 *
 * Naming follows the Prometheus convention: snake_case metric
 * families with unit suffixes (`djinn_request_seconds`), refined by
 * label sets (`{model="mnist", phase="forward"}`).
 */

#ifndef DJINN_TELEMETRY_METRICS_HH
#define DJINN_TELEMETRY_METRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/histogram.hh"

namespace djinn {
namespace telemetry {

/** A metric's label set, e.g. {model: mnist, phase: forward}. */
using LabelMap = std::map<std::string, std::string>;

/** A monotonically increasing count. Thread-safe. */
class Counter
{
  public:
    Counter() = default;

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    /** Add @p n to the count. */
    void
    inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Current count. */
    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** A settable instantaneous value (queue depth, bytes resident). */
class Gauge
{
  public:
    Gauge() = default;

    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    /** Replace the value. */
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    /** Adjust the value by @p delta (may be negative). */
    void add(double delta);

    /** Current value. */
    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** What a registry entry is. */
enum class MetricKind {
    Counter,
    Gauge,
    Histogram,
};

/** One metric's state, as captured by MetricRegistry::snapshot(). */
struct MetricSample {
    /** Metric family name. */
    std::string name;

    /** Label set (may be empty). */
    LabelMap labels;

    /** Which of the value fields is meaningful. */
    MetricKind kind = MetricKind::Counter;

    /** Counter or gauge value. */
    double value = 0.0;

    /** Histogram state when kind == Histogram. */
    HistogramSnapshot histogram;
};

/**
 * A borrowed, stable view of one registry entry (see
 * MetricRegistry::forEach). Entries are never removed, so the
 * pointers stay valid for the registry's lifetime; exactly one of
 * counter/gauge/histogram is non-null, per kind.
 */
struct MetricRef {
    const std::string *name = nullptr;
    const LabelMap *labels = nullptr;
    MetricKind kind = MetricKind::Counter;
    const Counter *counter = nullptr;
    const Gauge *gauge = nullptr;
    const LogHistogram *histogram = nullptr;
};

/**
 * The registry. Lookup takes a mutex; the returned references are
 * stable for the registry's lifetime and update lock-free. A name
 * must keep one kind: re-registering `foo` as a different kind is a
 * fatal() user error.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;

    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Find or create a counter. */
    Counter &counter(const std::string &name,
                     const LabelMap &labels = {});

    /** Find or create a gauge. */
    Gauge &gauge(const std::string &name, const LabelMap &labels = {});

    /**
     * Find or create a histogram. @p options applies only on
     * creation; later calls return the existing histogram as-is.
     */
    LogHistogram &histogram(const std::string &name,
                            const LabelMap &labels = {},
                            const HistogramOptions &options = {});

    /** All metrics, sorted by (name, labels). */
    std::vector<MetricSample> snapshot() const;

    /**
     * Visit every entry in (name, labels) order under the registry
     * lock, handing the visitor stable pointers to the live metric
     * objects (no copies). The TimeSeriesStore uses this to cache
     * direct instrument pointers so its periodic sample path never
     * touches the lock or allocates. Do not register new metrics
     * from inside the visitor.
     */
    void forEach(
        const std::function<void(const MetricRef &)> &fn) const;

    /** Number of registered metrics. */
    size_t size() const;

  private:
    struct Entry {
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<LogHistogram> histogram;
    };

    using Key = std::pair<std::string, LabelMap>;

    Entry &entryFor(const std::string &name, const LabelMap &labels,
                    MetricKind kind, const HistogramOptions *options);

    mutable std::mutex mutex_;
    std::map<Key, Entry> entries_;
};

/**
 * Render one metric identity as `name{k="v",...}` (no braces when
 * the label set is empty), the form used by both exposition formats
 * and the parser.
 */
std::string renderMetricId(const std::string &name,
                           const LabelMap &labels);

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_METRICS_HH
