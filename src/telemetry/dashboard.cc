#include "telemetry/dashboard.hh"

#include <algorithm>
#include <cstdio>
#include <set>

#include "telemetry/flight_recorder.hh"

namespace djinn {
namespace telemetry {

namespace {

/** Density ramp, lightest to darkest. */
const char sparkRamp[] = " .:-=+*#%@";

/** Collapse a point series to @p width buckets by averaging. */
std::vector<double>
resample(const std::vector<TimeSeriesStore::Point> &points,
         int width)
{
    std::vector<double> out;
    if (points.empty() || width <= 0)
        return out;
    out.assign(static_cast<size_t>(width), 0.0);
    std::vector<int> counts(static_cast<size_t>(width), 0);
    const double t0 = points.front().t;
    const double t1 = points.back().t;
    const double span = t1 > t0 ? t1 - t0 : 1.0;
    for (const auto &point : points) {
        int bucket = static_cast<int>((point.t - t0) / span
                                      * (width - 1));
        bucket = std::min(std::max(bucket, 0), width - 1);
        out[static_cast<size_t>(bucket)] += point.value;
        ++counts[static_cast<size_t>(bucket)];
    }
    // Carry the previous bucket's value across gaps so sparse
    // series still draw a continuous line.
    double prev = 0.0;
    for (int i = 0; i < width; ++i) {
        if (counts[static_cast<size_t>(i)] > 0) {
            out[static_cast<size_t>(i)] /=
                counts[static_cast<size_t>(i)];
            prev = out[static_cast<size_t>(i)];
        } else {
            out[static_cast<size_t>(i)] = prev;
        }
    }
    return out;
}

std::string
sparklineFor(const TimeSeriesStore &store,
             const TimeSeriesStore::Window &window, int width)
{
    const auto all = store.series(window);
    // Sum matching tracks point-by-point after resampling each.
    std::vector<double> merged(static_cast<size_t>(width), 0.0);
    bool any = false;
    for (const auto &series : all) {
        const auto resampled = resample(series.points, width);
        if (resampled.empty())
            continue;
        for (int i = 0; i < width; ++i)
            merged[static_cast<size_t>(i)] +=
                resampled[static_cast<size_t>(i)];
        any = true;
    }
    if (!any)
        return std::string(static_cast<size_t>(width), ' ');
    return renderSparkline(merged, width);
}

void
appendStat(std::string &out, const char *fmt,
           const TimeSeriesStore::Stat &stat, double scale = 1.0)
{
    char buf[48];
    if (stat.valid)
        snprintf(buf, sizeof(buf), fmt, stat.value * scale);
    else
        snprintf(buf, sizeof(buf), "%8s", "-");
    out += buf;
}

} // namespace

std::string
renderSparkline(const std::vector<double> &values, int width)
{
    std::string out;
    if (width <= 0)
        return out;
    double hi = 0.0;
    for (double v : values)
        hi = std::max(hi, v);
    const int ramp = static_cast<int>(sizeof(sparkRamp)) - 2;
    for (int i = 0; i < width; ++i) {
        double v = 0.0;
        if (!values.empty()) {
            const size_t j = static_cast<size_t>(i)
                * values.size() / static_cast<size_t>(width);
            v = values[std::min(j, values.size() - 1)];
        }
        int level = hi > 0
            ? static_cast<int>(v / hi * ramp + 0.5)
            : 0;
        level = std::min(std::max(level, 0), ramp);
        out += sparkRamp[level];
    }
    return out;
}

std::string
renderTopDashboard(const TimeSeriesStore &store,
                   const HealthMonitor *monitor,
                   const DashboardOptions &options)
{
    std::string out;
    char buf[256];

    snprintf(buf, sizeof(buf),
             "djinn top — window %.0fs, %zu samples",
             options.windowSeconds, store.sampleCount());
    out += buf;
    if (monitor) {
        const HealthVerdict verdict = monitor->evaluateNow();
        out += ", health ";
        out += healthLevelName(verdict.level);
        for (const auto &reason : verdict.reasons) {
            out += " [" + reason.rule + "]";
        }
    }
    out += "\n\n";

    snprintf(buf, sizeof(buf), "%-12s %8s %8s %8s %7s %6s  %s\n",
             "MODEL", "QPS", "P50MS", "P99MS", "SHED%", "OCC",
             "REQUESTS/S");
    out += buf;

    // Models are the label values seen on the request counter.
    std::set<std::string> models;
    for (const auto &id : store.trackIds("djinn_requests_total")) {
        auto it = id.labels.find("model");
        if (it != id.labels.end())
            models.insert(it->second);
    }

    TimeSeriesStore::Window window;
    window.seconds = options.windowSeconds;

    for (const auto &model : models) {
        snprintf(buf, sizeof(buf), "%-12s ", model.c_str());
        out += buf;

        window.labels = {{"model", model}};
        window.name = "djinn_requests_total";
        const auto qps =
            store.windowStat(window, TimeSeriesStore::Op::Rate);
        appendStat(out, "%8.1f", qps);

        window.name = requestSecondsMetricName;
        const auto p50 = store.windowStat(
            window, TimeSeriesStore::Op::Quantile, 0.5);
        const auto p99 = store.windowStat(
            window, TimeSeriesStore::Op::Quantile, 0.99);
        appendStat(out, " %7.2f", p50, 1e3);
        appendStat(out, " %7.2f", p99, 1e3);

        window.name = "djinn_shed_total";
        const auto shed =
            store.windowStat(window, TimeSeriesStore::Op::Rate);
        const double served = qps.valid ? qps.value : 0.0;
        if (shed.valid && shed.value + served > 0) {
            snprintf(buf, sizeof(buf), " %6.1f",
                     shed.value / (shed.value + served) * 100.0);
            out += buf;
        } else if (qps.valid) {
            out += "    0.0";
        } else {
            out += "      -";
        }

        window.name = "djinn_batch_occupancy";
        const auto occupancy =
            store.windowStat(window, TimeSeriesStore::Op::Avg);
        appendStat(out, " %5.1f", occupancy);

        window.name = "djinn_requests_total";
        out += "  ";
        out += sparklineFor(store, window, options.sparkWidth);
        out += "\n";
    }
    if (models.empty())
        out += "(no request history in window)\n";
    out += "\n";

    window.labels = {};
    window.name = "djinn_compute_pool_busy";
    const auto busy =
        store.windowStat(window, TimeSeriesStore::Op::Avg);
    snprintf(buf, sizeof(buf), "%-12s ", "pool busy");
    out += buf;
    appendStat(out, "%8.2f", busy);
    out += "  ";
    out += sparklineFor(store, window, options.sparkWidth);
    out += "\n";

    window.name = "djinn_batch_queue_depth_total";
    const auto depth =
        store.windowStat(window, TimeSeriesStore::Op::Avg);
    snprintf(buf, sizeof(buf), "%-12s ", "queue depth");
    out += buf;
    appendStat(out, "%8.2f", depth);
    out += "  ";
    out += sparklineFor(store, window, options.sparkWidth);
    out += "\n";

    return out;
}

} // namespace telemetry
} // namespace djinn
