#include "telemetry/perf_counters.hh"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

namespace djinn {
namespace telemetry {

namespace {

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu,
              int group_fd, unsigned long flags)
{
    return ::syscall(SYS_perf_event_open, attr, pid, cpu, group_fd,
                     flags);
}

/** Open one counter on the calling thread, any CPU. */
int
openCounter(uint32_t type, uint64_t config, int group_fd,
            bool leader)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = leader ? 1 : 0;
    attr.exclude_kernel = 1; // paranoid >= 2 still allows user
    attr.exclude_hv = 1;
    if (leader) {
        attr.read_format = PERF_FORMAT_GROUP |
                           PERF_FORMAT_TOTAL_TIME_ENABLED |
                           PERF_FORMAT_TOTAL_TIME_RUNNING;
    }
    return static_cast<int>(
        perfEventOpen(&attr, 0, -1, group_fd, 0));
}

/** Thread CPU time in nanoseconds (always available). */
uint64_t
threadCpuNs()
{
    timespec ts;
    if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0;
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
}

} // namespace

void
CounterDelta::add(const CounterDelta &other)
{
    cycles += other.cycles;
    instructions += other.instructions;
    cacheRefs += other.cacheRefs;
    cacheMisses += other.cacheMisses;
    taskClockNs += other.taskClockNs;
    wallNs += other.wallNs;
    hardware = hardware || other.hardware;
}

CounterSet::CounterSet() : CounterSet(Config{}) {}

CounterSet::CounterSet(const Config &config)
{
    if (config.disabled)
        return;

    // The hardware group: cycles leads; instructions and the two
    // cache counters join it so all four are scheduled (and
    // multiplex-scaled) together.
    groupFd_ = openCounter(config.leaderType,
                           PERF_COUNT_HW_CPU_CYCLES, -1, true);
    if (groupFd_ >= 0) {
        static const uint64_t members[3] = {
            PERF_COUNT_HW_INSTRUCTIONS,
            PERF_COUNT_HW_CACHE_REFERENCES,
            PERF_COUNT_HW_CACHE_MISSES,
        };
        bool ok = true;
        for (int i = 0; i < 3; ++i) {
            memberFds_[i] = openCounter(config.leaderType,
                                        members[i], groupFd_,
                                        false);
            if (memberFds_[i] < 0)
                ok = false;
        }
        if (ok) {
            ::ioctl(groupFd_, PERF_EVENT_IOC_RESET,
                    PERF_IOC_FLAG_GROUP);
            ::ioctl(groupFd_, PERF_EVENT_IOC_ENABLE,
                    PERF_IOC_FLAG_GROUP);
        } else {
            // Partial groups would skew IPC; all or nothing.
            for (int i = 0; i < 3; ++i) {
                if (memberFds_[i] >= 0) {
                    ::close(memberFds_[i]);
                    memberFds_[i] = -1;
                }
            }
            ::close(groupFd_);
            groupFd_ = -1;
        }
    }

    // Task-clock is a software event and schedules independently
    // of the PMU, so it gets its own single-member group; when even
    // that fails, snapshots fall back to CLOCK_THREAD_CPUTIME_ID.
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = config.leaderType == 0 ? PERF_TYPE_SOFTWARE
                                       : config.leaderType;
    attr.config = PERF_COUNT_SW_TASK_CLOCK;
    attr.exclude_hv = 1;
    taskClockFd_ = static_cast<int>(
        perfEventOpen(&attr, 0, -1, -1, 0));
}

CounterSet::~CounterSet()
{
    for (int i = 0; i < 3; ++i) {
        if (memberFds_[i] >= 0)
            ::close(memberFds_[i]);
    }
    if (groupFd_ >= 0)
        ::close(groupFd_);
    if (taskClockFd_ >= 0)
        ::close(taskClockFd_);
}

CounterSet::Snapshot
CounterSet::snapshot() const
{
    Snapshot snap;
    snap.wall = std::chrono::steady_clock::now();

    if (groupFd_ >= 0) {
        // PERF_FORMAT_GROUP layout: nr, time_enabled,
        // time_running, then one value per member in open order.
        struct {
            uint64_t nr;
            uint64_t timeEnabled;
            uint64_t timeRunning;
            uint64_t values[4];
        } data;
        ssize_t n = ::read(groupFd_, &data, sizeof(data));
        if (n >= static_cast<ssize_t>(sizeof(uint64_t) * 7) &&
            data.nr == 4) {
            // Multiplex scaling: when the PMU was oversubscribed
            // the group only ran for part of the enabled window.
            double scale = 1.0;
            if (data.timeRunning > 0 &&
                data.timeRunning < data.timeEnabled) {
                scale = static_cast<double>(data.timeEnabled) /
                        static_cast<double>(data.timeRunning);
            }
            for (int i = 0; i < 4; ++i) {
                snap.values[i] = static_cast<uint64_t>(
                    static_cast<double>(data.values[i]) * scale);
            }
            snap.hardware = true;
        }
    }

    if (taskClockFd_ >= 0) {
        uint64_t ns = 0;
        if (::read(taskClockFd_, &ns, sizeof(ns)) ==
            static_cast<ssize_t>(sizeof(ns))) {
            snap.taskClockNs = ns;
        }
    }
    if (snap.taskClockNs == 0)
        snap.taskClockNs = threadCpuNs();
    return snap;
}

CounterDelta
CounterSet::delta(const Snapshot &begin, const Snapshot &end)
{
    CounterDelta d;
    d.wallNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            end.wall - begin.wall)
            .count());
    d.taskClockNs = end.taskClockNs >= begin.taskClockNs
                        ? end.taskClockNs - begin.taskClockNs
                        : 0;
    if (begin.hardware && end.hardware) {
        d.hardware = true;
        uint64_t v[4];
        for (int i = 0; i < 4; ++i) {
            v[i] = end.values[i] >= begin.values[i]
                       ? end.values[i] - begin.values[i]
                       : 0;
        }
        d.cycles = v[0];
        d.instructions = v[1];
        d.cacheRefs = v[2];
        d.cacheMisses = v[3];
    }
    return d;
}

CounterSet &
threadCounterSet()
{
    thread_local CounterSet set;
    return set;
}

const CounterDelta &
CounterScope::stop()
{
    if (!done_) {
        done_ = true;
        delta_ = CounterSet::delta(begin_,
                                   threadCounterSet().snapshot());
    }
    return delta_;
}

bool
perfCountersAvailable()
{
    static const bool available = []() {
        CounterSet probe;
        return probe.hardware();
    }();
    return available;
}

} // namespace telemetry
} // namespace djinn
