/**
 * @file
 * A rule engine over the TimeSeriesStore that turns windowed metric
 * history into a graded health verdict: `ok`, `degraded`, or
 * `unhealthy`, each with concrete reasons. The rules mirror what a
 * WSC operator would page on — SLO burn rate over a short window,
 * shed-rate ceilings, sustained queue-growth slope, a stall
 * watchdog (queued work but frozen progress counters), and sampler
 * staleness. The verdict upgrades `/healthz` to structured JSON,
 * exports `djinn_health` / `djinn_health_reason{rule}` gauges, and
 * logs every level transition.
 *
 * Evaluation is pure over (store, clock): the cluster simulator
 * replays its virtual-time series into a store and evaluates at the
 * same instants to get bit-identical verdicts across runs, which is
 * how the rules are unit-tested deterministically.
 *
 * A graceful drain is not an outage: the server flags
 * setDraining(true) before it stops accepting work, which both adds
 * a `draining` reason and clamps the final level to `degraded`, so
 * the stall watchdog cannot page on an intentional shutdown.
 */

#ifndef DJINN_TELEMETRY_HEALTH_HH
#define DJINN_TELEMETRY_HEALTH_HH

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hh"
#include "telemetry/timeseries.hh"

namespace djinn {
namespace telemetry {

/** Graded verdict levels, ordered by severity. */
enum class HealthLevel {
    Ok = 0,
    Degraded = 1,
    Unhealthy = 2,
};

/** Lowercase wire name of @p level (`ok|degraded|unhealthy`). */
const char *healthLevelName(HealthLevel level);

/** One triggered rule. */
struct HealthReason {
    /** Rule identifier (`burn_rate`, `shed_rate`, ...). */
    std::string rule;

    /** Severity this rule contributes. */
    HealthLevel level = HealthLevel::Degraded;

    /** Human-readable evidence, deterministically formatted. */
    std::string detail;
};

/** The graded verdict. */
struct HealthVerdict {
    HealthLevel level = HealthLevel::Ok;
    std::vector<HealthReason> reasons;

    /** Evaluation time (store epoch seconds). */
    double evaluatedAt = 0.0;

    /** Deterministic one-line rendering, for logs and tests. */
    std::string toString() const;
};

/** Rule thresholds. */
struct HealthOptions {
    /** Burn-rate averaging window. */
    double shortWindowSeconds = 15.0;

    /** Shed-rate / queue-growth window. */
    double longWindowSeconds = 60.0;

    /** SLO burn rate (budget consumption multiple) thresholds. */
    double burnDegraded = 1.0;
    double burnUnhealthy = 10.0;

    /** Shed fraction (shed / (shed + served)) thresholds. */
    double shedDegraded = 0.05;
    double shedUnhealthy = 0.5;

    /** Queue depth growth slope that flags `queue_growth`. */
    double queueGrowthPerSecond = 1.0;

    /** Minimum average depth before slope matters. */
    double queueGrowthMinDepth = 4.0;

    /** Stall watchdog window: queued work with zero progress. */
    double stallWindowSeconds = 10.0;

    /** Sampler heartbeat staleness threshold. */
    double stalenessSeconds = 5.0;
};

/**
 * The monitor. evaluate() is const and reentrant; tick() (called
 * from the sampler hook) additionally exports gauges and logs
 * transitions.
 */
class HealthMonitor
{
  public:
    /** Clock returning store-epoch seconds; defaults to the trace
     * clock. Injected by tests and the simulator. */
    using Clock = std::function<double()>;

    /**
     * @param store history source; must outlive the monitor.
     * @param registry receives djinn_health gauges.
     * @param options rule thresholds.
     * @param clock store-epoch clock override.
     */
    HealthMonitor(const TimeSeriesStore &store,
                  MetricRegistry &registry,
                  const HealthOptions &options = {},
                  Clock clock = {});

    HealthMonitor(const HealthMonitor &) = delete;
    HealthMonitor &operator=(const HealthMonitor &) = delete;

    /** Evaluate every rule at @p nowSeconds. Pure. */
    HealthVerdict evaluate(double nowSeconds) const;

    /** Evaluate at the injected clock's current time. */
    HealthVerdict evaluateNow() const;

    /**
     * Periodic hook: evaluate, export djinn_health gauges, log
     * level transitions, retain the verdict for lastVerdict().
     */
    void tick();

    /** The verdict retained by the last tick(). */
    HealthVerdict lastVerdict() const;

    /**
     * Flag a graceful drain: adds a `draining` reason and clamps
     * the verdict to degraded (a drain is never `unhealthy`).
     */
    void setDraining(bool draining);

    /** The configured thresholds. */
    const HealthOptions &options() const { return options_; }

  private:
    const TimeSeriesStore &store_;
    MetricRegistry &registry_;
    HealthOptions options_;
    Clock clock_;

    Gauge *healthGauge_ = nullptr;
    std::map<std::string, Gauge *> reasonGauges_;

    std::atomic<bool> draining_{false};

    mutable std::mutex mutex_;
    HealthVerdict last_;
    bool haveLast_ = false;
};

/**
 * Render @p verdict as the structured `/healthz` JSON body:
 * `{"status": ..., "uptime_seconds": ..., "reasons": [{"rule": ...,
 * "level": ..., "detail": ...}]}`. Pass a negative uptime to omit
 * the field.
 */
std::string renderHealthJson(const HealthVerdict &verdict,
                             double uptimeSeconds = -1.0);

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_HEALTH_HH
