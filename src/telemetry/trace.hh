/**
 * @file
 * Request tracing: decomposes one DjiNN request into timed phases
 * (decode -> batch-queue wait -> forward pass -> encode, plus the
 * end-to-end service span) and records each phase into the metric
 * registry's per-model `djinn_phase_seconds` histograms. Spans are
 * RAII scopes around the phase's code; a trace also maintains the
 * `djinn_inflight_requests` gauge.
 */

#ifndef DJINN_TELEMETRY_TRACE_HH
#define DJINN_TELEMETRY_TRACE_HH

#include <chrono>
#include <string>

#include "telemetry/metrics.hh"
#include "telemetry/perf_counters.hh"

namespace djinn {
namespace telemetry {

/** The phases a request passes through on the service path. */
enum class Phase {
    /** Wire-frame to Request decode. */
    Decode,

    /** Waiting in the batching queue for peers or the dispatcher. */
    QueueWait,

    /** The (possibly batched) DNN forward pass. */
    Forward,

    /** Response to wire-frame encode. */
    Encode,

    /** End-to-end request handling (all of the above). */
    Service,
};

/** Stable lowercase label for a phase ("queue_wait", ...). */
const char *phaseName(Phase phase);

/** Metric family every phase histogram records under. */
inline const char *const phaseMetricName = "djinn_phase_seconds";

/**
 * Per-phase cycle accounting (the Figure-4 breakdown). Carries CPU
 * cycles when `djinn_perf_counters_available` is 1, wall
 * nanoseconds otherwise — either way the phase shares of one
 * request sum to ~100% of its `djinn_request_cycles` span.
 */
inline const char *const phaseCyclesMetricName =
    "djinn_phase_cycles";

/** Per-phase instructions retired (hardware counters only). */
inline const char *const phaseInstructionsMetricName =
    "djinn_phase_instructions";

/** Per-phase instructions-per-cycle (hardware counters only). */
inline const char *const phaseIpcMetricName = "djinn_phase_ipc";

/** Per-phase cache misses (hardware counters only). */
inline const char *const phaseCacheMissMetricName =
    "djinn_phase_cache_misses";

/** Whole-request work (same unit rule as djinn_phase_cycles). */
inline const char *const requestCyclesMetricName =
    "djinn_request_cycles";

/** Whole-request IPC (hardware counters only). */
inline const char *const requestIpcMetricName =
    "djinn_request_ipc";

/** Gauge tracking requests currently being handled. */
inline const char *const inflightMetricName =
    "djinn_inflight_requests";

/**
 * One request's trace. Construct when a request enters the service
 * path; phases recorded through it land in
 * `djinn_phase_seconds{model=..., phase=...}`.
 */
class RequestTrace
{
  public:
    /**
     * @param registry destination for phase samples.
     * @param model target model; may be set later, once decoded.
     */
    explicit RequestTrace(MetricRegistry &registry,
                          std::string model = "");

    /** Decrements the in-flight gauge. */
    ~RequestTrace();

    RequestTrace(const RequestTrace &) = delete;
    RequestTrace &operator=(const RequestTrace &) = delete;

    /** Set the model label (known only after decode). */
    void setModel(std::string model) { model_ = std::move(model); }

    /** The current model label. */
    const std::string &model() const { return model_; }

    /** Record @p seconds spent in @p phase. */
    void record(Phase phase, double seconds);

    /**
     * Record a counter delta for @p phase: work (cycles or
     * fallback nanoseconds) always, plus instructions / IPC /
     * cache misses when the delta came from hardware counters.
     */
    void recordWork(Phase phase, const CounterDelta &delta);

    /**
     * Record the whole request span's delta (readFrame-to-encode
     * on the worker thread), the denominator the per-phase shares
     * are measured against.
     */
    void recordRequestWork(const CounterDelta &delta);

    /** RAII scope that times a phase and records it on exit. */
    class Span
    {
      public:
        Span(RequestTrace &trace, Phase phase)
            : trace_(trace), phase_(phase),
              start_(std::chrono::steady_clock::now())
        {}

        /** Records the elapsed time unless stop() already did. */
        ~Span()
        {
            stop();
        }

        Span(const Span &) = delete;
        Span &operator=(const Span &) = delete;

        /** Record now; the destructor becomes a no-op. */
        void stop();

      private:
        RequestTrace &trace_;
        Phase phase_;
        std::chrono::steady_clock::time_point start_;
        bool done_ = false;
    };

    /** Open a timed span for @p phase. */
    Span span(Phase phase) { return Span(*this, phase); }

  private:
    MetricRegistry &registry_;
    std::string model_;
};

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_TRACE_HH
