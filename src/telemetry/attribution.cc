#include "telemetry/attribution.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/strings.hh"
#include "telemetry/exposition.hh"

namespace djinn {
namespace telemetry {

namespace {

/** The phases attribution decomposes a request's latency into. */
struct PhaseField {
    const char *name;
    double FlightRecord::*field;
};

constexpr PhaseField phaseFields[] = {
    {"read", &FlightRecord::readSeconds},
    {"decode", &FlightRecord::decodeSeconds},
    {"queue_wait", &FlightRecord::queueWaitSeconds},
    {"forward", &FlightRecord::forwardSeconds},
    {"encode", &FlightRecord::encodeSeconds},
    {"retry_wait", &FlightRecord::retryWaitSeconds},
};

/** Exact order statistic of a sorted ascending vector. */
double
percentileOf(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    rank = std::clamp<uint64_t>(rank, 1, sorted.size());
    return sorted[rank - 1];
}

/** Mean of a member over a cohort; 0 for an empty cohort. */
template <typename T>
double
meanOf(const std::vector<const FlightRecord *> &cohort,
       T FlightRecord::*field)
{
    if (cohort.empty())
        return 0.0;
    double sum = 0.0;
    for (const FlightRecord *record : cohort)
        sum += static_cast<double>(record->*field);
    return sum / static_cast<double>(cohort.size());
}

std::string
modelLabel(const TailReport &report)
{
    return report.model.empty() ? "all" : report.model;
}

} // namespace

TailReport
attributeTail(const std::vector<FlightRecord> &records, double pct,
              const std::string &model)
{
    TailReport report;
    report.model = model;
    report.pct = std::clamp(pct, 50.0, 100.0);

    // Completed requests only: shed requests never executed the
    // phases being attributed.
    std::vector<const FlightRecord *> eligible;
    eligible.reserve(records.size());
    for (const FlightRecord &record : records) {
        if (record.outcome != FlightOutcome::Ok)
            continue;
        if (!model.empty() && record.modelName() != model)
            continue;
        eligible.push_back(&record);
    }
    report.records = eligible.size();
    if (eligible.empty())
        return report;

    std::vector<double> totals;
    totals.reserve(eligible.size());
    for (const FlightRecord *record : eligible)
        totals.push_back(record->totalSeconds);
    std::sort(totals.begin(), totals.end());

    report.thresholdSeconds = percentileOf(totals, report.pct / 100);
    double median = percentileOf(totals, 0.5);

    std::vector<const FlightRecord *> tail, baseline;
    for (const FlightRecord *record : eligible) {
        if (record->totalSeconds >= report.thresholdSeconds)
            tail.push_back(record);
        if (record->totalSeconds <= median)
            baseline.push_back(record);
    }
    report.tailCount = tail.size();
    report.baselineCount = baseline.size();
    report.tailMeanSeconds = meanOf(tail, &FlightRecord::totalSeconds);
    report.baselineMeanSeconds =
        meanOf(baseline, &FlightRecord::totalSeconds);

    double totalExcess = 0.0;
    for (const PhaseField &phase : phaseFields) {
        TailContributor contributor;
        contributor.phase = phase.name;
        contributor.tailMeanSeconds = meanOf(tail, phase.field);
        contributor.baselineMeanSeconds =
            meanOf(baseline, phase.field);
        contributor.excessSeconds =
            std::max(0.0, contributor.tailMeanSeconds -
                              contributor.baselineMeanSeconds);
        totalExcess += contributor.excessSeconds;
        report.contributors.push_back(std::move(contributor));
    }
    for (TailContributor &contributor : report.contributors)
        contributor.share = totalExcess > 0.0
                                ? contributor.excessSeconds /
                                      totalExcess
                                : 0.0;
    std::stable_sort(report.contributors.begin(),
                     report.contributors.end(),
                     [](const TailContributor &a,
                        const TailContributor &b) {
                         return a.excessSeconds > b.excessSeconds;
                     });
    if (totalExcess > 0.0)
        report.dominant = report.contributors.front().phase;

    report.tailMeanBatchPosition =
        meanOf(tail, &FlightRecord::batchPosition);
    report.baselineMeanBatchPosition =
        meanOf(baseline, &FlightRecord::batchPosition);
    report.tailMeanBatchQueries =
        meanOf(tail, &FlightRecord::batchQueries);
    report.baselineMeanBatchQueries =
        meanOf(baseline, &FlightRecord::batchQueries);
    report.tailMeanAdmitDepth =
        meanOf(tail, &FlightRecord::admitQueueDepth);
    report.baselineMeanAdmitDepth =
        meanOf(baseline, &FlightRecord::admitQueueDepth);
    report.tailMeanRetries = meanOf(tail, &FlightRecord::retries);
    report.baselineMeanRetries =
        meanOf(baseline, &FlightRecord::retries);
    return report;
}

std::vector<TailReport>
attributeTailByModel(const std::vector<FlightRecord> &records,
                     double pct)
{
    std::set<std::string> models;
    for (const FlightRecord &record : records)
        if (record.outcome == FlightOutcome::Ok)
            models.insert(record.modelName());

    std::vector<TailReport> reports;
    reports.reserve(models.size());
    for (const std::string &model : models)
        reports.push_back(attributeTail(records, pct, model));
    return reports;
}

std::string
renderTailReport(const TailReport &report)
{
    std::string out = strprintf(
        "tail attribution: model=%s pct=%g records=%llu\n",
        modelLabel(report).c_str(), report.pct,
        static_cast<unsigned long long>(report.records));
    if (report.records == 0)
        return out + "  (no completed requests recorded)\n";
    out += strprintf(
        "  threshold p%g: %.6fs | tail n=%llu mean %.6fs | "
        "baseline n=%llu mean %.6fs\n",
        report.pct, report.thresholdSeconds,
        static_cast<unsigned long long>(report.tailCount),
        report.tailMeanSeconds,
        static_cast<unsigned long long>(report.baselineCount),
        report.baselineMeanSeconds);
    out += strprintf("  dominant contributor: %s\n",
                     report.dominant.empty() ? "(none)"
                                             : report.dominant.c_str());
    out += "  phase        tail_mean    base_mean    excess     "
           "share\n";
    for (const TailContributor &contributor : report.contributors) {
        out += strprintf("  %-11s %10.6fs %10.6fs %9.6fs %6.1f%%\n",
                         contributor.phase.c_str(),
                         contributor.tailMeanSeconds,
                         contributor.baselineMeanSeconds,
                         contributor.excessSeconds,
                         contributor.share * 100);
    }
    out += strprintf(
        "  cohorts (tail vs base): batch_position %.2f vs %.2f | "
        "batch_queries %.2f vs %.2f | admit_depth %.2f vs %.2f | "
        "retries %.2f vs %.2f\n",
        report.tailMeanBatchPosition,
        report.baselineMeanBatchPosition,
        report.tailMeanBatchQueries, report.baselineMeanBatchQueries,
        report.tailMeanAdmitDepth, report.baselineMeanAdmitDepth,
        report.tailMeanRetries, report.baselineMeanRetries);
    return out;
}

std::string
renderTailReportJson(const TailReport &report)
{
    std::string out = "{";
    out += "\"model\": \"" + jsonEscape(modelLabel(report)) + "\"";
    out += strprintf(", \"pct\": %g", report.pct);
    out += strprintf(", \"records\": %llu",
                     static_cast<unsigned long long>(report.records));
    out += strprintf(", \"threshold_seconds\": %.9g",
                     report.thresholdSeconds);
    out += strprintf(", \"tail_count\": %llu",
                     static_cast<unsigned long long>(
                         report.tailCount));
    out += strprintf(", \"baseline_count\": %llu",
                     static_cast<unsigned long long>(
                         report.baselineCount));
    out += strprintf(", \"tail_mean_seconds\": %.9g",
                     report.tailMeanSeconds);
    out += strprintf(", \"baseline_mean_seconds\": %.9g",
                     report.baselineMeanSeconds);
    out += ", \"dominant\": \"" + jsonEscape(report.dominant) + "\"";
    out += ", \"contributors\": [";
    for (size_t i = 0; i < report.contributors.size(); ++i) {
        const TailContributor &contributor = report.contributors[i];
        if (i)
            out += ", ";
        out += "{\"phase\": \"" + jsonEscape(contributor.phase) +
               "\"";
        out += strprintf(", \"tail_mean_seconds\": %.9g",
                         contributor.tailMeanSeconds);
        out += strprintf(", \"baseline_mean_seconds\": %.9g",
                         contributor.baselineMeanSeconds);
        out += strprintf(", \"excess_seconds\": %.9g",
                         contributor.excessSeconds);
        out += strprintf(", \"share\": %.9g}", contributor.share);
    }
    out += "]";
    out += strprintf(
        ", \"cohorts\": {\"batch_position\": [%.9g, %.9g]"
        ", \"batch_queries\": [%.9g, %.9g]"
        ", \"admit_depth\": [%.9g, %.9g]"
        ", \"retries\": [%.9g, %.9g]}",
        report.tailMeanBatchPosition,
        report.baselineMeanBatchPosition,
        report.tailMeanBatchQueries, report.baselineMeanBatchQueries,
        report.tailMeanAdmitDepth, report.baselineMeanAdmitDepth,
        report.tailMeanRetries, report.baselineMeanRetries);
    out += "}";
    return out;
}

void
recordTailReport(MetricRegistry &registry, const TailReport &report,
                 const LabelMap &extraLabels)
{
    LabelMap base = extraLabels;
    base["model"] = modelLabel(report);

    registry.gauge("djinn_tail_threshold_seconds", base)
        .set(report.thresholdSeconds);
    for (const TailContributor &contributor : report.contributors) {
        LabelMap labels = base;
        labels["phase"] = contributor.phase;
        registry.gauge("djinn_tail_excess_seconds", labels)
            .set(contributor.excessSeconds);
        registry.gauge("djinn_tail_share", labels)
            .set(contributor.share);
        LabelMap dominant = base;
        dominant["contributor"] = contributor.phase;
        registry.gauge("djinn_tail_dominant", dominant)
            .set(contributor.phase == report.dominant ? 1.0 : 0.0);
    }
}

} // namespace telemetry
} // namespace djinn
