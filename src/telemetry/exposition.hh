/**
 * @file
 * Exporters for MetricRegistry snapshots: a Prometheus-style text
 * exposition (served by the DjiNN `Metrics` wire verb and scraped
 * by djinn_cli) and a JSON rendering (consumed by the benchmark
 * harness for BENCH_*.json trajectories), plus a parser for the
 * text format so clients and tests can read expositions back.
 *
 * Histograms are exported summary-style: `<name>_count`,
 * `<name>_sum`, `<name>_min`, `<name>_max`, and one
 * `<name>{quantile="..."}` sample per exported quantile
 * (0.5, 0.95, 0.99).
 */

#ifndef DJINN_TELEMETRY_EXPOSITION_HH
#define DJINN_TELEMETRY_EXPOSITION_HH

#include <string>
#include <vector>

#include "common/status.hh"
#include "telemetry/metrics.hh"

namespace djinn {
namespace telemetry {

/** Quantiles every exported histogram reports. */
inline constexpr double exportedQuantiles[] = {0.5, 0.95, 0.99};

/** Render a snapshot in the Prometheus text format. */
std::string renderPrometheus(
    const std::vector<MetricSample> &samples);

/**
 * Content type of the OpenMetrics rendering, returned by /metrics
 * when the scraper sends `Accept: application/openmetrics-text`.
 */
inline const char *const openMetricsContentType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/**
 * Render a snapshot in the OpenMetrics text format: histograms
 * become cumulative `_bucket{le="..."}` series carrying per-bucket
 * exemplars (`... # {trace_id="...",record="..."} value`) that
 * resolve to flight-recorder records, and the exposition ends with
 * the mandatory `# EOF` terminator. Counters and gauges render as
 * in the Prometheus format.
 */
std::string renderOpenMetrics(
    const std::vector<MetricSample> &samples);

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Render a snapshot as a JSON object. */
std::string renderJson(const std::vector<MetricSample> &samples);

/** One `name{labels} value` line of a parsed text exposition. */
struct ExpositionSample {
    std::string name;
    LabelMap labels;
    double value = 0.0;
};

/**
 * Parse a Prometheus-style text exposition produced by
 * renderPrometheus (comment lines are skipped). OpenMetrics output
 * also parses: exemplar suffixes (` # {...} value`) are ignored.
 *
 * @return the samples, or a ProtocolError for malformed input.
 */
Result<std::vector<ExpositionSample>> parseExposition(
    const std::string &text);

/**
 * Find one sample by exact name and label match.
 *
 * @return the value, or a NotFound status.
 */
Result<double> findSample(
    const std::vector<ExpositionSample> &samples,
    const std::string &name, const LabelMap &labels = {});

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_EXPOSITION_HH
