#include "telemetry/metrics.hh"

#include "common/logging.hh"

namespace djinn {
namespace telemetry {

void
Gauge::add(double delta)
{
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
}

MetricRegistry::Entry &
MetricRegistry::entryFor(const std::string &name,
                         const LabelMap &labels, MetricKind kind,
                         const HistogramOptions *options)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = entries_.try_emplace({name, labels});
    Entry &entry = it->second;
    if (!inserted) {
        if (entry.kind != kind) {
            fatal("metric '%s' already registered with a different "
                  "kind", renderMetricId(name, labels).c_str());
        }
        return entry;
    }
    entry.kind = kind;
    switch (kind) {
      case MetricKind::Counter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricKind::Gauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::Histogram:
        entry.histogram = std::make_unique<LogHistogram>(
            options ? *options : HistogramOptions{});
        break;
    }
    return entry;
}

Counter &
MetricRegistry::counter(const std::string &name,
                        const LabelMap &labels)
{
    return *entryFor(name, labels, MetricKind::Counter, nullptr)
        .counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name, const LabelMap &labels)
{
    return *entryFor(name, labels, MetricKind::Gauge, nullptr).gauge;
}

LogHistogram &
MetricRegistry::histogram(const std::string &name,
                          const LabelMap &labels,
                          const HistogramOptions &options)
{
    return *entryFor(name, labels, MetricKind::Histogram, &options)
        .histogram;
}

std::vector<MetricSample>
MetricRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricSample> out;
    out.reserve(entries_.size());
    for (const auto &[key, entry] : entries_) {
        MetricSample sample;
        sample.name = key.first;
        sample.labels = key.second;
        sample.kind = entry.kind;
        switch (entry.kind) {
          case MetricKind::Counter:
            sample.value =
                static_cast<double>(entry.counter->value());
            break;
          case MetricKind::Gauge:
            sample.value = entry.gauge->value();
            break;
          case MetricKind::Histogram:
            sample.histogram = entry.histogram->snapshot();
            break;
        }
        out.push_back(std::move(sample));
    }
    return out;
}

void
MetricRegistry::forEach(
    const std::function<void(const MetricRef &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[key, entry] : entries_) {
        MetricRef ref;
        ref.name = &key.first;
        ref.labels = &key.second;
        ref.kind = entry.kind;
        ref.counter = entry.counter.get();
        ref.gauge = entry.gauge.get();
        ref.histogram = entry.histogram.get();
        fn(ref);
    }
}

size_t
MetricRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::string
renderMetricId(const std::string &name, const LabelMap &labels)
{
    if (labels.empty())
        return name;
    std::string out = name + "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ",";
        first = false;
        out += k + "=\"" + v + "\"";
    }
    out += "}";
    return out;
}

} // namespace telemetry
} // namespace djinn
