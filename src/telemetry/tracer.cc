#include "telemetry/tracer.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

#include "common/logging.hh"
#include "telemetry/exposition.hh"

namespace djinn {
namespace telemetry {

int64_t
traceNowUs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - epoch)
        .count();
}

Tracer::Tracer(size_t capacity, size_t requestCapacity)
    : capacity_(capacity ? capacity : 1),
      requestCapacity_(requestCapacity ? requestCapacity : 1)
{}

void
Tracer::record(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(event));
        return;
    }
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
}

void
Tracer::recordCounter(const std::string &name, double value,
                      const std::string &track)
{
    TraceEvent event;
    event.name = name;
    event.category = "sampler";
    event.track = track;
    event.startUs = traceNowUs();
    event.counter = true;
    event.value = value;
    record(std::move(event));
}

void
Tracer::recordRequest(RequestSummary summary)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (requests_.size() < requestCapacity_) {
        requests_.push_back(std::move(summary));
        return;
    }
    requests_[requestHead_] = std::move(summary);
    requestHead_ = (requestHead_ + 1) % requestCapacity_;
}

std::vector<TraceEvent>
Tracer::events(size_t last_n) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    // head_ is the oldest entry once the ring has wrapped.
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    if (last_n && out.size() > last_n)
        out.erase(out.begin(),
                  out.begin() +
                      static_cast<ptrdiff_t>(out.size() - last_n));
    return out;
}

std::vector<Tracer::RequestSummary>
Tracer::recentRequests(size_t last_n) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RequestSummary> out;
    out.reserve(requests_.size());
    for (size_t i = 0; i < requests_.size(); ++i)
        out.push_back(
            requests_[(requestHead_ + i) % requests_.size()]);
    if (last_n && out.size() > last_n)
        out.erase(out.begin(),
                  out.begin() +
                      static_cast<ptrdiff_t>(out.size() - last_n));
    return out;
}

uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

size_t
Tracer::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
    requests_.clear();
    requestHead_ = 0;
}

namespace {

/** Stable small integer tids so tracks render as named threads. */
std::map<std::string, int>
assignTrackIds(const std::vector<TraceEvent> &events)
{
    std::map<std::string, int> tids;
    for (const TraceEvent &e : events) {
        if (!tids.count(e.track))
            tids.emplace(e.track,
                         static_cast<int>(tids.size()) + 1);
    }
    return tids;
}

void
appendArgs(std::string &out, const TraceEvent &e)
{
    out += "\"args\": {";
    bool first = true;
    auto add = [&](const std::string &k, const std::string &v,
                   bool quote) {
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + jsonEscape(k) + "\": ";
        out += quote ? "\"" + jsonEscape(v) + "\"" : v;
    };
    if (e.counter) {
        add("value", strprintf("%.17g", e.value), false);
    } else if (e.traceId) {
        add("trace_id", traceIdToHex(e.traceId), true);
        add("span_id", traceIdToHex(e.spanId), true);
        if (e.parentSpanId)
            add("parent_span_id", traceIdToHex(e.parentSpanId),
                true);
    }
    for (const auto &[k, v] : e.args)
        add(k, v, true);
    out += "}";
}

} // namespace

std::string
renderChromeTrace(const std::vector<TraceEvent> &events)
{
    std::vector<TraceEvent> sorted = events;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.startUs < b.startUs;
                     });
    std::map<std::string, int> tids = assignTrackIds(sorted);

    std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n"
                      "  \"traceEvents\": [\n";
    bool first = true;
    auto begin_event = [&]() -> std::string & {
        if (!first)
            out += ",\n";
        first = false;
        out += "    ";
        return out;
    };

    begin_event() += "{\"name\": \"process_name\", \"ph\": \"M\", "
                     "\"pid\": 1, \"tid\": 0, "
                     "\"args\": {\"name\": \"djinn\"}}";
    for (const auto &[track, tid] : tids) {
        begin_event() += strprintf(
            "{\"name\": \"thread_name\", \"ph\": \"M\", "
            "\"pid\": 1, \"tid\": %d, "
            "\"args\": {\"name\": \"%s\"}}",
            tid, jsonEscape(track).c_str());
    }

    for (const TraceEvent &e : sorted) {
        begin_event();
        int tid = tids[e.track];
        if (e.counter) {
            out += strprintf("{\"name\": \"%s\", \"cat\": \"%s\", "
                             "\"ph\": \"C\", \"ts\": %lld, "
                             "\"pid\": 1, \"tid\": %d, ",
                             jsonEscape(e.name).c_str(),
                             jsonEscape(e.category).c_str(),
                             static_cast<long long>(e.startUs),
                             tid);
        } else {
            out += strprintf("{\"name\": \"%s\", \"cat\": \"%s\", "
                             "\"ph\": \"X\", \"ts\": %lld, "
                             "\"dur\": %lld, \"pid\": 1, "
                             "\"tid\": %d, ",
                             jsonEscape(e.name).c_str(),
                             jsonEscape(e.category).c_str(),
                             static_cast<long long>(e.startUs),
                             static_cast<long long>(e.durationUs),
                             tid);
        }
        appendArgs(out, e);
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string
renderRequestsCsv(
    const std::vector<Tracer::RequestSummary> &requests)
{
    std::string out = "trace_id,model,rows,batch_rows,service_ms\n";
    for (const auto &r : requests) {
        out += strprintf("%s,%s,%lld,%lld,%.3f\n",
                         traceIdToHex(r.traceId).c_str(),
                         r.model.c_str(),
                         static_cast<long long>(r.rows),
                         static_cast<long long>(r.batchRows),
                         r.serviceMs);
    }
    return out;
}

double
processRssBytes()
{
    // /proc/self/statm field 2 is resident pages.
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0.0;
    long long pages_total = 0, pages_resident = 0;
    int got = std::fscanf(f, "%lld %lld", &pages_total,
                          &pages_resident);
    std::fclose(f);
    if (got != 2)
        return 0.0;
    return static_cast<double>(pages_resident) * 4096.0;
}

BackgroundSampler::BackgroundSampler(Tracer &tracer,
                                     const MetricRegistry &metrics,
                                     double period_seconds,
                                     Hook hook, UpdateHook update)
    : tracer_(tracer), metrics_(metrics),
      period_(period_seconds > 0 ? period_seconds : 0.01),
      hook_(std::move(hook)), update_(std::move(update))
{}

BackgroundSampler::~BackgroundSampler()
{
    stop();
}

void
BackgroundSampler::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_)
        return;
    stopping_ = false;
    running_ = true;
    thread_ = std::thread([this]() { loop(); });
}

void
BackgroundSampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_)
            return;
        stopping_ = true;
        cv_.notify_all();
    }
    thread_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = false;
}

void
BackgroundSampler::sampleOnce()
{
    // Refresh gauges whose source is not registry-backed first, so
    // the sweep below exports them on this same tick.
    if (update_)
        update_();
    for (const MetricSample &sample : metrics_.snapshot()) {
        if (sample.kind != MetricKind::Gauge)
            continue;
        tracer_.recordCounter(
            renderMetricId(sample.name, sample.labels),
            sample.value);
    }
    tracer_.recordCounter("process_rss_bytes", processRssBytes());
    if (hook_)
        hook_(tracer_);
}

void
BackgroundSampler::loop()
{
    auto period = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(period_));
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        lock.unlock();
        sampleOnce();
        lock.lock();
        cv_.wait_for(lock, period, [this]() { return stopping_; });
    }
}

} // namespace telemetry
} // namespace djinn
