#include "telemetry/trace_context.hh"

#include <atomic>
#include <chrono>

#include "common/logging.hh"
#include "common/rng.hh"

namespace djinn {
namespace telemetry {

namespace {

/**
 * Process-unique id stream: a strong mixer over an atomic counter
 * seeded once from the wall clock, so ids differ across processes
 * but stay cheap (no locking, no device entropy) to mint.
 */
uint64_t
nextId()
{
    static const uint64_t base = mix64(static_cast<uint64_t>(
        std::chrono::system_clock::now().time_since_epoch()
            .count()));
    static std::atomic<uint64_t> counter{1};
    uint64_t id = mix64(
        base ^ counter.fetch_add(1, std::memory_order_relaxed));
    return id ? id : 1; // 0 is reserved for "no context"
}

} // namespace

TraceContext
makeTraceContext(bool sampled)
{
    TraceContext ctx;
    ctx.traceId = nextId();
    ctx.spanId = nextId();
    ctx.flags = sampled ? traceFlagSampled : 0;
    return ctx;
}

uint64_t
nextGlobalSpanId()
{
    return nextId();
}

std::string
traceIdToHex(uint64_t id)
{
    return strprintf("%016llx",
                     static_cast<unsigned long long>(id));
}

} // namespace telemetry
} // namespace djinn
