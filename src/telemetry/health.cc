#include "telemetry/health.hh"

#include <cstdio>

#include "common/logging.hh"
#include "telemetry/exposition.hh"
#include "telemetry/slo.hh"
#include "telemetry/tracer.hh"

namespace djinn {
namespace telemetry {

namespace {

/** Every rule a verdict can cite, in evaluation order. The fixed
 * set lets tick() pre-register one djinn_health_reason gauge per
 * rule so the exposition's sample set never changes shape. */
const char *const healthRules[] = {
    "stale",   "burn_rate", "shed_rate",
    "queue_growth", "stall", "draining",
};

std::string
formatDetail(const char *fmt, double a, double b)
{
    char buf[160];
    snprintf(buf, sizeof(buf), fmt, a, b);
    return buf;
}

} // namespace

const char *
healthLevelName(HealthLevel level)
{
    switch (level) {
      case HealthLevel::Ok:
        return "ok";
      case HealthLevel::Degraded:
        return "degraded";
      case HealthLevel::Unhealthy:
        return "unhealthy";
    }
    return "ok";
}

std::string
HealthVerdict::toString() const
{
    std::string out = healthLevelName(level);
    char buf[48];
    snprintf(buf, sizeof(buf), " @%.6f", evaluatedAt);
    out += buf;
    for (const auto &reason : reasons) {
        out += " [";
        out += reason.rule;
        out += "/";
        out += healthLevelName(reason.level);
        out += ": ";
        out += reason.detail;
        out += "]";
    }
    return out;
}

HealthMonitor::HealthMonitor(const TimeSeriesStore &store,
                             MetricRegistry &registry,
                             const HealthOptions &options,
                             Clock clock)
    : store_(store), registry_(registry), options_(options),
      clock_(std::move(clock))
{
    if (!clock_)
        clock_ = [] { return traceNowUs() * 1e-6; };
    healthGauge_ = &registry_.gauge("djinn_health");
    healthGauge_->set(0.0);
    for (const char *rule : healthRules) {
        Gauge &gauge =
            registry_.gauge("djinn_health_reason", {{"rule", rule}});
        gauge.set(0.0);
        reasonGauges_[rule] = &gauge;
    }
}

HealthVerdict
HealthMonitor::evaluate(double nowSeconds) const
{
    HealthVerdict verdict;
    verdict.evaluatedAt = nowSeconds;

    const bool draining =
        draining_.load(std::memory_order_relaxed);

    // Rule: stale — the sampler heartbeat stopped. Without fresh
    // slots every other rule would silently read old history, so
    // surface that first.
    double newest = 0.0;
    const bool haveSamples = store_.newestTime(&newest);
    if (!haveSamples
        || nowSeconds - newest > options_.stalenessSeconds) {
        HealthReason reason;
        reason.rule = "stale";
        reason.level = HealthLevel::Degraded;
        reason.detail = haveSamples
            ? formatDetail("last sample %.6g s ago (limit %.6g)",
                           nowSeconds - newest,
                           options_.stalenessSeconds)
            : "no samples recorded";
        verdict.reasons.push_back(std::move(reason));
    }

    TimeSeriesStore::Window window;
    window.now = nowSeconds;

    // Rule: burn_rate — any model consuming its SLO error budget
    // faster than allowed, averaged over the short window.
    window.name = sloBurnRateMetricName;
    window.labels = {};
    window.seconds = options_.shortWindowSeconds;
    for (const auto &id : store_.trackIds(sloBurnRateMetricName)) {
        window.labels = id.labels;
        const auto burn =
            store_.windowStat(window, TimeSeriesStore::Op::Avg);
        if (!burn.valid || burn.value < options_.burnDegraded)
            continue;
        // An idle model's burn gauge is stale history, not live
        // budget burn: require actual request traffic for the
        // same model over the window before alerting on it.
        TimeSeriesStore::Window traffic = window;
        traffic.name = "djinn_requests_total";
        traffic.labels = {};
        auto traffic_model = id.labels.find("model");
        if (traffic_model != id.labels.end())
            traffic.labels = {{"model", traffic_model->second}};
        const auto requestRate = store_.windowStat(
            traffic, TimeSeriesStore::Op::Rate);
        if (!requestRate.valid || requestRate.value <= 0.0)
            continue;
        HealthReason reason;
        reason.rule = "burn_rate";
        reason.level = burn.value >= options_.burnUnhealthy
            ? HealthLevel::Unhealthy
            : HealthLevel::Degraded;
        auto model = id.labels.find("model");
        reason.detail = (model != id.labels.end()
                             ? model->second + ": "
                             : std::string())
            + formatDetail("burn rate %.6g (degraded at %.6g)",
                           burn.value, options_.burnDegraded);
        verdict.reasons.push_back(std::move(reason));
    }

    // Rule: shed_rate — fraction of offered load turned away over
    // the long window.
    window.labels = {};
    window.seconds = options_.longWindowSeconds;
    window.name = "djinn_shed_total";
    const auto shedRate =
        store_.windowStat(window, TimeSeriesStore::Op::Rate);
    window.name = "djinn_requests_total";
    const auto servedRate =
        store_.windowStat(window, TimeSeriesStore::Op::Rate);
    if (shedRate.valid && shedRate.value > 0) {
        const double served =
            servedRate.valid ? servedRate.value : 0.0;
        const double fraction =
            shedRate.value / (shedRate.value + served);
        if (fraction >= options_.shedDegraded) {
            HealthReason reason;
            reason.rule = "shed_rate";
            reason.level = fraction >= options_.shedUnhealthy
                ? HealthLevel::Unhealthy
                : HealthLevel::Degraded;
            reason.detail = formatDetail(
                "shedding %.6g of offered load (degraded at %.6g)",
                fraction, options_.shedDegraded);
            verdict.reasons.push_back(std::move(reason));
        }
    }

    // Rule: queue_growth — the batch queue is non-trivially deep
    // AND growing; either alone is a transient.
    window.name = "djinn_batch_queue_depth_total";
    const auto depthAvg =
        store_.windowStat(window, TimeSeriesStore::Op::Avg);
    const auto depthSlope =
        store_.windowStat(window, TimeSeriesStore::Op::Slope);
    if (depthAvg.valid && depthSlope.valid
        && depthAvg.value >= options_.queueGrowthMinDepth
        && depthSlope.value >= options_.queueGrowthPerSecond) {
        HealthReason reason;
        reason.rule = "queue_growth";
        reason.level = HealthLevel::Degraded;
        reason.detail = formatDetail(
            "queue depth avg %.6g growing %.6g/s", depthAvg.value,
            depthSlope.value);
        verdict.reasons.push_back(std::move(reason));
    }

    // Rule: stall — queued work with frozen progress counters over
    // the stall window: the watchdog for a wedged batcher or pool.
    // Suppressed while draining (the server stops dispatching on
    // purpose and the queue empties through cancellation).
    if (!draining) {
        window.seconds = options_.stallWindowSeconds;
        window.name = "djinn_batch_queue_depth_total";
        const auto stallDepth =
            store_.windowStat(window, TimeSeriesStore::Op::Min);
        window.name = "djinn_batches_total";
        const auto batchRate =
            store_.windowStat(window, TimeSeriesStore::Op::Rate);
        window.name = "djinn_requests_total";
        const auto requestRate =
            store_.windowStat(window, TimeSeriesStore::Op::Rate);
        const double progress =
            (batchRate.valid ? batchRate.value : 0.0)
            + (requestRate.valid ? requestRate.value : 0.0);
        if (stallDepth.valid && stallDepth.value >= 1.0
            && (batchRate.valid || requestRate.valid)
            && progress <= 0.0) {
            HealthReason reason;
            reason.rule = "stall";
            reason.level = HealthLevel::Unhealthy;
            reason.detail = formatDetail(
                "queue depth >= %.6g with no progress for %.6g s",
                stallDepth.value, options_.stallWindowSeconds);
            verdict.reasons.push_back(std::move(reason));
        }
    }

    for (const auto &reason : verdict.reasons)
        verdict.level = std::max(verdict.level, reason.level);

    if (draining) {
        HealthReason reason;
        reason.rule = "draining";
        reason.level = HealthLevel::Degraded;
        reason.detail = "graceful drain in progress";
        verdict.reasons.push_back(std::move(reason));
        // An intentional drain is exactly degraded: never ok (work
        // is being refused) and never unhealthy (it is deliberate).
        verdict.level = HealthLevel::Degraded;
    }

    return verdict;
}

HealthVerdict
HealthMonitor::evaluateNow() const
{
    return evaluate(clock_());
}

void
HealthMonitor::tick()
{
    HealthVerdict verdict = evaluate(clock_());

    healthGauge_->set(static_cast<double>(verdict.level));
    for (auto &[rule, gauge] : reasonGauges_) {
        double level = 0.0;
        for (const auto &reason : verdict.reasons) {
            if (reason.rule == rule)
                level = std::max(
                    level, static_cast<double>(reason.level));
        }
        gauge->set(level);
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (!haveLast_ || last_.level != verdict.level) {
        inform("health: %s", verdict.toString().c_str());
    }
    last_ = std::move(verdict);
    haveLast_ = true;
}

HealthVerdict
HealthMonitor::lastVerdict() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return last_;
}

void
HealthMonitor::setDraining(bool draining)
{
    draining_.store(draining, std::memory_order_relaxed);
}

std::string
renderHealthJson(const HealthVerdict &verdict, double uptimeSeconds)
{
    std::string out = "{\"status\": \"";
    out += healthLevelName(verdict.level);
    out += "\"";
    char buf[64];
    if (uptimeSeconds >= 0) {
        snprintf(buf, sizeof(buf), ", \"uptime_seconds\": %.3f",
                 uptimeSeconds);
        out += buf;
    }
    snprintf(buf, sizeof(buf), ", \"evaluated_at\": %.6f",
             verdict.evaluatedAt);
    out += buf;
    out += ", \"reasons\": [";
    bool first = true;
    for (const auto &reason : verdict.reasons) {
        if (!first)
            out += ", ";
        first = false;
        out += "{\"rule\": \"" + jsonEscape(reason.rule)
            + "\", \"level\": \"";
        out += healthLevelName(reason.level);
        out += "\", \"detail\": \"" + jsonEscape(reason.detail)
            + "\"}";
    }
    out += "]}\n";
    return out;
}

} // namespace telemetry
} // namespace djinn
