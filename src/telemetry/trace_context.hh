/**
 * @file
 * The distributed trace context: the identity a request carries
 * across process boundaries so every span recorded on its behalf —
 * client round-trip, server phases, batched forward pass, per-layer
 * compute — can be stitched back into one timeline. Modeled on the
 * W3C trace-context/OpenTelemetry split: a 64-bit trace id names
 * the end-to-end request, a 64-bit span id names the sender's
 * active span (the parent of whatever the receiver records), and a
 * flags byte carries the sampling decision.
 */

#ifndef DJINN_TELEMETRY_TRACE_CONTEXT_HH
#define DJINN_TELEMETRY_TRACE_CONTEXT_HH

#include <cstdint>
#include <string>

namespace djinn {
namespace telemetry {

/** Bit assignments of the on-wire trace flags byte. */
enum TraceFlags : uint8_t {
    /** The originator elected this request for span recording. */
    traceFlagSampled = 0x01,
};

/**
 * A request's trace identity. Default-constructed contexts are
 * invalid (trace id 0) and encode to nothing on the wire.
 */
struct TraceContext {
    /** End-to-end request id; 0 means "no context". */
    uint64_t traceId = 0;

    /** The sender's span: parent of the receiver's root span. */
    uint64_t spanId = 0;

    /** Wire flags (sampling decision). */
    uint8_t flags = 0;

    /** True when this context names a real trace. */
    bool valid() const { return traceId != 0; }

    /** True when spans should be recorded for this request. */
    bool sampled() const { return (flags & traceFlagSampled) != 0; }

    bool operator==(const TraceContext &) const = default;
};

/**
 * Mint a fresh context with process-unique, pseudo-random ids.
 *
 * @param sampled whether the new trace is elected for recording.
 */
TraceContext makeTraceContext(bool sampled = true);

/** A fresh process-unique span id (never 0). */
uint64_t nextGlobalSpanId();

/** Render an id as fixed-width lowercase hex ("00c0ffee..."). */
std::string traceIdToHex(uint64_t id);

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_TRACE_CONTEXT_HH
