/**
 * @file
 * A thread-safe, log-bucketed latency histogram. Samples land in
 * geometrically growing buckets so five decades of latency (1us to
 * 100s) fit in ~50 fixed-size counters; quantiles (p50/p95/p99) are
 * extracted by interpolating inside the covering bucket, clamped to
 * the exact observed min/max. Recording is lock-free (atomic bucket
 * increments), so the service hot path pays a few nanoseconds per
 * sample.
 */

#ifndef DJINN_TELEMETRY_HISTOGRAM_HH
#define DJINN_TELEMETRY_HISTOGRAM_HH

#include <atomic>
#include <cstdint>
#include <vector>

namespace djinn {
namespace telemetry {

/** Bucket layout of a LogHistogram. */
struct HistogramOptions {
    /**
     * Inclusive upper bound of the first bucket. Samples at or
     * below this value (including zero) land in bucket 0.
     */
    double firstBound = 1e-6;

    /** Geometric growth factor between bucket bounds; > 1. */
    double growth = 2.0;

    /**
     * Finite buckets. One extra overflow bucket (upper bound
     * +infinity) is always appended. The default spans 1us to
     * ~140s at 2x resolution.
     */
    int bucketCount = 48;

    /**
     * Keep a per-bucket exemplar: the most recent sample's trace id
     * and flight-record ref, exposed through the OpenMetrics
     * rendering so a hot bucket resolves to a concrete request.
     * Off by default; only samples recorded through the
     * three-argument record() refresh exemplars.
     */
    bool exemplars = false;
};

/**
 * The most recent sample attributed to one histogram bucket: enough
 * to walk from a bucket count to the flight record of a request
 * that landed there.
 */
struct Exemplar {
    /** False until the bucket has seen an attributed sample. */
    bool valid = false;

    /** Wire trace id of the sample's request; 0 when untraced. */
    uint64_t traceId = 0;

    /** Flight-recorder sequence number of the sample's record. */
    uint64_t ref = 0;

    /** The sample value itself. */
    double value = 0.0;
};

/**
 * An immutable copy of a histogram's state, safe to carry across
 * threads and cheap to query repeatedly.
 */
struct HistogramSnapshot {
    /** The source histogram's bucket layout. */
    HistogramOptions options;

    /** Per-bucket counts; size bucketCount + 1 (overflow last). */
    std::vector<uint64_t> buckets;

    /** Total samples recorded. */
    uint64_t count = 0;

    /** Sum of all samples. */
    double sum = 0.0;

    /** Smallest sample; 0 when empty. */
    double min = 0.0;

    /** Largest sample; 0 when empty. */
    double max = 0.0;

    /**
     * Per-bucket exemplars, aligned with buckets. Empty unless the
     * source histogram was created with options.exemplars.
     */
    std::vector<Exemplar> exemplars;

    /** Mean sample; 0 when empty. */
    double mean() const;

    /**
     * Approximate quantile: locates the covering bucket by
     * cumulative count and interpolates linearly inside it, then
     * clamps to [min, max]. Exact for 0- and 1-sample histograms.
     *
     * @param q quantile in [0, 1]; e.g. 0.5, 0.95, 0.99.
     */
    double quantile(double q) const;

    /** Inclusive upper bound of bucket @p i (+inf for overflow). */
    double bucketUpperBound(int i) const;
};

/**
 * The live histogram. record() is wait-free on x86-64 (atomic
 * fetch-adds plus CAS loops for sum/min/max); readers take a
 * consistent-enough snapshot without stopping writers.
 */
class LogHistogram
{
  public:
    explicit LogHistogram(const HistogramOptions &options = {});

    LogHistogram(const LogHistogram &) = delete;
    LogHistogram &operator=(const LogHistogram &) = delete;

    /** Record one sample. Thread-safe. */
    void record(double value);

    /**
     * Record one sample and refresh its bucket's exemplar (when
     * options.exemplars is on; otherwise identical to the
     * one-argument form). Thread-safe.
     *
     * @param traceId wire trace id of the request; 0 when untraced.
     * @param ref flight-recorder sequence of the request's record.
     */
    void record(double value, uint64_t traceId, uint64_t ref);

    /** Total samples recorded. */
    uint64_t count() const;

    /** Sum of all samples. */
    double sum() const;

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** Largest sample; 0 when empty. */
    double max() const;

    /** Mean sample; 0 when empty. */
    double mean() const;

    /** See HistogramSnapshot::quantile. */
    double quantile(double q) const;

    /** Copy the current state for offline querying. */
    HistogramSnapshot snapshot() const;

    /** The bucket a sample of @p value lands in. */
    int bucketIndex(double value) const;

    /** Buckets held, including the overflow bucket. */
    int
    bucketCountTotal() const
    {
        return static_cast<int>(buckets_.size());
    }

    /**
     * Lock- and allocation-free read of one bucket's count
     * (0 <= i < bucketCountTotal()). The TimeSeriesStore's sample
     * path reads every bucket through this instead of snapshot(),
     * which allocates.
     */
    uint64_t
    bucketValue(int i) const
    {
        return buckets_[static_cast<size_t>(i)].load(
            std::memory_order_relaxed);
    }

    /** Inclusive upper bound of bucket @p i (+inf for overflow). */
    double bucketUpperBound(int i) const;

    /** The configured bucket layout. */
    const HistogramOptions &options() const { return options_; }

  private:
    // Per-bucket exemplar storage: a seqlock stamp (0 never
    // written, odd mid-update, even published) keeps the three
    // fields mutually consistent without a lock.
    struct ExemplarSlot {
        std::atomic<uint64_t> stamp{0};
        std::atomic<uint64_t> traceId{0};
        std::atomic<uint64_t> ref{0};
        std::atomic<uint64_t> valueBits{0};
    };

    void writeExemplar(size_t bucket, double value, uint64_t traceId,
                       uint64_t ref);
    bool readExemplar(size_t bucket, Exemplar &out) const;

    HistogramOptions options_;
    std::vector<std::atomic<uint64_t>> buckets_;
    std::vector<ExemplarSlot> exemplars_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};

    // Seeded with +/-inf; accessors report 0 while count_ is zero.
    std::atomic<double> min_;
    std::atomic<double> max_;
};

} // namespace telemetry
} // namespace djinn

#endif // DJINN_TELEMETRY_HISTOGRAM_HH
