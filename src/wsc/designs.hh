/**
 * @file
 * The three WSC design points (paper Section 6.2, Figure 14) and
 * the provisioning methodology of Section 6.3: a CPU-only fleet
 * sets per-service throughput targets, and the Integrated-GPU and
 * Disaggregated-GPU designs are built out to match them, then
 * costed with the TCO model.
 */

#ifndef DJINN_WSC_DESIGNS_HH
#define DJINN_WSC_DESIGNS_HH

#include <functional>
#include <string>
#include <vector>

#include "wsc/capacity.hh"
#include "wsc/network_config.hh"
#include "wsc/tco_params.hh"
#include "wsc/workload_mix.hh"

namespace djinn {
namespace wsc {

/**
 * A server-capacity oracle: sustainable DNN QPS of one GPU server
 * of @p gpu_count GPUs behind @p host_link serving @p app. The
 * default oracle is wsc::gpuServerQps (mean throughput).
 */
using ServerQpsFn = std::function<double(
    serve::App app, const gpu::LinkSpec &host_link, int gpu_count)>;

/** The WSC organizations of Figure 14. */
enum class Design {
    CpuOnly,
    IntegratedGpu,
    DisaggregatedGpu,
};

/** Printable design name. */
const char *designName(Design design);

/** All designs in Figure 14 order. */
const std::vector<Design> &allDesigns();

/** Shared provisioning configuration. */
struct DesignConfig {
    /** Cost factors (Table 4). */
    TcoParams params;

    /** Interconnect/network design point (Table 6). */
    NetworkConfig network = pcie3With10GbE();

    /** Size of the reference CPU-only fleet, servers. */
    double baselineServers = 1000.0;

    /** Cores per beefy server (2x Xeon E5-2620 v2). */
    int coresPerServer = 12;

    /** GPUs in every server of the Integrated design. */
    int gpusPerIntegratedServer = 12;

    /** Most GPUs a disaggregated wimpy chassis can host. */
    int maxGpusPerDisaggServer = 8;

    /**
     * Scale on the CPU-only throughput targets; 1.0 reproduces
     * Figure 15, larger values model the scaled-up workloads of
     * Figure 16.
     */
    double perfMultiplier = 1.0;

    /**
     * When true, the GPU designs are additionally provisioned with
     * CPU capacity for each query's pre/post-processing (Figure 4
     * fractions). The paper's Section 6.3 methodology matches DNN
     * service throughput only, so reproducing Figure 15 uses false;
     * true is an ablation showing how Amdahl's law on ASR's heavy
     * pre/post-processing compresses the TCO gains.
     */
    bool accountPrePost = false;

    /**
     * Optional capacity-oracle override. Empty keeps the
     * closed-form mean-throughput oracle (gpuServerQps); the
     * tail-aware mode (wsc/tail_capacity) plugs in a cluster-sim
     * probe here so GPU designs are sized by the largest load that
     * still meets a p99 latency SLO under a routing policy, not by
     * mean throughput.
     */
    ServerQpsFn serverQpsFn;
};

/** One provisioned design. */
struct ProvisionResult {
    Design design = Design::CpuOnly;

    /** Hardware inventory. */
    FleetInventory fleet;

    /** Lifetime TCO breakdown. */
    TcoBreakdown tco;

    /** Aggregate DNN queries per second the fleet sustains. */
    double dnnQps = 0.0;
};

/**
 * Provision a design for a workload that is @p dnn_fraction DNN
 * services (split evenly across the mix) and the rest non-DNN
 * webservices, matching the CPU-only fleet's throughput targets.
 */
ProvisionResult provision(Design design, Mix mix,
                          double dnn_fraction,
                          const DesignConfig &config);

/**
 * Per-GPU-server throughput of one app in the Disaggregated design
 * under a network config, together with the GPU count the chassis
 * is provisioned with (fewer GPUs when bandwidth-bound).
 */
struct DisaggServerPlan {
    int gpusPerServer = 1;
    double serverQps = 0.0;
};

/** Plan one disaggregated GPU chassis for an app. */
DisaggServerPlan planDisaggServer(serve::App app,
                                  const DesignConfig &config);

/**
 * The Figure 16 exercise: fixing the baseline-provisioned
 * disaggregated GPU hardware, how much does workload throughput
 * grow when the network is upgraded to @p network?
 *
 * @return throughput multiplier (>= 1) averaged over the mix.
 */
double networkPerformanceGain(Mix mix,
                              const NetworkConfig &network,
                              const DesignConfig &baseline_config);

} // namespace wsc
} // namespace djinn

#endif // DJINN_WSC_DESIGNS_HH
