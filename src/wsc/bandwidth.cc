#include "wsc/bandwidth.hh"

#include <algorithm>

#include "wsc/capacity.hh"

namespace djinn {
namespace wsc {

double
bandwidthRequirement(serve::App app, int gpus)
{
    const serve::AppSpec &spec = serve::appSpec(app);
    double qps = gpuPeakQps(app) * gpus;
    return std::max(qps * spec.inputBytes, qps * spec.outputBytes);
}

double
ingressRequirement(serve::App app, int gpus)
{
    return gpuPeakQps(app) * gpus * serve::appSpec(app).inputBytes;
}

} // namespace wsc
} // namespace djinn
