#include "wsc/workload_mix.hh"

#include "common/logging.hh"

namespace djinn {
namespace wsc {

const char *
mixName(Mix mix)
{
    switch (mix) {
      case Mix::Mixed: return "MIXED";
      case Mix::Image: return "IMAGE";
      case Mix::Nlp: return "NLP";
    }
    return "unknown";
}

const std::vector<serve::App> &
mixApps(Mix mix)
{
    using serve::App;
    static const std::vector<App> mixed = {
        App::IMC, App::DIG, App::FACE, App::ASR,
        App::POS, App::CHK, App::NER,
    };
    static const std::vector<App> image = {
        App::IMC, App::DIG, App::FACE,
    };
    static const std::vector<App> nlp = {
        App::POS, App::CHK, App::NER,
    };
    switch (mix) {
      case Mix::Mixed: return mixed;
      case Mix::Image: return image;
      case Mix::Nlp: return nlp;
    }
    panic("mixApps: unknown mix %d", static_cast<int>(mix));
}

const std::vector<Mix> &
allMixes()
{
    static const std::vector<Mix> mixes = {Mix::Mixed, Mix::Image,
                                           Mix::Nlp};
    return mixes;
}

} // namespace wsc
} // namespace djinn
