#include "wsc/network_config.hh"

namespace djinn {
namespace wsc {

NetworkConfig
pcie3With10GbE()
{
    NetworkConfig config;
    config.name = "PCIe v3 / 10GbE";
    // Total host ingest: one x16 pipe per socket, dual socket.
    config.hostLink = gpu::pcieV3();
    config.hostLink.peakBandwidth *= 2.0;
    config.disaggIngest = gpu::ethernet10G(16);
    config.nicCount = 16;
    config.nicUnitCost = 750.0;
    config.serverPremium = 0.0;
    return config;
}

NetworkConfig
pcie4With40GbE()
{
    NetworkConfig config;
    config.name = "PCIe v4 / 40GbE";
    // Total host ingest: one x16 pipe per socket, dual socket.
    config.hostLink = gpu::pcieV4();
    config.hostLink.peakBandwidth *= 2.0;
    // 9 teamed 40GbE saturate PCIe v4 at 20% ethernet overhead
    // (Section 6.4).
    config.disaggIngest = gpu::ethernet40G(9);
    config.nicCount = 9;
    config.nicUnitCost = 1500.0;
    config.serverPremium = 500.0;
    return config;
}

NetworkConfig
qpiWith400GbE()
{
    NetworkConfig config;
    config.name = "QPI / 400GbE";
    config.hostLink = gpu::qpiAggregate();
    // 8 teamed 400GbE saturate the 12 QPI links (Section 6.4).
    config.disaggIngest = gpu::ethernet400G(8);
    config.nicCount = 8;
    config.nicUnitCost = 6000.0;
    config.serverPremium = 2500.0;
    return config;
}

std::vector<NetworkConfig>
allNetworkConfigs()
{
    return {pcie3With10GbE(), pcie4With40GbE(), qpiWith400GbE()};
}

} // namespace wsc
} // namespace djinn
