#include "wsc/tail_capacity.hh"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <mutex>
#include <string>

#include "cluster/simulator.hh"
#include "cluster/workload.hh"
#include "common/logging.hh"
#include "wsc/capacity.hh"

namespace djinn {
namespace wsc {

namespace {

/** Requests per probe are capped so high-rate apps keep probes in
 * the tens of milliseconds; the load level is what matters, not the
 * trace length. */
constexpr uint64_t ProbeMaxRequests = 150000;

/** One probe: does @p app at @p perServerQps meet the SLO? The
 * host link is already folded into @p service. */
bool
probeFeasible(serve::App app, double perServerQps, double slo,
              int gpu_count, const TailCapacityConfig &config,
              const cluster::ServiceModel &service)
{
    cluster::WorkloadSpec workload;
    workload.apps = {app};
    workload.process = config.process;
    workload.meanRate = perServerQps * config.probeNodes;
    workload.durationSeconds = config.simSeconds;
    workload.maxRequests = ProbeMaxRequests;
    workload.burstMultiplier = config.burstMultiplier;
    workload.burstFraction = config.burstFraction;
    // A probe window should see several burst cycles, or one
    // unlucky dwell draw decides the verdict.
    workload.burstCycleSeconds =
        std::min(2.0, 0.25 * config.simSeconds);
    workload.seed = config.seed;
    cluster::ClusterTrace trace =
        cluster::generateTrace(workload);

    cluster::ClusterConfig cc;
    cc.nodeCount = config.probeNodes;
    cc.node.gpus = gpu_count;
    cc.policy = config.policy;
    // The probe must observe the tail, not clip it: queues are
    // effectively unbounded and no per-request deadline sheds slow
    // requests, so every queueing delay the offered load causes
    // lands in the latency histogram and the measured p99 is an
    // honest function of utilization. Near saturation the queue
    // random-walks upward and p99 blows through any finite SLO,
    // which is exactly the signal the binary search needs.
    cc.node.queueLimit = std::numeric_limits<int64_t>::max() / 2;
    // Batching should not wait longer than a slice of the SLO for
    // stragglers, or the timeout floor masks the queueing signal
    // for tight-deadline apps.
    cc.node.batchTimeout =
        std::min(cc.node.batchTimeout, 0.1 * slo);
    cc.deadlineSeconds = 0.0;
    cc.retryShedRequests = false;
    cc.sampleInterval = 0.0;  // probes only need the summary
    cc.serviceModel = service;
    cc.seed = config.seed;

    cluster::ClusterResult result =
        cluster::runClusterSim(cc, trace);
    if (result.completed == 0)
        return false;
    return result.latency.p99 <= slo &&
           result.lostFraction() <= config.maxShedFraction;
}

} // namespace

double
tailSloSeconds(serve::App app, const gpu::LinkSpec &link,
               const TailCapacityConfig &config)
{
    cluster::ServiceModel service =
        cluster::calibratedServiceModel(link);
    int64_t batch = serve::appSpec(app).tunedBatch;
    return config.sloMultiplier * service(app, batch);
}

double
tailAwareServerQps(serve::App app, const gpu::LinkSpec &host_link,
                   int gpu_count, const TailCapacityConfig &config)
{
    if (config.probeNodes <= 0 || config.simSeconds <= 0.0 ||
        config.searchIterations <= 0) {
        fatal("tailAwareServerQps: probeNodes, simSeconds and "
              "searchIterations must be positive");
    }

    static std::mutex mutex;
    static std::map<std::string, double> cache;

    char key[256];
    std::snprintf(key, sizeof(key),
                  "%s|%.6g|%.6g|%d|%.4g|%.4g|%s|%s|%.4g|%.4g|%d|"
                  "%.4g|%d|%llu",
                  serve::appName(app),
                  host_link.effectiveBandwidth(),
                  host_link.perTransferLatency, gpu_count,
                  config.sloMultiplier, config.maxShedFraction,
                  cluster::routePolicyName(config.policy),
                  cluster::arrivalProcessName(config.process),
                  config.burstMultiplier, config.burstFraction,
                  config.probeNodes, config.simSeconds,
                  config.searchIterations,
                  static_cast<unsigned long long>(config.seed));
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }

    // The probe's service model is anchored to the mean-throughput
    // oracle: each of the server's gpu_count executors serves
    // queries at serverQps / gpu_count, so the probe cluster
    // saturates at exactly the closed-form capacity (including the
    // intra-server link contention the serving simulator measures)
    // and the binary search isolates pure queueing headroom — how
    // far below saturation the server must run for p99 to stay
    // under the SLO.
    double mean_qps = gpuServerQps(app, host_link, gpu_count);
    double query_seconds =
        static_cast<double>(gpu_count) / mean_qps;
    cluster::ServiceModel service =
        [query_seconds](serve::App, int64_t queries) {
            return static_cast<double>(queries) * query_seconds;
        };
    double slo = tailSloSeconds(app, host_link, config);

    // Tail-aware capacity cannot exceed saturation throughput, so
    // [0, mean_qps] brackets the search.
    double lo = 0.0;
    double hi = mean_qps;

    for (int i = 0; i < config.searchIterations; ++i) {
        double mid = 0.5 * (lo + hi);
        if (probeFeasible(app, mid, slo, gpu_count, config,
                          service)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }

    // Guard against a degenerate zero: even an SLO no load can
    // meet must yield positive capacity or provisioning divides by
    // zero. One thousandth of mean throughput marks "essentially
    // infeasible" while keeping the math finite.
    double qps = std::max(lo, 1e-3 * mean_qps);

    std::lock_guard<std::mutex> lock(mutex);
    cache.emplace(key, qps);
    return qps;
}

ServerQpsFn
tailAwareQpsFn(const TailCapacityConfig &config)
{
    return [config](serve::App app, const gpu::LinkSpec &link,
                    int gpu_count) {
        return tailAwareServerQps(app, link, gpu_count, config);
    };
}

} // namespace wsc
} // namespace djinn
