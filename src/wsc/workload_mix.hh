/**
 * @file
 * The DNN service workload mixes of paper Table 5: MIXED (all seven
 * services), IMAGE (IMC, DIG, FACE), and NLP (POS, CHK, NER).
 */

#ifndef DJINN_WSC_WORKLOAD_MIX_HH
#define DJINN_WSC_WORKLOAD_MIX_HH

#include <string>
#include <vector>

#include "serve/app.hh"

namespace djinn {
namespace wsc {

/** The three workload mixes of Table 5. */
enum class Mix {
    Mixed,
    Image,
    Nlp,
};

/** Short name of a mix ("MIXED", "IMAGE", "NLP"). */
const char *mixName(Mix mix);

/** The services a mix comprises, shares split evenly (Section 6.3). */
const std::vector<serve::App> &mixApps(Mix mix);

/** All mixes in Table 5 order. */
const std::vector<Mix> &allMixes();

} // namespace wsc
} // namespace djinn

#endif // DJINN_WSC_WORKLOAD_MIX_HH
