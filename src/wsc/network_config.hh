/**
 * @file
 * Interconnect/network design points (paper Table 6 and Section
 * 6.4): the baseline PCIe v3 + 10GbE, the cutting-edge PCIe v4 +
 * 40GbE, and the near-future QPI + 400GbE configurations.
 *
 * Table 6's unit prices are partially illegible in the available
 * paper text; the cost fields below are reconstructed assumptions,
 * phrased (like the paper) as premiums over the PCIe v3 / 10GbE
 * point, and documented in DESIGN.md.
 */

#ifndef DJINN_WSC_NETWORK_CONFIG_HH
#define DJINN_WSC_NETWORK_CONFIG_HH

#include <string>
#include <vector>

#include "gpu/link.hh"

namespace djinn {
namespace wsc {

/** One row of Table 6. */
struct NetworkConfig {
    /** Design point name. */
    std::string name;

    /**
     * Total CPU-to-GPU interconnect ingest of a server (both
     * sockets aggregated).
     */
    gpu::LinkSpec hostLink;

    /** Teamed NIC ingest available to a disaggregated GPU server. */
    gpu::LinkSpec disaggIngest;

    /** NICs teamed per GPU server. */
    int nicCount = 16;

    /** Dollar cost of one NIC of this generation (+switch share). */
    double nicUnitCost = 750.0;

    /**
     * Added per-server interconnect cost over the PCIe v3 baseline
     * (PCIe v4 retimers / QPI fabric), dollars.
     */
    double serverPremium = 0.0;
};

/** Baseline: PCIe v3 x16 + 16 teamed 10GbE NICs. */
NetworkConfig pcie3With10GbE();

/** Cutting edge: PCIe v4 x16 + 9 teamed 40GbE NICs (Section 6.4). */
NetworkConfig pcie4With40GbE();

/** Near future: 12 QPI links + 8 teamed 400GbE NICs (Section 6.4). */
NetworkConfig qpiWith400GbE();

/** The three Table 6 design points, baseline first. */
std::vector<NetworkConfig> allNetworkConfigs();

} // namespace wsc
} // namespace djinn

#endif // DJINN_WSC_NETWORK_CONFIG_HH
