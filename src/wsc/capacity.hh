/**
 * @file
 * Per-application capacity numbers feeding the TCO provisioning:
 * single-core CPU throughput for the full query (DNN plus pre/post
 * processing), the pre/post CPU time the GPU designs still pay, and
 * per-server GPU-side throughput from the serving simulator.
 */

#ifndef DJINN_WSC_CAPACITY_HH
#define DJINN_WSC_CAPACITY_HH

#include "gpu/gpu_spec.hh"
#include "gpu/link.hh"
#include "serve/app.hh"

namespace djinn {
namespace wsc {

/** CPU-side capacity of one application. */
struct CpuCapacity {
    /** Full-query (DNN + pre + post) throughput of one core, QPS. */
    double coreQps = 0.0;

    /** CPU pre+post processing seconds per query. */
    double prePostTime = 0.0;

    /** CPU DNN seconds per query. */
    double dnnTime = 0.0;
};

/** Compute CPU-side capacity for an application. */
CpuCapacity cpuCapacity(serve::App app,
                        const gpu::CpuSpec &spec = gpu::CpuSpec());

/**
 * Optimized GPU-side DNN throughput of a server (tuned batch size,
 * 4 MPS instances per GPU), in QPS. Results are cached per
 * (app, link, gpu count); the underlying measurement is a serving
 * simulation.
 *
 * @param app the application.
 * @param host_link total host interconnect the GPUs share.
 * @param gpu_count GPUs in the server.
 */
double gpuServerQps(serve::App app, const gpu::LinkSpec &host_link,
                    int gpu_count);

/**
 * Unconstrained per-GPU DNN throughput (no interconnect limit), in
 * QPS; the basis of the bandwidth-requirement analysis (Figure 13).
 */
double gpuPeakQps(serve::App app);

} // namespace wsc
} // namespace djinn

#endif // DJINN_WSC_CAPACITY_HH
