#include "wsc/capacity.hh"

#include <map>
#include <mutex>
#include <tuple>

#include "serve/simulation.hh"

namespace djinn {
namespace wsc {

CpuCapacity
cpuCapacity(serve::App app, const gpu::CpuSpec &spec)
{
    const serve::AppSpec &as = serve::appSpec(app);
    CpuCapacity out;
    out.dnnTime = serve::cpuQueryTime(app, spec);
    out.prePostTime = out.dnnTime *
                      (as.preprocFraction + as.postprocFraction);
    out.coreQps = 1.0 / (out.dnnTime + out.prePostTime);
    return out;
}

double
gpuServerQps(serve::App app, const gpu::LinkSpec &host_link,
             int gpu_count)
{
    using Key = std::tuple<serve::App, std::string, double, int>;
    static std::mutex mutex;
    static std::map<Key, double> cache;

    Key key{app, host_link.name, host_link.effectiveBandwidth(),
            gpu_count};
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }

    serve::SimConfig config;
    config.app = app;
    config.batch = serve::appSpec(app).tunedBatch;
    config.gpuCount = gpu_count;
    config.instancesPerGpu = 4;
    config.hostLink = host_link;
    // Large servers move a lot of data; give the host CPU pool a
    // socket pair's worth of cores.
    config.hostCores = 12;
    serve::SimResult result = serve::runServingSim(config);

    std::lock_guard<std::mutex> lock(mutex);
    cache[key] = result.throughputQps;
    return result.throughputQps;
}

double
gpuPeakQps(serve::App app)
{
    return gpuServerQps(app, gpu::unlimitedLink(), 1);
}

} // namespace wsc
} // namespace djinn
