/**
 * @file
 * Network bandwidth requirements for peak DNN throughput (paper
 * Section 6.1, Figure 13): the traffic a server must carry so the
 * GPUs never starve, computed from the unconstrained per-GPU
 * throughput of each application.
 */

#ifndef DJINN_WSC_BANDWIDTH_HH
#define DJINN_WSC_BANDWIDTH_HH

#include "serve/app.hh"

namespace djinn {
namespace wsc {

/**
 * Bytes per second a server with @p gpus GPUs needs to sustain an
 * application's bandwidth-unconstrained throughput: the larger of
 * the ingress (inputs) and egress (results) directions.
 */
double bandwidthRequirement(serve::App app, int gpus);

/** Ingress-only (query payload) bandwidth requirement. */
double ingressRequirement(serve::App app, int gpus);

} // namespace wsc
} // namespace djinn

#endif // DJINN_WSC_BANDWIDTH_HH
