#include "wsc/tco_params.hh"

#include <cmath>

#include "common/logging.hh"

namespace djinn {
namespace wsc {

double
financedCost(double principal, const TcoParams &params)
{
    if (principal <= 0.0)
        return 0.0;
    double r = params.interestRate / 12.0;
    double n = params.amortizationMonths;
    if (r <= 0.0)
        return principal;
    double factor = std::pow(1.0 + r, n);
    double monthly = principal * r * factor / (factor - 1.0);
    return monthly * params.lifetimeMonths;
}

TcoBreakdown
computeTco(const FleetInventory &fleet, const TcoParams &params)
{
    TcoBreakdown out;

    double server_capex =
        fleet.beefyServers * params.gpuServerCost +
        fleet.wimpyServers * params.wimpyServerCost +
        fleet.interconnectPremium;
    double gpu_capex = fleet.gpus * params.gpuCost;
    double network_capex = fleet.nicUnits * params.nicCost;

    double it_watts =
        fleet.beefyServers * params.gpuServerPowerW +
        fleet.wimpyServers * params.wimpyServerPowerW +
        fleet.gpus * params.gpuPowerW;
    double wall_watts = it_watts * params.pue;

    double facility_capex = params.wscCapexPerWatt * wall_watts;

    out.servers = financedCost(server_capex, params);
    out.gpus = financedCost(gpu_capex, params);
    out.network = financedCost(network_capex, params);
    out.facility = financedCost(facility_capex, params);

    double hours = params.lifetimeMonths * 730.0;
    out.power = wall_watts / 1000.0 * hours *
                params.electricityPerKwh;

    double monthly_amortized_servers =
        financedCost(server_capex + gpu_capex, params) /
        params.lifetimeMonths;
    out.operations =
        params.opexPerWattMonth * it_watts * params.lifetimeMonths +
        params.maintenanceRate * monthly_amortized_servers *
            params.lifetimeMonths;
    return out;
}

} // namespace wsc
} // namespace djinn
