/**
 * @file
 * Tail-aware capacity: the largest sustained load one GPU server
 * meets while keeping p99 latency under a deadline SLO and shedding
 * almost nothing, measured by probing the cluster simulator
 * (src/cluster) instead of the closed-form mean-throughput oracle.
 * Plugged into DesignConfig::serverQpsFn, it re-provisions the
 * paper's Figure 14-16 designs for tail latency: a fleet sized by
 * mean throughput has no headroom for bursts, and while a burst
 * exceeds capacity the backlog's drain time blows through p99 — so
 * tail-aware fleets buy more servers, and the TCO comparison
 * shifts.
 */

#ifndef DJINN_WSC_TAIL_CAPACITY_HH
#define DJINN_WSC_TAIL_CAPACITY_HH

#include <cstdint>

#include "cluster/policy.hh"
#include "cluster/workload.hh"
#include "gpu/link.hh"
#include "serve/app.hh"
#include "wsc/designs.hh"

namespace djinn {
namespace wsc {

/** How the tail-aware capacity probe runs. */
struct TailCapacityConfig {
    /**
     * The p99 SLO, expressed as a multiple of the app's calibrated
     * tuned-batch service time (so every app gets a deadline
     * proportional to its own work, the way Section 5.1 tunes
     * batch sizes per app).
     */
    double sloMultiplier = 5.0;

    /** Largest tolerated fraction of offered requests lost. */
    double maxShedFraction = 0.01;

    /**
     * Routing policy the probe (and so the capacity claim)
     * assumes. The probe attaches no per-request deadlines — the
     * SLO is judged against the measured p99, not enforced by
     * shedding — so deadline-aware policies behave like their
     * estimated-latency variants here.
     */
    cluster::RoutePolicy policy =
        cluster::RoutePolicy::JoinShortestQueue;

    /**
     * Arrival process the probe offers. Defaults to the bursty
     * MMPP: a multi-GPU DjiNN server under smooth Poisson load has
     * almost no queueing tail below saturation (thousands of
     * queries/s of service capacity against a multi-millisecond
     * SLO), so smooth-load tail capacity is within a percent of
     * mean throughput. What actually forces warehouse headroom is
     * burstiness — during a burst the instantaneous rate exceeds
     * capacity and the backlog's drain time blows through p99.
     */
    cluster::ArrivalProcess process =
        cluster::ArrivalProcess::Mmpp;

    /** MMPP burst-state rate multiplier (> 1). */
    double burstMultiplier = 4.0;

    /** MMPP long-run fraction of time spent bursting, (0, 1). */
    double burstFraction = 0.1;

    /** Nodes in the probe cluster; small keeps probes fast while
     * still exercising the router. */
    int probeNodes = 2;

    /** Simulated seconds of Poisson load per probe. */
    double simSeconds = 5.0;

    /** Binary-search iterations (each runs one probe). */
    int searchIterations = 12;

    /** Seed for the probe workloads. */
    uint64_t seed = 1;
};

/** The p99 SLO the probe holds @p app to, seconds. */
double tailSloSeconds(serve::App app, const gpu::LinkSpec &link,
                      const TailCapacityConfig &config);

/**
 * Max per-server QPS of @p app meeting the tail SLO under the
 * configured policy, found by binary search over offered load with
 * cluster-sim probes. Cached per (app, link, gpus, config knobs);
 * deterministic.
 */
double tailAwareServerQps(serve::App app,
                          const gpu::LinkSpec &host_link,
                          int gpu_count,
                          const TailCapacityConfig &config);

/**
 * The capacity oracle for DesignConfig::serverQpsFn: tail-aware
 * provisioning in one line,
 * `config.serverQpsFn = tailAwareQpsFn(tailConfig);`.
 */
ServerQpsFn tailAwareQpsFn(const TailCapacityConfig &config);

} // namespace wsc
} // namespace djinn

#endif // DJINN_WSC_TAIL_CAPACITY_HH
