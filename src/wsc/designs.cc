#include "wsc/designs.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "serve/app.hh"

namespace djinn {
namespace wsc {

namespace {

/**
 * The interconnect a disaggregated GPU chassis actually sees: data
 * must cross both the NIC team and the internal host link, so the
 * narrower of the two governs.
 */
gpu::LinkSpec
disaggChassisLink(const NetworkConfig &network)
{
    const gpu::LinkSpec &nics = network.disaggIngest;
    const gpu::LinkSpec &host = network.hostLink;
    return nics.effectiveBandwidth() < host.effectiveBandwidth()
        ? nics : host;
}

/** The CPU-only fleet share dedicated to one service, servers. */
double
serviceShare(Mix mix, double dnn_fraction,
             const DesignConfig &config)
{
    return config.baselineServers * dnn_fraction /
           static_cast<double>(mixApps(mix).size());
}

/**
 * Per-service DNN throughput target, QPS: what the CPU-only fleet
 * share sustains through the DNN service portion (Section 6.3
 * matches DNN service throughput across designs).
 */
double
serviceTarget(serve::App app, Mix mix, double dnn_fraction,
              const DesignConfig &config)
{
    CpuCapacity cpu = cpuCapacity(app);
    double per_core_qps = config.accountPrePost
        ? cpu.coreQps
        : 1.0 / cpu.dnnTime;
    return serviceShare(mix, dnn_fraction, config) *
           config.coresPerServer * per_core_qps *
           config.perfMultiplier;
}

/** The capacity oracle: the config's override, or the closed-form
 * mean-throughput measurement. */
double
serverQps(const DesignConfig &config, serve::App app,
          const gpu::LinkSpec &link, int gpu_count)
{
    if (config.serverQpsFn)
        return config.serverQpsFn(app, link, gpu_count);
    return gpuServerQps(app, link, gpu_count);
}

/** NICs needed to carry @p bytes_per_sec of egress, at least one. */
double
nicsForTraffic(double bytes_per_sec)
{
    double per_nic = gpu::ethernet10G().effectiveBandwidth();
    return std::max(1.0, std::ceil(bytes_per_sec / per_nic));
}

} // namespace

const char *
designName(Design design)
{
    switch (design) {
      case Design::CpuOnly: return "CPU Only";
      case Design::IntegratedGpu: return "Integrated GPU";
      case Design::DisaggregatedGpu: return "Disaggregated GPU";
    }
    return "unknown";
}

const std::vector<Design> &
allDesigns()
{
    static const std::vector<Design> designs = {
        Design::CpuOnly, Design::IntegratedGpu,
        Design::DisaggregatedGpu,
    };
    return designs;
}

DisaggServerPlan
planDisaggServer(serve::App app, const DesignConfig &config)
{
    const serve::AppSpec &spec = serve::appSpec(app);
    gpu::LinkSpec chassis = disaggChassisLink(config.network);
    double per_gpu = serverQps(config, app, chassis, 1);
    double ingest_qps = chassis.effectiveBandwidth() /
                        (spec.inputBytes + spec.outputBytes);

    DisaggServerPlan plan;
    // Provision only as many GPUs as the chassis bandwidth can
    // feed; this is the disaggregated design's key freedom
    // (Section 6.2).
    plan.gpusPerServer = static_cast<int>(std::clamp<double>(
        std::floor(ingest_qps / per_gpu), 1.0,
        static_cast<double>(config.maxGpusPerDisaggServer)));
    plan.serverQps = serverQps(config, app, chassis,
                               plan.gpusPerServer);
    return plan;
}

ProvisionResult
provision(Design design, Mix mix, double dnn_fraction,
          const DesignConfig &config)
{
    if (dnn_fraction < 0.0 || dnn_fraction > 1.0)
        fatal("provision: dnn_fraction %f out of [0,1]",
              dnn_fraction);

    ProvisionResult result;
    result.design = design;
    FleetInventory &fleet = result.fleet;

    // Non-DNN webservices run on beefy CPU servers in every design.
    double non_dnn = config.baselineServers * (1.0 - dnn_fraction);
    fleet.beefyServers += non_dnn;
    fleet.nicUnits += non_dnn;

    for (serve::App app : mixApps(mix)) {
        double target = serviceTarget(app, mix, dnn_fraction,
                                      config);
        if (target <= 0.0)
            continue;
        result.dnnQps += target;
        const serve::AppSpec &spec = serve::appSpec(app);
        CpuCapacity cpu = cpuCapacity(app);

        switch (design) {
          case Design::CpuOnly:
            {
                // The baseline fleet share runs the full service
                // (scaled when perfMultiplier grows the workload).
                double servers = std::ceil(
                    serviceShare(mix, dnn_fraction, config) *
                    config.perfMultiplier);
                fleet.beefyServers += servers;
                fleet.nicUnits += servers;
            }
            break;

          case Design::IntegratedGpu:
            {
                double server_qps = serverQps(
                    config, app, config.network.hostLink,
                    config.gpusPerIntegratedServer);
                if (config.accountPrePost) {
                    // The same server's cores must also keep up
                    // with query pre/post-processing.
                    double cpu_qps = config.coresPerServer /
                                     std::max(cpu.prePostTime,
                                              1e-12);
                    server_qps = std::min(server_qps, cpu_qps);
                }
                double servers = std::ceil(target / server_qps);
                fleet.beefyServers += servers;
                fleet.gpus += servers *
                              config.gpusPerIntegratedServer;
                fleet.nicUnits += servers;
                fleet.interconnectPremium +=
                    servers * config.network.serverPremium;
            }
            break;

          case Design::DisaggregatedGpu:
            {
                if (config.accountPrePost) {
                    // Beefy CPU servers run pre/post-processing
                    // and ship prepared queries to GPU servers.
                    double cpu_servers = std::max(std::ceil(
                        target * cpu.prePostTime /
                        config.coresPerServer), 1.0);
                    fleet.beefyServers += cpu_servers;
                    double egress_per_server =
                        target *
                        (spec.inputBytes + spec.outputBytes) /
                        cpu_servers;
                    fleet.nicUnits += cpu_servers *
                        nicsForTraffic(egress_per_server);
                }

                // Wimpy GPU chassis sized to their bandwidth.
                DisaggServerPlan plan = planDisaggServer(app,
                                                         config);
                double gpu_servers = std::ceil(target /
                                               plan.serverQps);
                fleet.wimpyServers += gpu_servers;
                fleet.gpus += gpu_servers * plan.gpusPerServer;
                fleet.nicUnits += gpu_servers *
                                  config.network.nicCount *
                                  (config.network.nicUnitCost /
                                   config.params.nicCost);
                fleet.interconnectPremium +=
                    gpu_servers * config.network.serverPremium;
            }
            break;
        }
    }

    result.tco = computeTco(fleet, config.params);
    return result;
}

double
networkPerformanceGain(Mix mix, const NetworkConfig &network,
                       const DesignConfig &baseline_config)
{
    // Fixed hardware: a fully populated chassis (the paper's
    // 8-GPU server), bandwidth-starved under the baseline network,
    // unlocked by the upgrade.
    int gpus = baseline_config.maxGpusPerDisaggServer;
    gpu::LinkSpec base_link =
        disaggChassisLink(baseline_config.network);
    gpu::LinkSpec new_link = disaggChassisLink(network);

    double total_gain = 0.0;
    int count = 0;
    for (serve::App app : mixApps(mix)) {
        double base_qps = gpuServerQps(app, base_link, gpus);
        double new_qps = gpuServerQps(app, new_link, gpus);
        total_gain += new_qps / base_qps;
        ++count;
    }
    return count ? total_gain / count : 1.0;
}

} // namespace wsc
} // namespace djinn
