/**
 * @file
 * Total-cost-of-ownership parameters (paper Table 4) and the cost
 * arithmetic shared by the WSC designs: capital amortization with
 * interest, facility capex per watt, power, opex, and maintenance,
 * following the Barroso et al. methodology the paper cites.
 */

#ifndef DJINN_WSC_TCO_PARAMS_HH
#define DJINN_WSC_TCO_PARAMS_HH

#include <string>

namespace djinn {
namespace wsc {

/** Cost factors, defaults per paper Table 4. */
struct TcoParams {
    /** 300 W GPU-capable (beefy) server chassis, dollars. */
    double gpuServerCost = 6864.0;

    /** Beefy server power, watts. */
    double gpuServerPowerW = 300.0;

    /** High-end 240 W GPU board, dollars. */
    double gpuCost = 3314.0;

    /** GPU board power, watts. */
    double gpuPowerW = 240.0;

    /** 75 W wimpy server, dollars. */
    double wimpyServerCost = 1716.0;

    /** Wimpy server power, watts. */
    double wimpyServerPowerW = 75.0;

    /** Networking cost per 10GbE NIC including switch share. */
    double nicCost = 750.0;

    /** WSC facility capital expenditure, dollars per watt. */
    double wscCapexPerWatt = 10.0;

    /** Operational expenditure, dollars per watt per month. */
    double opexPerWattMonth = 0.04;

    /** Power usage effectiveness. */
    double pue = 1.1;

    /** Electricity price, dollars per kWh. */
    double electricityPerKwh = 0.067;

    /** Annual interest rate on capital expenditures. */
    double interestRate = 0.08;

    /** Server lifetime, months (3 years). */
    double lifetimeMonths = 36.0;

    /** Loan amortization period, months (3 years). */
    double amortizationMonths = 36.0;

    /**
     * Server maintenance/operations, fraction of the monthly
     * amortized server capital per month.
     */
    double maintenanceRate = 0.05;
};

/** One WSC design's provisioned hardware. */
struct FleetInventory {
    /** Beefy CPU (or CPU+GPU host) servers. */
    double beefyServers = 0.0;

    /** Wimpy GPU-host servers (disaggregated design). */
    double wimpyServers = 0.0;

    /** Discrete GPU boards. */
    double gpus = 0.0;

    /** 10GbE-equivalent NIC units (by cost). */
    double nicUnits = 0.0;

    /** Extra per-server interconnect premium dollars (PCIe4/QPI). */
    double interconnectPremium = 0.0;
};

/** TCO broken into the components Figure 16 plots. */
struct TcoBreakdown {
    /** Server capital (amortized, with financing), dollars. */
    double servers = 0.0;

    /** GPU capital (amortized, with financing), dollars. */
    double gpus = 0.0;

    /** Network capital (amortized, with financing), dollars. */
    double network = 0.0;

    /** Facility capital (amortized, with financing), dollars. */
    double facility = 0.0;

    /** Electricity over the lifetime, dollars. */
    double power = 0.0;

    /** Opex + maintenance over the lifetime, dollars. */
    double operations = 0.0;

    /** Lifetime total. */
    double
    total() const
    {
        return servers + gpus + network + facility + power +
               operations;
    }
};

/**
 * Lifetime dollars paid on a loan of @p principal amortized monthly
 * at the params' interest rate.
 */
double financedCost(double principal, const TcoParams &params);

/** Compute the lifetime TCO of a fleet. */
TcoBreakdown computeTco(const FleetInventory &fleet,
                        const TcoParams &params);

} // namespace wsc
} // namespace djinn

#endif // DJINN_WSC_TCO_PARAMS_HH
