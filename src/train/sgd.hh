/**
 * @file
 * Minibatch SGD training for the inference library (extension
 * beyond the paper's inference focus). The paper's authors had to
 * train DeepFace on PubFig83+LFW themselves before serving it; a
 * complete release of the system therefore needs a trainer.
 *
 * Supported layers: fully connected, convolution (via
 * im2col/col2im), ReLU/Tanh/Sigmoid/HardTanh, max/avg pooling,
 * dropout/flatten (identity), and a fused softmax +
 * cross-entropy loss (a trailing Softmax layer is folded into the
 * loss). LRN and locally connected layers are not trainable here.
 */

#ifndef DJINN_TRAIN_SGD_HH
#define DJINN_TRAIN_SGD_HH

#include <cstdint>
#include <vector>

#include "nn/network.hh"

namespace djinn {
namespace train {

/** SGD hyper-parameters. */
struct TrainConfig {
    /** Learning rate. */
    double learningRate = 0.01;

    /** Classical momentum coefficient. */
    double momentum = 0.9;

    /** L2 weight decay. */
    double weightDecay = 0.0;
};

/**
 * A momentum-SGD trainer bound to one network. The network's
 * parameters are updated in place; it must not serve inference
 * concurrently with training.
 */
class SgdTrainer
{
  public:
    /**
     * @param net the network to train (finalized).
     * @param config hyper-parameters.
     */
    SgdTrainer(nn::Network &net, const TrainConfig &config);

    /**
     * One minibatch step: forward, softmax cross-entropy against
     * @p labels, backward, momentum update.
     *
     * @param input batch input (N samples).
     * @param labels one class index per sample.
     * @return the batch's mean cross-entropy loss (before the
     *         update).
     */
    double step(const nn::Tensor &input,
                const std::vector<int> &labels);

    /** Mean cross-entropy loss without updating parameters. */
    double evaluate(const nn::Tensor &input,
                    const std::vector<int> &labels);

    /** Number of steps taken. */
    uint64_t steps() const { return steps_; }

  private:
    double forwardBackward(const nn::Tensor &input,
                           const std::vector<int> &labels,
                           bool update);
    void applyUpdates();

    nn::Network &net_;
    TrainConfig config_;
    uint64_t steps_ = 0;

    // Parallel to each layer's params(): accumulated gradients and
    // momentum velocities.
    std::vector<std::vector<nn::Tensor>> grads_;
    std::vector<std::vector<nn::Tensor>> velocity_;
};

/**
 * Top-1 classification accuracy of @p net on a labeled batch.
 */
double accuracy(const nn::Network &net, const nn::Tensor &input,
                const std::vector<int> &labels);

} // namespace train
} // namespace djinn

#endif // DJINN_TRAIN_SGD_HH
