#include "train/sgd.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.hh"
#include "nn/gemm.hh"
#include "nn/layers/convolution.hh"
#include "nn/layers/inner_product.hh"
#include "nn/layers/pooling.hh"

namespace djinn {
namespace train {

namespace {

/** Softmax cross-entropy: fills @p grad with dL/dlogits, returns
 *  the mean loss. @p logits is (N x classes). */
double
softmaxCrossEntropy(const nn::Tensor &logits,
                    const std::vector<int> &labels,
                    nn::Tensor &grad)
{
    int64_t batch = logits.shape().n();
    int64_t classes = logits.shape().sampleElems();
    grad.resize(logits.shape());
    double loss = 0.0;
    for (int64_t n = 0; n < batch; ++n) {
        const float *row = logits.sample(n);
        float *g = grad.sample(n);
        float max = *std::max_element(row, row + classes);
        double sum = 0.0;
        for (int64_t c = 0; c < classes; ++c)
            sum += std::exp(static_cast<double>(row[c]) - max);
        int label = labels[static_cast<size_t>(n)];
        if (label < 0 || label >= classes)
            fatal("label %d out of range [0, %lld)", label,
                  static_cast<long long>(classes));
        double log_z = std::log(sum) + max;
        loss += log_z - row[label];
        double inv_batch = 1.0 / static_cast<double>(batch);
        for (int64_t c = 0; c < classes; ++c) {
            double p = std::exp(static_cast<double>(row[c]) -
                                log_z);
            g[c] = static_cast<float>(
                (p - (c == label ? 1.0 : 0.0)) * inv_batch);
        }
    }
    return loss / static_cast<double>(batch);
}

void
backwardInnerProduct(const nn::InnerProductLayer &fc,
                     const nn::Tensor &x, const nn::Tensor &dy,
                     nn::Tensor &dx, std::vector<nn::Tensor> &grads)
{
    int64_t batch = x.shape().n();
    int64_t in = fc.inputs();
    int64_t out = fc.outputs();
    // dW (out x in) += dy^T (out x N) * x (N x in)
    nn::sgemm(nn::Trans::Yes, nn::Trans::No, out, in, batch, 1.0f,
              dy.data(), out, x.data(), in, 1.0f, grads[0].data(),
              in);
    if (grads.size() > 1) {
        float *db = grads[1].data();
        for (int64_t n = 0; n < batch; ++n) {
            const float *row = dy.sample(n);
            for (int64_t o = 0; o < out; ++o)
                db[o] += row[o];
        }
    }
    // dx (N x in) = dy (N x out) * W (out x in)
    dx.resize(x.shape());
    nn::sgemm(nn::Trans::No, nn::Trans::No, batch, in, out, 1.0f,
              dy.data(), out,
              const_cast<nn::InnerProductLayer &>(fc).params()[0]
                  ->data(),
              in, 0.0f, dx.data(), in);
}

void
backwardConvolution(nn::ConvolutionLayer &conv, const nn::Tensor &x,
                    const nn::Tensor &dy, nn::Tensor &dx,
                    std::vector<nn::Tensor> &grads)
{
    const nn::Shape &is = conv.inputShape();
    const nn::Shape &os = conv.outputShape();
    int64_t groups = conv.groups();
    int64_t in_per_group = is.c() / groups;
    int64_t out_per_group = os.c() / groups;
    int64_t cols = os.h() * os.w();
    int64_t patch = in_per_group * conv.kernel() * conv.kernel();
    const float *weights = conv.params()[0]->data();

    dx.resize(x.shape());
    dx.fill(0.0f);
    std::vector<float> col(static_cast<size_t>(patch) * cols);
    std::vector<float> dcol(static_cast<size_t>(patch) * cols);

    for (int64_t n = 0; n < x.shape().n(); ++n) {
        for (int64_t g = 0; g < groups; ++g) {
            const float *x_g = x.sample(n) +
                               g * in_per_group * is.h() * is.w();
            const float *dy_g = dy.sample(n) +
                                g * out_per_group * cols;
            float *dw_g = grads[0].data() +
                          g * out_per_group * patch;
            nn::im2col(x_g, in_per_group, is.h(), is.w(),
                       conv.kernel(), conv.kernel(), conv.pad(),
                       conv.stride(), col.data());
            // dW_g (out_pg x patch) += dy_g (out_pg x cols) *
            //                          col^T (cols x patch)
            nn::sgemm(nn::Trans::No, nn::Trans::Yes, out_per_group,
                      patch, cols, 1.0f, dy_g, cols, col.data(),
                      cols, 1.0f, dw_g, patch);
            // dcol (patch x cols) = W_g^T (patch x out_pg) * dy_g
            const float *w_g = weights + g * out_per_group * patch;
            nn::sgemm(nn::Trans::Yes, nn::Trans::No, patch, cols,
                      out_per_group, 1.0f, w_g, patch, dy_g, cols,
                      0.0f, dcol.data(), cols);
            float *dx_g = dx.sample(n) +
                          g * in_per_group * is.h() * is.w();
            nn::col2im(dcol.data(), in_per_group, is.h(), is.w(),
                       conv.kernel(), conv.kernel(), conv.pad(),
                       conv.stride(), dx_g);
        }
        if (grads.size() > 1) {
            float *db = grads[1].data();
            const float *dy_n = dy.sample(n);
            for (int64_t oc = 0; oc < os.c(); ++oc) {
                double acc = 0.0;
                for (int64_t i = 0; i < cols; ++i)
                    acc += dy_n[oc * cols + i];
                db[oc] += static_cast<float>(acc);
            }
        }
    }
}

void
backwardActivation(const nn::Layer &layer, const nn::Tensor &x,
                   const nn::Tensor &y, const nn::Tensor &dy,
                   nn::Tensor &dx)
{
    dx.resize(x.shape());
    int64_t total = x.elems();
    switch (layer.kind()) {
      case nn::LayerKind::ReLU:
        for (int64_t i = 0; i < total; ++i)
            dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
        break;
      case nn::LayerKind::Tanh:
        for (int64_t i = 0; i < total; ++i)
            dx[i] = dy[i] * (1.0f - y[i] * y[i]);
        break;
      case nn::LayerKind::Sigmoid:
        for (int64_t i = 0; i < total; ++i)
            dx[i] = dy[i] * y[i] * (1.0f - y[i]);
        break;
      case nn::LayerKind::HardTanh:
        for (int64_t i = 0; i < total; ++i)
            dx[i] = (x[i] > -1.0f && x[i] < 1.0f) ? dy[i] : 0.0f;
        break;
      default:
        panic("backwardActivation: bad kind");
    }
}

void
backwardPooling(const nn::PoolingLayer &pool, const nn::Tensor &x,
                const nn::Tensor &dy, nn::Tensor &dx)
{
    const nn::Shape &is = pool.inputShape();
    const nn::Shape &os = pool.outputShape();
    bool is_max = pool.kind() == nn::LayerKind::MaxPool;
    dx.resize(x.shape());
    dx.fill(0.0f);

    for (int64_t n = 0; n < x.shape().n(); ++n) {
        for (int64_t c = 0; c < is.c(); ++c) {
            const float *plane =
                x.sample(n) + c * is.h() * is.w();
            float *dplane = dx.sample(n) + c * is.h() * is.w();
            const float *dout =
                dy.sample(n) + c * os.h() * os.w();
            for (int64_t oh = 0; oh < os.h(); ++oh) {
                for (int64_t ow = 0; ow < os.w(); ++ow) {
                    int64_t h0 = std::max<int64_t>(
                        oh * pool.stride() - pool.pad(), 0);
                    int64_t w0 = std::max<int64_t>(
                        ow * pool.stride() - pool.pad(), 0);
                    int64_t h1 = std::min(
                        oh * pool.stride() - pool.pad() +
                            pool.kernel(), is.h());
                    int64_t w1 = std::min(
                        ow * pool.stride() - pool.pad() +
                            pool.kernel(), is.w());
                    float g = dout[oh * os.w() + ow];
                    if (is_max) {
                        int64_t best_h = h0, best_w = w0;
                        float best =
                            -std::numeric_limits<float>::infinity();
                        for (int64_t h = h0; h < h1; ++h) {
                            for (int64_t w = w0; w < w1; ++w) {
                                if (plane[h * is.w() + w] > best) {
                                    best = plane[h * is.w() + w];
                                    best_h = h;
                                    best_w = w;
                                }
                            }
                        }
                        dplane[best_h * is.w() + best_w] += g;
                    } else {
                        int64_t count = std::max<int64_t>(
                            (h1 - h0) * (w1 - w0), 1);
                        float share = g / static_cast<float>(count);
                        for (int64_t h = h0; h < h1; ++h) {
                            for (int64_t w = w0; w < w1; ++w)
                                dplane[h * is.w() + w] += share;
                        }
                    }
                }
            }
        }
    }
}

} // namespace

SgdTrainer::SgdTrainer(nn::Network &net, const TrainConfig &config)
    : net_(net), config_(config)
{
    if (!net.finalized())
        fatal("SgdTrainer: network must be finalized");
    for (size_t i = 0; i < net.layerCount(); ++i) {
        nn::Layer &layer = net.layer(i);
        switch (layer.kind()) {
          case nn::LayerKind::LRN:
          case nn::LayerKind::LocallyConnected:
            fatal("SgdTrainer: layer '%s' (%s) is not trainable",
                  layer.name().c_str(),
                  nn::layerKindName(layer.kind()));
          case nn::LayerKind::Softmax:
            if (i + 1 != net.layerCount())
                fatal("SgdTrainer: softmax must be the final "
                      "layer");
            break;
          default:
            break;
        }
        std::vector<nn::Tensor> g, v;
        for (nn::Tensor *param : layer.params()) {
            g.emplace_back(param->shape());
            v.emplace_back(param->shape());
        }
        grads_.push_back(std::move(g));
        velocity_.push_back(std::move(v));
    }
}

double
SgdTrainer::forwardBackward(const nn::Tensor &input,
                            const std::vector<int> &labels,
                            bool update)
{
    int64_t batch = input.shape().n();
    if (static_cast<int64_t>(labels.size()) != batch)
        fatal("SgdTrainer: %zu labels for a batch of %lld",
              labels.size(), static_cast<long long>(batch));

    // Forward, keeping every activation.
    size_t layers = net_.layerCount();
    std::vector<nn::Tensor> acts(layers + 1);
    acts[0] = input;
    for (size_t i = 0; i < layers; ++i)
        net_.layer(i).forward(acts[i], acts[i + 1]);

    // Fused softmax + cross-entropy: a trailing Softmax layer is
    // folded into the loss gradient computed on its *input*.
    size_t top = layers;
    if (net_.layer(layers - 1).kind() == nn::LayerKind::Softmax)
        top = layers - 1;

    nn::Tensor grad;
    double loss = softmaxCrossEntropy(acts[top], labels, grad);
    if (!update)
        return loss;

    for (auto &layer_grads : grads_) {
        for (auto &g : layer_grads)
            g.fill(0.0f);
    }

    // Backward below the (folded) softmax.
    nn::Tensor grad_in;
    for (size_t i = top; i-- > 0;) {
        nn::Layer &layer = net_.layer(i);
        const nn::Tensor &x = acts[i];
        const nn::Tensor &y = acts[i + 1];
        switch (layer.kind()) {
          case nn::LayerKind::InnerProduct:
            backwardInnerProduct(
                static_cast<nn::InnerProductLayer &>(layer), x,
                grad, grad_in, grads_[i]);
            break;
          case nn::LayerKind::Convolution:
            backwardConvolution(
                static_cast<nn::ConvolutionLayer &>(layer), x,
                grad, grad_in, grads_[i]);
            break;
          case nn::LayerKind::ReLU:
          case nn::LayerKind::Tanh:
          case nn::LayerKind::Sigmoid:
          case nn::LayerKind::HardTanh:
            backwardActivation(layer, x, y, grad, grad_in);
            break;
          case nn::LayerKind::MaxPool:
          case nn::LayerKind::AvgPool:
            backwardPooling(
                static_cast<nn::PoolingLayer &>(layer), x, grad,
                grad_in);
            break;
          case nn::LayerKind::Dropout:
          case nn::LayerKind::Flatten:
            grad_in.resize(x.shape());
            std::memcpy(grad_in.data(), grad.data(),
                        static_cast<size_t>(grad.elems()) *
                        sizeof(float));
            break;
          default:
            panic("unreachable trainable layer kind");
        }
        std::swap(grad, grad_in);
    }

    applyUpdates();
    ++steps_;
    return loss;
}

void
SgdTrainer::applyUpdates()
{
    float lr = static_cast<float>(config_.learningRate);
    float mu = static_cast<float>(config_.momentum);
    float wd = static_cast<float>(config_.weightDecay);
    for (size_t i = 0; i < net_.layerCount(); ++i) {
        auto params = net_.layer(i).params();
        for (size_t p = 0; p < params.size(); ++p) {
            float *w = params[p]->data();
            float *g = grads_[i][p].data();
            float *v = velocity_[i][p].data();
            int64_t total = params[p]->elems();
            for (int64_t j = 0; j < total; ++j) {
                v[j] = mu * v[j] - lr * (g[j] + wd * w[j]);
                w[j] += v[j];
            }
        }
    }
}

double
SgdTrainer::step(const nn::Tensor &input,
                 const std::vector<int> &labels)
{
    return forwardBackward(input, labels, true);
}

double
SgdTrainer::evaluate(const nn::Tensor &input,
                     const std::vector<int> &labels)
{
    return forwardBackward(input, labels, false);
}

double
accuracy(const nn::Network &net, const nn::Tensor &input,
         const std::vector<int> &labels)
{
    nn::Tensor output = net.forward(input);
    int64_t batch = input.shape().n();
    int64_t correct = 0;
    for (int64_t n = 0; n < batch; ++n) {
        if (output.argmaxSample(n) ==
            labels[static_cast<size_t>(n)]) {
            ++correct;
        }
    }
    return static_cast<double>(correct) /
           static_cast<double>(std::max<int64_t>(batch, 1));
}

} // namespace train
} // namespace djinn
