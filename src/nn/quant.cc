#include "nn/quant.hh"

#include <algorithm>

#include "common/logging.hh"

namespace djinn {
namespace nn {

const char *
precisionName(Precision p)
{
    switch (p) {
      case Precision::F32: return "f32";
      case Precision::Bf16: return "bf16";
      case Precision::Int8: return "int8";
    }
    return "unknown";
}

Precision
precisionFromName(const std::string &name)
{
    if (name == "f32" || name == "fp32" || name == "float")
        return Precision::F32;
    if (name == "bf16" || name == "bfloat16")
        return Precision::Bf16;
    if (name == "int8" || name == "s8")
        return Precision::Int8;
    fatal("unknown precision '%s' (expected f32, bf16, or int8)",
          name.c_str());
}

QuantParams
QuantParams::symmetricS8(float maxAbs)
{
    QuantParams p;
    p.scale = maxAbs > 0.0f ? maxAbs / 127.0f : 1.0f;
    p.zeroPoint = 0;
    p.qmin = -127;
    p.qmax = 127;
    return p;
}

namespace {

/** Affine mapping over [lo, hi] onto integer codes [qmin, qmax]. */
QuantParams
affine(float lo, float hi, int32_t qmin, int32_t qmax)
{
    // Widen the range to include 0 so real zero (and conv padding)
    // is exactly representable, and guard against a degenerate
    // single-value range.
    lo = std::min(lo, 0.0f);
    hi = std::max(hi, 0.0f);
    // The span is computed in double: a range calibrated near
    // ±FLT_MAX would overflow hi - lo in float and poison the scale
    // with inf.
    double span = static_cast<double>(hi) - static_cast<double>(lo);
    if (span <= 0.0) {
        QuantParams p;
        p.scale = 1.0f;
        p.zeroPoint = qmin;
        p.qmin = qmin;
        p.qmax = qmax;
        return p;
    }
    QuantParams p;
    p.qmin = qmin;
    p.qmax = qmax;
    p.scale =
        static_cast<float>(span / static_cast<double>(qmax - qmin));
    // The zero point is the code real zero maps to; rounding keeps
    // it an integer so zero round-trips exactly.
    float zp = static_cast<float>(qmin) - lo / p.scale;
    p.zeroPoint = static_cast<int32_t>(std::lround(
        std::min(std::max(zp, static_cast<float>(qmin)),
                 static_cast<float>(qmax))));
    return p;
}

} // namespace

QuantParams
QuantParams::affineU8(float lo, float hi)
{
    return affine(lo, hi, 0, 255);
}

QuantParams
QuantParams::affineS8(float lo, float hi)
{
    return affine(lo, hi, -128, 127);
}

void
minMax(const float *data, int64_t n, float *lo, float *hi)
{
    if (n <= 0) {
        *lo = 0.0f;
        *hi = 0.0f;
        return;
    }
    float mn = data[0];
    float mx = data[0];
    for (int64_t i = 1; i < n; ++i) {
        mn = std::min(mn, data[i]);
        mx = std::max(mx, data[i]);
    }
    *lo = mn;
    *hi = mx;
}

float
maxAbs(const float *data, int64_t n)
{
    float m = 0.0f;
    for (int64_t i = 0; i < n; ++i)
        m = std::max(m, std::fabs(data[i]));
    return m;
}

} // namespace nn
} // namespace djinn
