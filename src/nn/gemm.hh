/**
 * @file
 * Single-precision general matrix multiply, the compute core of DNN
 * inference (the role ATLAS plays in the paper's CPU baseline).
 *
 * C = alpha * op(A) * op(B) + beta * C, row-major storage.
 *
 * Two implementations live here:
 *
 *  - sgemm: the production kernel — packed A/B panels, cache
 *    blocking (KC x MC), an 8x8 register-tiled microkernel written
 *    so the compiler vectorizes it, and row-partitioned execution
 *    across the shared common::computePool(). Its reduction order
 *    is fixed (ascending k within fixed-size blocks), so results
 *    are bit-identical across runs and across thread counts
 *    (DESIGN.md §8).
 *
 *  - sgemm_naive: the original scalar reference kernel, kept for
 *    differential testing and as the benchmark baseline. Never
 *    threaded.
 */

#ifndef DJINN_NN_GEMM_HH
#define DJINN_NN_GEMM_HH

#include <cstdint>

namespace djinn {
namespace nn {

/** Whether an operand is used as stored or transposed. */
enum class Trans {
    No,
    Yes,
};

/**
 * Row-major SGEMM: C (m x n) = alpha * op(A) * op(B) + beta * C.
 *
 * op(A) is m x k and op(B) is k x n after applying the transpose
 * flags. Leading dimensions are the row strides of the matrices *as
 * stored* (so A is lda-strided regardless of transA).
 *
 * Runs on the shared compute pool when the problem is large enough
 * (see common::setComputeThreads / DJINN_COMPUTE_THREADS); output
 * bits do not depend on the pool size. n == 1 takes a dedicated
 * matrix-vector fast path.
 */
void sgemm(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
           int64_t k, float alpha, const float *a, int64_t lda,
           const float *b, int64_t ldb, float beta, float *c,
           int64_t ldc);

/** Convenience SGEMM with no transposes and unit strides. */
void sgemm(int64_t m, int64_t n, int64_t k, const float *a,
           const float *b, float *c);

/**
 * Reference SGEMM: the original single-threaded scalar kernel
 * (cache-blocked saxpy loops). Used by the differential test
 * battery and as the microbenchmark baseline; not a hot path.
 */
void sgemm_naive(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
                 int64_t k, float alpha, const float *a, int64_t lda,
                 const float *b, int64_t ldb, float beta, float *c,
                 int64_t ldc);

/**
 * Matrix-vector multiply y = A * x with A stored row-major (m x n).
 * Routed through sgemm's n == 1 fast path, so it inherits the
 * kernel's threading and determinism guarantees.
 */
void sgemv(int64_t m, int64_t n, const float *a, const float *x,
           float *y);

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_GEMM_HH
