/**
 * @file
 * Single-precision general matrix multiply, the compute core of DNN
 * inference (the role ATLAS plays in the paper's CPU baseline).
 *
 * C = alpha * op(A) * op(B) + beta * C, row-major storage.
 *
 * Two implementations live here:
 *
 *  - sgemm: the production kernel — packed A/B panels, cache
 *    blocking (KC x MC), an 8x8 register-tiled microkernel written
 *    so the compiler vectorizes it, and row-partitioned execution
 *    across the shared common::computePool(). Its reduction order
 *    is fixed (ascending k within fixed-size blocks), so results
 *    are bit-identical across runs and across thread counts
 *    (DESIGN.md §8).
 *
 *  - sgemm_naive: the original scalar reference kernel, kept for
 *    differential testing and as the benchmark baseline. Never
 *    threaded.
 */

#ifndef DJINN_NN_GEMM_HH
#define DJINN_NN_GEMM_HH

#include <cstdint>

#include "nn/quant.hh"

namespace djinn {
namespace nn {

/** Whether an operand is used as stored or transposed. */
enum class Trans {
    No,
    Yes,
};

/**
 * Row-major SGEMM: C (m x n) = alpha * op(A) * op(B) + beta * C.
 *
 * op(A) is m x k and op(B) is k x n after applying the transpose
 * flags. Leading dimensions are the row strides of the matrices *as
 * stored* (so A is lda-strided regardless of transA).
 *
 * Runs on the shared compute pool when the problem is large enough
 * (see common::setComputeThreads / DJINN_COMPUTE_THREADS); output
 * bits do not depend on the pool size. n == 1 takes a dedicated
 * matrix-vector fast path.
 */
void sgemm(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
           int64_t k, float alpha, const float *a, int64_t lda,
           const float *b, int64_t ldb, float beta, float *c,
           int64_t ldc);

/** Convenience SGEMM with no transposes and unit strides. */
void sgemm(int64_t m, int64_t n, int64_t k, const float *a,
           const float *b, float *c);

/**
 * Reference SGEMM: the original single-threaded scalar kernel
 * (cache-blocked saxpy loops). Used by the differential test
 * battery and as the microbenchmark baseline; not a hot path.
 */
void sgemm_naive(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
                 int64_t k, float alpha, const float *a, int64_t lda,
                 const float *b, int64_t ldb, float beta, float *c,
                 int64_t ldc);

/**
 * Matrix-vector multiply y = A * x with A stored row-major (m x n).
 * Routed through sgemm's n == 1 fast path, so it inherits the
 * kernel's threading and determinism guarantees.
 */
void sgemv(int64_t m, int64_t n, const float *a, const float *x,
           float *y);

// ---------------------------------------------------------------
// Low-precision kernels (DESIGN.md §14). Same blocking, packing,
// and row-ownership structure as sgemm; both are bit-identical
// across runs and thread counts per precision.
// ---------------------------------------------------------------

/**
 * bf16 GEMM: C = alpha * op(A) * op(B) + beta * C where A and B are
 * rounded to bfloat16 (round-to-nearest-even) as they are packed
 * into panels. Accumulation stays f32 in the same fixed order as
 * sgemm, so the result is deterministic on every host; the error
 * against sgemm is bounded by the bf16 unit roundoff (2^-8 relative
 * per operand, so ~k * 2^-8 per dot product).
 */
void gemm_bf16(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
               int64_t k, float alpha, const float *a, int64_t lda,
               const float *b, int64_t ldb, float beta, float *c,
               int64_t ldc);

/**
 * int8 GEMM, activations on the left (the fully connected layer
 * orientation): C = alpha * deq(q(A) * Bq) + beta * C.
 *
 * op(A) (m x k, f32) is quantized to unsigned 8-bit codes with the
 * per-tensor affine mapping @p aq as it is packed; @p b holds
 * pre-quantized signed 8-bit weight codes in the same storage
 * layout sgemm expects of B (ldb-strided, trans_b applies), with
 * symmetric per-output-channel scales @p b_scales — one per column
 * j of op(B). Accumulation is exact int32 (AVX-512 VNNI vpdpbusd
 * when available, a bit-identical scalar loop otherwise); the
 * zero-point correction and scale/dequant happen once per output
 * element on store. Requires k <= 1 << 16 so the int32 accumulators
 * cannot overflow.
 */
void gemm_s8(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
             int64_t k, float alpha, const float *a, int64_t lda,
             const QuantParams &aq, const int8_t *b, int64_t ldb,
             const float *b_scales, float beta, float *c,
             int64_t ldc);

/**
 * int8 GEMM, weights on the left (the convolution orientation):
 * C = alpha * deq(Aq * q(B)) + beta * C.
 *
 * op(A) (m x k) holds pre-quantized signed 8-bit weight codes with
 * symmetric per-output-channel scales @p a_scales — one per row i
 * of op(A); op(B) (k x n, f32) is quantized per tensor with the
 * affine signed-8 mapping @p bq as it is packed. Same accumulation
 * and determinism guarantees as gemm_s8.
 */
void gemm_s8_wl(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
                int64_t k, float alpha, const int8_t *a, int64_t lda,
                const float *a_scales, const float *b, int64_t ldb,
                const QuantParams &bq, float beta, float *c,
                int64_t ldc);

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_GEMM_HH
