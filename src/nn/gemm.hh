/**
 * @file
 * Single-precision general matrix multiply, the compute core of DNN
 * inference (the role ATLAS plays in the paper's CPU baseline).
 *
 * C = alpha * op(A) * op(B) + beta * C, row-major storage.
 */

#ifndef DJINN_NN_GEMM_HH
#define DJINN_NN_GEMM_HH

#include <cstdint>

namespace djinn {
namespace nn {

/** Whether an operand is used as stored or transposed. */
enum class Trans {
    No,
    Yes,
};

/**
 * Row-major SGEMM: C (m x n) = alpha * op(A) * op(B) + beta * C.
 *
 * op(A) is m x k and op(B) is k x n after applying the transpose
 * flags. Leading dimensions are the row strides of the matrices *as
 * stored* (so A is lda-strided regardless of transA).
 *
 * The implementation is cache-blocked with a small register tile;
 * correctness is the priority, with performance adequate for the
 * functional service and tests.
 */
void sgemm(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
           int64_t k, float alpha, const float *a, int64_t lda,
           const float *b, int64_t ldb, float beta, float *c,
           int64_t ldc);

/** Convenience SGEMM with no transposes and unit strides. */
void sgemm(int64_t m, int64_t n, int64_t k, const float *a,
           const float *b, float *c);

/**
 * Matrix-vector multiply y = A * x with A stored row-major (m x n).
 */
void sgemv(int64_t m, int64_t n, const float *a, const float *x,
           float *y);

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_GEMM_HH
