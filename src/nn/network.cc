#include "nn/network.hh"

#include <chrono>
#include <optional>
#include <sstream>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "nn/profile.hh"

namespace djinn {
namespace nn {

Network::Network(std::string name, const Shape &input)
    : name_(std::move(name)),
      inputShape_(1, input.c(), input.h(), input.w()),
      tailShape_(inputShape_)
{
    if (inputShape_.sampleElems() <= 0)
        fatal("network '%s': empty input shape", name_.c_str());
}

const Shape &
Network::outputShape() const
{
    if (!finalized_)
        panic("network '%s': outputShape before finalize",
              name_.c_str());
    return tailShape_;
}

void
Network::add(LayerPtr layer)
{
    if (finalized_)
        panic("network '%s': add after finalize", name_.c_str());
    if (findLayer(layer->name()))
        fatal("network '%s': duplicate layer name '%s'", name_.c_str(),
              layer->name().c_str());
    layer->setup(tailShape_);
    tailShape_ = layer->outputShape();
    layers_.push_back(std::move(layer));
}

void
Network::finalize()
{
    if (finalized_)
        panic("network '%s': finalize twice", name_.c_str());
    if (layers_.empty())
        fatal("network '%s': no layers", name_.c_str());
    finalized_ = true;
}

const Layer *
Network::findLayer(const std::string &name) const
{
    for (const auto &l : layers_) {
        if (l->name() == name)
            return l.get();
    }
    return nullptr;
}

uint64_t
Network::paramCount() const
{
    uint64_t total = 0;
    for (const auto &l : layers_)
        total += l->paramCount();
    return total;
}

uint64_t
Network::weightBytes() const
{
    return paramCount() * sizeof(float);
}

Tensor
Network::forward(const Tensor &in) const
{
    return forward(in, nullptr);
}

Tensor
Network::forward(const Tensor &in, ProfileSink *sink) const
{
    if (!finalized_)
        panic("network '%s': forward before finalize", name_.c_str());
    // With the parallel run option off, every parallelFor under
    // this frame runs inline on the calling thread.
    std::optional<common::SerialScope> serial;
    if (!parallel())
        serial.emplace();
    using Clock = std::chrono::steady_clock;
    Tensor a = in;
    Tensor b;
    const Tensor *cur = &a;
    Tensor *next = &b;
    for (const auto &l : layers_) {
        Clock::time_point start;
        if (sink) {
            sink->onLayerStart(l->name(), l->kind());
            start = Clock::now();
        }
        l->forward(*cur, *next);
        if (sink) {
            LayerProfile p;
            p.name = l->name();
            p.kind = l->kind();
            p.seconds = std::chrono::duration<double>(
                            Clock::now() - start)
                            .count();
            uint64_t batch = static_cast<uint64_t>(
                next->shape().n());
            p.flops = l->flopsPerSample() * batch;
            p.activationBytes =
                static_cast<uint64_t>(next->shape().elems()) *
                sizeof(float);
            sink->onLayer(p);
        }
        if (cur == &a) {
            cur = &b;
            next = &a;
        } else {
            cur = &a;
            next = &b;
        }
    }
    return cur == &a ? std::move(a) : std::move(b);
}

std::string
Network::describe() const
{
    std::ostringstream os;
    os << "network " << name_ << " input "
       << inputShape_.toString() << "\n";
    for (const auto &l : layers_)
        os << "  " << l->describe() << "\n";
    os << "  total params: " << paramCount() << " ("
       << weightBytes() / (1024.0 * 1024.0) << " MiB)\n";
    return os.str();
}

} // namespace nn
} // namespace djinn
