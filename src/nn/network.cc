#include "nn/network.hh"

#include <chrono>
#include <optional>
#include <sstream>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "nn/profile.hh"

namespace djinn {
namespace nn {

Network::Network(std::string name, const Shape &input)
    : name_(std::move(name)),
      inputShape_(1, input.c(), input.h(), input.w()),
      tailShape_(inputShape_)
{
    if (inputShape_.sampleElems() <= 0)
        fatal("network '%s': empty input shape", name_.c_str());
}

const Shape &
Network::outputShape() const
{
    if (!finalized_)
        panic("network '%s': outputShape before finalize",
              name_.c_str());
    return tailShape_;
}

void
Network::add(LayerPtr layer)
{
    if (finalized_)
        panic("network '%s': add after finalize", name_.c_str());
    if (findLayer(layer->name()))
        fatal("network '%s': duplicate layer name '%s'", name_.c_str(),
              layer->name().c_str());
    layer->setup(tailShape_);
    tailShape_ = layer->outputShape();
    layers_.push_back(std::move(layer));
}

void
Network::finalize()
{
    if (finalized_)
        panic("network '%s': finalize twice", name_.c_str());
    if (layers_.empty())
        fatal("network '%s': no layers", name_.c_str());
    finalized_ = true;
}

const Layer *
Network::findLayer(const std::string &name) const
{
    for (const auto &l : layers_) {
        if (l->name() == name)
            return l.get();
    }
    return nullptr;
}

uint64_t
Network::paramCount() const
{
    uint64_t total = 0;
    for (const auto &l : layers_)
        total += l->paramCount();
    return total;
}

uint64_t
Network::weightBytes() const
{
    return paramCount() * sizeof(float);
}

void
Network::quantize(Precision precision, const Tensor &calib)
{
    if (!finalized_)
        panic("network '%s': quantize before finalize", name_.c_str());
    if (precision != Precision::Int8) {
        for (auto &l : layers_) {
            if (l->supportsPrecision(precision))
                l->setPrecision(precision);
        }
        precision_ = precision;
        return;
    }
    const Shape &cs = calib.shape();
    if (cs.n() <= 0 || cs.c() != inputShape_.c() ||
        cs.h() != inputShape_.h() || cs.w() != inputShape_.w()) {
        fatal("network '%s': calibration batch %s does not match "
              "input %s", name_.c_str(), cs.toString().c_str(),
              inputShape_.toString().c_str());
    }
    // Calibrate layer by layer: lower each layer first, then run
    // the calibration batch through it, so downstream layers see
    // the quantized activation distribution.
    Tensor cur = calib;
    Tensor next;
    for (auto &l : layers_) {
        if (l->supportsPrecision(Precision::Int8))
            l->setPrecision(Precision::Int8, l->calibrate(cur));
        l->forward(cur, next);
        std::swap(cur, next);
    }
    precision_ = Precision::Int8;
}

void
Network::applyQuantization(Precision precision,
                           const std::vector<LayerQuant> &layerQuant)
{
    if (!finalized_)
        panic("network '%s': applyQuantization before finalize",
              name_.c_str());
    if (layerQuant.size() != layers_.size()) {
        fatal("network '%s': %zu quant entries for %zu layers",
              name_.c_str(), layerQuant.size(), layers_.size());
    }
    for (size_t i = 0; i < layers_.size(); ++i) {
        Layer &l = *layers_[i];
        if (!l.supportsPrecision(precision))
            continue;
        if (precision == Precision::Int8 &&
            layerQuant[i].weightScales.empty()) {
            continue; // layer was not quantized when saved
        }
        l.setPrecision(precision, layerQuant[i]);
    }
    precision_ = precision;
}

Tensor
Network::forward(const Tensor &in) const
{
    return forward(in, nullptr);
}

Tensor
Network::forward(const Tensor &in, ProfileSink *sink) const
{
    if (!finalized_)
        panic("network '%s': forward before finalize", name_.c_str());
    // With the parallel run option off, every parallelFor under
    // this frame runs inline on the calling thread.
    std::optional<common::SerialScope> serial;
    if (!parallel())
        serial.emplace();
    using Clock = std::chrono::steady_clock;
    Tensor a = in;
    Tensor b;
    const Tensor *cur = &a;
    Tensor *next = &b;
    for (const auto &l : layers_) {
        Clock::time_point start;
        if (sink) {
            sink->onLayerStart(l->name(), l->kind());
            start = Clock::now();
        }
        l->forward(*cur, *next);
        if (sink) {
            LayerProfile p;
            p.name = l->name();
            p.kind = l->kind();
            p.seconds = std::chrono::duration<double>(
                            Clock::now() - start)
                            .count();
            uint64_t batch = static_cast<uint64_t>(
                next->shape().n());
            p.flops = l->flopsPerSample() * batch;
            p.activationBytes =
                static_cast<uint64_t>(next->shape().elems()) *
                sizeof(float);
            sink->onLayer(p);
        }
        if (cur == &a) {
            cur = &b;
            next = &a;
        } else {
            cur = &a;
            next = &b;
        }
    }
    return cur == &a ? std::move(a) : std::move(b);
}

std::string
Network::describe() const
{
    std::ostringstream os;
    os << "network " << name_ << " input "
       << inputShape_.toString();
    if (precision_ != Precision::F32)
        os << " precision " << precisionName(precision_);
    os << "\n";
    for (const auto &l : layers_)
        os << "  " << l->describe() << "\n";
    os << "  total params: " << paramCount() << " ("
       << weightBytes() / (1024.0 * 1024.0) << " MiB)\n";
    return os.str();
}

} // namespace nn
} // namespace djinn
