/**
 * @file
 * Binary weight serialization so a DjiNN deployment can load the same
 * model bytes the trainer produced (the paper ships pre-trained
 * .caffemodel files; we ship .djw files).
 *
 * Format: magic "DJW1", u32 layer count, then per layer: u32 name
 * length, name bytes, u32 param tensor count, and per tensor u64
 * element count followed by raw little-endian fp32 data. Lowered
 * networks (DESIGN.md §14) append a "QNT1" trailer carrying the
 * precision and per-layer quantization state; files without the
 * trailer load as f32.
 */

#ifndef DJINN_NN_SERIALIZE_HH
#define DJINN_NN_SERIALIZE_HH

#include <string>

#include "common/status.hh"
#include "nn/network.hh"

namespace djinn {
namespace nn {

/** Write all of @p net's parameters to @p path. */
Status saveWeights(const Network &net, const std::string &path);

/**
 * Load parameters into @p net from @p path. Layer names, tensor
 * counts, and element counts must all match the network's structure.
 */
Status loadWeights(Network &net, const std::string &path);

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_SERIALIZE_HH
