/**
 * @file
 * Text network-definition format and parser (the role Caffe's
 * prototxt plays in the paper). Example:
 *
 *     name alexnet
 *     input 3 227 227
 *     layer conv1 conv out 96 kernel 11 stride 4
 *     layer relu1 relu
 *     layer pool1 maxpool kernel 3 stride 2
 *     layer fc8 fc out 1000
 *     layer prob softmax
 *
 * Lines starting with '#' are comments. Layer lines are
 * "layer <name> <kind> [key value]...".
 */

#ifndef DJINN_NN_NET_DEF_HH
#define DJINN_NN_NET_DEF_HH

#include <memory>
#include <string>

#include "common/status.hh"
#include "nn/network.hh"

namespace djinn {
namespace nn {

/**
 * Parse a netdef document into a finalized Network with
 * zero-initialized weights.
 *
 * @param text the netdef source.
 * @return the network, or a Status describing the first parse error
 *         (with a line number).
 */
Result<std::shared_ptr<Network>> parseNetDef(const std::string &text);

/**
 * Parse a netdef document, aborting via fatal() on error. For
 * trusted built-in definitions (the zoo).
 */
std::shared_ptr<Network> parseNetDefOrDie(const std::string &text);

/** Render a Network back into netdef text (round-trips the zoo). */
std::string formatNetDef(const Network &net);

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_NET_DEF_HH
