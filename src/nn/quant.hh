/**
 * @file
 * Low-precision compute support (DESIGN.md §14): the precision
 * vocabulary shared by the GEMM kernels, the layers, and the
 * serving stack, plus the scalar quantization primitives the
 * post-training-quantization path is built from.
 *
 * Two lowered precisions exist beside f32:
 *
 *  - bf16: storage rounding. Operands are rounded to bfloat16
 *    (round-to-nearest-even) as they are packed into GEMM panels;
 *    arithmetic stays f32, so results are deterministic on every
 *    host and the error against f32 is bounded by the bf16 unit
 *    roundoff (2^-8 relative per operand).
 *
 *  - int8: affine/symmetric integer quantization. Weights are
 *    quantized symmetrically per output channel to [-127, 127];
 *    activations per tensor with an affine scale/zero-point
 *    calibrated post training. Accumulation is exact int32, so
 *    outputs are bit-identical across runs, thread counts, and
 *    hosts by construction; only the final per-element dequant is
 *    floating point.
 */

#ifndef DJINN_NN_QUANT_HH
#define DJINN_NN_QUANT_HH

#include <cmath>
#include <limits>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace djinn {
namespace nn {

/** Numeric precision a model (or one layer) executes at. */
enum class Precision {
    F32 = 0,
    Bf16 = 1,
    Int8 = 2,
};

/** Canonical lower-case name ("f32", "bf16", "int8"). */
const char *precisionName(Precision p);

/** Parse a precision name; fatal() on unknown. */
Precision precisionFromName(const std::string &name);

/** Round a float to bfloat16 storage bits (round-to-nearest-even). */
inline uint16_t
bf16FromFloat(float x)
{
    uint32_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    if ((bits & 0x7fffffffu) > 0x7f800000u)
        return static_cast<uint16_t>((bits >> 16) | 0x0040u); // quiet NaN
    bits += 0x7fffu + ((bits >> 16) & 1u);
    return static_cast<uint16_t>(bits >> 16);
}

/** Expand bfloat16 storage bits back to float (exact). */
inline float
floatFromBf16(uint16_t h)
{
    uint32_t bits = static_cast<uint32_t>(h) << 16;
    float x;
    std::memcpy(&x, &bits, sizeof(x));
    return x;
}

/** Round a float to the nearest bf16-representable value. */
inline float
bf16Round(float x)
{
    return floatFromBf16(bf16FromFloat(x));
}

/**
 * One tensor's integer quantization mapping:
 *
 *   q = clamp(round(x / scale) + zeroPoint, qmin, qmax)
 *   x' = (q - zeroPoint) * scale
 *
 * Rounding is round-half-to-even (the default FP environment), so
 * the mapping is identical on every host. Real zero always maps to
 * zeroPoint exactly and dequantizes back to exactly 0.
 */
struct QuantParams {
    float scale = 1.0f;
    int32_t zeroPoint = 0;
    int32_t qmin = -127;
    int32_t qmax = 127;

    /**
     * Symmetric signed-8 mapping for weights: zero point 0, range
     * [-127, 127] (the -128 code is unused so the range is
     * symmetric), scale sized so @p maxAbs maps to ±127. A zero
     * tensor gets scale 1 so quantization stays well defined.
     */
    static QuantParams symmetricS8(float maxAbs);

    /**
     * Affine unsigned-8 mapping for activations over the calibrated
     * range [lo, hi] (widened to include 0 so padding and real zero
     * are exactly representable).
     */
    static QuantParams affineU8(float lo, float hi);

    /** Affine signed-8 mapping over [lo, hi], range [-128, 127]. */
    static QuantParams affineS8(float lo, float hi);

    /** Quantize one value. */
    int32_t
    quantize(float x) const
    {
        float q = std::nearbyintf(x / scale) +
                  static_cast<float>(zeroPoint);
        if (q < static_cast<float>(qmin))
            return qmin;
        if (q > static_cast<float>(qmax))
            return qmax;
        return static_cast<int32_t>(q);
    }

    /**
     * Dequantize one code. Saturates to ±FLT_MAX: for a tensor
     * calibrated at the very top of the float range the scale
     * rounds up, and scale * 127 would otherwise overflow to inf
     * even though every represented value was a finite float.
     */
    float
    dequantize(int32_t q) const
    {
        double v = static_cast<double>(q - zeroPoint) *
                   static_cast<double>(scale);
        if (v > std::numeric_limits<float>::max())
            return std::numeric_limits<float>::max();
        if (v < -std::numeric_limits<float>::max())
            return -std::numeric_limits<float>::max();
        return static_cast<float>(v);
    }

    bool operator==(const QuantParams &o) const = default;
};

/**
 * A quantized layer's serialized state: the activation mapping and
 * the per-output-channel symmetric weight scales. Weight codes are
 * not stored — requantizing the f32 weights with these scales is
 * deterministic, so the scales alone reproduce the exact int8
 * model.
 */
struct LayerQuant {
    /** Per-tensor activation quantization (int8 only). */
    QuantParams act;

    /**
     * Symmetric per-output-channel weight scales (int8 only; one
     * per output channel). Empty means "derive from the weights"
     * when applied, or "layer not quantized" when read back.
     */
    std::vector<float> weightScales;
};

/** Minimum and maximum over @p n floats ({0, 0} when n == 0). */
void minMax(const float *data, int64_t n, float *lo, float *hi);

/** Largest absolute value over @p n floats (0 when n == 0). */
float maxAbs(const float *data, int64_t n);

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_QUANT_HH
