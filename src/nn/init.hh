/**
 * @file
 * Deterministic weight initialization. The paper's experiments never
 * measure accuracy, so pseudo-random weights with the right tensor
 * shapes stand in for the released pre-trained models (see
 * DESIGN.md, substitution table).
 */

#ifndef DJINN_NN_INIT_HH
#define DJINN_NN_INIT_HH

#include <cstdint>

#include "nn/network.hh"

namespace djinn {
namespace nn {

/**
 * Fill every parameter tensor of @p net with He-scaled Gaussian
 * values (stddev sqrt(2 / fan_in)), deterministically derived from
 * @p seed, the network name, and each layer's index. Biases are
 * zeroed.
 */
void initializeWeights(Network &net, uint64_t seed);

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_INIT_HH
