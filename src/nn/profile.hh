/**
 * @file
 * Per-layer forward-pass profiling. A ProfileSink passed to
 * Network::forward receives one LayerProfile per executed layer:
 * wall time, useful FLOPs (the same counting convention as
 * perf::analyzeNetwork, so static and measured costs line up), and
 * activation output bytes. When no sink is attached the forward
 * hot path pays exactly one null-pointer check per layer — no
 * allocation, no locking, no clock reads.
 */

#ifndef DJINN_NN_PROFILE_HH
#define DJINN_NN_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hh"

namespace djinn {
namespace nn {

/** One layer's measured forward cost for one batch. */
struct LayerProfile {
    /** Layer name within its network. */
    std::string name;

    /** Layer kind. */
    LayerKind kind;

    /** Wall time of the layer's forward pass, seconds. */
    double seconds = 0.0;

    /** Useful floating point operations for the whole batch. */
    uint64_t flops = 0;

    /** Bytes of activation output written (batch x out x 4). */
    uint64_t activationBytes = 0;
};

/** Receiver of per-layer profiles during a forward pass. */
class ProfileSink
{
  public:
    virtual ~ProfileSink() = default;

    /**
     * Called immediately before each layer executes, so sinks can
     * snapshot counters the layer's work will move (the cycle
     * accounting layer pairs this with onLayer to get per-layer
     * hardware deltas). Default: nothing.
     */
    virtual void
    onLayerStart(const std::string &name, LayerKind kind)
    {
        (void)name;
        (void)kind;
    }

    /** Called once per layer, in execution order. */
    virtual void onLayer(const LayerProfile &profile) = 0;
};

/** A sink that simply collects the profiles in order. */
class VectorProfileSink : public ProfileSink
{
  public:
    void
    onLayer(const LayerProfile &profile) override
    {
        profiles_.push_back(profile);
    }

    /** The collected profiles, in execution order. */
    const std::vector<LayerProfile> &
    profiles() const
    {
        return profiles_;
    }

    /** Drop all collected profiles. */
    void clear() { profiles_.clear(); }

  private:
    std::vector<LayerProfile> profiles_;
};

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_PROFILE_HH
