#include "nn/init.hh"

#include <cmath>

#include "common/rng.hh"

namespace djinn {
namespace nn {

namespace {

uint64_t
hashString(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

void
initializeWeights(Network &net, uint64_t seed)
{
    uint64_t base = mix64(seed ^ hashString(net.name()));
    for (size_t i = 0; i < net.layerCount(); ++i) {
        Layer &layer = net.layer(i);
        auto params = layer.params();
        if (params.empty())
            continue;
        Rng rng(mix64(base + i));
        int64_t fan_in = layer.inputShape().sampleElems();
        float stddev = std::sqrt(2.0f / static_cast<float>(
            std::max<int64_t>(fan_in, 1)));
        // The first tensor is weights; any later tensors are biases
        // and stay zero (the allocation default).
        Tensor *weights = params.front();
        float *data = weights->data();
        int64_t total = weights->elems();
        for (int64_t j = 0; j < total; ++j)
            data[j] = static_cast<float>(rng.gaussian(0.0, stddev));
        for (size_t p = 1; p < params.size(); ++p)
            params[p]->fill(0.0f);
    }
}

} // namespace nn
} // namespace djinn
