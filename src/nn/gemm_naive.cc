#include "nn/gemm.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace djinn {
namespace nn {

namespace {

/** Fetch op(A)[i][j] given the storage and transpose flag. */
inline float
fetch(const float *a, int64_t lda, Trans trans, int64_t i, int64_t j)
{
    return trans == Trans::No ? a[i * lda + j] : a[j * lda + i];
}

} // namespace

// ---------------------------------------------------------------
// Reference kernel (the original scalar implementation), kept for
// differential testing and benchmarking.
// ---------------------------------------------------------------

namespace {

constexpr int64_t naiveBlockM = 64;
constexpr int64_t naiveBlockN = 256;
constexpr int64_t naiveBlockK = 256;

/**
 * Inner kernel over one cache block with A packed contiguously and
 * B accessed in row-major panels, accumulating into C.
 */
void
naiveBlockKernel(int64_t mb, int64_t nb, int64_t kb, float alpha,
                 const float *a_pack, const float *b, int64_t ldb,
                 Trans trans_b, int64_t k0, int64_t n0, float *c,
                 int64_t ldc, int64_t i0)
{
    for (int64_t i = 0; i < mb; ++i) {
        const float *a_row = a_pack + i * kb;
        float *c_row = c + (i0 + i) * ldc + n0;
        for (int64_t p = 0; p < kb; ++p) {
            float av = alpha * a_row[p];
            if (av == 0.0f)
                continue;
            if (trans_b == Trans::No) {
                const float *b_row = b + (k0 + p) * ldb + n0;
                for (int64_t j = 0; j < nb; ++j)
                    c_row[j] += av * b_row[j];
            } else {
                for (int64_t j = 0; j < nb; ++j)
                    c_row[j] += av * b[(n0 + j) * ldb + (k0 + p)];
            }
        }
    }
}

} // namespace

void
sgemm_naive(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
            int64_t k, float alpha, const float *a, int64_t lda,
            const float *b, int64_t ldb, float beta, float *c,
            int64_t ldc)
{
    if (m < 0 || n < 0 || k < 0)
        fatal("sgemm_naive: negative dimension m=%ld n=%ld k=%ld", m,
              n, k);
    if (m == 0 || n == 0)
        return;

    // Scale C by beta first.
    for (int64_t i = 0; i < m; ++i) {
        float *c_row = c + i * ldc;
        if (beta == 0.0f) {
            std::memset(c_row, 0, static_cast<size_t>(n) *
                        sizeof(float));
        } else if (beta != 1.0f) {
            for (int64_t j = 0; j < n; ++j)
                c_row[j] *= beta;
        }
    }
    if (k == 0 || alpha == 0.0f)
        return;

    std::vector<float> a_pack(static_cast<size_t>(naiveBlockM) *
                              naiveBlockK);

    for (int64_t k0 = 0; k0 < k; k0 += naiveBlockK) {
        int64_t kb = std::min(naiveBlockK, k - k0);
        for (int64_t i0 = 0; i0 < m; i0 += naiveBlockM) {
            int64_t mb = std::min(naiveBlockM, m - i0);
            // Pack the op(A) block contiguously (mb x kb).
            for (int64_t i = 0; i < mb; ++i) {
                for (int64_t p = 0; p < kb; ++p) {
                    a_pack[i * kb + p] =
                        fetch(a, lda, trans_a, i0 + i, k0 + p);
                }
            }
            for (int64_t n0 = 0; n0 < n; n0 += naiveBlockN) {
                int64_t nb = std::min(naiveBlockN, n - n0);
                naiveBlockKernel(mb, nb, kb, alpha, a_pack.data(), b,
                                 ldb, trans_b, k0, n0, c, ldc, i0);
            }
        }
    }
}


} // namespace nn
} // namespace djinn
