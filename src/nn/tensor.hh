/**
 * @file
 * Dense float tensors in NCHW layout, the data currency of the
 * inference library. A Shape is (n, c, h, w); vectors are represented
 * as (n, c, 1, 1).
 */

#ifndef DJINN_NN_TENSOR_HH
#define DJINN_NN_TENSOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace djinn {
namespace nn {

/**
 * A 4-dimensional NCHW shape. n is the batch dimension; layers treat
 * (c, h, w) as the per-sample geometry.
 */
class Shape
{
  public:
    /** Default: the empty shape (0, 0, 0, 0). */
    Shape() = default;

    /** Construct from explicit dimensions; all must be >= 0. */
    Shape(int64_t n, int64_t c, int64_t h = 1, int64_t w = 1);

    int64_t n() const { return n_; }
    int64_t c() const { return c_; }
    int64_t h() const { return h_; }
    int64_t w() const { return w_; }

    /** Total element count n*c*h*w. */
    int64_t elems() const { return n_ * c_ * h_ * w_; }

    /** Per-sample element count c*h*w. */
    int64_t sampleElems() const { return c_ * h_ * w_; }

    /** Same shape with a different batch dimension. */
    Shape withBatch(int64_t n) const { return Shape(n, c_, h_, w_); }

    bool operator==(const Shape &o) const = default;

    /** Render as "NxCxHxW". */
    std::string toString() const;

  private:
    int64_t n_ = 0;
    int64_t c_ = 0;
    int64_t h_ = 0;
    int64_t w_ = 0;
};

/**
 * An owning, contiguous float tensor. Layout is NCHW: index
 * (n, c, h, w) maps to ((n*C + c)*H + h)*W + w.
 */
class Tensor
{
  public:
    /** The empty tensor. */
    Tensor() = default;

    /** Allocate a zero-filled tensor of the given shape. */
    explicit Tensor(const Shape &shape);

    /** Allocate and fill with a constant. */
    Tensor(const Shape &shape, float fill);

    /** The tensor's shape. */
    const Shape &shape() const { return shape_; }

    /** Total element count. */
    int64_t elems() const { return shape_.elems(); }

    /** True when no elements are held. */
    bool empty() const { return data_.empty(); }

    /** Mutable flat storage. */
    float *data() { return data_.data(); }

    /** Read-only flat storage. */
    const float *data() const { return data_.data(); }

    /** Element access by NCHW coordinates (bounds unchecked). */
    float &
    at(int64_t n, int64_t c, int64_t h, int64_t w)
    {
        return data_[offset(n, c, h, w)];
    }

    /** Read-only element access by NCHW coordinates. */
    float
    at(int64_t n, int64_t c, int64_t h, int64_t w) const
    {
        return data_[offset(n, c, h, w)];
    }

    /** Flat element access (bounds checked in debug). */
    float &operator[](int64_t i) { return data_[i]; }

    /** Read-only flat element access. */
    float operator[](int64_t i) const { return data_[i]; }

    /** Pointer to the start of sample @p n. */
    float *sample(int64_t n);

    /** Read-only pointer to the start of sample @p n. */
    const float *sample(int64_t n) const;

    /**
     * Reinterpret the same storage with a new shape of equal element
     * count. Fails with fatal() on mismatched element counts.
     */
    void reshape(const Shape &shape);

    /**
     * Resize, discarding contents. Storage is reallocated only when
     * the element count grows.
     */
    void resize(const Shape &shape);

    /** Set every element to @p value. */
    void fill(float value);

    /** Sum of all elements. */
    double sum() const;

    /** Index of the maximum element within sample @p n. */
    int64_t argmaxSample(int64_t n) const;

  private:
    Shape shape_;
    std::vector<float> data_;

    int64_t
    offset(int64_t n, int64_t c, int64_t h, int64_t w) const
    {
        return ((n * shape_.c() + c) * shape_.h() + h) * shape_.w() + w;
    }
};

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_TENSOR_HH
