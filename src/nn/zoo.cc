#include "nn/zoo.hh"

#include "common/logging.hh"
#include "nn/init.hh"
#include "nn/net_def.hh"

namespace djinn {
namespace nn {
namespace zoo {

namespace {

// AlexNet (Krizhevsky et al.), Caffe deploy structure. 227x227 RGB
// input, 1000 ImageNet classes, ~61M parameters.
const char *alexnet_def = R"(
name alexnet
input 3 227 227
layer conv1 conv out 96 kernel 11 stride 4
layer relu1 relu
layer norm1 lrn size 5
layer pool1 maxpool kernel 3 stride 2
layer conv2 conv out 256 kernel 5 pad 2 group 2
layer relu2 relu
layer norm2 lrn size 5
layer pool2 maxpool kernel 3 stride 2
layer conv3 conv out 384 kernel 3 pad 1
layer relu3 relu
layer conv4 conv out 384 kernel 3 pad 1 group 2
layer relu4 relu
layer conv5 conv out 256 kernel 3 pad 1 group 2
layer relu5 relu
layer pool5 maxpool kernel 3 stride 2
layer fc6 fc out 4096
layer relu6 relu
layer drop6 dropout
layer fc7 fc out 4096
layer relu7 relu
layer drop7 dropout
layer fc8 fc out 1000
layer prob softmax
)";

// MNIST digit CNN (LeCun et al. lineage), sized to Table 1's ~60K
// parameters. 28x28 grayscale input, 10 classes, 7 layers.
const char *mnist_def = R"(
name mnist
input 1 28 28
layer conv1 conv out 10 kernel 5
layer pool1 maxpool kernel 2 stride 2
layer conv2 conv out 20 kernel 5
layer pool2 maxpool kernel 2 stride 2
layer ip1 fc out 150
layer relu1 relu
layer ip2 fc out 10
)";

// DeepFace (Taigman et al.): conv front end plus three locally
// connected layers that hold most of the ~120M parameters, trained
// here against the 83 identities of PubFig83+LFW. 8 layers per
// Table 1.
const char *deepface_def = R"(
name deepface
input 3 152 152
layer c1 conv out 32 kernel 11
layer m2 maxpool kernel 3 stride 2
layer c3 conv out 16 kernel 9
layer l4 local out 16 kernel 9
layer l5 local out 16 kernel 7 stride 2
layer l6 local out 16 kernel 5
layer f7 fc out 4096
layer f8 fc out 83
)";

// Kaldi hybrid DNN acoustic model: 11-frame spliced 40-dim filterbank
// input (440), six 2048-wide sigmoid hidden layers, 4000 senone
// outputs. 13 layers, ~30M parameters per Table 1.
const char *kaldi_def = R"(
name kaldi_asr
input 440 1 1
layer fc1 fc out 2048
layer sig1 sigmoid
layer fc2 fc out 2048
layer sig2 sigmoid
layer fc3 fc out 2048
layer sig3 sigmoid
layer fc4 fc out 2048
layer sig4 sigmoid
layer fc5 fc out 2048
layer sig5 sigmoid
layer fc6 fc out 2048
layer sig6 sigmoid
layer fc7 fc out 4000
)";

// SENNA (Collobert et al.) window-approach tagger: 5-word window of
// 50-dim embeddings (250 inputs), one 600-wide HardTanh hidden
// layer, per-task tag outputs. 3 layers, ~180K parameters.
std::string
sennaDef(const char *name, int tags)
{
    return strprintf(R"(
name %s
input 250 1 1
layer fc1 fc out 600
layer htanh1 hardtanh
layer fc2 fc out %d
)", name, tags);
}

} // namespace

const char *
modelName(Model model)
{
    switch (model) {
      case Model::AlexNet: return "alexnet";
      case Model::Mnist: return "mnist";
      case Model::DeepFace: return "deepface";
      case Model::KaldiAsr: return "kaldi_asr";
      case Model::SennaPos: return "senna_pos";
      case Model::SennaChk: return "senna_chk";
      case Model::SennaNer: return "senna_ner";
    }
    return "unknown";
}

Model
modelFromName(const std::string &name)
{
    for (Model m : allModels()) {
        if (name == modelName(m))
            return m;
    }
    fatal("unknown zoo model '%s'", name.c_str());
}

std::string
netDef(Model model)
{
    switch (model) {
      case Model::AlexNet: return alexnet_def;
      case Model::Mnist: return mnist_def;
      case Model::DeepFace: return deepface_def;
      case Model::KaldiAsr: return kaldi_def;
      case Model::SennaPos: return sennaDef("senna_pos", 45);
      case Model::SennaChk: return sennaDef("senna_chk", 23);
      case Model::SennaNer: return sennaDef("senna_ner", 9);
    }
    fatal("unknown zoo model %d", static_cast<int>(model));
}

NetworkPtr
build(Model model, uint64_t seed)
{
    auto net = parseNetDefOrDie(netDef(model));
    initializeWeights(*net, seed);
    return net;
}

NetworkPtr
build(Model model, Precision precision, uint64_t seed)
{
    auto net = build(model, seed);
    if (precision != Precision::F32)
        net->quantize(precision, calibrationBatch(*net));
    return net;
}

Tensor
calibrationBatch(const Network &net, int64_t batch)
{
    Tensor t(net.inputShape().withBatch(batch));
    // FNV-1a of the name keys the stream; the LCG step matches the
    // committed determinism-test input generator so the calibration
    // distribution is the inference distribution.
    uint64_t state = 0xcbf29ce484222325ull;
    for (char c : net.name())
        state = (state ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
    float *d = t.data();
    for (int64_t i = 0; i < t.elems(); ++i) {
        state = state * 6364136223846793005ull +
                1442695040888963407ull;
        d[i] = static_cast<float>((state >> 33) % 2000) / 1000.0f -
               1.0f;
    }
    return t;
}

std::vector<Model>
allModels()
{
    return {Model::AlexNet, Model::Mnist, Model::DeepFace,
            Model::KaldiAsr, Model::SennaPos, Model::SennaChk,
            Model::SennaNer};
}

} // namespace zoo
} // namespace nn
} // namespace djinn
