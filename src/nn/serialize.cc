#include "nn/serialize.hh"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/logging.hh"

namespace djinn {
namespace nn {

namespace {

constexpr char magic[4] = {'D', 'J', 'W', '1'};

void
writeU32(std::ostream &os, uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU64(std::ostream &os, uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
readU32(std::istream &is, uint32_t &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(is);
}

bool
readU64(std::istream &is, uint64_t &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(is);
}

} // namespace

Status
saveWeights(const Network &net, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return Status::ioError("cannot open '" + path +
                               "' for writing");
    os.write(magic, sizeof(magic));
    writeU32(os, static_cast<uint32_t>(net.layerCount()));
    for (size_t i = 0; i < net.layerCount(); ++i) {
        const Layer &layer = net.layer(i);
        const std::string &name = layer.name();
        writeU32(os, static_cast<uint32_t>(name.size()));
        os.write(name.data(),
                 static_cast<std::streamsize>(name.size()));
        auto params = layer.params();
        writeU32(os, static_cast<uint32_t>(params.size()));
        for (const Tensor *t : params) {
            writeU64(os, static_cast<uint64_t>(t->elems()));
            os.write(reinterpret_cast<const char *>(t->data()),
                     static_cast<std::streamsize>(
                         t->elems() * sizeof(float)));
        }
    }
    if (!os)
        return Status::ioError("write failed for '" + path + "'");
    return Status::ok();
}

Status
loadWeights(Network &net, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return Status::ioError("cannot open '" + path +
                               "' for reading");
    char got_magic[4];
    is.read(got_magic, sizeof(got_magic));
    if (!is || std::memcmp(got_magic, magic, sizeof(magic)) != 0)
        return Status::protocolError("'" + path +
                                     "' is not a DJW1 weight file");
    uint32_t layer_count;
    if (!readU32(is, layer_count))
        return Status::protocolError("truncated weight file");
    if (layer_count != net.layerCount()) {
        return Status::invalidArgument(strprintf(
            "weight file has %u layers, network '%s' has %zu",
            layer_count, net.name().c_str(), net.layerCount()));
    }
    for (size_t i = 0; i < net.layerCount(); ++i) {
        Layer &layer = net.layer(i);
        uint32_t name_len;
        if (!readU32(is, name_len) || name_len > 4096)
            return Status::protocolError("truncated weight file");
        std::string name(name_len, '\0');
        is.read(name.data(), name_len);
        if (!is)
            return Status::protocolError("truncated weight file");
        if (name != layer.name()) {
            return Status::invalidArgument(strprintf(
                "layer %zu name mismatch: file '%s', network '%s'",
                i, name.c_str(), layer.name().c_str()));
        }
        uint32_t tensor_count;
        if (!readU32(is, tensor_count))
            return Status::protocolError("truncated weight file");
        auto params = layer.params();
        if (tensor_count != params.size()) {
            return Status::invalidArgument(strprintf(
                "layer '%s': file has %u param tensors, network has "
                "%zu", name.c_str(), tensor_count, params.size()));
        }
        for (Tensor *t : params) {
            uint64_t elems;
            if (!readU64(is, elems))
                return Status::protocolError("truncated weight file");
            if (elems != static_cast<uint64_t>(t->elems())) {
                return Status::invalidArgument(strprintf(
                    "layer '%s': tensor element count mismatch "
                    "(file %llu, network %lld)", name.c_str(),
                    static_cast<unsigned long long>(elems),
                    static_cast<long long>(t->elems())));
            }
            is.read(reinterpret_cast<char *>(t->data()),
                    static_cast<std::streamsize>(
                        elems * sizeof(float)));
            if (!is)
                return Status::protocolError("truncated weight file");
        }
    }
    return Status::ok();
}

} // namespace nn
} // namespace djinn
