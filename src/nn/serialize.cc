#include "nn/serialize.hh"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/logging.hh"

namespace djinn {
namespace nn {

namespace {

constexpr char magic[4] = {'D', 'J', 'W', '1'};

/**
 * Optional quantization trailer appended after the layer section
 * when the network was lowered (DESIGN.md §14): magic "QNT1", u32
 * precision, then per layer the activation mapping (f32 scale, i32
 * zero point, i32 qmin, i32 qmax) and u64 weight-scale count plus
 * f32 scales. int8 weight *codes* are not stored — requantizing the
 * f32 weights with these scales is deterministic, so the scales
 * alone reproduce the exact lowered model. Files without the
 * trailer load as f32 (the seed format).
 */
constexpr char quantMagic[4] = {'Q', 'N', 'T', '1'};

void
writeU32(std::ostream &os, uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU64(std::ostream &os, uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
readU32(std::istream &is, uint32_t &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(is);
}

bool
readU64(std::istream &is, uint64_t &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(is);
}

} // namespace

Status
saveWeights(const Network &net, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return Status::ioError("cannot open '" + path +
                               "' for writing");
    os.write(magic, sizeof(magic));
    writeU32(os, static_cast<uint32_t>(net.layerCount()));
    for (size_t i = 0; i < net.layerCount(); ++i) {
        const Layer &layer = net.layer(i);
        const std::string &name = layer.name();
        writeU32(os, static_cast<uint32_t>(name.size()));
        os.write(name.data(),
                 static_cast<std::streamsize>(name.size()));
        auto params = layer.params();
        writeU32(os, static_cast<uint32_t>(params.size()));
        for (const Tensor *t : params) {
            writeU64(os, static_cast<uint64_t>(t->elems()));
            os.write(reinterpret_cast<const char *>(t->data()),
                     static_cast<std::streamsize>(
                         t->elems() * sizeof(float)));
        }
    }
    if (net.precision() != Precision::F32) {
        os.write(quantMagic, sizeof(quantMagic));
        writeU32(os, static_cast<uint32_t>(net.precision()));
        for (size_t i = 0; i < net.layerCount(); ++i) {
            const LayerQuant &q = net.layer(i).quant();
            os.write(reinterpret_cast<const char *>(&q.act.scale),
                     sizeof(float));
            writeU32(os, static_cast<uint32_t>(q.act.zeroPoint));
            writeU32(os, static_cast<uint32_t>(q.act.qmin));
            writeU32(os, static_cast<uint32_t>(q.act.qmax));
            writeU64(os, q.weightScales.size());
            os.write(reinterpret_cast<const char *>(
                         q.weightScales.data()),
                     static_cast<std::streamsize>(
                         q.weightScales.size() * sizeof(float)));
        }
    }
    if (!os)
        return Status::ioError("write failed for '" + path + "'");
    return Status::ok();
}

Status
loadWeights(Network &net, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return Status::ioError("cannot open '" + path +
                               "' for reading");
    char got_magic[4];
    is.read(got_magic, sizeof(got_magic));
    if (!is || std::memcmp(got_magic, magic, sizeof(magic)) != 0)
        return Status::protocolError("'" + path +
                                     "' is not a DJW1 weight file");
    uint32_t layer_count;
    if (!readU32(is, layer_count))
        return Status::protocolError("truncated weight file");
    if (layer_count != net.layerCount()) {
        return Status::invalidArgument(strprintf(
            "weight file has %u layers, network '%s' has %zu",
            layer_count, net.name().c_str(), net.layerCount()));
    }
    for (size_t i = 0; i < net.layerCount(); ++i) {
        Layer &layer = net.layer(i);
        uint32_t name_len;
        if (!readU32(is, name_len) || name_len > 4096)
            return Status::protocolError("truncated weight file");
        std::string name(name_len, '\0');
        is.read(name.data(), name_len);
        if (!is)
            return Status::protocolError("truncated weight file");
        if (name != layer.name()) {
            return Status::invalidArgument(strprintf(
                "layer %zu name mismatch: file '%s', network '%s'",
                i, name.c_str(), layer.name().c_str()));
        }
        uint32_t tensor_count;
        if (!readU32(is, tensor_count))
            return Status::protocolError("truncated weight file");
        auto params = layer.params();
        if (tensor_count != params.size()) {
            return Status::invalidArgument(strprintf(
                "layer '%s': file has %u param tensors, network has "
                "%zu", name.c_str(), tensor_count, params.size()));
        }
        for (Tensor *t : params) {
            uint64_t elems;
            if (!readU64(is, elems))
                return Status::protocolError("truncated weight file");
            if (elems != static_cast<uint64_t>(t->elems())) {
                return Status::invalidArgument(strprintf(
                    "layer '%s': tensor element count mismatch "
                    "(file %llu, network %lld)", name.c_str(),
                    static_cast<unsigned long long>(elems),
                    static_cast<long long>(t->elems())));
            }
            is.read(reinterpret_cast<char *>(t->data()),
                    static_cast<std::streamsize>(
                        elems * sizeof(float)));
            if (!is)
                return Status::protocolError("truncated weight file");
        }
    }

    // Optional quantization trailer; plain EOF means an f32 file.
    char quant_tag[4];
    is.read(quant_tag, sizeof(quant_tag));
    if (!is)
        return Status::ok();
    if (std::memcmp(quant_tag, quantMagic, sizeof(quantMagic)) != 0)
        return Status::protocolError(
            "'" + path + "' has trailing bytes that are not a QNT1 "
            "quantization section");
    uint32_t prec_raw;
    if (!readU32(is, prec_raw) ||
        prec_raw > static_cast<uint32_t>(Precision::Int8))
        return Status::protocolError("bad precision in QNT1 section");
    Precision precision = static_cast<Precision>(prec_raw);
    std::vector<LayerQuant> layer_quant(net.layerCount());
    for (size_t i = 0; i < net.layerCount(); ++i) {
        LayerQuant &q = layer_quant[i];
        uint32_t zp, qmin, qmax;
        is.read(reinterpret_cast<char *>(&q.act.scale),
                sizeof(float));
        if (!is || !readU32(is, zp) || !readU32(is, qmin) ||
            !readU32(is, qmax))
            return Status::protocolError("truncated QNT1 section");
        q.act.zeroPoint = static_cast<int32_t>(zp);
        q.act.qmin = static_cast<int32_t>(qmin);
        q.act.qmax = static_cast<int32_t>(qmax);
        uint64_t nscales;
        if (!readU64(is, nscales) || nscales > (1ull << 32))
            return Status::protocolError("truncated QNT1 section");
        q.weightScales.resize(static_cast<size_t>(nscales));
        is.read(reinterpret_cast<char *>(q.weightScales.data()),
                static_cast<std::streamsize>(nscales *
                                             sizeof(float)));
        if (!is)
            return Status::protocolError("truncated QNT1 section");
    }
    net.applyQuantization(precision, layer_quant);
    return Status::ok();
}

} // namespace nn
} // namespace djinn
