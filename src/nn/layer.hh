/**
 * @file
 * Layer abstraction for the inference library. A Network is an
 * ordered pipeline of Layers; each layer maps an input Tensor with
 * batch dimension N to an output Tensor with the same N.
 */

#ifndef DJINN_NN_LAYER_HH
#define DJINN_NN_LAYER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/quant.hh"
#include "nn/tensor.hh"

namespace djinn {
namespace nn {

/** The kinds of layer the library implements. */
enum class LayerKind {
    InnerProduct,
    Convolution,
    LocallyConnected,
    MaxPool,
    AvgPool,
    ReLU,
    Tanh,
    Sigmoid,
    HardTanh,
    LRN,
    Softmax,
    Dropout,
    Flatten,
};

/** Printable name of a layer kind (matches the netdef keyword). */
const char *layerKindName(LayerKind kind);

/** Parse a netdef keyword into a LayerKind; fatal() on unknown. */
LayerKind layerKindFromName(const std::string &name);

/**
 * Base class for all layers. Layers are configured at construction,
 * have their parameter shapes fixed by setup(), and are immutable
 * during forward() so concurrent inference threads can share them.
 */
class Layer
{
  public:
    /** @param name unique layer name within its network. */
    Layer(std::string name, LayerKind kind)
        : name_(std::move(name)), kind_(kind)
    {}

    virtual ~Layer() = default;

    Layer(const Layer &) = delete;
    Layer &operator=(const Layer &) = delete;

    /** The layer's unique name within its network. */
    const std::string &name() const { return name_; }

    /** The layer's kind. */
    LayerKind kind() const { return kind_; }

    /** The input sample shape this layer was set up with. */
    const Shape &inputShape() const { return inputShape_; }

    /** The output sample shape computed by setup(). */
    const Shape &outputShape() const { return outputShape_; }

    /**
     * Fix the input geometry and allocate parameters. The batch
     * dimension of @p input is ignored; geometry is (c, h, w).
     * Must be called exactly once before forward().
     */
    void setup(const Shape &input);

    /**
     * Run the forward pass over a batch.
     *
     * @param in input with shape inputShape().withBatch(N).
     * @param out resized by the layer to outputShape().withBatch(N).
     */
    void forward(const Tensor &in, Tensor &out) const;

    /** Number of learned parameters (weights + biases). */
    virtual uint64_t paramCount() const { return 0; }

    /**
     * Useful floating point operations of one sample's forward
     * pass, using the same counting convention as
     * perf::analyzeNetwork so static and measured costs line up.
     * Valid only after setup().
     */
    virtual uint64_t flopsPerSample() const;

    /** Mutable views of the learned parameter tensors. */
    virtual std::vector<Tensor *> params() { return {}; }

    /** Read-only views of the learned parameter tensors. */
    std::vector<const Tensor *> params() const;

    /** One-line human-readable description. */
    virtual std::string describe() const;

    /** Numeric precision this layer executes at (F32 until lowered). */
    Precision precision() const { return precision_; }

    /** Quantization state installed by setPrecision (int8 only). */
    const LayerQuant &quant() const { return quant_; }

    /** Whether the layer kind can execute at @p p. */
    virtual bool
    supportsPrecision(Precision p) const
    {
        return p == Precision::F32;
    }

    /**
     * Lower the layer to precision @p p. For Int8, @p q supplies the
     * per-tensor activation mapping and the symmetric per-output-
     * channel weight scales; empty weight scales are derived from
     * the current weights (deterministically), so serialized scale
     * sets and freshly derived ones produce the same codes. fatal()
     * if the layer does not support @p p. Must be called between
     * setup() and the first forward(); not thread safe against
     * concurrent forward() calls.
     */
    void setPrecision(Precision p, LayerQuant q = {});

    /**
     * Compute the int8 LayerQuant for this layer given a calibration
     * batch of its *inputs* (the activation mapping covers the
     * batch's min/max; weight scales come from the current weights).
     * Returns an empty LayerQuant for layers with no int8 lowering.
     */
    virtual LayerQuant
    calibrate(const Tensor &in) const
    {
        (void)in;
        return {};
    }

  protected:
    /** Compute the output sample shape and allocate parameters. */
    virtual Shape setupImpl(const Shape &input) = 0;

    /** Layer-specific forward pass; shapes already validated. */
    virtual void forwardImpl(const Tensor &in, Tensor &out) const = 0;

    /**
     * Hook run by setPrecision after precision_/quant_ are set:
     * derive cached precision-dependent state (e.g. int8 weight
     * codes) and fill in empty weight scales.
     */
    virtual void onPrecisionChanged() {}

    /** Mutable quant state for onPrecisionChanged overrides. */
    LayerQuant &mutableQuant() { return quant_; }

  private:
    std::string name_;
    LayerKind kind_;
    Shape inputShape_;
    Shape outputShape_;
    bool isSetUp_ = false;
    Precision precision_ = Precision::F32;
    LayerQuant quant_;
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_LAYER_HH
