/**
 * @file
 * The model zoo: netdef definitions of the five neural network
 * architectures behind the seven Tonic applications (paper Table 1).
 *
 *   AlexNet   (IMC)        CNN, 60M params
 *   Mnist     (DIG)        CNN, ~60K params
 *   DeepFace  (FACE)       CNN + locally connected, ~120M params
 *   KaldiAsr  (ASR)        DNN, 30M params
 *   SennaPos / SennaChk / SennaNer (POS/CHK/NER) DNN, ~180K params
 *
 * Weights are deterministic pseudo-random (see nn/init.hh); the
 * paper's experiments measure throughput, not accuracy.
 */

#ifndef DJINN_NN_ZOO_HH
#define DJINN_NN_ZOO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.hh"

namespace djinn {
namespace nn {
namespace zoo {

/** The networks the zoo can build. */
enum class Model {
    AlexNet,
    Mnist,
    DeepFace,
    KaldiAsr,
    SennaPos,
    SennaChk,
    SennaNer,
};

/** Canonical lower-case name ("alexnet", "senna_pos", ...). */
const char *modelName(Model model);

/** Parse a model name; fatal() on unknown. */
Model modelFromName(const std::string &name);

/** The netdef source text for a model. */
std::string netDef(Model model);

/**
 * Build a model: parse its netdef and initialize weights
 * deterministically from @p seed.
 */
NetworkPtr build(Model model, uint64_t seed = 42);

/**
 * Build a model and lower it to @p precision. Int8 activation
 * mappings are calibrated on calibrationBatch(); f32 is a plain
 * build.
 */
NetworkPtr build(Model model, Precision precision,
                 uint64_t seed = 42);

/**
 * The committed calibration set for @p net: a small deterministic
 * batch of inputs drawn from an LCG stream keyed by the network's
 * name, so every build of a model calibrates on identical bytes.
 */
Tensor calibrationBatch(const Network &net, int64_t batch = 4);

/** All models, in Table-1 order. */
std::vector<Model> allModels();

} // namespace zoo
} // namespace nn
} // namespace djinn

#endif // DJINN_NN_ZOO_HH
