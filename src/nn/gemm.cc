#include "nn/gemm.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace djinn {
namespace nn {

namespace {

// ---------------------------------------------------------------
// Production kernel: packed panels + register-tiled microkernel.
//
// Blocking scheme (DESIGN.md §8): the k dimension is cut into KC
// slices; per slice, op(B) is packed once into NR-wide column
// panels and rows of C are partitioned into MC blocks across the
// compute pool. Each MC block packs its op(A) slice into MR-row
// panels and drives the MR x NR microkernel. Every C element is
// owned by exactly one row block, and k slices are visited in
// ascending order with a barrier between them, so the floating
// point reduction order is fixed regardless of pool size.
// ---------------------------------------------------------------

constexpr int64_t MR = 8;   ///< microkernel rows
constexpr int64_t NR = 16;  ///< microkernel columns
constexpr int64_t KC = 256; ///< k block (panel depth)
constexpr int64_t MC = 64;  ///< rows per parallel work unit

static_assert(MR == 8, "microKernel unrolls exactly MR == 8 rows");
static_assert(MC % MR == 0, "row blocks must hold whole A panels");

/** Fetch op(A)[i][p] given the storage and transpose flag. */
inline float
fetchA(const float *a, int64_t lda, Trans trans, int64_t i, int64_t p)
{
    return trans == Trans::No ? a[i * lda + p] : a[p * lda + i];
}

/** Fetch op(B)[p][j] given the storage and transpose flag. */
inline float
fetchB(const float *b, int64_t ldb, Trans trans, int64_t p, int64_t j)
{
    return trans == Trans::No ? b[p * ldb + j] : b[j * ldb + p];
}

/**
 * The register-tiled core: acc[MR][NR] += Apanel * Bpanel over kb
 * steps. Written with GCC/Clang vector extensions so each of the
 * MR accumulator rows is one NR-wide vector register (legalized to
 * the target's width automatically); contraction is disabled for
 * this file, so mul and add stay separate IEEE operations and the
 * result bits never depend on the host's FMA support.
 */
#if defined(__GNUC__) || defined(__clang__)

typedef float VecNR __attribute__((vector_size(NR * sizeof(float)),
                                   aligned(alignof(float))));

__attribute__((noinline)) void
microKernel(int64_t kb, const float *__restrict__ ap,
            const float *__restrict__ bp, float *acc)
{
    VecNR c0{}, c1{}, c2{}, c3{}, c4{}, c5{}, c6{}, c7{};
    for (int64_t p = 0; p < kb; ++p) {
        const float *a = ap + p * MR;
        VecNR bv;
        __builtin_memcpy(&bv, bp + p * NR, sizeof(bv));
        c0 += a[0] * bv;
        c1 += a[1] * bv;
        c2 += a[2] * bv;
        c3 += a[3] * bv;
        c4 += a[4] * bv;
        c5 += a[5] * bv;
        c6 += a[6] * bv;
        c7 += a[7] * bv;
    }
    const VecNR rows[MR] = {c0, c1, c2, c3, c4, c5, c6, c7};
    __builtin_memcpy(acc, rows, sizeof(rows));
}

#else // portable scalar fallback, same arithmetic order

void
microKernel(int64_t kb, const float *ap, const float *bp, float *acc)
{
    for (int64_t i = 0; i < MR * NR; ++i)
        acc[i] = 0.0f;
    for (int64_t p = 0; p < kb; ++p) {
        const float *arow = ap + p * MR;
        const float *brow = bp + p * NR;
        for (int64_t i = 0; i < MR; ++i) {
            float av = arow[i];
            float *crow = acc + i * NR;
            for (int64_t j = 0; j < NR; ++j)
                crow[j] += av * brow[j];
        }
    }
}

#endif

/**
 * Pack op(B)[k0 : k0+kb) x [0 : n) into NR-wide panels: panel pj
 * holds columns [pj*NR, pj*NR+NR) in layout [p][j], zero-padded to
 * NR at the right edge.
 */
void
packB(const float *b, int64_t ldb, Trans trans, int64_t k0,
      int64_t kb, int64_t n, int64_t pj0, int64_t pj1, float *bpack)
{
    for (int64_t pj = pj0; pj < pj1; ++pj) {
        float *panel = bpack + pj * kb * NR;
        int64_t j0 = pj * NR;
        int64_t nr = std::min(NR, n - j0);
        for (int64_t p = 0; p < kb; ++p) {
            float *row = panel + p * NR;
            for (int64_t jj = 0; jj < nr; ++jj)
                row[jj] = fetchB(b, ldb, trans, k0 + p, j0 + jj);
            for (int64_t jj = nr; jj < NR; ++jj)
                row[jj] = 0.0f;
        }
    }
}

/**
 * Pack op(A)[i0 : i0+mb) x [k0 : k0+kb) into MR-row panels in
 * layout [p][i], zero-padded to MR at the bottom edge.
 */
void
packA(const float *a, int64_t lda, Trans trans, int64_t i0,
      int64_t mb, int64_t k0, int64_t kb, float *apack)
{
    int64_t mpanels = (mb + MR - 1) / MR;
    for (int64_t pi = 0; pi < mpanels; ++pi) {
        float *panel = apack + pi * kb * MR;
        int64_t ib = i0 + pi * MR;
        int64_t mr = std::min(MR, i0 + mb - ib);
        for (int64_t p = 0; p < kb; ++p) {
            float *row = panel + p * MR;
            for (int64_t ii = 0; ii < mr; ++ii)
                row[ii] = fetchA(a, lda, trans, ib + ii, k0 + p);
            for (int64_t ii = mr; ii < MR; ++ii)
                row[ii] = 0.0f;
        }
    }
}

/** Scale C by beta (the epilogue-free prologue of every path). */
void
scaleByBeta(int64_t m, int64_t n, float beta, float *c, int64_t ldc)
{
    auto &pool = common::computePool();
    int64_t grain =
        std::max<int64_t>(1, 16384 / std::max<int64_t>(n, 1));
    pool.parallelFor(0, m, grain, [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
            float *c_row = c + i * ldc;
            if (beta == 0.0f) {
                std::memset(c_row, 0,
                            static_cast<size_t>(n) * sizeof(float));
            } else if (beta != 1.0f) {
                for (int64_t j = 0; j < n; ++j)
                    c_row[j] *= beta;
            }
        }
    });
}

/**
 * Matrix-vector fast path (n == 1): one fixed-order dot product per
 * output row, partitioned across the pool.
 */
void
gemvKernel(Trans trans_a, Trans trans_b, int64_t m, int64_t k,
           float alpha, const float *a, int64_t lda, const float *b,
           int64_t ldb, float *c, int64_t ldc)
{
    // B's single column: stored k x 1 (stride ldb) untransposed,
    // 1 x k (stride 1) transposed.
    int64_t bstride = trans_b == Trans::No ? ldb : 1;
    auto &pool = common::computePool();
    int64_t grain =
        std::max<int64_t>(1, 4096 / std::max<int64_t>(k, 1));
    pool.parallelFor(0, m, grain, [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
            float acc = 0.0f;
            for (int64_t p = 0; p < k; ++p)
                acc += fetchA(a, lda, trans_a, i, p) * b[p * bstride];
            c[i * ldc] += alpha * acc;
        }
    });
}

} // namespace

void
sgemm(Trans trans_a, Trans trans_b, int64_t m, int64_t n, int64_t k,
      float alpha, const float *a, int64_t lda, const float *b,
      int64_t ldb, float beta, float *c, int64_t ldc)
{
    if (m < 0 || n < 0 || k < 0)
        fatal("sgemm: negative dimension m=%ld n=%ld k=%ld", m, n, k);
    if (m == 0 || n == 0)
        return;

    scaleByBeta(m, n, beta, c, ldc);
    if (k == 0 || alpha == 0.0f)
        return;

    if (n == 1) {
        gemvKernel(trans_a, trans_b, m, k, alpha, a, lda, b, ldb, c,
                   ldc);
        return;
    }

    auto &pool = common::computePool();
    int64_t npanels = (n + NR - 1) / NR;
    int64_t kc0 = std::min(KC, k);

    // The B pack buffer is shared by all row tasks of one k slice;
    // thread-local so repeated calls from the same thread reuse it.
    static thread_local std::vector<float> bpack_tls;
    std::vector<float> &bpack = bpack_tls;
    bpack.resize(static_cast<size_t>(npanels) * kc0 * NR);

    for (int64_t k0 = 0; k0 < k; k0 += KC) {
        int64_t kb = std::min(KC, k - k0);
        pool.parallelFor(
            0, npanels, 16, [&](int64_t p0, int64_t p1) {
                packB(b, ldb, trans_b, k0, kb, n, p0, p1,
                      bpack.data());
            });

        int64_t mblocks = (m + MC - 1) / MC;
        pool.parallelFor(0, mblocks, 1, [&](int64_t b0, int64_t b1) {
            static thread_local std::vector<float> apack_tls;
            std::vector<float> &apack = apack_tls;
            apack.resize(static_cast<size_t>(MC) * kb);
            for (int64_t blk = b0; blk < b1; ++blk) {
                int64_t i0 = blk * MC;
                int64_t mb = std::min(MC, m - i0);
                packA(a, lda, trans_a, i0, mb, k0, kb, apack.data());
                int64_t mpanels = (mb + MR - 1) / MR;
                for (int64_t pi = 0; pi < mpanels; ++pi) {
                    int64_t ib = i0 + pi * MR;
                    int64_t mr = std::min(MR, m - ib);
                    for (int64_t pj = 0; pj < npanels; ++pj) {
                        int64_t jb = pj * NR;
                        int64_t nr = std::min(NR, n - jb);
                        float acc[MR * NR]; // fully written below
                        microKernel(kb, apack.data() + pi * kb * MR,
                                    bpack.data() + pj * kb * NR,
                                    acc);
                        for (int64_t ii = 0; ii < mr; ++ii) {
                            float *crow = c + (ib + ii) * ldc + jb;
                            const float *arow = acc + ii * NR;
                            for (int64_t jj = 0; jj < nr; ++jj)
                                crow[jj] += alpha * arow[jj];
                        }
                    }
                }
            }
        });
    }
}

void
sgemm(int64_t m, int64_t n, int64_t k, const float *a, const float *b,
      float *c)
{
    sgemm(Trans::No, Trans::No, m, n, k, 1.0f, a, k, b, n, 0.0f, c, n);
}

void
sgemv(int64_t m, int64_t n, const float *a, const float *x, float *y)
{
    // y = A * x is sgemm with a 1-column B (ldb 1) writing a
    // 1-column C (ldc 1); dispatches to the n == 1 fast path.
    sgemm(Trans::No, Trans::No, m, 1, n, 1.0f, a, n, x, 1, 0.0f, y,
          1);
}

} // namespace nn
} // namespace djinn
