#include "nn/layer.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace djinn {
namespace nn {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::InnerProduct: return "fc";
      case LayerKind::Convolution: return "conv";
      case LayerKind::LocallyConnected: return "local";
      case LayerKind::MaxPool: return "maxpool";
      case LayerKind::AvgPool: return "avgpool";
      case LayerKind::ReLU: return "relu";
      case LayerKind::Tanh: return "tanh";
      case LayerKind::Sigmoid: return "sigmoid";
      case LayerKind::HardTanh: return "hardtanh";
      case LayerKind::LRN: return "lrn";
      case LayerKind::Softmax: return "softmax";
      case LayerKind::Dropout: return "dropout";
      case LayerKind::Flatten: return "flatten";
    }
    return "unknown";
}

LayerKind
layerKindFromName(const std::string &name)
{
    static const std::pair<const char *, LayerKind> table[] = {
        {"fc", LayerKind::InnerProduct},
        {"conv", LayerKind::Convolution},
        {"local", LayerKind::LocallyConnected},
        {"maxpool", LayerKind::MaxPool},
        {"avgpool", LayerKind::AvgPool},
        {"relu", LayerKind::ReLU},
        {"tanh", LayerKind::Tanh},
        {"sigmoid", LayerKind::Sigmoid},
        {"hardtanh", LayerKind::HardTanh},
        {"lrn", LayerKind::LRN},
        {"softmax", LayerKind::Softmax},
        {"dropout", LayerKind::Dropout},
        {"flatten", LayerKind::Flatten},
    };
    for (const auto &[key, kind] : table) {
        if (name == key)
            return kind;
    }
    fatal("unknown layer kind '%s'", name.c_str());
}

void
Layer::setup(const Shape &input)
{
    if (isSetUp_)
        panic("layer '%s' set up twice", name_.c_str());
    inputShape_ = Shape(1, input.c(), input.h(), input.w());
    outputShape_ = setupImpl(inputShape_);
    isSetUp_ = true;
}

void
Layer::forward(const Tensor &in, Tensor &out) const
{
    if (!isSetUp_)
        panic("layer '%s' forward before setup", name_.c_str());
    const Shape &s = in.shape();
    if (s.c() != inputShape_.c() || s.h() != inputShape_.h() ||
        s.w() != inputShape_.w()) {
        fatal("layer '%s': input %s does not match expected %s",
              name_.c_str(), s.toString().c_str(),
              inputShape_.toString().c_str());
    }
    out.resize(outputShape_.withBatch(s.n()));
    forwardImpl(in, out);
}

void
Layer::setPrecision(Precision p, LayerQuant q)
{
    if (!isSetUp_)
        panic("layer '%s': setPrecision before setup", name_.c_str());
    if (!supportsPrecision(p)) {
        fatal("layer '%s' (%s) does not support precision %s",
              name_.c_str(), layerKindName(kind_), precisionName(p));
    }
    precision_ = p;
    quant_ = std::move(q);
    onPrecisionChanged();
}

uint64_t
Layer::flopsPerSample() const
{
    uint64_t out_elems =
        static_cast<uint64_t>(outputShape_.sampleElems());
    switch (kind_) {
      case LayerKind::Dropout:
      case LayerKind::Flatten:
        return 0;
      case LayerKind::Softmax:
        return 4 * out_elems;
      default:
        // ReLU/Tanh/Sigmoid/HardTanh: one op + one store pass.
        return 2 * out_elems;
    }
}

std::vector<const Tensor *>
Layer::params() const
{
    auto mutable_params = const_cast<Layer *>(this)->params();
    return {mutable_params.begin(), mutable_params.end()};
}

std::string
Layer::describe() const
{
    std::string s =
        strprintf("%s (%s): %s -> %s, %lu params", name_.c_str(),
                  layerKindName(kind_),
                  inputShape_.toString().c_str(),
                  outputShape_.toString().c_str(),
                  static_cast<unsigned long>(paramCount()));
    if (precision_ != Precision::F32)
        s += strprintf(" [%s]", precisionName(precision_));
    return s;
}

} // namespace nn
} // namespace djinn
