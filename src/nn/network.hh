/**
 * @file
 * A Network is an ordered pipeline of layers with a fixed input
 * geometry, mirroring the structure of the paper's Caffe-hosted
 * models: all seven Tonic networks are layer chains.
 */

#ifndef DJINN_NN_NETWORK_HH
#define DJINN_NN_NETWORK_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hh"
#include "nn/tensor.hh"

namespace djinn {
namespace nn {

class ProfileSink;

/**
 * An inference network: input geometry plus an ordered layer chain.
 * After finalize(), the network is immutable and safe to share
 * read-only between worker threads (the paper's single-copy
 * in-memory model requirement).
 */
class Network
{
  public:
    /**
     * @param name network name (e.g. "alexnet").
     * @param input per-sample input geometry (c, h, w).
     */
    Network(std::string name, const Shape &input);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** The network's name. */
    const std::string &name() const { return name_; }

    /** The per-sample input geometry. */
    const Shape &inputShape() const { return inputShape_; }

    /** The per-sample output geometry (valid after finalize). */
    const Shape &outputShape() const;

    /**
     * Append a layer. The layer is set up against the current tail
     * shape immediately; ownership transfers to the network.
     */
    void add(LayerPtr layer);

    /** Mark construction complete. Must be called before forward(). */
    void finalize();

    /** True once finalize() has run. */
    bool finalized() const { return finalized_; }

    /** Number of layers. */
    size_t layerCount() const { return layers_.size(); }

    /** Layer by position. */
    const Layer &layer(size_t i) const { return *layers_[i]; }

    /** Mutable layer by position (weight loading / init). */
    Layer &layer(size_t i) { return *layers_[i]; }

    /** Layer by name; nullptr when absent. */
    const Layer *findLayer(const std::string &name) const;

    /** Total learned parameters across all layers. */
    uint64_t paramCount() const;

    /** Total parameter bytes (fp32). */
    uint64_t weightBytes() const;

    /**
     * Run the forward pass over a batch.
     *
     * @param in input of shape inputShape().withBatch(N).
     * @return the final layer's output (batch N).
     *
     * Thread safety: concurrent forward() calls on one Network are
     * safe; scratch tensors live on the caller's stack.
     */
    Tensor forward(const Tensor &in) const;

    /**
     * Forward pass with optional per-layer profiling. When @p sink
     * is non-null, one LayerProfile (wall time, FLOPs, activation
     * bytes) is emitted per layer in execution order; when null the
     * only extra cost is a pointer check per layer.
     */
    Tensor forward(const Tensor &in, ProfileSink *sink) const;

    /**
     * Run option: whether forward() may use the shared compute
     * pool for intra-layer parallelism (on by default). Turning it
     * off pins each forward pass to its calling thread — useful
     * when a server already saturates cores with concurrent
     * requests. Output bits are identical either way (DESIGN.md
     * §8). May be toggled at any time, including after finalize().
     */
    void setParallel(bool on)
    {
        parallel_.store(on, std::memory_order_relaxed);
    }

    /** Whether forward() may use the shared compute pool. */
    bool parallel() const
    {
        return parallel_.load(std::memory_order_relaxed);
    }

    /**
     * The precision the network was lowered to (F32 by default).
     * Individual layers without a lowered implementation (locally
     * connected, LRN, activations) stay f32 even when this reports
     * Bf16 or Int8.
     */
    Precision precision() const { return precision_; }

    /**
     * Lower the network to @p precision. For Int8 the activation
     * mappings are calibrated from @p calib (shape
     * inputShape().withBatch(N)): layers are visited in order, each
     * calibrated on the activations its *already-lowered*
     * predecessors produce, so calibration sees the same
     * distribution inference will. Bf16 needs no calibration
     * (@p calib may be empty). Requires finalize(); not thread safe
     * against concurrent forward() calls.
     */
    void quantize(Precision precision, const Tensor &calib);

    /**
     * Apply previously serialized quantization state: one LayerQuant
     * per layer, in layer order. For Int8 a layer with empty weight
     * scales is left at f32 (it was not quantized when saved).
     */
    void applyQuantization(Precision precision,
                           const std::vector<LayerQuant> &layerQuant);

    /** Multi-line structural description (one line per layer). */
    std::string describe() const;

  private:
    std::string name_;
    Shape inputShape_;
    Shape tailShape_;
    std::vector<LayerPtr> layers_;
    bool finalized_ = false;
    Precision precision_ = Precision::F32;
    std::atomic<bool> parallel_{true};
};

using NetworkPtr = std::shared_ptr<Network>;

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_NETWORK_HH
