/**
 * @file
 * Low-precision GEMM kernels (DESIGN.md §14): bf16 storage-rounded
 * GEMM and u8 x s8 integer GEMM with int32 accumulation. Both reuse
 * the sgemm blocking scheme (KC-sliced k, NR-wide B panels shared
 * per slice, MC-row blocks partitioned across the compute pool,
 * an MR x NR register-tiled microkernel) with quantization fused
 * into the packing step.
 *
 * Determinism: the bf16 kernel fixes its reduction order exactly
 * like sgemm (this file is compiled with -ffp-contract=off); the
 * int8 kernel accumulates in exact integer arithmetic, so its
 * blocking, thread count, and even the host ISA cannot change the
 * output bits — the only floating point is the fixed per-element
 * dequant expression on store.
 */

#include "nn/gemm.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#if defined(__AVX512VNNI__) && defined(__AVX512F__)
#include <immintrin.h>
#define DJINN_GEMM_VNNI 1
#endif

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace djinn {
namespace nn {

namespace {

constexpr int64_t MR = 8;   ///< microkernel rows
constexpr int64_t NR = 16;  ///< microkernel columns
constexpr int64_t KC = 256; ///< bf16 k block (panel depth, floats)
constexpr int64_t MC = 64;  ///< rows per parallel work unit

/** int8 k block: 4x deeper than f32 for the same panel bytes. */
constexpr int64_t KC8 = 1024;

static_assert(MR == 8, "microkernels unroll exactly MR == 8 rows");
static_assert(MC % MR == 0, "row blocks must hold whole A panels");
static_assert(KC8 % 4 == 0, "int8 panels pack k in groups of 4");

/** Fetch op(A)[i][p] given the storage and transpose flag. */
inline float
fetchA(const float *a, int64_t lda, Trans trans, int64_t i, int64_t p)
{
    return trans == Trans::No ? a[i * lda + p] : a[p * lda + i];
}

/** Fetch op(B)[p][j] given the storage and transpose flag. */
inline float
fetchB(const float *b, int64_t ldb, Trans trans, int64_t p, int64_t j)
{
    return trans == Trans::No ? b[p * ldb + j] : b[j * ldb + p];
}

inline int8_t
fetchA8(const int8_t *a, int64_t lda, Trans trans, int64_t i,
        int64_t p)
{
    return trans == Trans::No ? a[i * lda + p] : a[p * lda + i];
}

inline int8_t
fetchB8(const int8_t *b, int64_t ldb, Trans trans, int64_t p,
        int64_t j)
{
    return trans == Trans::No ? b[p * ldb + j] : b[j * ldb + p];
}

/** Scale C by beta across the pool (same as sgemm's prologue). */
void
scaleByBeta(int64_t m, int64_t n, float beta, float *c, int64_t ldc)
{
    auto &pool = common::computePool();
    int64_t grain =
        std::max<int64_t>(1, 16384 / std::max<int64_t>(n, 1));
    pool.parallelFor(0, m, grain, [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
            float *c_row = c + i * ldc;
            if (beta == 0.0f) {
                std::memset(c_row, 0,
                            static_cast<size_t>(n) * sizeof(float));
            } else if (beta != 1.0f) {
                for (int64_t j = 0; j < n; ++j)
                    c_row[j] *= beta;
            }
        }
    });
}

// ---------------------------------------------------------------
// bf16: the sgemm structure with round-to-bf16 fused into packing.
// ---------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)

typedef float VecNR __attribute__((vector_size(NR * sizeof(float)),
                                   aligned(alignof(float))));

__attribute__((noinline)) void
microKernelF32(int64_t kb, const float *__restrict__ ap,
               const float *__restrict__ bp, float *acc)
{
    VecNR c0{}, c1{}, c2{}, c3{}, c4{}, c5{}, c6{}, c7{};
    for (int64_t p = 0; p < kb; ++p) {
        const float *a = ap + p * MR;
        VecNR bv;
        __builtin_memcpy(&bv, bp + p * NR, sizeof(bv));
        c0 += a[0] * bv;
        c1 += a[1] * bv;
        c2 += a[2] * bv;
        c3 += a[3] * bv;
        c4 += a[4] * bv;
        c5 += a[5] * bv;
        c6 += a[6] * bv;
        c7 += a[7] * bv;
    }
    const VecNR rows[MR] = {c0, c1, c2, c3, c4, c5, c6, c7};
    __builtin_memcpy(acc, rows, sizeof(rows));
}

#else // portable scalar fallback, same arithmetic order

void
microKernelF32(int64_t kb, const float *ap, const float *bp,
               float *acc)
{
    for (int64_t i = 0; i < MR * NR; ++i)
        acc[i] = 0.0f;
    for (int64_t p = 0; p < kb; ++p) {
        const float *arow = ap + p * MR;
        const float *brow = bp + p * NR;
        for (int64_t i = 0; i < MR; ++i) {
            float av = arow[i];
            float *crow = acc + i * NR;
            for (int64_t j = 0; j < NR; ++j)
                crow[j] += av * brow[j];
        }
    }
}

#endif

/** Pack op(B) into NR panels, rounding every value to bf16. */
void
packBBf16(const float *b, int64_t ldb, Trans trans, int64_t k0,
          int64_t kb, int64_t n, int64_t pj0, int64_t pj1,
          float *bpack)
{
    for (int64_t pj = pj0; pj < pj1; ++pj) {
        float *panel = bpack + pj * kb * NR;
        int64_t j0 = pj * NR;
        int64_t nr = std::min(NR, n - j0);
        for (int64_t p = 0; p < kb; ++p) {
            float *row = panel + p * NR;
            for (int64_t jj = 0; jj < nr; ++jj)
                row[jj] =
                    bf16Round(fetchB(b, ldb, trans, k0 + p, j0 + jj));
            for (int64_t jj = nr; jj < NR; ++jj)
                row[jj] = 0.0f;
        }
    }
}

/** Pack op(A) into MR panels, rounding every value to bf16. */
void
packABf16(const float *a, int64_t lda, Trans trans, int64_t i0,
          int64_t mb, int64_t k0, int64_t kb, float *apack)
{
    int64_t mpanels = (mb + MR - 1) / MR;
    for (int64_t pi = 0; pi < mpanels; ++pi) {
        float *panel = apack + pi * kb * MR;
        int64_t ib = i0 + pi * MR;
        int64_t mr = std::min(MR, i0 + mb - ib);
        for (int64_t p = 0; p < kb; ++p) {
            float *row = panel + p * MR;
            for (int64_t ii = 0; ii < mr; ++ii)
                row[ii] = bf16Round(
                    fetchA(a, lda, trans, ib + ii, k0 + p));
            for (int64_t ii = mr; ii < MR; ++ii)
                row[ii] = 0.0f;
        }
    }
}

// ---------------------------------------------------------------
// int8: u8 (left) x s8 (right) panels, int32 accumulation into a
// full-size accumulator buffer that persists across k slices, then
// one dequant epilogue. Integer addition is associative, so the
// slice/block structure cannot affect the result bits.
//
// The left panel is always the unsigned operand (VNNI's vpdpbusd
// multiplies u8 by s8): real u8 activation codes in gemm_s8, or
// s8 weight codes biased by +128 in gemm_s8_wl. The epilogue
// removes both offsets exactly:
//
//   sum_real (qa - oa)(qb - ob)
//     = acc - oa * colsum_b - ob * rowsum_a + k * oa * ob
// ---------------------------------------------------------------

/**
 * u8 x s8 register-tiled core: acc[MR][NR] (int32) = sum over kg
 * groups of 4 k steps. A panel layout: [g][i][0..3] (4 consecutive
 * k codes per row); B panel layout: [g][j][0..3].
 */
#ifdef DJINN_GEMM_VNNI

__attribute__((noinline)) void
microKernelI8(int64_t kg, const uint8_t *__restrict__ ap,
              const int8_t *__restrict__ bp, int32_t *acc)
{
    __m512i c0 = _mm512_setzero_si512(), c1 = c0, c2 = c0, c3 = c0,
            c4 = c0, c5 = c0, c6 = c0, c7 = c0;
    for (int64_t g = 0; g < kg; ++g) {
        __m512i bv = _mm512_loadu_si512(bp + g * NR * 4);
        const uint8_t *arow = ap + g * MR * 4;
        int32_t aw[MR];
        std::memcpy(aw, arow, sizeof(aw));
        c0 = _mm512_dpbusd_epi32(c0, _mm512_set1_epi32(aw[0]), bv);
        c1 = _mm512_dpbusd_epi32(c1, _mm512_set1_epi32(aw[1]), bv);
        c2 = _mm512_dpbusd_epi32(c2, _mm512_set1_epi32(aw[2]), bv);
        c3 = _mm512_dpbusd_epi32(c3, _mm512_set1_epi32(aw[3]), bv);
        c4 = _mm512_dpbusd_epi32(c4, _mm512_set1_epi32(aw[4]), bv);
        c5 = _mm512_dpbusd_epi32(c5, _mm512_set1_epi32(aw[5]), bv);
        c6 = _mm512_dpbusd_epi32(c6, _mm512_set1_epi32(aw[6]), bv);
        c7 = _mm512_dpbusd_epi32(c7, _mm512_set1_epi32(aw[7]), bv);
    }
    _mm512_storeu_si512(acc + 0 * NR, c0);
    _mm512_storeu_si512(acc + 1 * NR, c1);
    _mm512_storeu_si512(acc + 2 * NR, c2);
    _mm512_storeu_si512(acc + 3 * NR, c3);
    _mm512_storeu_si512(acc + 4 * NR, c4);
    _mm512_storeu_si512(acc + 5 * NR, c5);
    _mm512_storeu_si512(acc + 6 * NR, c6);
    _mm512_storeu_si512(acc + 7 * NR, c7);
}

#else // exact scalar fallback: integer math, so bit-identical

void
microKernelI8(int64_t kg, const uint8_t *ap, const int8_t *bp,
              int32_t *acc)
{
    for (int64_t i = 0; i < MR * NR; ++i)
        acc[i] = 0;
    for (int64_t g = 0; g < kg; ++g) {
        const uint8_t *arow = ap + g * MR * 4;
        const int8_t *brow = bp + g * NR * 4;
        for (int64_t i = 0; i < MR; ++i) {
            int32_t *crow = acc + i * NR;
            for (int64_t j = 0; j < NR; ++j) {
                int32_t s = 0;
                for (int64_t e = 0; e < 4; ++e) {
                    s += static_cast<int32_t>(arow[i * 4 + e]) *
                         static_cast<int32_t>(brow[j * 4 + e]);
                }
                crow[j] += s;
            }
        }
    }
}

#endif

/**
 * Pack the signed right-hand panel: either pre-quantized s8 codes
 * (weights) or f32 quantized with @p bq on the fly (activations).
 * Layout [g][j][0..3], zero-padded; column sums of the real codes
 * accumulate into @p colsum (each panel owns a disjoint j range).
 */
void
packBS8(const int8_t *b8, const float *bf, const QuantParams &bq,
        int64_t ldb, Trans trans, int64_t k0, int64_t kb, int64_t n,
        int64_t pj0, int64_t pj1, int8_t *bpack, int64_t kg,
        int32_t *colsum)
{
    for (int64_t pj = pj0; pj < pj1; ++pj) {
        int8_t *panel = bpack + pj * kg * NR * 4;
        int64_t j0 = pj * NR;
        int64_t nr = std::min(NR, n - j0);
        std::memset(panel, 0, static_cast<size_t>(kg) * NR * 4);
        for (int64_t jj = 0; jj < nr; ++jj) {
            int32_t sum = 0;
            for (int64_t p = 0; p < kb; ++p) {
                int32_t q =
                    b8 ? fetchB8(b8, ldb, trans, k0 + p, j0 + jj)
                       : bq.quantize(
                             fetchB(bf, ldb, trans, k0 + p, j0 + jj));
                sum += q;
                panel[(p / 4) * NR * 4 + jj * 4 + (p % 4)] =
                    static_cast<int8_t>(q);
            }
            colsum[j0 + jj] += sum;
        }
    }
}

/**
 * Pack the unsigned left-hand panel: f32 activations quantized
 * with @p aq (gemm_s8) or s8 weight codes biased by +128
 * (gemm_s8_wl). Layout [g][i][0..3], zero-padded; row sums of the
 * real codes accumulate into @p rowsum.
 */
void
packAU8(const float *af, const QuantParams &aq, const int8_t *a8,
        int64_t lda, Trans trans, int64_t i0, int64_t mb, int64_t k0,
        int64_t kb, uint8_t *apack, int64_t kg, int32_t *rowsum)
{
    int64_t mpanels = (mb + MR - 1) / MR;
    for (int64_t pi = 0; pi < mpanels; ++pi) {
        uint8_t *panel = apack + pi * kg * MR * 4;
        int64_t ib = i0 + pi * MR;
        int64_t mr = std::min(MR, i0 + mb - ib);
        std::memset(panel, 0, static_cast<size_t>(kg) * MR * 4);
        for (int64_t ii = 0; ii < mr; ++ii) {
            int32_t sum = 0;
            for (int64_t p = 0; p < kb; ++p) {
                int32_t q =
                    af ? aq.quantize(
                             fetchA(af, lda, trans, ib + ii, k0 + p))
                       : fetchA8(a8, lda, trans, ib + ii, k0 + p) +
                             128;
                sum += q;
                panel[(p / 4) * MR * 4 + ii * 4 + (p % 4)] =
                    static_cast<uint8_t>(q);
            }
            rowsum[ib + ii] += sum;
        }
    }
}

/**
 * The shared u8 x s8 driver. Exactly one of (af) / (a8) is set for
 * the left operand, and one of (b8) / (bf) for the right; @p oa /
 * @p ob are the left/right integer offsets removed in the
 * epilogue. @p a_scales / @p b_scales may be null for a broadcast
 * scale of @p a_scale / @p b_scale.
 */
void
gemmS8Core(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
           int64_t k, float alpha, const float *af,
           const QuantParams &aq, const int8_t *a8, int64_t lda,
           const float *a_scales, float a_scale, const int8_t *b8,
           const float *bf, const QuantParams &bq, int64_t ldb,
           const float *b_scales, float b_scale, float beta,
           float *c, int64_t ldc, int32_t oa, int32_t ob)
{
    if (m < 0 || n < 0 || k < 0)
        fatal("gemm_s8: negative dimension m=%ld n=%ld k=%ld", m, n,
              k);
    if (k > (int64_t{1} << 16))
        fatal("gemm_s8: k=%ld exceeds the int32 accumulator bound "
              "(max %ld)", k, int64_t{1} << 16);
    if (m == 0 || n == 0)
        return;

    scaleByBeta(m, n, beta, c, ldc);
    if (k == 0 || alpha == 0.0f)
        return;

    auto &pool = common::computePool();
    int64_t npanels = (n + NR - 1) / NR;

    // Whole-problem integer state: the accumulator buffer persists
    // across k slices (exact integer addition), the row/column sums
    // feed the zero-point correction.
    static thread_local std::vector<int32_t> acc_tls;
    static thread_local std::vector<int32_t> rowsum_tls;
    static thread_local std::vector<int32_t> colsum_tls;
    std::vector<int32_t> &acc = acc_tls;
    std::vector<int32_t> &rowsum = rowsum_tls;
    std::vector<int32_t> &colsum = colsum_tls;
    acc.assign(static_cast<size_t>(m) * n, 0);
    rowsum.assign(static_cast<size_t>(m), 0);
    colsum.assign(static_cast<size_t>(n), 0);

    int64_t kc0 = std::min(KC8, k);
    int64_t kg0 = (kc0 + 3) / 4;
    static thread_local std::vector<int8_t> bpack_tls;
    std::vector<int8_t> &bpack = bpack_tls;
    bpack.resize(static_cast<size_t>(npanels) * kg0 * NR * 4);

    for (int64_t k0 = 0; k0 < k; k0 += KC8) {
        int64_t kb = std::min(KC8, k - k0);
        int64_t kg = (kb + 3) / 4;
        pool.parallelFor(0, npanels, 16, [&](int64_t p0, int64_t p1) {
            packBS8(b8, bf, bq, ldb, trans_b, k0, kb, n, p0, p1,
                    bpack.data(), kg, colsum.data());
        });

        int64_t mblocks = (m + MC - 1) / MC;
        pool.parallelFor(0, mblocks, 1, [&](int64_t b0, int64_t b1) {
            static thread_local std::vector<uint8_t> apack_tls;
            std::vector<uint8_t> &apack = apack_tls;
            apack.resize(static_cast<size_t>(MC / MR) * kg * MR * 4);
            int32_t tile[MR * NR];
            for (int64_t blk = b0; blk < b1; ++blk) {
                int64_t i0 = blk * MC;
                int64_t mb = std::min(MC, m - i0);
                packAU8(af, aq, a8, lda, trans_a, i0, mb, k0, kb,
                        apack.data(), kg, rowsum.data());
                int64_t mpanels = (mb + MR - 1) / MR;
                for (int64_t pi = 0; pi < mpanels; ++pi) {
                    int64_t ib = i0 + pi * MR;
                    int64_t mr = std::min(MR, m - ib);
                    for (int64_t pj = 0; pj < npanels; ++pj) {
                        int64_t jb = pj * NR;
                        int64_t nr = std::min(NR, n - jb);
                        microKernelI8(
                            kg, apack.data() + pi * kg * MR * 4,
                            bpack.data() + pj * kg * NR * 4, tile);
                        for (int64_t ii = 0; ii < mr; ++ii) {
                            int32_t *arow =
                                acc.data() + (ib + ii) * n + jb;
                            const int32_t *trow = tile + ii * NR;
                            for (int64_t jj = 0; jj < nr; ++jj)
                                arow[jj] += trow[jj];
                        }
                    }
                }
            }
        });
    }

    // Dequant epilogue: one fixed float expression per element, so
    // output bits cannot depend on the pool size.
    int64_t grain =
        std::max<int64_t>(1, 8192 / std::max<int64_t>(n, 1));
    pool.parallelFor(0, m, grain, [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
            float sa = a_scales ? a_scales[i] : a_scale;
            int64_t rcorr = static_cast<int64_t>(ob) * rowsum[i] -
                            k * static_cast<int64_t>(oa) * ob;
            const int32_t *arow = acc.data() + i * n;
            float *crow = c + i * ldc;
            for (int64_t j = 0; j < n; ++j) {
                float sb = b_scales ? b_scales[j] : b_scale;
                int64_t v = static_cast<int64_t>(arow[j]) -
                            static_cast<int64_t>(oa) * colsum[j] -
                            rcorr;
                crow[j] += alpha * sa * sb * static_cast<float>(v);
            }
        }
    });
}

} // namespace

void
gemm_bf16(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
          int64_t k, float alpha, const float *a, int64_t lda,
          const float *b, int64_t ldb, float beta, float *c,
          int64_t ldc)
{
    if (m < 0 || n < 0 || k < 0)
        fatal("gemm_bf16: negative dimension m=%ld n=%ld k=%ld", m,
              n, k);
    if (m == 0 || n == 0)
        return;

    scaleByBeta(m, n, beta, c, ldc);
    if (k == 0 || alpha == 0.0f)
        return;

    auto &pool = common::computePool();
    int64_t npanels = (n + NR - 1) / NR;
    int64_t kc0 = std::min(KC, k);

    static thread_local std::vector<float> bpack_tls;
    std::vector<float> &bpack = bpack_tls;
    bpack.resize(static_cast<size_t>(npanels) * kc0 * NR);

    for (int64_t k0 = 0; k0 < k; k0 += KC) {
        int64_t kb = std::min(KC, k - k0);
        pool.parallelFor(0, npanels, 16, [&](int64_t p0, int64_t p1) {
            packBBf16(b, ldb, trans_b, k0, kb, n, p0, p1,
                      bpack.data());
        });

        int64_t mblocks = (m + MC - 1) / MC;
        pool.parallelFor(0, mblocks, 1, [&](int64_t b0, int64_t b1) {
            static thread_local std::vector<float> apack_tls;
            std::vector<float> &apack = apack_tls;
            apack.resize(static_cast<size_t>(MC) * kb);
            for (int64_t blk = b0; blk < b1; ++blk) {
                int64_t i0 = blk * MC;
                int64_t mb = std::min(MC, m - i0);
                packABf16(a, lda, trans_a, i0, mb, k0, kb,
                          apack.data());
                int64_t mpanels = (mb + MR - 1) / MR;
                for (int64_t pi = 0; pi < mpanels; ++pi) {
                    int64_t ib = i0 + pi * MR;
                    int64_t mr = std::min(MR, m - ib);
                    for (int64_t pj = 0; pj < npanels; ++pj) {
                        int64_t jb = pj * NR;
                        int64_t nr = std::min(NR, n - jb);
                        float tile[MR * NR];
                        microKernelF32(
                            kb, apack.data() + pi * kb * MR,
                            bpack.data() + pj * kb * NR, tile);
                        for (int64_t ii = 0; ii < mr; ++ii) {
                            float *crow = c + (ib + ii) * ldc + jb;
                            const float *trow = tile + ii * NR;
                            for (int64_t jj = 0; jj < nr; ++jj)
                                crow[jj] += alpha * trow[jj];
                        }
                    }
                }
            }
        });
    }
}

void
gemm_s8(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
        int64_t k, float alpha, const float *a, int64_t lda,
        const QuantParams &aq, const int8_t *b, int64_t ldb,
        const float *b_scales, float beta, float *c, int64_t ldc)
{
    if (aq.qmin < 0 || aq.qmax > 255)
        fatal("gemm_s8: activation params must be an unsigned-8 "
              "mapping (qmin %d, qmax %d)", aq.qmin, aq.qmax);
    gemmS8Core(trans_a, trans_b, m, n, k, alpha, a, aq, nullptr,
               lda, nullptr, aq.scale, b, nullptr, QuantParams{},
               ldb, b_scales, 1.0f, beta, c, ldc, aq.zeroPoint, 0);
}

void
gemm_s8_wl(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
           int64_t k, float alpha, const int8_t *a, int64_t lda,
           const float *a_scales, const float *b, int64_t ldb,
           const QuantParams &bq, float beta, float *c, int64_t ldc)
{
    if (bq.qmin < -128 || bq.qmax > 127)
        fatal("gemm_s8_wl: activation params must be a signed-8 "
              "mapping (qmin %d, qmax %d)", bq.qmin, bq.qmax);
    gemmS8Core(trans_a, trans_b, m, n, k, alpha, nullptr,
               QuantParams{}, a, lda, a_scales, 1.0f, nullptr, b,
               bq, ldb, nullptr, bq.scale, beta, c, ldc, 128,
               bq.zeroPoint);
}

} // namespace nn
} // namespace djinn
