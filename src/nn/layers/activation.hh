/**
 * @file
 * Elementwise activation layers: ReLU (image nets), Sigmoid (Kaldi
 * ASR net), Tanh and HardTanh (SENNA NLP nets).
 */

#ifndef DJINN_NN_LAYERS_ACTIVATION_HH
#define DJINN_NN_LAYERS_ACTIVATION_HH

#include "nn/layer.hh"

namespace djinn {
namespace nn {

/**
 * Elementwise activation. Output shape equals input shape; the kind
 * selects the nonlinearity.
 */
class ActivationLayer : public Layer
{
  public:
    /**
     * @param name layer name.
     * @param kind one of ReLU, Tanh, Sigmoid, HardTanh.
     */
    ActivationLayer(std::string name, LayerKind kind);

  protected:
    Shape setupImpl(const Shape &input) override;
    void forwardImpl(const Tensor &in, Tensor &out) const override;
};

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_LAYERS_ACTIVATION_HH
