/**
 * @file
 * 2D convolution layer with stride, zero padding, and grouped
 * convolution (as used by AlexNet), implemented Caffe-style as
 * im2col followed by SGEMM.
 */

#ifndef DJINN_NN_LAYERS_CONVOLUTION_HH
#define DJINN_NN_LAYERS_CONVOLUTION_HH

#include "nn/layer.hh"

namespace djinn {
namespace nn {

/**
 * Expand image patches into columns: for each output position, one
 * column holding the receptive field (channels x kh x kw). Output
 * buffer layout is (c*kh*kw) rows by (out_h*out_w) columns,
 * row-major.
 */
void im2col(const float *data, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w,
            int64_t pad, int64_t stride, float *col);

/**
 * Inverse of im2col: scatter-add columns back into an image
 * (gradient routing for convolution training). @p data must be
 * zeroed by the caller.
 */
void col2im(const float *col, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w,
            int64_t pad, int64_t stride, float *data);

/** Spatial output size for a conv/pool window. */
int64_t convOutSize(int64_t in, int64_t kernel, int64_t pad,
                    int64_t stride);

/**
 * Grouped 2D convolution. Weights are stored (out_c, in_c/groups,
 * kh, kw). Output geometry follows the usual
 * floor((in + 2*pad - kernel) / stride) + 1 rule.
 */
class ConvolutionLayer : public Layer
{
  public:
    /**
     * @param name layer name.
     * @param out_channels number of learned filters.
     * @param kernel square kernel size.
     * @param stride window stride (>= 1).
     * @param pad zero padding on each border.
     * @param groups input/output channel groups (AlexNet uses 2).
     * @param bias whether a per-filter bias is learned.
     */
    ConvolutionLayer(std::string name, int64_t out_channels,
                     int64_t kernel, int64_t stride = 1,
                     int64_t pad = 0, int64_t groups = 1,
                     bool bias = true);

    uint64_t paramCount() const override;
    std::vector<Tensor *> params() override;

    int64_t outChannels() const { return outChannels_; }
    int64_t kernel() const { return kernel_; }
    int64_t stride() const { return stride_; }
    int64_t pad() const { return pad_; }
    int64_t groups() const { return groups_; }

    uint64_t
    flopsPerSample() const override
    {
        uint64_t cols = static_cast<uint64_t>(
            outputShape().h() * outputShape().w());
        uint64_t patch = static_cast<uint64_t>(
            (inputShape().c() / groups_) * kernel_ * kernel_);
        uint64_t out_per_group =
            static_cast<uint64_t>(outChannels_ / groups_);
        return 2ull * static_cast<uint64_t>(groups_) *
               out_per_group * cols * patch;
    }

    /** The (out_c, in_c/groups, kh, kw) filter bank. */
    const Tensor &weights() const { return weights_; }

    /** Convolution lowers to bf16 (storage rounding) and int8. */
    bool
    supportsPrecision(Precision p) const override
    {
        (void)p;
        return true;
    }

    LayerQuant calibrate(const Tensor &in) const override;

  protected:
    Shape setupImpl(const Shape &input) override;
    void forwardImpl(const Tensor &in, Tensor &out) const override;
    void onPrecisionChanged() override;

  private:
    int64_t outChannels_;
    int64_t kernel_;
    int64_t stride_;
    int64_t pad_;
    int64_t groups_;
    bool hasBias_;
    Tensor weights_;
    Tensor bias_;

    /** int8 filter codes (same layout), rebuilt on lowering. */
    std::vector<int8_t> weights8_;
};

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_LAYERS_CONVOLUTION_HH
