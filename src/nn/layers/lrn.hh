/**
 * @file
 * Local response normalization across channels, as used by AlexNet.
 */

#ifndef DJINN_NN_LAYERS_LRN_HH
#define DJINN_NN_LAYERS_LRN_HH

#include "nn/layer.hh"

namespace djinn {
namespace nn {

/**
 * Cross-channel LRN:
 * out = in / (k + alpha/size * sum_{local window} in^2)^beta.
 * Defaults match AlexNet (size 5, alpha 1e-4, beta 0.75, k 1).
 */
class LrnLayer : public Layer
{
  public:
    /**
     * @param name layer name.
     * @param size channel window size (odd).
     * @param alpha scale on the squared sum.
     * @param beta exponent.
     * @param k additive constant.
     */
    LrnLayer(std::string name, int64_t size = 5, float alpha = 1e-4f,
             float beta = 0.75f, float k = 1.0f);

    int64_t size() const { return size_; }

    uint64_t
    flopsPerSample() const override
    {
        return static_cast<uint64_t>(3 * size_ + 2) *
               static_cast<uint64_t>(outputShape().sampleElems());
    }

  protected:
    Shape setupImpl(const Shape &input) override;
    void forwardImpl(const Tensor &in, Tensor &out) const override;

  private:
    int64_t size_;
    float alpha_;
    float beta_;
    float k_;
};

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_LAYERS_LRN_HH
