#include "nn/layers/pooling.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace djinn {
namespace nn {

int64_t
poolOutSize(int64_t in, int64_t kernel, int64_t pad, int64_t stride)
{
    // Caffe ceil mode: ceil((in + 2*pad - kernel) / stride) + 1, with
    // the last window clipped to start inside the padded input.
    int64_t padded = in + 2 * pad - kernel;
    if (padded < 0)
        fatal("pool window %ld larger than padded input %ld", kernel,
              in + 2 * pad);
    int64_t out = (padded + stride - 1) / stride + 1;
    if (pad > 0 && (out - 1) * stride >= in + pad)
        --out;
    return out;
}

PoolingLayer::PoolingLayer(std::string name, LayerKind kind,
                           int64_t kernel, int64_t stride, int64_t pad)
    : Layer(std::move(name), kind), kernel_(kernel), stride_(stride),
      pad_(pad)
{
    if (kind != LayerKind::MaxPool && kind != LayerKind::AvgPool)
        panic("PoolingLayer constructed with non-pool kind");
    if (kernel <= 0 || stride <= 0 || pad < 0)
        fatal("pool layer '%s': invalid geometry",
              this->name().c_str());
}

Shape
PoolingLayer::setupImpl(const Shape &input)
{
    int64_t out_h = poolOutSize(input.h(), kernel_, pad_, stride_);
    int64_t out_w = poolOutSize(input.w(), kernel_, pad_, stride_);
    return Shape(1, input.c(), out_h, out_w);
}

void
PoolingLayer::forwardImpl(const Tensor &in, Tensor &out) const
{
    const Shape &is = inputShape();
    const Shape &os = outputShape();
    bool is_max = kind() == LayerKind::MaxPool;

    // Each (sample, channel) plane is independent; partition the
    // flattened plane index across the compute pool.
    int64_t planes = in.shape().n() * is.c();
    common::computePool().parallelFor(
        0, planes, 4, [&](int64_t p0, int64_t p1) {
        for (int64_t pi = p0; pi < p1; ++pi) {
            int64_t n = pi / is.c();
            int64_t c = pi % is.c();
            const float *plane =
                in.sample(n) + c * is.h() * is.w();
            float *dst = out.sample(n) + c * os.h() * os.w();
            for (int64_t oh = 0; oh < os.h(); ++oh) {
                for (int64_t ow = 0; ow < os.w(); ++ow) {
                    int64_t h0 = std::max<int64_t>(
                        oh * stride_ - pad_, 0);
                    int64_t w0 = std::max<int64_t>(
                        ow * stride_ - pad_, 0);
                    int64_t h1 = std::min(oh * stride_ - pad_ +
                                          kernel_, is.h());
                    int64_t w1 = std::min(ow * stride_ - pad_ +
                                          kernel_, is.w());
                    float acc = is_max ?
                        -std::numeric_limits<float>::infinity() : 0.0f;
                    for (int64_t h = h0; h < h1; ++h) {
                        for (int64_t w = w0; w < w1; ++w) {
                            float v = plane[h * is.w() + w];
                            if (is_max)
                                acc = std::max(acc, v);
                            else
                                acc += v;
                        }
                    }
                    if (!is_max) {
                        int64_t count = (h1 - h0) * (w1 - w0);
                        acc /= static_cast<float>(std::max<int64_t>(
                            count, 1));
                    }
                    dst[oh * os.w() + ow] = acc;
                }
            }
        }
    });
}

} // namespace nn
} // namespace djinn
