/**
 * @file
 * Max and average pooling layers. Pooling windows follow Caffe's
 * ceil-mode output size so AlexNet's 55 -> 27 -> 13 -> 6 pyramid is
 * reproduced exactly.
 */

#ifndef DJINN_NN_LAYERS_POOLING_HH
#define DJINN_NN_LAYERS_POOLING_HH

#include "nn/layer.hh"

namespace djinn {
namespace nn {

/** Ceil-mode pooled output size (Caffe semantics). */
int64_t poolOutSize(int64_t in, int64_t kernel, int64_t pad,
                    int64_t stride);

/**
 * Spatial pooling over square windows. Kind selects max or average;
 * average pooling divides by the number of in-bounds elements.
 */
class PoolingLayer : public Layer
{
  public:
    /**
     * @param name layer name.
     * @param kind LayerKind::MaxPool or LayerKind::AvgPool.
     * @param kernel square window size.
     * @param stride window stride.
     * @param pad zero padding on each border.
     */
    PoolingLayer(std::string name, LayerKind kind, int64_t kernel,
                 int64_t stride = 1, int64_t pad = 0);

    int64_t kernel() const { return kernel_; }
    int64_t stride() const { return stride_; }
    int64_t pad() const { return pad_; }

    uint64_t
    flopsPerSample() const override
    {
        return static_cast<uint64_t>(kernel_ * kernel_) *
               static_cast<uint64_t>(outputShape().sampleElems());
    }

  protected:
    Shape setupImpl(const Shape &input) override;
    void forwardImpl(const Tensor &in, Tensor &out) const override;

  private:
    int64_t kernel_;
    int64_t stride_;
    int64_t pad_;
};

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_LAYERS_POOLING_HH
