#include "nn/layers/lrn.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace djinn {
namespace nn {

LrnLayer::LrnLayer(std::string name, int64_t size, float alpha,
                   float beta, float k)
    : Layer(std::move(name), LayerKind::LRN), size_(size),
      alpha_(alpha), beta_(beta), k_(k)
{
    if (size <= 0 || size % 2 == 0)
        fatal("lrn layer '%s': window size %ld must be odd positive",
              this->name().c_str(), size);
}

Shape
LrnLayer::setupImpl(const Shape &input)
{
    return input;
}

void
LrnLayer::forwardImpl(const Tensor &in, Tensor &out) const
{
    const Shape &is = inputShape();
    int64_t plane = is.h() * is.w();
    int64_t half = size_ / 2;

    for (int64_t n = 0; n < in.shape().n(); ++n) {
        const float *src = in.sample(n);
        float *dst = out.sample(n);
        for (int64_t c = 0; c < is.c(); ++c) {
            int64_t c0 = std::max<int64_t>(c - half, 0);
            int64_t c1 = std::min<int64_t>(c + half, is.c() - 1);
            for (int64_t i = 0; i < plane; ++i) {
                float sq = 0.0f;
                for (int64_t cc = c0; cc <= c1; ++cc) {
                    float v = src[cc * plane + i];
                    sq += v * v;
                }
                float scale = k_ + alpha_ / static_cast<float>(size_) *
                              sq;
                dst[c * plane + i] =
                    src[c * plane + i] / std::pow(scale, beta_);
            }
        }
    }
}

} // namespace nn
} // namespace djinn
