#include "nn/layers/softmax.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace djinn {
namespace nn {

SoftmaxLayer::SoftmaxLayer(std::string name)
    : Layer(std::move(name), LayerKind::Softmax)
{}

Shape
SoftmaxLayer::setupImpl(const Shape &input)
{
    return Shape(1, input.sampleElems());
}

void
SoftmaxLayer::forwardImpl(const Tensor &in, Tensor &out) const
{
    int64_t dim = inputShape().sampleElems();
    for (int64_t n = 0; n < in.shape().n(); ++n) {
        const float *src = in.sample(n);
        float *dst = out.sample(n);
        float max = *std::max_element(src, src + dim);
        double sum = 0.0;
        for (int64_t i = 0; i < dim; ++i) {
            dst[i] = std::exp(src[i] - max);
            sum += dst[i];
        }
        float inv = static_cast<float>(1.0 / sum);
        for (int64_t i = 0; i < dim; ++i)
            dst[i] *= inv;
    }
}

DropoutLayer::DropoutLayer(std::string name)
    : Layer(std::move(name), LayerKind::Dropout)
{}

Shape
DropoutLayer::setupImpl(const Shape &input)
{
    return input;
}

void
DropoutLayer::forwardImpl(const Tensor &in, Tensor &out) const
{
    std::memcpy(out.data(), in.data(),
                static_cast<size_t>(in.elems()) * sizeof(float));
}

FlattenLayer::FlattenLayer(std::string name)
    : Layer(std::move(name), LayerKind::Flatten)
{}

Shape
FlattenLayer::setupImpl(const Shape &input)
{
    return Shape(1, input.sampleElems());
}

void
FlattenLayer::forwardImpl(const Tensor &in, Tensor &out) const
{
    std::memcpy(out.data(), in.data(),
                static_cast<size_t>(in.elems()) * sizeof(float));
}

} // namespace nn
} // namespace djinn
