#include "nn/layers/inner_product.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "nn/gemm.hh"

namespace djinn {
namespace nn {

InnerProductLayer::InnerProductLayer(std::string name, int64_t outputs,
                                     bool bias)
    : Layer(std::move(name), LayerKind::InnerProduct),
      outputs_(outputs), hasBias_(bias)
{
    if (outputs <= 0)
        fatal("fc layer '%s': outputs must be positive, got %ld",
              this->name().c_str(), outputs);
}

Shape
InnerProductLayer::setupImpl(const Shape &input)
{
    inputs_ = input.sampleElems();
    weights_.resize(Shape(outputs_, inputs_));
    if (hasBias_)
        bias_.resize(Shape(1, outputs_));
    return Shape(1, outputs_);
}

uint64_t
InnerProductLayer::paramCount() const
{
    uint64_t n = static_cast<uint64_t>(outputs_) * inputs_;
    if (hasBias_)
        n += outputs_;
    return n;
}

std::vector<Tensor *>
InnerProductLayer::params()
{
    std::vector<Tensor *> out{&weights_};
    if (hasBias_)
        out.push_back(&bias_);
    return out;
}

void
InnerProductLayer::forwardImpl(const Tensor &in, Tensor &out) const
{
    int64_t batch = in.shape().n();
    // out[N x outputs] = in[N x inputs] * W^T[inputs x outputs].
    // The GEMM partitions its own rows across the compute pool.
    sgemm(Trans::No, Trans::Yes, batch, outputs_, inputs_, 1.0f,
          in.data(), inputs_, weights_.data(), inputs_, 0.0f,
          out.data(), outputs_);
    if (hasBias_) {
        const float *b = bias_.data();
        int64_t grain = std::max<int64_t>(
            1, 16384 / std::max<int64_t>(outputs_, 1));
        common::computePool().parallelFor(
            0, batch, grain, [&](int64_t n0, int64_t n1) {
                for (int64_t n = n0; n < n1; ++n) {
                    float *row = out.sample(n);
                    for (int64_t o = 0; o < outputs_; ++o)
                        row[o] += b[o];
                }
            });
    }
}

} // namespace nn
} // namespace djinn
