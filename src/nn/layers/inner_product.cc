#include "nn/layers/inner_product.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "nn/gemm.hh"

namespace djinn {
namespace nn {

InnerProductLayer::InnerProductLayer(std::string name, int64_t outputs,
                                     bool bias)
    : Layer(std::move(name), LayerKind::InnerProduct),
      outputs_(outputs), hasBias_(bias)
{
    if (outputs <= 0)
        fatal("fc layer '%s': outputs must be positive, got %ld",
              this->name().c_str(), outputs);
}

Shape
InnerProductLayer::setupImpl(const Shape &input)
{
    inputs_ = input.sampleElems();
    weights_.resize(Shape(outputs_, inputs_));
    if (hasBias_)
        bias_.resize(Shape(1, outputs_));
    return Shape(1, outputs_);
}

uint64_t
InnerProductLayer::paramCount() const
{
    uint64_t n = static_cast<uint64_t>(outputs_) * inputs_;
    if (hasBias_)
        n += outputs_;
    return n;
}

std::vector<Tensor *>
InnerProductLayer::params()
{
    std::vector<Tensor *> out{&weights_};
    if (hasBias_)
        out.push_back(&bias_);
    return out;
}

LayerQuant
InnerProductLayer::calibrate(const Tensor &in) const
{
    LayerQuant q;
    float lo, hi;
    minMax(in.data(), in.elems(), &lo, &hi);
    // Activations ride the unsigned side of the u8 x s8 kernel.
    q.act = QuantParams::affineU8(lo, hi);
    q.weightScales.resize(static_cast<size_t>(outputs_));
    for (int64_t o = 0; o < outputs_; ++o) {
        q.weightScales[static_cast<size_t>(o)] =
            QuantParams::symmetricS8(
                maxAbs(weights_.data() + o * inputs_, inputs_))
                .scale;
    }
    return q;
}

void
InnerProductLayer::onPrecisionChanged()
{
    if (precision() != Precision::Int8) {
        weights8_.clear();
        return;
    }
    LayerQuant &q = mutableQuant();
    if (q.weightScales.empty()) {
        // Derive per-output-channel scales from the weights; the
        // derivation is deterministic so it matches serialized sets.
        q.weightScales.resize(static_cast<size_t>(outputs_));
        for (int64_t o = 0; o < outputs_; ++o) {
            q.weightScales[static_cast<size_t>(o)] =
                QuantParams::symmetricS8(
                    maxAbs(weights_.data() + o * inputs_, inputs_))
                    .scale;
        }
    }
    if (q.weightScales.size() != static_cast<size_t>(outputs_)) {
        fatal("fc layer '%s': %zu weight scales for %ld outputs",
              name().c_str(), q.weightScales.size(), outputs_);
    }
    weights8_.resize(static_cast<size_t>(outputs_) * inputs_);
    for (int64_t o = 0; o < outputs_; ++o) {
        QuantParams wq;
        wq.scale = q.weightScales[static_cast<size_t>(o)];
        const float *w = weights_.data() + o * inputs_;
        int8_t *w8 = weights8_.data() + o * inputs_;
        for (int64_t i = 0; i < inputs_; ++i)
            w8[i] = static_cast<int8_t>(wq.quantize(w[i]));
    }
}

void
InnerProductLayer::forwardImpl(const Tensor &in, Tensor &out) const
{
    int64_t batch = in.shape().n();
    // out[N x outputs] = in[N x inputs] * W^T[inputs x outputs].
    // The GEMM partitions its own rows across the compute pool.
    switch (precision()) {
      case Precision::Int8:
        gemm_s8(Trans::No, Trans::Yes, batch, outputs_, inputs_,
                1.0f, in.data(), inputs_, quant().act,
                weights8_.data(), inputs_,
                quant().weightScales.data(), 0.0f, out.data(),
                outputs_);
        break;
      case Precision::Bf16:
        gemm_bf16(Trans::No, Trans::Yes, batch, outputs_, inputs_,
                  1.0f, in.data(), inputs_, weights_.data(),
                  inputs_, 0.0f, out.data(), outputs_);
        break;
      case Precision::F32:
        sgemm(Trans::No, Trans::Yes, batch, outputs_, inputs_, 1.0f,
              in.data(), inputs_, weights_.data(), inputs_, 0.0f,
              out.data(), outputs_);
        break;
    }
    if (hasBias_) {
        const float *b = bias_.data();
        int64_t grain = std::max<int64_t>(
            1, 16384 / std::max<int64_t>(outputs_, 1));
        common::computePool().parallelFor(
            0, batch, grain, [&](int64_t n0, int64_t n1) {
                for (int64_t n = n0; n < n1; ++n) {
                    float *row = out.sample(n);
                    for (int64_t o = 0; o < outputs_; ++o)
                        row[o] += b[o];
                }
            });
    }
}

} // namespace nn
} // namespace djinn
