/**
 * @file
 * Locally connected layer: convolution-like geometry with *untied*
 * weights, i.e. every output position learns its own filter. Used by
 * DeepFace (layers L4-L6), where it accounts for most of the 120M
 * parameters.
 */

#ifndef DJINN_NN_LAYERS_LOCALLY_CONNECTED_HH
#define DJINN_NN_LAYERS_LOCALLY_CONNECTED_HH

#include "nn/layer.hh"

namespace djinn {
namespace nn {

/**
 * Locally connected 2D layer. Weight layout is
 * (out_c * out_h * out_w, in_c, kh, kw): one private filter per
 * output element. Because no weights are shared, the layer's
 * parameter footprint scales with the output map size, and a forward
 * pass must stream the full weight set from memory once per sample —
 * the property that makes FACE memory-bound in the paper.
 */
class LocallyConnectedLayer : public Layer
{
  public:
    /**
     * @param name layer name.
     * @param out_channels filters per output position.
     * @param kernel square kernel size.
     * @param stride window stride.
     * @param pad zero padding on each border.
     * @param bias whether a per-output-element bias is learned.
     */
    LocallyConnectedLayer(std::string name, int64_t out_channels,
                          int64_t kernel, int64_t stride = 1,
                          int64_t pad = 0, bool bias = true);

    uint64_t paramCount() const override;
    std::vector<Tensor *> params() override;

    int64_t outChannels() const { return outChannels_; }
    int64_t kernel() const { return kernel_; }
    int64_t stride() const { return stride_; }
    int64_t pad() const { return pad_; }

    uint64_t
    flopsPerSample() const override
    {
        uint64_t positions = static_cast<uint64_t>(
            outChannels_ * outputShape().h() * outputShape().w());
        uint64_t patch = static_cast<uint64_t>(
            inputShape().c() * kernel_ * kernel_);
        return 2ull * positions * patch;
    }

  protected:
    Shape setupImpl(const Shape &input) override;
    void forwardImpl(const Tensor &in, Tensor &out) const override;

  private:
    int64_t outChannels_;
    int64_t kernel_;
    int64_t stride_;
    int64_t pad_;
    bool hasBias_;
    Tensor weights_;
    Tensor bias_;
};

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_LAYERS_LOCALLY_CONNECTED_HH
