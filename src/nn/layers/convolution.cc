#include "nn/layers/convolution.hh"

#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "nn/gemm.hh"

namespace djinn {
namespace nn {

int64_t
convOutSize(int64_t in, int64_t kernel, int64_t pad, int64_t stride)
{
    int64_t padded = in + 2 * pad - kernel;
    if (padded < 0)
        fatal("conv window %ld larger than padded input %ld",
              kernel, in + 2 * pad);
    return padded / stride + 1;
}

void
im2col(const float *data, int64_t channels, int64_t height,
       int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t pad,
       int64_t stride, float *col)
{
    int64_t out_h = convOutSize(height, kernel_h, pad, stride);
    int64_t out_w = convOutSize(width, kernel_w, pad, stride);
    int64_t cols = out_h * out_w;

    for (int64_t c = 0; c < channels; ++c) {
        const float *plane = data + c * height * width;
        for (int64_t kh = 0; kh < kernel_h; ++kh) {
            for (int64_t kw = 0; kw < kernel_w; ++kw) {
                float *row =
                    col + ((c * kernel_h + kh) * kernel_w + kw) * cols;
                for (int64_t oh = 0; oh < out_h; ++oh) {
                    int64_t ih = oh * stride - pad + kh;
                    if (ih < 0 || ih >= height) {
                        std::memset(row + oh * out_w, 0,
                                    static_cast<size_t>(out_w) *
                                    sizeof(float));
                        continue;
                    }
                    const float *src = plane + ih * width;
                    for (int64_t ow = 0; ow < out_w; ++ow) {
                        int64_t iw = ow * stride - pad + kw;
                        row[oh * out_w + ow] =
                            (iw < 0 || iw >= width) ? 0.0f : src[iw];
                    }
                }
            }
        }
    }
}

void
col2im(const float *col, int64_t channels, int64_t height,
       int64_t width, int64_t kernel_h, int64_t kernel_w,
       int64_t pad, int64_t stride, float *data)
{
    int64_t out_h = convOutSize(height, kernel_h, pad, stride);
    int64_t out_w = convOutSize(width, kernel_w, pad, stride);
    int64_t cols = out_h * out_w;

    for (int64_t c = 0; c < channels; ++c) {
        float *plane = data + c * height * width;
        for (int64_t kh = 0; kh < kernel_h; ++kh) {
            for (int64_t kw = 0; kw < kernel_w; ++kw) {
                const float *row =
                    col + ((c * kernel_h + kh) * kernel_w + kw) *
                          cols;
                for (int64_t oh = 0; oh < out_h; ++oh) {
                    int64_t ih = oh * stride - pad + kh;
                    if (ih < 0 || ih >= height)
                        continue;
                    float *dst = plane + ih * width;
                    for (int64_t ow = 0; ow < out_w; ++ow) {
                        int64_t iw = ow * stride - pad + kw;
                        if (iw < 0 || iw >= width)
                            continue;
                        dst[iw] += row[oh * out_w + ow];
                    }
                }
            }
        }
    }
}

ConvolutionLayer::ConvolutionLayer(std::string name,
                                   int64_t out_channels, int64_t kernel,
                                   int64_t stride, int64_t pad,
                                   int64_t groups, bool bias)
    : Layer(std::move(name), LayerKind::Convolution),
      outChannels_(out_channels), kernel_(kernel), stride_(stride),
      pad_(pad), groups_(groups), hasBias_(bias)
{
    if (out_channels <= 0 || kernel <= 0 || stride <= 0 || pad < 0 ||
        groups <= 0) {
        fatal("conv layer '%s': invalid geometry", this->name().c_str());
    }
    if (out_channels % groups != 0)
        fatal("conv layer '%s': %ld outputs not divisible by %ld "
              "groups", this->name().c_str(), out_channels, groups);
}

Shape
ConvolutionLayer::setupImpl(const Shape &input)
{
    if (input.c() % groups_ != 0)
        fatal("conv layer '%s': %ld input channels not divisible by "
              "%ld groups", name().c_str(), input.c(), groups_);
    int64_t in_per_group = input.c() / groups_;
    weights_.resize(Shape(outChannels_, in_per_group, kernel_,
                          kernel_));
    if (hasBias_)
        bias_.resize(Shape(1, outChannels_));
    int64_t out_h = convOutSize(input.h(), kernel_, pad_, stride_);
    int64_t out_w = convOutSize(input.w(), kernel_, pad_, stride_);
    return Shape(1, outChannels_, out_h, out_w);
}

uint64_t
ConvolutionLayer::paramCount() const
{
    uint64_t n = static_cast<uint64_t>(weights_.elems());
    if (hasBias_)
        n += outChannels_;
    return n;
}

std::vector<Tensor *>
ConvolutionLayer::params()
{
    std::vector<Tensor *> out{&weights_};
    if (hasBias_)
        out.push_back(&bias_);
    return out;
}

LayerQuant
ConvolutionLayer::calibrate(const Tensor &in) const
{
    LayerQuant q;
    float lo, hi;
    minMax(in.data(), in.elems(), &lo, &hi);
    // The quantized operand is the im2col buffer: input values plus
    // zero padding. affineS8 widens the range to include 0, so the
    // input min/max covers the padded columns too. Activations ride
    // the signed side here because the weights take the unsigned
    // (left) slot of the u8 x s8 kernel.
    q.act = QuantParams::affineS8(lo, hi);
    int64_t per_filter = weights_.elems() / outChannels_;
    q.weightScales.resize(static_cast<size_t>(outChannels_));
    for (int64_t o = 0; o < outChannels_; ++o) {
        q.weightScales[static_cast<size_t>(o)] =
            QuantParams::symmetricS8(
                maxAbs(weights_.data() + o * per_filter, per_filter))
                .scale;
    }
    return q;
}

void
ConvolutionLayer::onPrecisionChanged()
{
    if (precision() != Precision::Int8) {
        weights8_.clear();
        return;
    }
    LayerQuant &q = mutableQuant();
    int64_t per_filter = weights_.elems() / outChannels_;
    if (q.weightScales.empty()) {
        q.weightScales.resize(static_cast<size_t>(outChannels_));
        for (int64_t o = 0; o < outChannels_; ++o) {
            q.weightScales[static_cast<size_t>(o)] =
                QuantParams::symmetricS8(
                    maxAbs(weights_.data() + o * per_filter,
                           per_filter))
                    .scale;
        }
    }
    if (q.weightScales.size() != static_cast<size_t>(outChannels_)) {
        fatal("conv layer '%s': %zu weight scales for %ld filters",
              name().c_str(), q.weightScales.size(), outChannels_);
    }
    weights8_.resize(static_cast<size_t>(weights_.elems()));
    for (int64_t o = 0; o < outChannels_; ++o) {
        QuantParams wq;
        wq.scale = q.weightScales[static_cast<size_t>(o)];
        const float *w = weights_.data() + o * per_filter;
        int8_t *w8 = weights8_.data() + o * per_filter;
        for (int64_t i = 0; i < per_filter; ++i)
            w8[i] = static_cast<int8_t>(wq.quantize(w[i]));
    }
}

void
ConvolutionLayer::forwardImpl(const Tensor &in, Tensor &out) const
{
    const Shape &is = inputShape();
    const Shape &os = outputShape();
    int64_t in_per_group = is.c() / groups_;
    int64_t out_per_group = outChannels_ / groups_;
    int64_t cols = os.h() * os.w();
    int64_t patch = in_per_group * kernel_ * kernel_;

    // Batch images are partitioned across the compute pool; each
    // worker keeps its own im2col scratch. For batch 1 the loop
    // runs inline and the GEMM itself parallelizes instead (nested
    // parallelFor calls run serially, so the two levels compose).
    common::computePool().parallelFor(
        0, in.shape().n(), 1, [&](int64_t n0, int64_t n1) {
            static thread_local std::vector<float> col_tls;
            std::vector<float> &col_buf = col_tls;
            col_buf.resize(static_cast<size_t>(patch) * cols);
            for (int64_t n = n0; n < n1; ++n) {
                const float *src = in.sample(n);
                float *dst = out.sample(n);
                for (int64_t g = 0; g < groups_; ++g) {
                    const float *src_g =
                        src + g * in_per_group * is.h() * is.w();
                    float *dst_g = dst + g * out_per_group * cols;
                    im2col(src_g, in_per_group, is.h(), is.w(),
                           kernel_, kernel_, pad_, stride_,
                           col_buf.data());
                    // dst_g[out_per_group x cols] =
                    //     W_g[out_per_group x patch] *
                    //     col[patch x cols]
                    switch (precision()) {
                      case Precision::Int8:
                        gemm_s8_wl(
                            Trans::No, Trans::No, out_per_group,
                            cols, patch, 1.0f,
                            weights8_.data() +
                                g * out_per_group * patch,
                            patch,
                            quant().weightScales.data() +
                                g * out_per_group,
                            col_buf.data(), cols, quant().act, 0.0f,
                            dst_g, cols);
                        break;
                      case Precision::Bf16:
                        gemm_bf16(Trans::No, Trans::No,
                                  out_per_group, cols, patch, 1.0f,
                                  weights_.data() +
                                      g * out_per_group * patch,
                                  patch, col_buf.data(), cols, 0.0f,
                                  dst_g, cols);
                        break;
                      case Precision::F32:
                        sgemm(Trans::No, Trans::No, out_per_group,
                              cols, patch, 1.0f,
                              weights_.data() +
                                  g * out_per_group * patch,
                              patch, col_buf.data(), cols, 0.0f,
                              dst_g, cols);
                        break;
                    }
                }
                if (hasBias_) {
                    const float *b = bias_.data();
                    for (int64_t c = 0; c < outChannels_; ++c) {
                        float *plane = dst + c * cols;
                        for (int64_t i = 0; i < cols; ++i)
                            plane[i] += b[c];
                    }
                }
            }
        });
}

} // namespace nn
} // namespace djinn
