#include "nn/layers/locally_connected.hh"

#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "nn/layers/convolution.hh"

namespace djinn {
namespace nn {

LocallyConnectedLayer::LocallyConnectedLayer(std::string name,
                                             int64_t out_channels,
                                             int64_t kernel,
                                             int64_t stride,
                                             int64_t pad, bool bias)
    : Layer(std::move(name), LayerKind::LocallyConnected),
      outChannels_(out_channels), kernel_(kernel), stride_(stride),
      pad_(pad), hasBias_(bias)
{
    if (out_channels <= 0 || kernel <= 0 || stride <= 0 || pad < 0)
        fatal("local layer '%s': invalid geometry",
              this->name().c_str());
}

Shape
LocallyConnectedLayer::setupImpl(const Shape &input)
{
    int64_t out_h = convOutSize(input.h(), kernel_, pad_, stride_);
    int64_t out_w = convOutSize(input.w(), kernel_, pad_, stride_);
    int64_t positions = outChannels_ * out_h * out_w;
    weights_.resize(Shape(positions, input.c(), kernel_, kernel_));
    if (hasBias_)
        bias_.resize(Shape(1, positions));
    return Shape(1, outChannels_, out_h, out_w);
}

uint64_t
LocallyConnectedLayer::paramCount() const
{
    uint64_t n = static_cast<uint64_t>(weights_.elems());
    if (hasBias_)
        n += static_cast<uint64_t>(bias_.elems());
    return n;
}

std::vector<Tensor *>
LocallyConnectedLayer::params()
{
    std::vector<Tensor *> out{&weights_};
    if (hasBias_)
        out.push_back(&bias_);
    return out;
}

void
LocallyConnectedLayer::forwardImpl(const Tensor &in, Tensor &out) const
{
    const Shape &is = inputShape();
    const Shape &os = outputShape();
    int64_t patch = is.c() * kernel_ * kernel_;
    int64_t cols = os.h() * os.w();

    // im2col once per sample, then a per-position dot product
    // against that position's private filter. Samples partition
    // across the pool; for small batches the outer loop runs inline
    // and the per-output-channel loop parallelizes instead (nested
    // calls run serially, so the levels compose).
    auto &pool = common::computePool();
    pool.parallelFor(0, in.shape().n(), 1, [&](int64_t n0,
                                               int64_t n1) {
        static thread_local std::vector<float> col_tls;
        std::vector<float> &col_buf = col_tls;
        col_buf.resize(static_cast<size_t>(patch) * cols);
        for (int64_t n = n0; n < n1; ++n) {
            im2col(in.sample(n), is.c(), is.h(), is.w(), kernel_,
                   kernel_, pad_, stride_, col_buf.data());
            float *dst = out.sample(n);
            const float *w = weights_.data();
            pool.parallelFor(0, outChannels_, 1, [&](int64_t c0,
                                                     int64_t c1) {
                for (int64_t oc = c0; oc < c1; ++oc) {
                    for (int64_t pos = 0; pos < cols; ++pos) {
                        const float *filter =
                            w + (oc * cols + pos) * patch;
                        float acc = 0.0f;
                        for (int64_t p = 0; p < patch; ++p)
                            acc += filter[p] *
                                   col_buf[p * cols + pos];
                        dst[oc * cols + pos] = acc;
                    }
                }
            });
            if (hasBias_) {
                const float *b = bias_.data();
                int64_t total = outChannels_ * cols;
                for (int64_t i = 0; i < total; ++i)
                    dst[i] += b[i];
            }
        }
    });
}

} // namespace nn
} // namespace djinn
