#include "nn/layers/activation.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace djinn {
namespace nn {

ActivationLayer::ActivationLayer(std::string name, LayerKind kind)
    : Layer(std::move(name), kind)
{
    switch (kind) {
      case LayerKind::ReLU:
      case LayerKind::Tanh:
      case LayerKind::Sigmoid:
      case LayerKind::HardTanh:
        break;
      default:
        panic("ActivationLayer constructed with non-activation kind");
    }
}

Shape
ActivationLayer::setupImpl(const Shape &input)
{
    return input;
}

void
ActivationLayer::forwardImpl(const Tensor &in, Tensor &out) const
{
    int64_t total = in.elems();
    const float *src = in.data();
    float *dst = out.data();

    switch (kind()) {
      case LayerKind::ReLU:
        for (int64_t i = 0; i < total; ++i)
            dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
        break;
      case LayerKind::Tanh:
        for (int64_t i = 0; i < total; ++i)
            dst[i] = std::tanh(src[i]);
        break;
      case LayerKind::Sigmoid:
        for (int64_t i = 0; i < total; ++i)
            dst[i] = 1.0f / (1.0f + std::exp(-src[i]));
        break;
      case LayerKind::HardTanh:
        for (int64_t i = 0; i < total; ++i)
            dst[i] = std::clamp(src[i], -1.0f, 1.0f);
        break;
      default:
        panic("unreachable activation kind");
    }
}

} // namespace nn
} // namespace djinn
