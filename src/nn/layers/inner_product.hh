/**
 * @file
 * Fully connected (inner product) layer: out = in * W^T + b.
 */

#ifndef DJINN_NN_LAYERS_INNER_PRODUCT_HH
#define DJINN_NN_LAYERS_INNER_PRODUCT_HH

#include "nn/layer.hh"

namespace djinn {
namespace nn {

/**
 * Fully connected layer. The input sample is flattened to a vector
 * of length c*h*w; weights are stored row-major (outputs x inputs).
 */
class InnerProductLayer : public Layer
{
  public:
    /**
     * @param name layer name.
     * @param outputs number of output neurons.
     * @param bias whether a bias vector is learned.
     */
    InnerProductLayer(std::string name, int64_t outputs,
                      bool bias = true);

    uint64_t paramCount() const override;
    std::vector<Tensor *> params() override;

    /** Number of output neurons. */
    int64_t outputs() const { return outputs_; }

    /** Flattened input length (valid after setup). */
    int64_t inputs() const { return inputs_; }

    uint64_t
    flopsPerSample() const override
    {
        return 2ull * static_cast<uint64_t>(inputs_) *
               static_cast<uint64_t>(outputs_);
    }

    /** The (outputs x inputs) weight matrix. */
    const Tensor &weights() const { return weights_; }

    /** The bias vector; empty when bias is disabled. */
    const Tensor &bias() const { return bias_; }

    /** FC lowers to bf16 (storage rounding) and int8. */
    bool
    supportsPrecision(Precision p) const override
    {
        (void)p;
        return true;
    }

    LayerQuant calibrate(const Tensor &in) const override;

  protected:
    Shape setupImpl(const Shape &input) override;
    void forwardImpl(const Tensor &in, Tensor &out) const override;
    void onPrecisionChanged() override;

  private:
    int64_t outputs_;
    bool hasBias_;
    int64_t inputs_ = 0;
    Tensor weights_;
    Tensor bias_;

    /** int8 weight codes (outputs x inputs), rebuilt on lowering. */
    std::vector<int8_t> weights8_;
};

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_LAYERS_INNER_PRODUCT_HH
