/**
 * @file
 * Softmax classifier layer (numerically stable, per sample).
 */

#ifndef DJINN_NN_LAYERS_SOFTMAX_HH
#define DJINN_NN_LAYERS_SOFTMAX_HH

#include "nn/layer.hh"

namespace djinn {
namespace nn {

/**
 * Softmax over the full sample vector. Each sample's outputs sum to
 * one; inputs are shifted by the per-sample max before
 * exponentiation for numerical stability.
 */
class SoftmaxLayer : public Layer
{
  public:
    explicit SoftmaxLayer(std::string name);

  protected:
    Shape setupImpl(const Shape &input) override;
    void forwardImpl(const Tensor &in, Tensor &out) const override;
};

/**
 * Identity layer standing in for Caffe's inference-time dropout
 * (scaling is folded into the trained weights).
 */
class DropoutLayer : public Layer
{
  public:
    explicit DropoutLayer(std::string name);

  protected:
    Shape setupImpl(const Shape &input) override;
    void forwardImpl(const Tensor &in, Tensor &out) const override;
};

/** Reshape a sample's (c, h, w) geometry to a flat vector. */
class FlattenLayer : public Layer
{
  public:
    explicit FlattenLayer(std::string name);

  protected:
    Shape setupImpl(const Shape &input) override;
    void forwardImpl(const Tensor &in, Tensor &out) const override;
};

} // namespace nn
} // namespace djinn

#endif // DJINN_NN_LAYERS_SOFTMAX_HH
