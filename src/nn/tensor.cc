#include "nn/tensor.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace djinn {
namespace nn {

Shape::Shape(int64_t n, int64_t c, int64_t h, int64_t w)
    : n_(n), c_(c), h_(h), w_(w)
{
    if (n < 0 || c < 0 || h < 0 || w < 0)
        fatal("Shape: negative dimension in %ldx%ldx%ldx%ld",
              n, c, h, w);
}

std::string
Shape::toString() const
{
    return std::to_string(n_) + "x" + std::to_string(c_) + "x" +
           std::to_string(h_) + "x" + std::to_string(w_);
}

Tensor::Tensor(const Shape &shape)
    : shape_(shape), data_(static_cast<size_t>(shape.elems()), 0.0f)
{}

Tensor::Tensor(const Shape &shape, float fill)
    : shape_(shape), data_(static_cast<size_t>(shape.elems()), fill)
{}

float *
Tensor::sample(int64_t n)
{
    return data_.data() + n * shape_.sampleElems();
}

const float *
Tensor::sample(int64_t n) const
{
    return data_.data() + n * shape_.sampleElems();
}

void
Tensor::reshape(const Shape &shape)
{
    if (shape.elems() != shape_.elems()) {
        fatal("reshape: %s (%ld elems) -> %s (%ld elems)",
              shape_.toString().c_str(), shape_.elems(),
              shape.toString().c_str(), shape.elems());
    }
    shape_ = shape;
}

void
Tensor::resize(const Shape &shape)
{
    shape_ = shape;
    data_.resize(static_cast<size_t>(shape.elems()));
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

double
Tensor::sum() const
{
    return std::accumulate(data_.begin(), data_.end(), 0.0);
}

int64_t
Tensor::argmaxSample(int64_t n) const
{
    const float *base = sample(n);
    int64_t count = shape_.sampleElems();
    if (count == 0)
        fatal("argmaxSample on empty sample");
    int64_t best = 0;
    for (int64_t i = 1; i < count; ++i) {
        if (base[i] > base[best])
            best = i;
    }
    return best;
}

} // namespace nn
} // namespace djinn
