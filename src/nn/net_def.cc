#include "nn/net_def.hh"

#include <map>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"
#include "nn/layers/activation.hh"
#include "nn/layers/convolution.hh"
#include "nn/layers/inner_product.hh"
#include "nn/layers/locally_connected.hh"
#include "nn/layers/lrn.hh"
#include "nn/layers/pooling.hh"
#include "nn/layers/softmax.hh"

namespace djinn {
namespace nn {

namespace {

/** Key-value options parsed from the tail of a layer line. */
class Options
{
  public:
    Options(const std::vector<std::string> &tokens, size_t start,
            Status &status, int line)
    {
        for (size_t i = start; i < tokens.size(); i += 2) {
            if (i + 1 >= tokens.size()) {
                status = Status::invalidArgument(strprintf(
                    "line %d: option '%s' missing a value", line,
                    tokens[i].c_str()));
                return;
            }
            int64_t value;
            if (!parseInt(tokens[i + 1], value)) {
                status = Status::invalidArgument(strprintf(
                    "line %d: option '%s' has non-integer value '%s'",
                    line, tokens[i].c_str(), tokens[i + 1].c_str()));
                return;
            }
            values_[tokens[i]] = value;
        }
    }

    int64_t
    get(const std::string &key, int64_t fallback)
    {
        auto it = values_.find(key);
        if (it == values_.end())
            return fallback;
        used_.insert(key);
        return it->second;
    }

    /** Keys that were provided but never consumed. */
    std::vector<std::string>
    unused() const
    {
        std::vector<std::string> out;
        for (const auto &[key, value] : values_) {
            if (!used_.count(key))
                out.push_back(key);
        }
        return out;
    }

  private:
    std::map<std::string, int64_t> values_;
    std::set<std::string> used_;
};

Result<LayerPtr>
makeLayer(const std::string &lname, LayerKind kind, Options &opt,
          int line)
{
    switch (kind) {
      case LayerKind::InnerProduct:
        {
            int64_t out = opt.get("out", -1);
            if (out <= 0) {
                return Status::invalidArgument(strprintf(
                    "line %d: fc layer requires positive 'out'",
                    line));
            }
            bool bias = opt.get("bias", 1) != 0;
            return LayerPtr(
                new InnerProductLayer(lname, out, bias));
        }
      case LayerKind::Convolution:
        {
            int64_t out = opt.get("out", -1);
            int64_t kernel = opt.get("kernel", -1);
            if (out <= 0 || kernel <= 0) {
                return Status::invalidArgument(strprintf(
                    "line %d: conv layer requires 'out' and 'kernel'",
                    line));
            }
            return LayerPtr(new ConvolutionLayer(
                lname, out, kernel, opt.get("stride", 1),
                opt.get("pad", 0), opt.get("group", 1),
                opt.get("bias", 1) != 0));
        }
      case LayerKind::LocallyConnected:
        {
            int64_t out = opt.get("out", -1);
            int64_t kernel = opt.get("kernel", -1);
            if (out <= 0 || kernel <= 0) {
                return Status::invalidArgument(strprintf(
                    "line %d: local layer requires 'out' and "
                    "'kernel'", line));
            }
            return LayerPtr(new LocallyConnectedLayer(
                lname, out, kernel, opt.get("stride", 1),
                opt.get("pad", 0), opt.get("bias", 1) != 0));
        }
      case LayerKind::MaxPool:
      case LayerKind::AvgPool:
        {
            int64_t kernel = opt.get("kernel", -1);
            if (kernel <= 0) {
                return Status::invalidArgument(strprintf(
                    "line %d: pool layer requires 'kernel'", line));
            }
            return LayerPtr(new PoolingLayer(
                lname, kind, kernel, opt.get("stride", 1),
                opt.get("pad", 0)));
        }
      case LayerKind::ReLU:
      case LayerKind::Tanh:
      case LayerKind::Sigmoid:
      case LayerKind::HardTanh:
        return LayerPtr(new ActivationLayer(lname, kind));
      case LayerKind::LRN:
        return LayerPtr(new LrnLayer(lname, opt.get("size", 5)));
      case LayerKind::Softmax:
        return LayerPtr(new SoftmaxLayer(lname));
      case LayerKind::Dropout:
        return LayerPtr(new DropoutLayer(lname));
      case LayerKind::Flatten:
        return LayerPtr(new FlattenLayer(lname));
    }
    return Status::invalidArgument(strprintf(
        "line %d: unhandled layer kind", line));
}

} // namespace

Result<std::shared_ptr<Network>>
parseNetDef(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    int lineno = 0;

    std::string net_name;
    Shape input;
    bool have_input = false;
    std::shared_ptr<Network> net;

    while (std::getline(is, line)) {
        ++lineno;
        std::string_view body = trim(line);
        if (body.empty() || body[0] == '#')
            continue;
        auto tokens = splitWhitespace(body);
        const std::string &verb = tokens[0];

        if (verb == "name") {
            if (tokens.size() != 2) {
                return Status::invalidArgument(strprintf(
                    "line %d: 'name' takes one argument", lineno));
            }
            net_name = tokens[1];
        } else if (verb == "input") {
            if (tokens.size() != 4) {
                return Status::invalidArgument(strprintf(
                    "line %d: 'input' takes c h w", lineno));
            }
            int64_t c, h, w;
            if (!parseInt(tokens[1], c) || !parseInt(tokens[2], h) ||
                !parseInt(tokens[3], w) || c <= 0 || h <= 0 ||
                w <= 0) {
                return Status::invalidArgument(strprintf(
                    "line %d: invalid input geometry", lineno));
            }
            input = Shape(1, c, h, w);
            have_input = true;
        } else if (verb == "layer") {
            if (!have_input) {
                return Status::invalidArgument(strprintf(
                    "line %d: 'layer' before 'input'", lineno));
            }
            if (tokens.size() < 3) {
                return Status::invalidArgument(strprintf(
                    "line %d: 'layer' needs a name and kind",
                    lineno));
            }
            if (!net) {
                net = std::make_shared<Network>(
                    net_name.empty() ? "unnamed" : net_name, input);
            }
            LayerKind kind;
            try {
                kind = layerKindFromName(tokens[2]);
            } catch (const FatalError &e) {
                return Status::invalidArgument(strprintf(
                    "line %d: %s", lineno, e.what()));
            }
            Status opt_status = Status::ok();
            Options opt(tokens, 3, opt_status, lineno);
            if (!opt_status.isOk())
                return opt_status;
            auto layer = makeLayer(tokens[1], kind, opt, lineno);
            if (!layer.isOk())
                return layer.status();
            auto unused = opt.unused();
            if (!unused.empty()) {
                return Status::invalidArgument(strprintf(
                    "line %d: unknown option '%s' for %s layer",
                    lineno, unused.front().c_str(),
                    tokens[2].c_str()));
            }
            try {
                net->add(layer.takeValue());
            } catch (const FatalError &e) {
                return Status::invalidArgument(strprintf(
                    "line %d: %s", lineno, e.what()));
            }
        } else {
            return Status::invalidArgument(strprintf(
                "line %d: unknown directive '%s'", lineno,
                verb.c_str()));
        }
    }

    if (!net) {
        return Status::invalidArgument(
            "netdef contains no layers");
    }
    try {
        net->finalize();
    } catch (const FatalError &e) {
        return Status::invalidArgument(e.what());
    }
    return net;
}

std::shared_ptr<Network>
parseNetDefOrDie(const std::string &text)
{
    auto result = parseNetDef(text);
    if (!result.isOk())
        fatal("netdef parse failed: %s",
              result.status().toString().c_str());
    return result.takeValue();
}

std::string
formatNetDef(const Network &net)
{
    std::ostringstream os;
    os << "name " << net.name() << "\n";
    const Shape &in = net.inputShape();
    os << "input " << in.c() << " " << in.h() << " " << in.w()
       << "\n";
    for (size_t i = 0; i < net.layerCount(); ++i) {
        const Layer &l = net.layer(i);
        os << "layer " << l.name() << " " << layerKindName(l.kind());
        if (auto *fc = dynamic_cast<const InnerProductLayer *>(&l)) {
            os << " out " << fc->outputs();
        } else if (auto *cv =
                   dynamic_cast<const ConvolutionLayer *>(&l)) {
            os << " out " << cv->outChannels() << " kernel "
               << cv->kernel() << " stride " << cv->stride()
               << " pad " << cv->pad() << " group " << cv->groups();
        } else if (auto *lc =
                   dynamic_cast<const LocallyConnectedLayer *>(&l)) {
            os << " out " << lc->outChannels() << " kernel "
               << lc->kernel() << " stride " << lc->stride()
               << " pad " << lc->pad();
        } else if (auto *pl = dynamic_cast<const PoolingLayer *>(&l)) {
            os << " kernel " << pl->kernel() << " stride "
               << pl->stride() << " pad " << pl->pad();
        } else if (auto *ln = dynamic_cast<const LrnLayer *>(&l)) {
            os << " size " << ln->size();
        }
        os << "\n";
    }
    return os.str();
}

} // namespace nn
} // namespace djinn
