/**
 * @file
 * Statistics primitives for the simulator and the benchmark harness:
 * counters, mean/variance accumulators, and percentile-capable
 * sample distributions.
 */

#ifndef DJINN_SIM_STATS_HH
#define DJINN_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/histogram.hh"

namespace djinn {
namespace sim {

/**
 * The bucket layout every latency histogram in the repo shares: the
 * telemetry log-bucketed histogram at ~4% resolution from 1us to
 * beyond 1000s. Simulators and the live server record latency
 * through telemetry::LogHistogram with these options, so there is
 * exactly one percentile codepath repo-wide; sim::Distribution
 * remains available as the exact (sample-storing) oracle for tests.
 */
telemetry::HistogramOptions latencyHistogramOptions();

/** A monotonically increasing named count. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p n to the count. */
    void inc(uint64_t n = 1) { value_ += n; }

    /** Current count. */
    uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/**
 * Streaming mean / variance / min / max accumulator (Welford's
 * algorithm). O(1) memory; no percentiles.
 */
class Accumulator
{
  public:
    Accumulator() = default;

    /** Record one sample. */
    void add(double x);

    /** Number of samples recorded. */
    uint64_t count() const { return n_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance; 0 with fewer than 2 samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample; -inf when empty. */
    double max() const { return max_; }

    /** Forget all samples. */
    void reset();

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_;
    double max_;
};

/**
 * A sample distribution that stores every value for exact quantiles.
 * Suitable for per-query latency distributions at experiment scale
 * (up to a few million samples).
 */
class Distribution
{
  public:
    Distribution() = default;

    /** Record one sample. */
    void add(double x);

    /** Number of samples. */
    uint64_t count() const { return samples_.size(); }

    /** Mean; 0 when empty. */
    double mean() const;

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** Largest sample; 0 when empty. */
    double max() const;

    /**
     * Exact quantile by linear interpolation between order statistics.
     *
     * @param q quantile in [0, 1]; e.g. 0.5 for median, 0.99 for p99.
     */
    double quantile(double q) const;

    /** Median (quantile 0.5). */
    double median() const { return quantile(0.5); }

    /** Forget all samples. */
    void reset();

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    double sum_ = 0.0;

    void ensureSorted() const;
};

/**
 * A named registry of statistics, used to dump experiment results in
 * a uniform "name value" format.
 */
class StatRegistry
{
  public:
    /** Record a scalar value under a name (overwrites). */
    void set(const std::string &name, double value);

    /** Fetch a scalar; returns 0 and warns when missing. */
    double get(const std::string &name) const;

    /** True when the name exists. */
    bool has(const std::string &name) const;

    /** All stats in name order as (name, value). */
    std::vector<std::pair<std::string, double>> all() const;

    /** Render all stats, one "name value" pair per line. */
    std::string dump() const;

  private:
    std::map<std::string, double> values_;
};

} // namespace sim
} // namespace djinn

#endif // DJINN_SIM_STATS_HH
