#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace djinn {
namespace sim {

telemetry::HistogramOptions
latencyHistogramOptions()
{
    // 1us first bucket, 4% geometric growth: 540 buckets reach
    // ~1580s, so every realistic query latency lands in a finite
    // bucket and interpolated quantiles are within ~2% of exact.
    telemetry::HistogramOptions options;
    options.firstBound = 1e-6;
    options.growth = 1.04;
    options.bucketCount = 540;
    return options;
}

// Accumulator ------------------------------------------------------

void
Accumulator::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
Accumulator::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::reset()
{
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    sum_ = 0.0;
}

// Distribution -----------------------------------------------------

void
Distribution::add(double x)
{
    samples_.push_back(x);
    sum_ += x;
    sorted_ = false;
}

double
Distribution::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum_ / static_cast<double>(samples_.size());
}

double
Distribution::min() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.front();
}

double
Distribution::max() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.back();
}

void
Distribution::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
Distribution::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    ensureSorted();
    double pos = q * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void
Distribution::reset()
{
    samples_.clear();
    sorted_ = true;
    sum_ = 0.0;
}

// StatRegistry -----------------------------------------------------

void
StatRegistry::set(const std::string &name, double value)
{
    values_[name] = value;
}

double
StatRegistry::get(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end()) {
        warn("StatRegistry: missing stat '%s'", name.c_str());
        return 0.0;
    }
    return it->second;
}

bool
StatRegistry::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::vector<std::pair<std::string, double>>
StatRegistry::all() const
{
    return {values_.begin(), values_.end()};
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[name, value] : values_)
        os << name << " " << value << "\n";
    return os.str();
}

} // namespace sim
} // namespace djinn
