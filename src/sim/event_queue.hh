/**
 * @file
 * Discrete-event simulation core.
 *
 * The serving experiments (batching, MPS, multi-GPU scaling) run on
 * this engine: every queue arrival, kernel completion, and transfer
 * completion is an event. Time is a double in seconds.
 */

#ifndef DJINN_SIM_EVENT_QUEUE_HH
#define DJINN_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

namespace djinn {
namespace sim {

/** Simulated time in seconds. */
using Time = double;

/** Opaque handle used to cancel a scheduled event. */
using EventId = uint64_t;

/** Sentinel returned when an event could not be scheduled. */
constexpr EventId InvalidEventId = 0;

/**
 * A time-ordered event queue. Events scheduled for the same instant
 * run in FIFO order of scheduling (stable), which keeps simulations
 * deterministic.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in seconds. */
    Time now() const { return now_; }

    /**
     * Schedule a callback at an absolute time.
     *
     * @param when absolute simulated time; must be >= now().
     * @param cb callback invoked when the event fires.
     * @return handle usable with cancel().
     */
    EventId scheduleAt(Time when, Callback cb);

    /** Schedule a callback @p delay seconds after now(). */
    EventId scheduleAfter(Time delay, Callback cb);

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * event is a harmless no-op.
     *
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return liveCount_ == 0; }

    /** Number of pending (non-cancelled) events. */
    size_t pendingCount() const { return liveCount_; }

    /**
     * Fire the next event.
     *
     * @return true if an event ran, false if the queue was empty.
     */
    bool step();

    /** Run until the queue drains or simulated time exceeds @p limit. */
    void run(Time limit = 1e30);

    /**
     * Run until @p deadline, firing all events scheduled strictly
     * before it, then set now() to the deadline.
     */
    void runUntil(Time deadline);

    /** Total number of events fired so far. */
    uint64_t firedCount() const { return fired_; }

  private:
    struct Entry {
        Time when;
        uint64_t seq;
        EventId id;
        Callback cb;
        bool cancelled = false;
    };

    struct Order {
        bool
        operator()(const std::shared_ptr<Entry> &a,
                   const std::shared_ptr<Entry> &b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    std::priority_queue<std::shared_ptr<Entry>,
                        std::vector<std::shared_ptr<Entry>>, Order>
        heap_;
    std::unordered_map<EventId, std::shared_ptr<Entry>> live_;
    Time now_ = 0.0;
    uint64_t seq_ = 0;
    uint64_t nextId_ = 1;
    uint64_t fired_ = 0;
    size_t liveCount_ = 0;
};

} // namespace sim
} // namespace djinn

#endif // DJINN_SIM_EVENT_QUEUE_HH
