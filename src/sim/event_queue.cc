#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace djinn {
namespace sim {

EventId
EventQueue::scheduleAt(Time when, Callback cb)
{
    if (when < now_) {
        panic("scheduleAt: time %g is before now %g", when, now_);
    }
    auto entry = std::make_shared<Entry>();
    entry->when = when;
    entry->seq = seq_++;
    entry->id = nextId_++;
    entry->cb = std::move(cb);
    heap_.push(entry);
    live_[entry->id] = entry;
    ++liveCount_;
    return entry->id;
}

EventId
EventQueue::scheduleAfter(Time delay, Callback cb)
{
    if (delay < 0.0)
        panic("scheduleAfter: negative delay %g", delay);
    return scheduleAt(now_ + delay, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    auto it = live_.find(id);
    if (it == live_.end())
        return false;
    it->second->cancelled = true;
    it->second->cb = nullptr;
    live_.erase(it);
    --liveCount_;
    return true;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        auto entry = heap_.top();
        heap_.pop();
        if (entry->cancelled)
            continue;
        live_.erase(entry->id);
        --liveCount_;
        now_ = entry->when;
        ++fired_;
        // Move the callback out so re-entrant scheduling is safe.
        Callback cb = std::move(entry->cb);
        cb();
        return true;
    }
    return false;
}

void
EventQueue::run(Time limit)
{
    while (!heap_.empty()) {
        // Peek past cancelled entries without firing.
        auto entry = heap_.top();
        if (entry->cancelled) {
            heap_.pop();
            continue;
        }
        if (entry->when > limit)
            break;
        step();
    }
}

void
EventQueue::runUntil(Time deadline)
{
    run(deadline);
    if (now_ < deadline)
        now_ = deadline;
}

} // namespace sim
} // namespace djinn
