#include "cluster/telemetry.hh"

#include <cstdio>

#include "telemetry/attribution.hh"

namespace djinn {
namespace cluster {

void
recordClusterResult(telemetry::MetricRegistry &registry,
                    const std::string &scenario,
                    const ClusterConfig &config,
                    const ClusterResult &result, bool includeSeries)
{
    const telemetry::LabelMap base{
        {"policy", routePolicyName(config.policy)},
        {"scenario", scenario}};
    auto set = [&](const char *name, double value) {
        registry.gauge(name, base).set(value);
    };
    auto latency = [&](const char *name,
                       const LatencySummary &summary,
                       telemetry::LabelMap labels) {
        auto stat = [&](const char *which, double value) {
            labels["stat"] = which;
            registry.gauge(name, labels).set(value);
        };
        stat("mean", summary.mean);
        stat("p50", summary.p50);
        stat("p95", summary.p95);
        stat("p99", summary.p99);
        stat("p999", summary.p999);
    };

    set("djinn_cluster_offered_qps", result.offeredQps);
    set("djinn_cluster_throughput_qps", result.throughputQps);
    set("djinn_cluster_offered_requests",
        static_cast<double>(result.offered));
    set("djinn_cluster_completed_requests",
        static_cast<double>(result.completed));
    set("djinn_cluster_lost_requests",
        static_cast<double>(result.lost));
    set("djinn_cluster_retries",
        static_cast<double>(result.retries));
    set("djinn_cluster_batches",
        static_cast<double>(result.batches));
    set("djinn_cluster_mean_batch_queries",
        result.meanBatchQueries);
    set("djinn_cluster_occupancy", result.occupancy);
    set("djinn_cluster_duration_seconds", result.duration);
    set("djinn_cluster_events",
        static_cast<double>(result.eventsFired));
    set("djinn_cluster_trace_hash",
        static_cast<double>(result.traceHash));

    {
        telemetry::LabelMap labels = base;
        labels["reason"] = "overload";
        registry.gauge("djinn_cluster_shed_requests", labels)
            .set(static_cast<double>(result.shedOverload));
        labels["reason"] = "deadline";
        registry.gauge("djinn_cluster_shed_requests", labels)
            .set(static_cast<double>(result.shedDeadline));
    }
    {
        telemetry::LabelMap labels = base;
        labels["stat"] = "mean";
        registry.gauge("djinn_cluster_queue_depth", labels)
            .set(result.meanQueueDepth);
        labels["stat"] = "max_node";
        registry.gauge("djinn_cluster_queue_depth", labels)
            .set(static_cast<double>(result.maxNodeQueueDepth));
    }

    latency("djinn_cluster_latency_seconds", result.latency, base);

    // Tail attribution through the identical engine the live
    // server's /debug/tail uses, labeled with policy/scenario so a
    // sweep shows *why* each policy's p99 differs.
    telemetry::recordTailReport(
        registry, telemetry::attributeTail(result.flightRecords, 99.0),
        base);

    for (const AppClusterStats &app : result.apps) {
        telemetry::LabelMap labels = base;
        labels["app"] = serve::appName(app.app);
        registry.gauge("djinn_cluster_app_throughput_qps", labels)
            .set(app.throughputQps);
        registry
            .gauge("djinn_cluster_app_completed_requests", labels)
            .set(static_cast<double>(app.completed));
        latency("djinn_cluster_app_latency_seconds", app.latency,
                labels);
    }

    if (!includeSeries)
        return;
    for (const TimeSample &sample : result.series) {
        char t[32];
        std::snprintf(t, sizeof(t), "%.3f", sample.t);
        telemetry::LabelMap labels = base;
        labels["t"] = t;
        registry.gauge("djinn_cluster_series_queued", labels)
            .set(static_cast<double>(sample.queuedQueries));
        registry.gauge("djinn_cluster_series_in_service", labels)
            .set(static_cast<double>(sample.inService));
        registry.gauge("djinn_cluster_series_completed", labels)
            .set(static_cast<double>(sample.completed));
        registry.gauge("djinn_cluster_series_shed", labels)
            .set(static_cast<double>(sample.shed));
    }
}

void
feedTimeSeries(telemetry::MetricRegistry &registry,
               telemetry::TimeSeriesStore &store,
               const std::string &scenario,
               const ClusterResult &result)
{
    // The same families the live sampler records, so HealthMonitor
    // rules read simulated history unchanged. Counters are
    // cumulative in the TimeSample already; feed deltas.
    telemetry::Counter &completed = registry.counter(
        "djinn_requests_total", {{"model", scenario}});
    telemetry::Counter &shed = registry.counter(
        "djinn_shed_total",
        {{"model", scenario}, {"reason", "sim"}});
    telemetry::Gauge &depth =
        registry.gauge("djinn_batch_queue_depth_total");
    telemetry::Gauge &busy =
        registry.gauge("djinn_compute_pool_busy");

    uint64_t lastCompleted = 0;
    uint64_t lastShed = 0;
    for (const TimeSample &sample : result.series) {
        const uint64_t completedNow =
            static_cast<uint64_t>(sample.completed);
        const uint64_t shedNow = static_cast<uint64_t>(sample.shed);
        if (completedNow > lastCompleted)
            completed.inc(completedNow - lastCompleted);
        if (shedNow > lastShed)
            shed.inc(shedNow - lastShed);
        lastCompleted = completedNow;
        lastShed = shedNow;
        depth.set(static_cast<double>(sample.queuedQueries));
        busy.set(static_cast<double>(sample.inService));
        store.sample(sample.t);
    }
}

} // namespace cluster
} // namespace djinn
