#include "cluster/policy.hh"

#include <limits>

#include "common/logging.hh"

namespace djinn {
namespace cluster {

const char *
routePolicyName(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::RoundRobin: return "rr";
      case RoutePolicy::JoinShortestQueue: return "jsq";
      case RoutePolicy::PowerOfTwo: return "po2";
      case RoutePolicy::DeadlineJsq: return "jsq-d";
      case RoutePolicy::DeadlinePo2: return "po2-d";
    }
    return "unknown";
}

RoutePolicy
routePolicyFromName(const std::string &name)
{
    if (name == "rr")
        return RoutePolicy::RoundRobin;
    if (name == "jsq")
        return RoutePolicy::JoinShortestQueue;
    if (name == "po2")
        return RoutePolicy::PowerOfTwo;
    if (name == "jsq-d")
        return RoutePolicy::DeadlineJsq;
    if (name == "po2-d")
        return RoutePolicy::DeadlinePo2;
    fatal("unknown routing policy '%s' (want rr, jsq, po2, jsq-d, "
          "or po2-d)", name.c_str());
}

const std::vector<RoutePolicy> &
allRoutePolicies()
{
    static const std::vector<RoutePolicy> policies = {
        RoutePolicy::RoundRobin, RoutePolicy::JoinShortestQueue,
        RoutePolicy::PowerOfTwo, RoutePolicy::DeadlineJsq,
        RoutePolicy::DeadlinePo2,
    };
    return policies;
}

namespace {

class RoundRobinRouter : public Router
{
  public:
    int
    route(const std::vector<NodeView> &views, double, Rng &) override
    {
        // Queue-blind: the chosen node sheds if it is full, which
        // is exactly what makes round-robin fall behind at high
        // load.
        int pick = static_cast<int>(next_++ % views.size());
        return views[pick].admits() ? pick : RouteShedOverload;
    }

  private:
    uint64_t next_ = 0;
};

/** Pick the admitting view with the fewest queued queries. */
int
shortestOf(const std::vector<NodeView> &views,
           const std::vector<int> &candidates)
{
    int best = RouteShedOverload;
    int64_t best_depth = std::numeric_limits<int64_t>::max();
    for (int i : candidates) {
        const NodeView &view = views[i];
        if (!view.admits())
            continue;
        int64_t depth = view.queuedQueries + view.inService;
        if (depth < best_depth) {
            best = i;
            best_depth = depth;
        }
    }
    return best;
}

/** Pick the admitting, feasible view with the least estimated
 * latency; RouteShedDeadline when slack rules every one out. */
int
feasibleFastestOf(const std::vector<NodeView> &views,
                  const std::vector<int> &candidates, double slack)
{
    int best = RouteShedOverload;
    double best_latency = std::numeric_limits<double>::infinity();
    bool any_admits = false;
    for (int i : candidates) {
        const NodeView &view = views[i];
        if (!view.admits())
            continue;
        any_admits = true;
        if (view.estimatedLatency > slack)
            continue;
        if (view.estimatedLatency < best_latency) {
            best = i;
            best_latency = view.estimatedLatency;
        }
    }
    if (best == RouteShedOverload && any_admits)
        return RouteShedDeadline;
    return best;
}

std::vector<int>
allIndices(size_t n)
{
    std::vector<int> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = static_cast<int>(i);
    return out;
}

/** Two distinct indices sampled uniformly. */
std::vector<int>
twoChoices(size_t n, Rng &rng)
{
    if (n < 2)
        return allIndices(n);
    int64_t a = rng.uniformInt(0, static_cast<int64_t>(n) - 1);
    int64_t b = rng.uniformInt(0, static_cast<int64_t>(n) - 2);
    if (b >= a)
        ++b;
    return {static_cast<int>(a), static_cast<int>(b)};
}

class JsqRouter : public Router
{
  public:
    int
    route(const std::vector<NodeView> &views, double, Rng &) override
    {
        return shortestOf(views, allIndices(views.size()));
    }
};

class Po2Router : public Router
{
  public:
    int
    route(const std::vector<NodeView> &views, double,
          Rng &rng) override
    {
        return shortestOf(views, twoChoices(views.size(), rng));
    }
};

class DeadlineJsqRouter : public Router
{
  public:
    int
    route(const std::vector<NodeView> &views, double slack,
          Rng &) override
    {
        return feasibleFastestOf(views, allIndices(views.size()),
                                 slack);
    }
};

class DeadlinePo2Router : public Router
{
  public:
    int
    route(const std::vector<NodeView> &views, double slack,
          Rng &rng) override
    {
        return feasibleFastestOf(views,
                                 twoChoices(views.size(), rng),
                                 slack);
    }
};

} // namespace

std::unique_ptr<Router>
makeRouter(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::RoundRobin:
        return std::make_unique<RoundRobinRouter>();
      case RoutePolicy::JoinShortestQueue:
        return std::make_unique<JsqRouter>();
      case RoutePolicy::PowerOfTwo:
        return std::make_unique<Po2Router>();
      case RoutePolicy::DeadlineJsq:
        return std::make_unique<DeadlineJsqRouter>();
      case RoutePolicy::DeadlinePo2:
        return std::make_unique<DeadlinePo2Router>();
    }
    panic("makeRouter: unknown policy %d",
          static_cast<int>(policy));
}

} // namespace cluster
} // namespace djinn
