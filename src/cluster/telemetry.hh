/**
 * @file
 * Bridge from the cluster simulator to the telemetry subsystem:
 * records a ClusterResult into a MetricRegistry under the
 * `djinn_cluster_*` families, so policy sweeps and capacity probes
 * land in the same exposition formats (and microbench JSON schema)
 * as the single-server experiments.
 */

#ifndef DJINN_CLUSTER_TELEMETRY_HH
#define DJINN_CLUSTER_TELEMETRY_HH

#include <string>

#include "cluster/simulator.hh"
#include "telemetry/metrics.hh"
#include "telemetry/timeseries.hh"

namespace djinn {
namespace cluster {

/**
 * Record one cluster experiment into @p registry as gauges under
 * `djinn_cluster_*`, labeled {policy, scenario} (plus {stat} for
 * latency quantiles, {reason} for sheds, {app} for the per-app
 * breakdown, and {t} for time-series points).
 *
 * @param registry destination registry.
 * @param scenario experiment tag, e.g. "nodes=16,rate=12000".
 * @param config the experiment's configuration (labels the
 *        policy).
 * @param result the simulated experiment.
 * @param includeSeries also record the sampled time series (one
 *        gauge per sample point; off by default to bound metric
 *        cardinality).
 */
void recordClusterResult(telemetry::MetricRegistry &registry,
                         const std::string &scenario,
                         const ClusterConfig &config,
                         const ClusterResult &result,
                         bool includeSeries = false);

/**
 * Replay a simulated experiment's sampled time series into a
 * TimeSeriesStore at virtual time, through the same metric
 * families the live server's sampler feeds (requests/shed totals,
 * aggregate queue depth, pool busy). A HealthMonitor evaluated at
 * the sample instants then grades the simulated scenario with the
 * exact rules that guard production — and, because the simulator
 * is deterministic, with bit-identical verdicts across runs.
 *
 * @p registry must be the registry @p store samples (the counters
 * fed here live in it); use a dedicated registry per replay so
 * live server metrics do not mix in.
 */
void feedTimeSeries(telemetry::MetricRegistry &registry,
                    telemetry::TimeSeriesStore &store,
                    const std::string &scenario,
                    const ClusterResult &result);

} // namespace cluster
} // namespace djinn

#endif // DJINN_CLUSTER_TELEMETRY_HH
