/**
 * @file
 * One simulated DjiNN server node: per-application batch queues
 * with a bounded admission limit, DjiNN-style batch formation
 * (dispatch at maxBatch queries or after a batch timeout), a pool
 * of parallel GPU executors, and deadline enforcement at batch
 * dequeue — the PR 5 lifecycle semantics (shed `Overloaded` at
 * enqueue, `DeadlineExceeded` before the forward pass) transplanted
 * into the discrete-event world.
 */

#ifndef DJINN_CLUSTER_NODE_HH
#define DJINN_CLUSTER_NODE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/policy.hh"
#include "serve/app.hh"
#include "serve/scheduler.hh"
#include "sim/event_queue.hh"

namespace djinn {
namespace cluster {

/**
 * Seconds one node needs to serve a batch of @p queries of @p app
 * (host prep + transfers + GPU forward, pipeline-collapsed). Must
 * be deterministic per (app, queries) for reproducible runs;
 * stochastic models used in queueing-theory tests may keep their
 * own seeded generator, which the single-threaded simulator calls
 * in a deterministic order.
 */
using ServiceModel =
    std::function<double(serve::App app, int64_t queries)>;

/** Static shape of one node. */
struct NodeSpec {
    /** Parallel GPU executors. */
    int gpus = 1;

    /** Admission cap on queued (not yet executing) queries. */
    int64_t queueLimit = 256;

    /**
     * Queries per dispatched batch; 0 uses each app's tuned batch
     * (Table 3).
     */
    int64_t maxBatch = 0;

    /**
     * Seconds a partial batch waits before dispatching anyway
     * (the BatchingExecutor's maxDelay). <= 0 dispatches
     * immediately.
     */
    double batchTimeout = 2e-3;

    /** Relative node speed; 2.0 serves twice as fast. */
    double speedFactor = 1.0;

    /**
     * SLO-driven adaptive batching (DESIGN.md §16): size each
     * app's dispatch batch from its observed arrival rate and
     * calibrated batch service time instead of the static tuned
     * batch, shrinking under burn-rate pressure.
     */
    bool adaptiveBatch = false;

    /**
     * Multi-tenant weighted fair sharing: pick the dispatchable
     * app whose tenant holds the largest deficit-round-robin
     * credit (work-conserving; a free GPU never idles while any
     * app is dispatchable).
     */
    bool fairShare = false;

    /** Per-query latency SLO driving the adaptive policy,
     * seconds. <= 0 keeps the scheduler's default. */
    double sloSeconds = 0.0;

    /**
     * Fair-share weight per app name (serve::appName); apps not
     * listed share the implicit "default" tenant at weight 1.
     */
    std::map<std::string, double> tenantWeights;
};

/** One simulated server. Single-threaded, driven by the event
 * queue. */
class ClusterNode
{
  public:
    /** One routed request. */
    struct Request {
        /** Trace index; stable across retries. */
        uint64_t id = 0;

        /** Target application. */
        serve::App app = serve::App::IMC;

        /** First front-end arrival (latency baseline), seconds. */
        double firstArrival = 0.0;

        /** Absolute deadline; effectively none by default. */
        double deadline = 1e300;

        /** Retry attempts before this admission (router-stamped). */
        int32_t attempt = 0;

        /** Simulation time this attempt was admitted; stamped by
         * enqueue(). */
        double admitTime = 0.0;

        /** Queued queries observed at admission, before this one
         * joined; stamped by enqueue(). */
        int64_t admitDepth = 0;
    };

    /** Batch context delivered with each completion — the flight-
     * record fields only the serving node knows. */
    struct Served {
        /** Queries combined into the serving batch. */
        int64_t batchQueries = 0;

        /** This query's position within the batch. */
        int64_t batchPosition = 0;

        /** The batch's service time, seconds. */
        double serviceSeconds = 0.0;

        /** Simulation time the batch was dispatched. */
        double dispatchTime = 0.0;
    };

    /** Called once per query when its batch completes. */
    using CompleteFn =
        std::function<void(const Request &, const Served &)>;

    /** Called when a queued query is dropped at dequeue because
     * its deadline already passed. */
    using DeadlineShedFn = std::function<void(const Request &)>;

    ClusterNode(sim::EventQueue &eq, int id, const NodeSpec &spec,
                ServiceModel service, CompleteFn onComplete,
                DeadlineShedFn onDeadlineShed);

    ClusterNode(const ClusterNode &) = delete;
    ClusterNode &operator=(const ClusterNode &) = delete;

    /**
     * Admit one query.
     *
     * @return false when the queue is at its limit (the caller
     *         sheds Overloaded).
     */
    bool enqueue(const Request &request);

    /** The router's view of this node. */
    NodeView view() const;

    /** Queries waiting in batch queues. */
    int64_t queuedQueries() const { return totalQueued_; }

    /** Queries currently executing. */
    int64_t inService() const { return inService_; }

    /** Largest queued-query count ever observed. */
    int64_t maxQueuedQueries() const { return maxQueued_; }

    /** Cumulative GPU-busy seconds across executors. */
    double busySeconds() const { return busySeconds_; }

    /** Batches dispatched. */
    uint64_t batchesDispatched() const { return batches_; }

    /** Queries dispatched into batches. */
    uint64_t queriesDispatched() const { return dispatched_; }

    /** Node id (index in the cluster). */
    int id() const { return id_; }

  private:
    struct AppQueue {
        std::deque<Request> queue;
        sim::EventId timer = sim::InvalidEventId;

        /** True once the batch timeout fired (or the queue hit
         * maxBatch): dispatch as soon as an executor frees. */
        bool ready = false;
    };

    int64_t effectiveMaxBatch(serve::App app) const;
    void onTimer(serve::App app);
    void pump();
    bool dispatchable(const AppQueue &aq, serve::App app) const;
    void dispatch(serve::App app);
    void onBatchDone(std::vector<Request> batch, double serviceTime,
                     double dispatchTime);
    void registerApp(serve::App app);
    void maybeSchedTick();

    sim::EventQueue &eq_;
    int id_;
    NodeSpec spec_;
    ServiceModel service_;
    CompleteFn onComplete_;
    DeadlineShedFn onDeadlineShed_;

    std::map<serve::App, AppQueue> queues_;
    std::vector<serve::App> order_;  ///< apps in first-seen order
    size_t cursor_ = 0;              ///< round-robin scan start

    int freeGpus_;
    int64_t totalQueued_ = 0;
    int64_t inService_ = 0;
    int64_t maxQueued_ = 0;
    double busySeconds_ = 0.0;
    uint64_t batches_ = 0;
    uint64_t dispatched_ = 0;

    /** Smoothed seconds per query actually observed (EWMA); 0
     * until the first batch completes. */
    double ewmaQuerySeconds_ = 0.0;

    /** Adaptive batch + fair-share control plane; null unless
     * spec.adaptiveBatch or spec.fairShare is set. Ticked lazily
     * from enqueue/completion events in virtual time (the
     * single-threaded simulator never self-schedules control
     * events, which would keep the event queue alive forever). */
    std::unique_ptr<serve::AdaptiveScheduler> sched_;
    double lastSchedTick_ = -1.0;
    std::map<serve::App, std::string> tenantOf_;
};

} // namespace cluster
} // namespace djinn

#endif // DJINN_CLUSTER_NODE_HH
