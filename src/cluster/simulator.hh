/**
 * @file
 * The cluster-scale discrete-event serving simulator: N server
 * nodes (cluster/node) behind a pluggable front-end router
 * (cluster/policy), driven by a synthetic trace
 * (cluster/workload). Service times come from the calibrated
 * GPU/CPU timing models (src/perf + src/gpu) unless a test injects
 * its own model; shed requests are retried with the core/retry
 * backoff policy exactly when core::retryableFailure says a retry
 * is safe. Latency percentiles are recorded in the telemetry
 * log-bucketed histogram — the same percentile codepath the live
 * server exports — and queue depth / occupancy / shed-rate time
 * series are sampled on a fixed interval.
 *
 * Determinism guarantee: no wall clock, no unseeded randomness.
 * The same (config, trace) pair produces a bit-identical event
 * sequence, summary statistics, and trace hash on every run.
 */

#ifndef DJINN_CLUSTER_SIMULATOR_HH
#define DJINN_CLUSTER_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "cluster/node.hh"
#include "cluster/policy.hh"
#include "cluster/workload.hh"
#include "core/retry.hh"
#include "gpu/link.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/histogram.hh"

namespace djinn {
namespace cluster {

/** Configuration of one cluster experiment. */
struct ClusterConfig {
    /** Server nodes behind the front end. */
    int nodeCount = 16;

    /** Shape shared by every node. */
    NodeSpec node;

    /**
     * Optional per-node speed overrides (asymmetric clusters);
     * empty keeps node.speedFactor everywhere, otherwise must have
     * nodeCount entries.
     */
    std::vector<double> speedFactors;

    /** Front-end routing policy. */
    RoutePolicy policy = RoutePolicy::RoundRobin;

    /**
     * Relative deadline attached to every request, seconds;
     * <= 0 disables deadlines. Expired queries are shed at batch
     * dequeue (and at the front end under deadline-aware
     * policies).
     */
    double deadlineSeconds = 0.0;

    /**
     * Whether Overloaded sheds are retried from the client side.
     * Deadline sheds are never retried (core::retryableFailure).
     */
    bool retryShedRequests = true;

    /** Client retry schedule (core/retry). */
    core::RetryPolicy retry;

    /** Time-series sampling interval, seconds; <= 0 disables. */
    double sampleInterval = 0.25;

    /**
     * Service-time model; empty uses calibratedServiceModel()
     * (K40 timing + default host link).
     */
    ServiceModel serviceModel;

    /** Seed for routing and retry-jitter streams. */
    uint64_t seed = 1;

    /**
     * Flight-recorder ring capacity: per-request records kept for
     * tail attribution (the server's recorder transplanted into
     * virtual time). The ring holds the most recent requests; the
     * reservoir below keeps the slowest across wraps.
     */
    size_t flightCapacity = 4096;

    /** Flight-recorder tail-reservoir capacity; 0 disables. */
    size_t flightReservoir = 256;
};

/** One point of the sampled time series. */
struct TimeSample {
    double t = 0.0;               ///< sample time, seconds
    int64_t queuedQueries = 0;    ///< queued across all nodes
    int64_t inService = 0;        ///< executing across all nodes
    uint64_t completed = 0;       ///< cumulative completions
    uint64_t shed = 0;            ///< cumulative sheds (all kinds)
};

/** Latency summary extracted from one histogram. */
struct LatencySummary {
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
};

/** Per-application results. */
struct AppClusterStats {
    serve::App app = serve::App::IMC;
    uint64_t offered = 0;
    uint64_t completed = 0;
    double throughputQps = 0.0;
    LatencySummary latency;
};

/** Results of one cluster experiment. */
struct ClusterResult {
    /** Requests in the trace. */
    uint64_t offered = 0;

    /** Requests served to completion. */
    uint64_t completed = 0;

    /** Overloaded shed events (front end + node admission);
     * retried attempts count once per shed. */
    uint64_t shedOverload = 0;

    /** Deadline shed events (front-end infeasibility + dequeue
     * drops). */
    uint64_t shedDeadline = 0;

    /** Requests never served (retries exhausted or deadline). */
    uint64_t lost = 0;

    /** Client retry attempts scheduled. */
    uint64_t retries = 0;

    /** Batches dispatched across all nodes. */
    uint64_t batches = 0;

    /** Mean queries per dispatched batch. */
    double meanBatchQueries = 0.0;

    /** Last trace arrival, seconds. */
    double traceDuration = 0.0;

    /** Simulated time when the cluster drained, seconds. */
    double duration = 0.0;

    /** offered / traceDuration. */
    double offeredQps = 0.0;

    /** completed / duration. */
    double throughputQps = 0.0;

    /** Busy GPU-seconds over duration x total GPUs. */
    double occupancy = 0.0;

    /** Mean of sampled total queue depth (0 without sampling). */
    double meanQueueDepth = 0.0;

    /** Largest queued-query count on any single node. */
    int64_t maxNodeQueueDepth = 0;

    /** End-to-end latency (first arrival to completion),
     * log-bucketed, with per-bucket exemplars whose `record` refs
     * index into flightRecords by seq. */
    telemetry::HistogramSnapshot latencyHistogram;

    /**
     * Per-request flight records (ring + tail reservoir at drain
     * time): the same schema the live server writes, assembled from
     * virtual time — queue wait, forward, retry inflation, batch
     * context, admission depth, and shed outcomes. Feed to
     * telemetry::attributeTail to explain this run's p99.
     * Deterministic for a fixed (config, trace).
     */
    std::vector<telemetry::FlightRecord> flightRecords;

    /** Quantiles of latencyHistogram. */
    LatencySummary latency;

    /** Per-application breakdown, in first-offered order. */
    std::vector<AppClusterStats> apps;

    /** Sampled time series (empty when sampling is disabled). */
    std::vector<TimeSample> series;

    /** Events the simulation fired. */
    uint64_t eventsFired = 0;

    /** FNV-1a hash over the full event sequence; equal seeds and
     * configs yield equal hashes (the determinism guard). */
    uint64_t traceHash = 0;

    /** Fraction of offered requests never served. */
    double
    lostFraction() const
    {
        return offered ? static_cast<double>(lost) /
                             static_cast<double>(offered)
                       : 0.0;
    }
};

/** Run one cluster experiment over a trace. */
ClusterResult runClusterSim(const ClusterConfig &config,
                            const ClusterTrace &trace);

/**
 * The calibrated service model: per-query host preparation, host
 * link transfers in and out, and the batched GPU forward pass from
 * gpu::profileForward — the same timing stack behind the paper's
 * single-server figures, collapsed into one batch service time.
 * Results are cached per (app, batch queries, link); the returned
 * callable is cheap to copy and deterministic. The no-argument
 * form uses the single-server default host link (2x PCIe v3).
 */
ServiceModel calibratedServiceModel();

/** Calibrated service model over a specific host interconnect
 * (the WSC tail-capacity probes pass the chassis link here). */
ServiceModel calibratedServiceModel(const gpu::LinkSpec &hostLink);

} // namespace cluster
} // namespace djinn

#endif // DJINN_CLUSTER_SIMULATOR_HH
