#include "cluster/node.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace djinn {
namespace cluster {

ClusterNode::ClusterNode(sim::EventQueue &eq, int id,
                         const NodeSpec &spec, ServiceModel service,
                         CompleteFn onComplete,
                         DeadlineShedFn onDeadlineShed)
    : eq_(eq), id_(id), spec_(spec), service_(std::move(service)),
      onComplete_(std::move(onComplete)),
      onDeadlineShed_(std::move(onDeadlineShed)),
      freeGpus_(spec.gpus)
{
    if (spec_.gpus <= 0)
        fatal("ClusterNode: gpus must be positive");
    if (spec_.queueLimit <= 0)
        fatal("ClusterNode: queueLimit must be positive");
    if (spec_.speedFactor <= 0.0)
        fatal("ClusterNode: speedFactor must be positive");
    if (!service_)
        fatal("ClusterNode: service model must be set");

    if (spec_.adaptiveBatch || spec_.fairShare) {
        serve::SchedulerOptions options;
        if (spec_.sloSeconds > 0.0)
            options.defaultSloSeconds = spec_.sloSeconds;
        // Dispatch capacity scales with the executor pool: N GPUs
        // serve N seconds of batch time per simulated second.
        options.poolSeconds = static_cast<double>(spec_.gpus);
        sched_ = std::make_unique<serve::AdaptiveScheduler>(options);
        for (const auto &[name, weight] : spec_.tenantWeights)
            sched_->addTenant(name, weight);
    }
}

int64_t
ClusterNode::effectiveMaxBatch(serve::App app) const
{
    int64_t base = spec_.maxBatch > 0 ? spec_.maxBatch
                                      : serve::appSpec(app).tunedBatch;
    if (sched_ && spec_.adaptiveBatch) {
        int64_t target = sched_->batchTarget(serve::appName(app));
        return std::max<int64_t>(1, std::min(target, base));
    }
    return base;
}

void
ClusterNode::registerApp(serve::App app)
{
    if (!sched_)
        return;
    const std::string name = serve::appName(app);
    // An app named in tenantWeights is its own tenant; everything
    // else shares the scheduler's implicit "default" tenant.
    std::string tenant = "default";
    if (spec_.tenantWeights.count(name))
        tenant = name;
    tenantOf_[app] = tenant;
    sched_->assignModel(name, tenant);
    sched_->setMaxBatch(name, spec_.maxBatch > 0
                                  ? spec_.maxBatch
                                  : serve::appSpec(app).tunedBatch);
    if (spec_.sloSeconds > 0.0)
        sched_->setSlo(name, spec_.sloSeconds);
}

void
ClusterNode::maybeSchedTick()
{
    if (!sched_)
        return;
    const double now = eq_.now();
    // A 100 ms control period in virtual time, piggybacked on
    // arrival/completion events; idle nodes simply stop ticking.
    if (lastSchedTick_ >= 0.0 && now - lastSchedTick_ < 0.1)
        return;
    for (const auto &[app, aq] : queues_) {
        sched_->setBacklog(serve::appName(app),
                           static_cast<int64_t>(aq.queue.size()));
    }
    sched_->tick(now);
    lastSchedTick_ = now;
}

bool
ClusterNode::enqueue(const Request &request)
{
    if (totalQueued_ >= spec_.queueLimit)
        return false;

    auto [it, inserted] = queues_.try_emplace(request.app);
    if (inserted) {
        order_.push_back(request.app);
        registerApp(request.app);
    }
    if (sched_)
        sched_->observeArrival(serve::appName(request.app), 1);
    AppQueue &aq = it->second;
    Request admitted = request;
    admitted.admitTime = eq_.now();
    admitted.admitDepth = totalQueued_;
    aq.queue.push_back(admitted);
    ++totalQueued_;
    maxQueued_ = std::max(maxQueued_, totalQueued_);
    maybeSchedTick();

    if (static_cast<int64_t>(aq.queue.size()) >=
        effectiveMaxBatch(request.app)) {
        if (aq.timer != sim::InvalidEventId) {
            eq_.cancel(aq.timer);
            aq.timer = sim::InvalidEventId;
        }
        aq.ready = true;
        pump();
    } else if (!aq.ready && aq.timer == sim::InvalidEventId) {
        if (spec_.batchTimeout <= 0.0) {
            aq.ready = true;
            pump();
        } else {
            serve::App app = request.app;
            aq.timer = eq_.scheduleAfter(
                spec_.batchTimeout,
                [this, app]() { onTimer(app); });
        }
    }
    return true;
}

NodeView
ClusterNode::view() const
{
    NodeView view;
    view.queuedQueries = totalQueued_;
    view.inService = inService_;
    view.queueLimit = spec_.queueLimit;
    // Optimistic before the first completion (ewma 0): deadline
    // policies then behave like their non-deadline variants until
    // the node has calibrated itself.
    view.estimatedLatency =
        ewmaQuerySeconds_ *
        static_cast<double>(totalQueued_ + inService_ + 1) /
        static_cast<double>(spec_.gpus);
    return view;
}

void
ClusterNode::onTimer(serve::App app)
{
    AppQueue &aq = queues_[app];
    aq.timer = sim::InvalidEventId;
    aq.ready = true;
    pump();
}

bool
ClusterNode::dispatchable(const AppQueue &aq, serve::App app) const
{
    if (aq.queue.empty())
        return false;
    return aq.ready || static_cast<int64_t>(aq.queue.size()) >=
                           effectiveMaxBatch(app);
}

void
ClusterNode::pump()
{
    while (freeGpus_ > 0 && !order_.empty()) {
        bool found = false;
        if (sched_ && spec_.fairShare) {
            // Weighted fair sharing: among dispatchable apps, pick
            // the one whose tenant holds the largest deficit
            // credit. Work-conserving — a free GPU never idles
            // while anything is dispatchable, even if every
            // deficit is negative. Ties break on the round-robin
            // scan order (strict >), keeping runs deterministic.
            bool have = false;
            size_t best = 0;
            double bestDeficit = 0.0;
            for (size_t probe = 0; probe < order_.size(); ++probe) {
                size_t i = (cursor_ + probe) % order_.size();
                serve::App app = order_[i];
                if (!dispatchable(queues_[app], app))
                    continue;
                double deficit =
                    sched_->tenantDeficit(tenantOf_.at(app));
                if (!have || deficit > bestDeficit) {
                    have = true;
                    best = i;
                    bestDeficit = deficit;
                }
            }
            if (have) {
                cursor_ = (best + 1) % order_.size();
                dispatch(order_[best]);
                found = true;
            }
        } else {
            for (size_t probe = 0; probe < order_.size(); ++probe) {
                size_t i = (cursor_ + probe) % order_.size();
                serve::App app = order_[i];
                if (dispatchable(queues_[app], app)) {
                    cursor_ = (i + 1) % order_.size();
                    dispatch(app);
                    found = true;
                    break;
                }
            }
        }
        if (!found)
            return;
    }
}

void
ClusterNode::dispatch(serve::App app)
{
    AppQueue &aq = queues_[app];
    int64_t limit = effectiveMaxBatch(app);
    double now = eq_.now();

    // Deadline enforcement at dequeue, before the forward pass:
    // queries whose budget already expired are shed, not computed.
    std::vector<Request> batch;
    while (!aq.queue.empty() &&
           static_cast<int64_t>(batch.size()) < limit) {
        Request request = aq.queue.front();
        aq.queue.pop_front();
        --totalQueued_;
        if (request.deadline < now)
            onDeadlineShed_(request);
        else
            batch.push_back(request);
    }

    // Rebuild the queue's batching state for what remains.
    if (aq.timer != sim::InvalidEventId) {
        eq_.cancel(aq.timer);
        aq.timer = sim::InvalidEventId;
    }
    if (aq.queue.empty()) {
        aq.ready = false;
    } else if (static_cast<int64_t>(aq.queue.size()) < limit) {
        aq.ready = false;
        if (spec_.batchTimeout <= 0.0) {
            aq.ready = true;
        } else {
            aq.timer = eq_.scheduleAfter(
                spec_.batchTimeout,
                [this, app]() { onTimer(app); });
        }
    }
    // else: still a full batch waiting; ready stays true.

    if (batch.empty())
        return;

    int64_t queries = static_cast<int64_t>(batch.size());
    double service_time =
        service_(app, queries) / spec_.speedFactor;
    if (service_time < 0.0)
        fatal("ClusterNode: negative service time");

    --freeGpus_;
    inService_ += queries;
    busySeconds_ += service_time;
    ++batches_;
    dispatched_ += static_cast<uint64_t>(queries);
    if (sched_)
        sched_->chargeDispatch(serve::appName(app), service_time);

    eq_.scheduleAfter(
        service_time,
        [this, b = std::move(batch), service_time, now]() mutable {
            onBatchDone(std::move(b), service_time, now);
        });
}

void
ClusterNode::onBatchDone(std::vector<Request> batch,
                         double serviceTime, double dispatchTime)
{
    int64_t queries = static_cast<int64_t>(batch.size());
    Served served;
    served.batchQueries = queries;
    served.serviceSeconds = serviceTime;
    served.dispatchTime = dispatchTime;
    for (size_t i = 0; i < batch.size(); ++i) {
        served.batchPosition = static_cast<int64_t>(i);
        onComplete_(batch[i], served);
    }
    inService_ -= queries;
    ++freeGpus_;

    double per_query = serviceTime / static_cast<double>(queries);
    ewmaQuerySeconds_ =
        ewmaQuerySeconds_ == 0.0
            ? per_query
            : 0.8 * ewmaQuerySeconds_ + 0.2 * per_query;
    if (sched_) {
        sched_->observeBatch(serve::appName(batch[0].app), queries,
                             serviceTime);
        maybeSchedTick();
    }
    pump();
}

} // namespace cluster
} // namespace djinn
