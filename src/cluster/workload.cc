#include "cluster/workload.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace djinn {
namespace cluster {

const char *
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson: return "poisson";
      case ArrivalProcess::Diurnal: return "diurnal";
      case ArrivalProcess::Mmpp: return "mmpp";
    }
    return "unknown";
}

ArrivalProcess
arrivalProcessFromName(const std::string &name)
{
    if (name == "poisson")
        return ArrivalProcess::Poisson;
    if (name == "diurnal")
        return ArrivalProcess::Diurnal;
    if (name == "mmpp")
        return ArrivalProcess::Mmpp;
    fatal("unknown arrival process '%s' (want poisson, diurnal, "
          "or mmpp)", name.c_str());
}

double
offeredRateAt(const WorkloadSpec &spec, double t)
{
    if (spec.process != ArrivalProcess::Diurnal)
        return spec.meanRate;
    double phase = 2.0 * M_PI * t / spec.diurnalPeriodSeconds;
    // Trough at t = 0 so every trace starts from light load.
    return spec.meanRate *
           (1.0 - spec.diurnalAmplitude * std::cos(phase));
}

namespace {

void
checkSpec(const WorkloadSpec &spec)
{
    if (spec.apps.empty())
        fatal("generateTrace: spec.apps is empty");
    if (spec.meanRate <= 0.0)
        fatal("generateTrace: meanRate must be positive");
    if (spec.durationSeconds <= 0.0)
        fatal("generateTrace: durationSeconds must be positive");
    if (spec.diurnalAmplitude < 0.0 || spec.diurnalAmplitude >= 1.0)
        fatal("generateTrace: diurnalAmplitude must be in [0, 1)");
    if (spec.burstMultiplier <= 1.0)
        fatal("generateTrace: burstMultiplier must exceed 1");
    if (spec.burstFraction <= 0.0 || spec.burstFraction >= 1.0)
        fatal("generateTrace: burstFraction must be in (0, 1)");
}

/** Draw the request's app i.i.d. with even shares. */
serve::App
drawApp(const WorkloadSpec &spec, Rng &rng)
{
    size_t i = static_cast<size_t>(rng.uniformInt(
        0, static_cast<int64_t>(spec.apps.size()) - 1));
    return spec.apps[i];
}

void
generatePoisson(const WorkloadSpec &spec, Rng &arrivals, Rng &apps,
                ClusterTrace &out)
{
    double t = arrivals.exponential(spec.meanRate);
    while (t < spec.durationSeconds) {
        out.push_back({t, drawApp(spec, apps)});
        if (spec.maxRequests && out.size() >= spec.maxRequests)
            return;
        t += arrivals.exponential(spec.meanRate);
    }
}

/** Nonhomogeneous Poisson by thinning at the peak rate. */
void
generateDiurnal(const WorkloadSpec &spec, Rng &arrivals, Rng &apps,
                ClusterTrace &out)
{
    double peak = spec.meanRate * (1.0 + spec.diurnalAmplitude);
    double t = 0.0;
    while (true) {
        t += arrivals.exponential(peak);
        if (t >= spec.durationSeconds)
            return;
        if (arrivals.uniform() * peak > offeredRateAt(spec, t))
            continue;
        out.push_back({t, drawApp(spec, apps)});
        if (spec.maxRequests && out.size() >= spec.maxRequests)
            return;
    }
}

void
generateMmpp(const WorkloadSpec &spec, Rng &arrivals, Rng &apps,
             ClusterTrace &out)
{
    // Pick the base rate so the long-run mean equals meanRate:
    // mean = (1 - f) * base + f * base * multiplier.
    double base = spec.meanRate /
                  (1.0 - spec.burstFraction +
                   spec.burstFraction * spec.burstMultiplier);
    double dwell_burst = spec.burstCycleSeconds * spec.burstFraction;
    double dwell_base =
        spec.burstCycleSeconds * (1.0 - spec.burstFraction);

    bool bursting = false;
    double t = 0.0;
    double state_end = arrivals.exponential(1.0 / dwell_base);
    while (t < spec.durationSeconds) {
        double rate = bursting ? base * spec.burstMultiplier : base;
        double next = t + arrivals.exponential(rate);
        if (next >= state_end) {
            // No arrival before the state flips; restart the
            // memoryless draw from the transition instant.
            t = state_end;
            bursting = !bursting;
            state_end = t + arrivals.exponential(
                1.0 / (bursting ? dwell_burst : dwell_base));
            continue;
        }
        t = next;
        if (t >= spec.durationSeconds)
            return;
        out.push_back({t, drawApp(spec, apps)});
        if (spec.maxRequests && out.size() >= spec.maxRequests)
            return;
    }
}

} // namespace

ClusterTrace
generateTrace(const WorkloadSpec &spec)
{
    checkSpec(spec);
    // Independent streams so changing the app mix never perturbs
    // the arrival instants (and vice versa).
    Rng root(spec.seed);
    Rng arrivals = root.split(1);
    Rng apps = root.split(2);

    ClusterTrace out;
    out.reserve(static_cast<size_t>(
        std::min<double>(spec.meanRate * spec.durationSeconds * 1.1,
                         1e8)));
    switch (spec.process) {
      case ArrivalProcess::Poisson:
        generatePoisson(spec, arrivals, apps, out);
        break;
      case ArrivalProcess::Diurnal:
        generateDiurnal(spec, arrivals, apps, out);
        break;
      case ArrivalProcess::Mmpp:
        generateMmpp(spec, arrivals, apps, out);
        break;
    }
    return out;
}

} // namespace cluster
} // namespace djinn
