/**
 * @file
 * Pluggable front-end routing and admission policies for the
 * cluster simulator: round-robin (queue-blind), join-shortest-
 * queue, power-of-two-choices, and deadline-aware variants that
 * shed a request at the front end when no candidate node can meet
 * its deadline (reusing the PR 5 semantics: an early shed is an
 * explicit non-execution, so it is the safe place to refuse work).
 */

#ifndef DJINN_CLUSTER_POLICY_HH
#define DJINN_CLUSTER_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace djinn {
namespace cluster {

/** The routing policies the simulator compares. */
enum class RoutePolicy {
    /** Queue-blind round-robin (the paper's implicit front end). */
    RoundRobin,

    /** Join the node with the fewest queued queries. */
    JoinShortestQueue,

    /** Sample two distinct nodes, join the shorter queue. */
    PowerOfTwo,

    /** JSQ by estimated wait; shed when the deadline is
     * infeasible on every node. */
    DeadlineJsq,

    /** Power-of-two by estimated wait; shed when the deadline is
     * infeasible on both sampled nodes. */
    DeadlinePo2,
};

/** Short policy name ("rr", "jsq", "po2", "jsq-d", "po2-d"). */
const char *routePolicyName(RoutePolicy policy);

/** Parse a policy name; fatal() on unknown. */
RoutePolicy routePolicyFromName(const std::string &name);

/** All policies in comparison order. */
const std::vector<RoutePolicy> &allRoutePolicies();

/** What a router sees of one node when placing a request. */
struct NodeView {
    /** Queries waiting in the node's batch queues. */
    int64_t queuedQueries = 0;

    /** Queries currently being executed. */
    int64_t inService = 0;

    /** Admission cap on queuedQueries. */
    int64_t queueLimit = 0;

    /**
     * Estimated seconds until a newly enqueued query completes:
     * (queued + in-service + 1) x the node's smoothed per-query
     * service time, over its parallel executors.
     */
    double estimatedLatency = 0.0;

    /** True when the node would admit one more query. */
    bool
    admits() const
    {
        return queuedQueries < queueLimit;
    }
};

/** Router verdicts that are not node indices. */
constexpr int RouteShedOverload = -1;  ///< every candidate full
constexpr int RouteShedDeadline = -2;  ///< deadline infeasible

/**
 * A routing policy. Stateful (round-robin cursors); one instance
 * per simulation. Implementations must be deterministic given the
 * Rng stream.
 */
class Router
{
  public:
    virtual ~Router() = default;

    /**
     * Pick a node for a request.
     *
     * @param views one entry per node, in node order.
     * @param slack seconds until the request's deadline
     *        (infinity when it has none).
     * @param rng the simulation's routing stream.
     * @return a node index, or RouteShedOverload /
     *         RouteShedDeadline.
     */
    virtual int route(const std::vector<NodeView> &views,
                      double slack, Rng &rng) = 0;
};

/** Construct the router implementing @p policy. */
std::unique_ptr<Router> makeRouter(RoutePolicy policy);

} // namespace cluster
} // namespace djinn

#endif // DJINN_CLUSTER_POLICY_HH
