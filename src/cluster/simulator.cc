#include "cluster/simulator.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>

#include "common/logging.hh"
#include "common/status.hh"
#include "gpu/gpu_model.hh"
#include "perf/layer_cost.hh"
#include "serve/simulation.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace djinn {
namespace cluster {

namespace {

/**
 * FNV-1a over the simulation's event stream. Every observable
 * transition (arrival, route verdict, completion, shed, retry)
 * feeds the hash, so two runs agree on the hash iff they agree on
 * the entire event sequence — the determinism guard's oracle.
 */
struct TraceHasher {
    uint64_t hash = 1469598103934665603ULL;

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash ^= (v >> (i * 8)) & 0xff;
            hash *= 1099511628211ULL;
        }
    }

    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }
};

// Event tags fed to the hasher ahead of each record.
constexpr uint64_t TagArrival = 1;
constexpr uint64_t TagRoute = 2;
constexpr uint64_t TagComplete = 3;
constexpr uint64_t TagShedOverload = 4;
constexpr uint64_t TagShedDeadline = 5;
constexpr uint64_t TagRetry = 6;

/** Quantiles of a snapshot, in the shape the results carry. */
LatencySummary
summarize(const telemetry::HistogramSnapshot &snap)
{
    LatencySummary out;
    out.mean = snap.mean();
    out.p50 = snap.quantile(0.50);
    out.p95 = snap.quantile(0.95);
    out.p99 = snap.quantile(0.99);
    out.p999 = snap.quantile(0.999);
    return out;
}

double
calibratedBatchSeconds(serve::App app, int64_t queries,
                       const gpu::LinkSpec &link)
{
    // The link enters the key by its timing-relevant parameters,
    // not its name, so equivalent links share cache entries.
    using Key = std::tuple<int, int64_t, double, double>;
    static std::mutex mutex;
    static std::map<Key, double> cache;

    Key key{static_cast<int>(app), queries,
            link.effectiveBandwidth(), link.perTransferLatency};
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }

    // The single-server defaults: K40-class GPU, 2us + 0.1ns/byte
    // host preparation.
    serve::SimConfig defaults;
    const serve::AppSpec &spec = serve::appSpec(app);
    const nn::Network &net = serve::sharedNetwork(spec.model);
    perf::NetCost cost =
        perf::analyzeNetwork(net, queries * spec.samplesPerQuery);
    gpu::ForwardProfile profile =
        gpu::profileForward(cost, defaults.gpuSpec);

    double q = static_cast<double>(queries);
    double host_prep =
        q * (defaults.hostPrepFixed +
             spec.inputBytes * defaults.hostPrepPerByte);
    double transfers = link.transferTime(q * spec.inputBytes) +
                       link.transferTime(q * spec.outputBytes);
    double total = host_prep + transfers + profile.totalTime;

    std::lock_guard<std::mutex> lock(mutex);
    cache.emplace(key, total);
    return total;
}

/** Per-application accounting; owns a non-movable histogram, so
 * instances live in a std::map (stable node addresses). */
struct PerApp {
    explicit PerApp(const telemetry::HistogramOptions &options)
        : latency(options)
    {}

    uint64_t offered = 0;
    uint64_t completed = 0;
    telemetry::LogHistogram latency;
};

void
checkConfig(const ClusterConfig &config, const ClusterTrace &trace)
{
    if (config.nodeCount <= 0)
        fatal("runClusterSim: nodeCount must be positive");
    if (!config.speedFactors.empty() &&
        static_cast<int>(config.speedFactors.size()) !=
            config.nodeCount) {
        fatal("runClusterSim: speedFactors must be empty or have "
              "nodeCount entries");
    }
    if (config.retry.maxAttempts < 1)
        fatal("runClusterSim: retry.maxAttempts must be >= 1");
    for (size_t i = 1; i < trace.size(); ++i) {
        if (trace[i].arrival < trace[i - 1].arrival)
            fatal("runClusterSim: trace arrivals must be sorted");
    }
}

} // namespace

ServiceModel
calibratedServiceModel()
{
    return calibratedServiceModel(serve::SimConfig().hostLink);
}

ServiceModel
calibratedServiceModel(const gpu::LinkSpec &hostLink)
{
    return [hostLink](serve::App app, int64_t queries) {
        return calibratedBatchSeconds(app, queries, hostLink);
    };
}

ClusterResult
runClusterSim(const ClusterConfig &config, const ClusterTrace &trace)
{
    checkConfig(config, trace);

    sim::EventQueue eq;
    ServiceModel service = config.serviceModel
                               ? config.serviceModel
                               : calibratedServiceModel();

    ClusterResult result;
    result.offered = trace.size();
    result.traceDuration =
        trace.empty() ? 0.0 : trace.back().arrival;

    TraceHasher hasher;
    // The latency histogram carries per-bucket exemplars resolving
    // into the flight recorder, exactly like the live server's
    // djinn_request_seconds.
    telemetry::HistogramOptions latency_options =
        sim::latencyHistogramOptions();
    latency_options.exemplars = true;
    telemetry::LogHistogram latency(latency_options);
    telemetry::FlightRecorder recorder(config.flightCapacity,
                                       config.flightReservoir);
    std::map<serve::App, PerApp> per_app;
    std::vector<serve::App> app_order;

    auto appStats = [&](serve::App app) -> PerApp & {
        auto [it, inserted] =
            per_app.try_emplace(app, sim::latencyHistogramOptions());
        if (inserted)
            app_order.push_back(app);
        return it->second;
    };

    // Seed a flight record with what the front end knows; node-side
    // fields land at completion. trace_id is the 1-based trace
    // index (0 means "untraced" in the record schema).
    auto flightBase = [&](const ClusterNode::Request &request) {
        telemetry::FlightRecord flight;
        flight.traceId = request.id + 1;
        flight.timestampUs =
            static_cast<int64_t>(std::llround(eq.now() * 1e6));
        flight.setModel(serve::appName(request.app));
        flight.totalSeconds = eq.now() - request.firstArrival;
        flight.rows = 1;
        flight.retries = request.attempt;
        flight.admitQueueDepth =
            static_cast<int32_t>(request.admitDepth);
        return flight;
    };

    // Completion / deadline-shed plumbing shared by all nodes.
    uint64_t batch_queries_total = 0;
    auto onComplete = [&](const ClusterNode::Request &request,
                          const ClusterNode::Served &served) {
        double sojourn = eq.now() - request.firstArrival;
        ++result.completed;
        telemetry::FlightRecord flight = flightBase(request);
        flight.queueWaitSeconds =
            served.dispatchTime - request.admitTime;
        flight.forwardSeconds = served.serviceSeconds;
        flight.retryWaitSeconds =
            request.admitTime - request.firstArrival;
        flight.batchQueries =
            static_cast<int32_t>(served.batchQueries);
        flight.batchRows = static_cast<int32_t>(served.batchQueries);
        flight.batchPosition =
            static_cast<int32_t>(served.batchPosition);
        uint64_t record_ref = recorder.record(flight);
        latency.record(sojourn, flight.traceId, record_ref);
        PerApp &stats = appStats(request.app);
        ++stats.completed;
        stats.latency.record(sojourn);
        hasher.u64(TagComplete);
        hasher.u64(request.id);
        hasher.f64(eq.now());
    };
    auto onDeadlineShed = [&](const ClusterNode::Request &request) {
        ++result.shedDeadline;
        ++result.lost;
        telemetry::FlightRecord flight = flightBase(request);
        flight.outcome = telemetry::FlightOutcome::ShedDeadline;
        flight.queueWaitSeconds = eq.now() - request.admitTime;
        flight.retryWaitSeconds =
            request.admitTime - request.firstArrival;
        recorder.record(flight);
        hasher.u64(TagShedDeadline);
        hasher.u64(request.id);
        hasher.f64(eq.now());
    };

    std::vector<std::unique_ptr<ClusterNode>> nodes;
    nodes.reserve(config.nodeCount);
    for (int i = 0; i < config.nodeCount; ++i) {
        NodeSpec spec = config.node;
        if (!config.speedFactors.empty())
            spec.speedFactor = config.speedFactors[i];
        nodes.push_back(std::make_unique<ClusterNode>(
            eq, i, spec, service, onComplete, onDeadlineShed));
    }

    std::unique_ptr<Router> router = makeRouter(config.policy);
    Rng root(config.seed);
    Rng route_rng = root.split(1);
    Rng retry_rng = root.split(2);

    // Submit one request attempt: route it, enqueue it, and retry
    // Overloaded sheds on the core/retry schedule. `attempt` is 0
    // for the first try.
    std::function<void(const ClusterNode::Request &, int)> submit =
        [&](const ClusterNode::Request &request, int attempt) {
            double slack =
                request.deadline >= 1e300
                    ? std::numeric_limits<double>::infinity()
                    : request.deadline - eq.now();

            std::vector<NodeView> views;
            views.reserve(nodes.size());
            for (const auto &node : nodes)
                views.push_back(node->view());

            int pick = router->route(views, slack, route_rng);
            hasher.u64(TagRoute);
            hasher.u64(request.id);
            hasher.u64(static_cast<uint64_t>(
                static_cast<int64_t>(pick)));

            bool admitted = false;
            if (pick >= 0)
                admitted = nodes[pick]->enqueue(request);

            if (pick == RouteShedDeadline) {
                // A deadline shed is an explicit non-execution but
                // retrying it is pointless; never retried
                // (core::retryableFailure on DeadlineExceeded).
                ++result.shedDeadline;
                ++result.lost;
                telemetry::FlightRecord flight =
                    flightBase(request);
                flight.outcome =
                    telemetry::FlightOutcome::ShedDeadline;
                flight.retryWaitSeconds =
                    eq.now() - request.firstArrival;
                recorder.record(flight);
                hasher.u64(TagShedDeadline);
                hasher.u64(request.id);
                hasher.f64(eq.now());
                return;
            }
            if (admitted)
                return;

            // Overloaded: the server explicitly did not execute
            // the request, so the retry classifier allows a
            // backed-off resubmission.
            ++result.shedOverload;
            hasher.u64(TagShedOverload);
            hasher.u64(request.id);
            hasher.f64(eq.now());

            bool retryable =
                config.retryShedRequests &&
                core::retryableFailure(
                    Status::overloaded("queue full"),
                    core::FailureStage::Receive) &&
                attempt + 1 < config.retry.maxAttempts;
            if (!retryable) {
                ++result.lost;
                telemetry::FlightRecord flight =
                    flightBase(request);
                flight.outcome =
                    telemetry::FlightOutcome::ShedQueueFull;
                flight.retryWaitSeconds =
                    eq.now() - request.firstArrival;
                recorder.record(flight);
                return;
            }

            double backoff = core::retryBackoffSeconds(
                config.retry, attempt, retry_rng);
            ++result.retries;
            hasher.u64(TagRetry);
            hasher.u64(request.id);
            hasher.f64(backoff);
            ClusterNode::Request again = request;
            again.attempt = attempt + 1;
            eq.scheduleAfter(backoff, [&submit, again, attempt]() {
                submit(again, attempt + 1);
            });
        };

    // Lazy arrival scheduling: only the next trace arrival is ever
    // live in the event heap, so million-request traces cost O(1)
    // heap space for the generator.
    size_t cursor = 0;
    std::function<void()> arrive = [&]() {
        const TraceRequest &tr = trace[cursor];
        ClusterNode::Request request;
        request.id = static_cast<uint64_t>(cursor);
        request.app = tr.app;
        request.firstArrival = tr.arrival;
        if (config.deadlineSeconds > 0.0)
            request.deadline = tr.arrival + config.deadlineSeconds;

        hasher.u64(TagArrival);
        hasher.u64(request.id);
        hasher.f64(tr.arrival);
        ++appStats(request.app).offered;

        ++cursor;
        if (cursor < trace.size()) {
            eq.scheduleAt(trace[cursor].arrival,
                          [&arrive]() { arrive(); });
        }
        submit(request, 0);
    };
    if (!trace.empty())
        eq.scheduleAt(trace.front().arrival,
                      [&arrive]() { arrive(); });

    // Fixed-interval sampling while arrivals are still flowing.
    std::vector<TimeSample> series;
    double sample_depth_sum = 0.0;
    uint64_t sample_count = 0;
    std::function<void()> sample = [&]() {
        TimeSample s;
        s.t = eq.now();
        for (const auto &node : nodes) {
            s.queuedQueries += node->queuedQueries();
            s.inService += node->inService();
        }
        s.completed = result.completed;
        s.shed = result.shedOverload + result.shedDeadline;
        series.push_back(s);
        sample_depth_sum += static_cast<double>(s.queuedQueries);
        ++sample_count;
        if (eq.now() < result.traceDuration) {
            eq.scheduleAfter(config.sampleInterval,
                             [&sample]() { sample(); });
        }
    };
    if (config.sampleInterval > 0.0 && !trace.empty())
        eq.scheduleAfter(config.sampleInterval,
                         [&sample]() { sample(); });

    // Run to completion: all arrivals, retries, timers, and batch
    // completions drain before the queue empties.
    eq.run();

    result.duration = eq.now();
    result.eventsFired = eq.firedCount();
    result.offeredQps =
        result.traceDuration > 0.0
            ? static_cast<double>(result.offered) /
                  result.traceDuration
            : 0.0;
    result.throughputQps =
        result.duration > 0.0
            ? static_cast<double>(result.completed) / result.duration
            : 0.0;

    double busy = 0.0;
    int total_gpus = 0;
    for (const auto &node : nodes) {
        busy += node->busySeconds();
        total_gpus += config.node.gpus;
        result.batches += node->batchesDispatched();
        batch_queries_total += node->queriesDispatched();
        result.maxNodeQueueDepth = std::max(
            result.maxNodeQueueDepth, node->maxQueuedQueries());
    }
    result.occupancy =
        result.duration > 0.0
            ? busy / (result.duration *
                      static_cast<double>(total_gpus))
            : 0.0;
    result.meanBatchQueries =
        result.batches > 0
            ? static_cast<double>(batch_queries_total) /
                  static_cast<double>(result.batches)
            : 0.0;
    result.meanQueueDepth =
        sample_count > 0
            ? sample_depth_sum / static_cast<double>(sample_count)
            : 0.0;

    result.latencyHistogram = latency.snapshot();
    result.latency = summarize(result.latencyHistogram);
    result.flightRecords = recorder.snapshot();
    result.series = std::move(series);

    for (serve::App app : app_order) {
        const PerApp &stats = per_app.at(app);
        AppClusterStats out;
        out.app = app;
        out.offered = stats.offered;
        out.completed = stats.completed;
        out.throughputQps =
            result.duration > 0.0
                ? static_cast<double>(stats.completed) /
                      result.duration
                : 0.0;
        out.latency = summarize(stats.latency.snapshot());
        result.apps.push_back(out);
    }

    // Fold the summary counters into the hash so a run that somehow
    // diverged only in accounting still fails the guard.
    hasher.u64(result.completed);
    hasher.u64(result.shedOverload);
    hasher.u64(result.shedDeadline);
    hasher.u64(result.lost);
    hasher.u64(result.retries);
    hasher.f64(result.duration);
    result.traceHash = hasher.hash;
    return result;
}

} // namespace cluster
} // namespace djinn
