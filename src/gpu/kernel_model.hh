/**
 * @file
 * Per-kernel GPU timing: a roofline model (compute vs. memory)
 * modulated by occupancy and GEMM tile utilization, plus launch
 * overhead. This is the unit the paper profiles with nvprof
 * (Section 4, Figure 6).
 */

#ifndef DJINN_GPU_KERNEL_MODEL_HH
#define DJINN_GPU_KERNEL_MODEL_HH

#include "gpu/gpu_spec.hh"
#include "perf/layer_cost.hh"

namespace djinn {
namespace gpu {

/** Timing and counter results for one kernel on one GPU. */
struct KernelTiming {
    /** Time limited by arithmetic throughput, seconds. */
    double computeTime = 0.0;

    /** Time limited by memory traffic, seconds. */
    double memoryTime = 0.0;

    /** Total launch overhead (all sequential launches), seconds. */
    double launchTime = 0.0;

    /** Wall time: max(compute, memory) + launch. */
    double totalTime = 0.0;

    /** Achieved occupancy: resident warps / peak resident warps. */
    double occupancy = 0.0;

    /** Achieved instruction throughput / peak (nvprof "IPC/peak"). */
    double ipcRatio = 0.0;

    /** Achieved DRAM bandwidth / peak bandwidth. */
    double memUtilization = 0.0;
};

/**
 * Time one kernel on the device described by @p spec.
 *
 * The model:
 *  - occupancy = min(1, resident warps / max warps), with resident
 *    warps limited by the launch's block count;
 *  - achieved FLOP/s = peak * kindEff * tileUtil
 *      * min(1, occupancy / occupancySaturation);
 *  - memory time = weight and activation traffic at the kind's
 *    achievable bandwidth;
 *  - wall time = max(compute, memory) + launches * launchOverhead.
 */
KernelTiming timeKernel(const perf::KernelCost &kernel,
                        const GpuSpec &spec);

/**
 * Time one layer's forward pass on the CPU described by @p spec:
 * roofline of GEMM throughput vs. memory streaming plus a small
 * per-layer overhead.
 *
 * @return seconds.
 */
double cpuLayerTime(const perf::KernelCost &kernel,
                    const CpuSpec &spec);

} // namespace gpu
} // namespace djinn

#endif // DJINN_GPU_KERNEL_MODEL_HH
