#include "gpu/link.hh"

#include "common/logging.hh"

namespace djinn {
namespace gpu {

LinkSpec
pcieV3()
{
    return LinkSpec{"PCIe v3 x16", 15.75e9, 0.80, 8e-6};
}

LinkSpec
pcieV4()
{
    return LinkSpec{"PCIe v4 x16", 31.75e9, 0.80, 8e-6};
}

LinkSpec
qpiAggregate()
{
    // 12 point-to-point links x 25.6 GB/s (Section 6.4).
    return LinkSpec{"QPI x12", 307.2e9, 0.85, 2e-6};
}

LinkSpec
ethernet10G()
{
    return ethernet10G(1);
}

LinkSpec
ethernet10G(int count)
{
    if (count <= 0)
        fatal("ethernet10G: need at least one NIC");
    return LinkSpec{strprintf("%dx10GbE", count), count * 1.25e9,
                    0.80, 20e-6};
}

LinkSpec
ethernet40G(int count)
{
    if (count <= 0)
        fatal("ethernet40G: need at least one NIC");
    return LinkSpec{strprintf("%dx40GbE", count), count * 5.0e9,
                    0.80, 15e-6};
}

LinkSpec
ethernet400G(int count)
{
    if (count <= 0)
        fatal("ethernet400G: need at least one NIC");
    return LinkSpec{strprintf("%dx400GbE", count), count * 50.0e9,
                    0.80, 10e-6};
}

LinkSpec
unlimitedLink()
{
    return LinkSpec{"unlimited", 1e18, 1.0, 0.0};
}

} // namespace gpu
} // namespace djinn
