#include "gpu/kernel_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace djinn {
namespace gpu {

namespace {

/** Arithmetic efficiency multiplier for a layer kind. */
double
computeEfficiency(nn::LayerKind kind, const GpuSpec &spec)
{
    switch (kind) {
      case nn::LayerKind::InnerProduct:
      case nn::LayerKind::Convolution:
        return spec.gemmEfficiency;
      case nn::LayerKind::LocallyConnected:
        return spec.lcComputeEfficiency;
      default:
        // Elementwise kernels are trivially memory bound; give them
        // full arithmetic efficiency so the roofline picks memory.
        return 1.0;
    }
}

/** Achievable bandwidth for a kernel's weight traffic. */
double
weightBandwidth(nn::LayerKind kind, const GpuSpec &spec)
{
    if (kind == nn::LayerKind::LocallyConnected)
        return spec.memBandwidth * spec.lcMemEfficiency;
    return spec.memBandwidth * spec.memEfficiency;
}

} // namespace

KernelTiming
timeKernel(const perf::KernelCost &kernel, const GpuSpec &spec)
{
    KernelTiming t;

    int64_t warps_per_block =
        (kernel.threadsPerBlock + spec.warpSize - 1) / spec.warpSize;
    double resident_warps = static_cast<double>(
        std::min(kernel.blocks * warps_per_block,
                 spec.maxActiveWarps()));
    t.occupancy = resident_warps /
                  static_cast<double>(spec.maxActiveWarps());

    double latency_hiding =
        std::min(1.0, t.occupancy / spec.occupancySaturation);
    double achieved_flops = spec.peakFlops *
                            computeEfficiency(kernel.kind, spec) *
                            kernel.tileUtilization * latency_hiding;
    if (kernel.flops > 0.0)
        t.computeTime = kernel.flops / achieved_flops;

    double act_bw = spec.memBandwidth * spec.memEfficiency;
    double w_bw = weightBandwidth(kernel.kind, spec);
    t.memoryTime = kernel.weightBytes / w_bw +
                   kernel.activationBytes / act_bw;

    t.launchTime = static_cast<double>(kernel.launches) *
                   spec.launchOverhead;
    t.totalTime = std::max(t.computeTime, t.memoryTime) +
                  t.launchTime;

    if (t.totalTime > 0.0) {
        t.ipcRatio = std::min(
            1.0, kernel.flops / t.totalTime / spec.peakFlops);
        t.memUtilization = std::min(
            1.0, (kernel.weightBytes + kernel.activationBytes) /
                 t.totalTime / spec.memBandwidth);
    }
    return t;
}

double
cpuLayerTime(const perf::KernelCost &kernel, const CpuSpec &spec)
{
    double eff;
    switch (kernel.kind) {
      case nn::LayerKind::InnerProduct:
      case nn::LayerKind::Convolution:
        // ATLAS loses efficiency on small matrices the same way the
        // GPU loses tile utilization; reuse that signal, softened.
        eff = spec.gemmEfficiency *
              (0.5 + 0.5 * kernel.tileUtilization);
        break;
      case nn::LayerKind::LocallyConnected:
        eff = spec.lcEfficiency;
        break;
      default:
        eff = 1.0;
        break;
    }
    double compute = kernel.flops / (spec.peakFlops() * eff);
    double memory = (kernel.weightBytes + kernel.activationBytes) /
                    spec.memBandwidth;
    return std::max(compute, memory) + spec.layerOverhead;
}

} // namespace gpu
} // namespace djinn
