#include "gpu/gpu_model.hh"

#include <algorithm>

namespace djinn {
namespace gpu {

ForwardProfile
profileForward(const perf::NetCost &cost, const GpuSpec &spec)
{
    ForwardProfile p;
    p.network = cost.network;
    p.batch = cost.batch;

    double weight_bytes = 0.0;
    double peak_activation = 0.0;

    for (const auto &kernel : cost.kernels) {
        KernelTiming t = timeKernel(kernel, spec);
        p.totalTime += t.totalTime;
        p.occupancy += t.occupancy * t.totalTime;
        p.ipcRatio += t.ipcRatio * t.totalTime;
        // Activation traffic approximates L1/shared pressure; total
        // traffic approximates L2/DRAM pressure.
        double l1 = t.totalTime > 0.0
            ? std::min(1.0, kernel.activationBytes / t.totalTime /
                       spec.memBandwidth)
            : 0.0;
        p.l1Utilization += l1 * t.totalTime;
        p.l2Utilization += t.memUtilization * t.totalTime;
        p.kernels.push_back(t);

        // Footprint: weights resident once; activations double
        // buffered at the widest layer.
        weight_bytes += kernel.paramBytes;
        peak_activation = std::max(peak_activation,
                                   kernel.activationBytes);
    }

    if (p.totalTime > 0.0) {
        p.occupancy /= p.totalTime;
        p.ipcRatio /= p.totalTime;
        p.l1Utilization /= p.totalTime;
        p.l2Utilization /= p.totalTime;
    }
    p.memoryFootprint = weight_bytes + peak_activation;
    return p;
}

double
cpuForwardTime(const perf::NetCost &cost, const CpuSpec &spec)
{
    double total = 0.0;
    for (const auto &kernel : cost.kernels)
        total += cpuLayerTime(kernel, spec);
    return total;
}

} // namespace gpu
} // namespace djinn
