/**
 * @file
 * Hardware descriptions for the analytic timing models that replace
 * the paper's measured platform (Table 2): the NVIDIA Tesla K40
 * accelerator and one Intel Xeon E5-2620 v2 core.
 *
 * Every constant here is a model *parameter*: the defaults are
 * calibrated so the paper's reported shapes hold (see DESIGN.md and
 * tests/gpu/calibration_test.cc), and benches may vary them.
 */

#ifndef DJINN_GPU_GPU_SPEC_HH
#define DJINN_GPU_GPU_SPEC_HH

#include <cstdint>
#include <string>

namespace djinn {
namespace gpu {

/**
 * An analytic GPU description. Defaults model the Tesla K40:
 * 15 SMX, 2880 CUDA cores at boost, 4.29 TFLOP/s single precision,
 * 288 GB/s GDDR5, 12 GB memory.
 */
struct GpuSpec {
    /** Human-readable device name. */
    std::string name = "Tesla K40";

    /** Streaming multiprocessor count. */
    int64_t smCount = 15;

    /** Maximum resident warps per SM. */
    int64_t maxWarpsPerSm = 64;

    /** Threads per warp. */
    int64_t warpSize = 32;

    /** Peak single-precision FLOP/s. */
    double peakFlops = 4.29e12;

    /** Peak memory bandwidth, bytes/s. */
    double memBandwidth = 288e9;

    /** Device memory capacity in bytes. */
    double memoryBytes = 12e9;

    /** Board power in watts (K40: 235 W TDP). */
    double powerWatts = 235.0;

    // Model calibration -------------------------------------------

    /** Fraction of peak memory bandwidth streaming kernels achieve. */
    double memEfficiency = 0.80;

    /**
     * Fraction of peak bandwidth achieved by locally connected
     * weight streaming (scattered per-position filters).
     */
    double lcMemEfficiency = 0.40;

    /** Fraction of peak FLOP/s a well-shaped GEMM achieves. */
    double gemmEfficiency = 0.45;

    /**
     * Fraction of peak FLOP/s the locally connected kernel achieves
     * (many tiny dot products; the paper's FACE bottleneck).
     */
    double lcComputeEfficiency = 0.08;

    /**
     * Occupancy at which latency hiding saturates; achieved
     * instruction throughput scales as min(1, occupancy / this).
     */
    double occupancySaturation = 0.90;

    /** Fixed cost per kernel launch (driver + dispatch), seconds. */
    double launchOverhead = 20e-6;

    /**
     * Cost of a context switch between CUDA processes time-sharing
     * the GPU without MPS, seconds.
     */
    double contextSwitchOverhead = 120e-6;

    /** Maximum concurrent MPS client processes (K40 MPS limit). */
    int64_t mpsMaxProcesses = 16;

    /** Maximum resident warps across the device. */
    int64_t
    maxActiveWarps() const
    {
        return smCount * maxWarpsPerSm;
    }
};

/**
 * An analytic single-core CPU description. Defaults model one core
 * of the Intel Xeon E5-2620 v2 (Table 2): 2.1 GHz, AVX (8 SP FLOPs
 * per cycle), a fair share of the socket's DDR3-1866 bandwidth.
 */
struct CpuSpec {
    /** Human-readable name. */
    std::string name = "Xeon E5-2620 v2 core";

    /** Core clock in Hz. */
    double frequency = 2.1e9;

    /** Single-precision FLOPs per cycle (AVX mul+add). */
    double flopsPerCycle = 8.0;

    /** Achievable memory bandwidth for one core, bytes/s. */
    double memBandwidth = 12.8e9;

    /** Fraction of peak an ATLAS-class GEMM achieves. */
    double gemmEfficiency = 0.70;

    /** Fraction of peak the locally connected loop achieves. */
    double lcEfficiency = 0.25;

    /** Per-layer dispatch overhead, seconds. */
    double layerOverhead = 2e-6;

    /** Socket-level TDP attributed to this workload path, watts. */
    double powerWatts = 80.0;

    /** Peak FLOP/s. */
    double peakFlops() const { return frequency * flopsPerCycle; }
};

} // namespace gpu
} // namespace djinn

#endif // DJINN_GPU_GPU_SPEC_HH
