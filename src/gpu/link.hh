/**
 * @file
 * Interconnect and network link models: PCIe v3/v4, QPI, and
 * 10/40/400 Gb ethernet (paper Sections 6.1 and 6.4, Table 6).
 * A link carries query payloads between host memory and GPUs, or
 * between CPU servers and GPU servers in the disaggregated design.
 */

#ifndef DJINN_GPU_LINK_HH
#define DJINN_GPU_LINK_HH

#include <string>

namespace djinn {
namespace gpu {

/** A point-to-point data link with finite bandwidth. */
struct LinkSpec {
    /** Human-readable name. */
    std::string name = "PCIe v3 x16";

    /** Raw peak bandwidth, bytes/s. */
    double peakBandwidth = 15.75e9;

    /** Fraction of peak achievable after protocol overhead. */
    double efficiency = 0.80;

    /** Fixed per-transfer latency (DMA setup / NIC), seconds. */
    double perTransferLatency = 8e-6;

    /** Achievable bandwidth, bytes/s. */
    double
    effectiveBandwidth() const
    {
        return peakBandwidth * efficiency;
    }

    /** Time to move @p bytes over an otherwise idle link. */
    double
    transferTime(double bytes) const
    {
        return perTransferLatency + bytes / effectiveBandwidth();
    }
};

/** PCIe v3 x16: 15.75 GB/s peak. */
LinkSpec pcieV3();

/** PCIe v4 x16: 31.75 GB/s peak (Section 6.4). */
LinkSpec pcieV4();

/**
 * QPI-attached GPUs: 12 point-to-point links at 25.6 GB/s each,
 * 307.2 GB/s aggregate (Section 6.4).
 */
LinkSpec qpiAggregate();

/** One 10GbE NIC: 1.25 GB/s peak, 80% protocol efficiency. */
LinkSpec ethernet10G();

/** @p count teamed 10GbE NICs. */
LinkSpec ethernet10G(int count);

/** @p count teamed 40GbE NICs. */
LinkSpec ethernet40G(int count);

/** @p count teamed 400GbE NICs. */
LinkSpec ethernet400G(int count);

/**
 * An "infinite" link used for the paper's PCIe-bypass experiment
 * (inputs pinned in GPU memory, Figure 12).
 */
LinkSpec unlimitedLink();

} // namespace gpu
} // namespace djinn

#endif // DJINN_GPU_LINK_HH
