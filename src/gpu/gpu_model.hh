/**
 * @file
 * Whole-network GPU forward-pass profile: execution time plus the
 * time-weighted hardware counters the paper reports in Figure 6
 * (occupancy, IPC/peak, L1/shared and L2 utilization).
 */

#ifndef DJINN_GPU_GPU_MODEL_HH
#define DJINN_GPU_GPU_MODEL_HH

#include <string>
#include <vector>

#include "gpu/kernel_model.hh"
#include "perf/layer_cost.hh"

namespace djinn {
namespace gpu {

/** Profile of one batched forward pass on a GPU. */
struct ForwardProfile {
    /** Network name. */
    std::string network;

    /** Batch size (input rows). */
    int64_t batch = 1;

    /** Total forward-pass time for the batch, seconds. */
    double totalTime = 0.0;

    /** Per-kernel timings in layer order. */
    std::vector<KernelTiming> kernels;

    /** Time-weighted average achieved occupancy. */
    double occupancy = 0.0;

    /** Time-weighted average IPC / peak IPC. */
    double ipcRatio = 0.0;

    /** Time-weighted L1/shared utilization (activation traffic). */
    double l1Utilization = 0.0;

    /** Time-weighted L2/DRAM utilization (total traffic). */
    double l2Utilization = 0.0;

    /** Device memory footprint: weights + peak activations, bytes. */
    double memoryFootprint = 0.0;

    /** Samples per second this profile sustains. */
    double
    samplesPerSecond() const
    {
        return totalTime > 0.0 ? batch / totalTime : 0.0;
    }
};

/**
 * Profile a network's forward pass on a GPU.
 *
 * @param cost output of perf::analyzeNetwork at the desired batch.
 * @param spec the device model.
 */
ForwardProfile profileForward(const perf::NetCost &cost,
                              const GpuSpec &spec);

/**
 * Profile a network's forward pass on one CPU core.
 *
 * @return total forward time in seconds for the batch.
 */
double cpuForwardTime(const perf::NetCost &cost, const CpuSpec &spec);

} // namespace gpu
} // namespace djinn

#endif // DJINN_GPU_GPU_MODEL_HH
