/**
 * @file
 * The seven end-to-end Tonic applications (paper Section 3.2). Each
 * application owns its pre-processing, issues a DjiNN inference
 * request through a client, and post-processes the returned
 * predictions. Per-phase wall-clock timings are recorded so the
 * DNN/non-DNN breakdown (paper Figure 4) can be measured on the
 * live system too.
 */

#ifndef DJINN_TONIC_APPS_HH
#define DJINN_TONIC_APPS_HH

#include <string>
#include <vector>

#include "common/status.hh"
#include "core/djinn_client.hh"
#include "core/model_registry.hh"
#include "tonic/image.hh"
#include "tonic/text.hh"

namespace djinn {
namespace tonic {

/** Wall-clock phase breakdown of one application query. */
struct PhaseTimes {
    double preprocess = 0.0;
    double service = 0.0;
    double postprocess = 0.0;

    double
    total() const
    {
        return preprocess + service + postprocess;
    }
};

/** Result of one end-to-end application query. */
struct AppOutput {
    /** Human-readable prediction. */
    std::string text;

    /** Predicted label indices (per input unit). */
    std::vector<int> labels;

    /** Phase timings for this query. */
    PhaseTimes times;
};

/**
 * Base class wiring an application to a DjiNN client. The client
 * must stay connected for the app's lifetime.
 */
class TonicApp
{
  public:
    /**
     * @param client a connected DjiNN client.
     * @param model the service model this app queries.
     */
    TonicApp(core::DjinnClient &client, std::string model);

    virtual ~TonicApp() = default;

    /** The service model name this application queries. */
    const std::string &model() const { return model_; }

  protected:
    /** Issue the DNN service request and time it. */
    Result<std::vector<float>> invoke(int64_t rows,
                                      const std::vector<float> &data,
                                      PhaseTimes &times);

    core::DjinnClient &client_;
    std::string model_;
};

/** Image classification over AlexNet (IMC). */
class ImcApp : public TonicApp
{
  public:
    explicit ImcApp(core::DjinnClient &client);

    /** Classify one image. */
    Result<AppOutput> classify(const Image &image);
};

/** Handwritten digit recognition over the MNIST CNN (DIG). */
class DigApp : public TonicApp
{
  public:
    explicit DigApp(core::DjinnClient &client);

    /** Recognize a batch of digit images (the paper sends 100). */
    Result<AppOutput> recognize(const std::vector<Image> &digits);
};

/** Facial recognition over DeepFace (FACE). */
class FaceApp : public TonicApp
{
  public:
    explicit FaceApp(core::DjinnClient &client);

    /** Identify the face in one image. */
    Result<AppOutput> identify(const Image &image);
};

/** Speech-to-text over the Kaldi acoustic model (ASR). */
class AsrApp : public TonicApp
{
  public:
    explicit AsrApp(core::DjinnClient &client);

    /**
     * Transcribe a mono 16 kHz waveform to a phone string via
     * filterbank features, the DNN service, and Viterbi decoding.
     */
    Result<AppOutput> transcribe(const std::vector<float> &samples);
};

/** Part-of-speech tagging over SENNA (POS). */
class PosApp : public TonicApp
{
  public:
    explicit PosApp(core::DjinnClient &client);

    /** Tag every token of a sentence. */
    Result<AppOutput> tag(const std::string &sentence);
};

/**
 * Word chunking over SENNA (CHK). Per the paper, CHK first makes an
 * internal POS service request, folds the POS tags into its
 * features, then issues its own DNN request.
 */
class ChkApp : public TonicApp
{
  public:
    explicit ChkApp(core::DjinnClient &client);

    /** Chunk a sentence into phrase segments. */
    Result<AppOutput> chunk(const std::string &sentence);

  private:
    PosApp pos_;
};

/** Named entity recognition over SENNA (NER). */
class NerApp : public TonicApp
{
  public:
    explicit NerApp(core::DjinnClient &client);

    /** Label every token with an entity category. */
    Result<AppOutput> recognize(const std::string &sentence);
};

/**
 * Register the full Tonic model set with a registry (the paper's
 * DjiNN initialization step).
 */
void registerTonicModels(core::ModelRegistry &registry,
                         uint64_t seed = 42);

} // namespace tonic
} // namespace djinn

#endif // DJINN_TONIC_APPS_HH
