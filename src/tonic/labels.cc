#include "tonic/labels.hh"

#include "common/logging.hh"

namespace djinn {
namespace tonic {

const std::vector<std::string> &
posTagNames()
{
    static const std::vector<std::string> tags = {
        "CC", "CD", "DT", "EX", "FW", "IN", "JJ", "JJR", "JJS",
        "LS", "MD", "NN", "NNS", "NNP", "NNPS", "PDT", "POS",
        "PRP", "PRP$", "RB", "RBR", "RBS", "RP", "SYM", "TO",
        "UH", "VB", "VBD", "VBG", "VBN", "VBP", "VBZ", "WDT",
        "WP", "WP$", "WRB", "#", "$", ".", ",", ":", "(", ")",
        "``", "''",
    };
    return tags;
}

const std::vector<std::string> &
chunkTagNames()
{
    static const std::vector<std::string> tags = {
        "O", "B-NP", "I-NP", "B-VP", "I-VP", "B-PP", "I-PP",
        "B-ADJP", "I-ADJP", "B-ADVP", "I-ADVP", "B-SBAR", "I-SBAR",
        "B-CONJP", "I-CONJP", "B-INTJ", "I-INTJ", "B-LST", "I-LST",
        "B-PRT", "I-PRT", "B-UCP", "I-UCP",
    };
    return tags;
}

const std::vector<std::string> &
nerTagNames()
{
    static const std::vector<std::string> tags = {
        "O", "B-PER", "I-PER", "B-LOC", "I-LOC", "B-ORG", "I-ORG",
        "B-MISC", "I-MISC",
    };
    return tags;
}

const std::vector<std::string> &
phoneNames()
{
    static const std::vector<std::string> phones = {
        "aa", "ae", "ah", "ao", "aw", "ay", "b", "ch", "d", "dh",
        "eh", "er", "ey", "f", "g", "hh", "ih", "iy", "jh", "k",
        "l", "m", "n", "ng", "ow", "oy", "p", "r", "s", "sh",
        "t", "th", "uh", "uw", "v", "w", "y", "z", "zh", "sil",
    };
    return phones;
}

std::string
imagenetClassName(int index)
{
    if (index < 0)
        fatal("imagenetClassName: negative class %d", index);
    return strprintf("synset_%04d", index);
}

std::string
celebrityName(int index)
{
    if (index < 0)
        fatal("celebrityName: negative identity %d", index);
    return strprintf("celebrity_%02d", index);
}

} // namespace tonic
} // namespace djinn
