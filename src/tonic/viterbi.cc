#include "tonic/viterbi.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace djinn {
namespace tonic {

std::vector<int>
viterbiDecode(const nn::Tensor &scores,
              const std::vector<float> &transitions)
{
    int64_t steps = scores.shape().n();
    int64_t states = scores.shape().sampleElems();
    if (steps <= 0 || states <= 0)
        fatal("viterbiDecode: empty score matrix");
    if (static_cast<int64_t>(transitions.size()) != states * states)
        fatal("viterbiDecode: transition matrix must be %lld x %lld",
              static_cast<long long>(states),
              static_cast<long long>(states));

    std::vector<float> best(static_cast<size_t>(states));
    std::vector<float> next(static_cast<size_t>(states));
    std::vector<int> backptr(static_cast<size_t>(steps * states));

    const float *row0 = scores.sample(0);
    for (int64_t s = 0; s < states; ++s)
        best[s] = row0[s];

    for (int64_t t = 1; t < steps; ++t) {
        const float *row = scores.sample(t);
        for (int64_t j = 0; j < states; ++j) {
            float top = -std::numeric_limits<float>::infinity();
            int arg = 0;
            for (int64_t i = 0; i < states; ++i) {
                float cand = best[i] + transitions[i * states + j];
                if (cand > top) {
                    top = cand;
                    arg = static_cast<int>(i);
                }
            }
            next[j] = top + row[j];
            backptr[t * states + j] = arg;
        }
        std::swap(best, next);
    }

    std::vector<int> path(static_cast<size_t>(steps));
    int64_t last = static_cast<int64_t>(
        std::max_element(best.begin(), best.end()) - best.begin());
    path[steps - 1] = static_cast<int>(last);
    for (int64_t t = steps - 1; t > 0; --t)
        path[t - 1] = backptr[t * states + path[t]];
    return path;
}

std::vector<float>
selfLoopTransitions(int64_t states, float self_bonus)
{
    std::vector<float> out(static_cast<size_t>(states * states),
                           0.0f);
    for (int64_t s = 0; s < states; ++s)
        out[s * states + s] = self_bonus;
    return out;
}

std::vector<int>
collapseRuns(const std::vector<int> &path)
{
    std::vector<int> out;
    for (int state : path) {
        if (out.empty() || out.back() != state)
            out.push_back(state);
    }
    return out;
}

} // namespace tonic
} // namespace djinn
