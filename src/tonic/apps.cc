#include "tonic/apps.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>

#include "common/logging.hh"
#include "tonic/audio.hh"
#include "tonic/labels.hh"
#include "tonic/viterbi.hh"

namespace djinn {
namespace tonic {

namespace {

double
nowSeconds()
{
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
        Clock::now().time_since_epoch()).count();
}

/** Argmax of one row of a flat (rows x dim) score matrix. */
int
rowArgmax(const std::vector<float> &data, int64_t row, int64_t dim)
{
    const float *base = data.data() + row * dim;
    return static_cast<int>(
        std::max_element(base, base + dim) - base);
}

/** Wrap a flat score matrix into a (rows, dim) tensor. */
nn::Tensor
toScoreTensor(const std::vector<float> &data, int64_t rows,
              int64_t dim)
{
    nn::Tensor t(nn::Shape(rows, dim));
    std::memcpy(t.data(), data.data(), data.size() * sizeof(float));
    return t;
}

} // namespace

TonicApp::TonicApp(core::DjinnClient &client, std::string model)
    : client_(client), model_(std::move(model))
{}

Result<std::vector<float>>
TonicApp::invoke(int64_t rows, const std::vector<float> &data,
                 PhaseTimes &times)
{
    double start = nowSeconds();
    auto result = client_.infer(model_, rows, data);
    times.service += nowSeconds() - start;
    return result;
}

// IMC ---------------------------------------------------------------

ImcApp::ImcApp(core::DjinnClient &client)
    : TonicApp(client, "alexnet")
{}

Result<AppOutput>
ImcApp::classify(const Image &image)
{
    AppOutput out;
    double start = nowSeconds();
    Image scaled = resize(image, 227, 227);
    nn::Tensor input = toTensor(scaled, 118.0f);
    std::vector<float> data(input.data(),
                            input.data() + input.elems());
    out.times.preprocess = nowSeconds() - start;

    auto result = invoke(1, data, out.times);
    if (!result.isOk())
        return result.status();

    start = nowSeconds();
    const auto &probs = result.value();
    int best = rowArgmax(probs, 0, 1000);
    out.labels.push_back(best);
    out.text = strprintf("%s (p=%.3f)",
                         imagenetClassName(best).c_str(),
                         probs[best]);
    out.times.postprocess = nowSeconds() - start;
    return out;
}

// DIG ---------------------------------------------------------------

DigApp::DigApp(core::DjinnClient &client)
    : TonicApp(client, "mnist")
{}

Result<AppOutput>
DigApp::recognize(const std::vector<Image> &digits)
{
    if (digits.empty())
        return Status::invalidArgument("no digit images");
    AppOutput out;
    double start = nowSeconds();
    std::vector<float> data;
    data.reserve(digits.size() * 28 * 28);
    for (const Image &digit : digits) {
        if (digit.width != 28 || digit.height != 28 ||
            digit.channels != 1) {
            return Status::invalidArgument(
                "digit images must be 28x28 grayscale");
        }
        for (uint8_t p : digit.pixels)
            data.push_back(static_cast<float>(p) / 255.0f);
    }
    out.times.preprocess = nowSeconds() - start;

    auto result = invoke(static_cast<int64_t>(digits.size()), data,
                         out.times);
    if (!result.isOk())
        return result.status();

    start = nowSeconds();
    const auto &logits = result.value();
    for (size_t i = 0; i < digits.size(); ++i) {
        int best = rowArgmax(logits, static_cast<int64_t>(i), 10);
        out.labels.push_back(best);
        out.text += static_cast<char>('0' + best);
    }
    out.times.postprocess = nowSeconds() - start;
    return out;
}

// FACE --------------------------------------------------------------

FaceApp::FaceApp(core::DjinnClient &client)
    : TonicApp(client, "deepface")
{}

Result<AppOutput>
FaceApp::identify(const Image &image)
{
    AppOutput out;
    double start = nowSeconds();
    Image scaled = resize(image, 152, 152);
    nn::Tensor input = toTensor(scaled, 128.0f);
    std::vector<float> data(input.data(),
                            input.data() + input.elems());
    out.times.preprocess = nowSeconds() - start;

    auto result = invoke(1, data, out.times);
    if (!result.isOk())
        return result.status();

    start = nowSeconds();
    int best = rowArgmax(result.value(), 0, 83);
    out.labels.push_back(best);
    out.text = celebrityName(best);
    out.times.postprocess = nowSeconds() - start;
    return out;
}

// ASR ---------------------------------------------------------------

AsrApp::AsrApp(core::DjinnClient &client)
    : TonicApp(client, "kaldi_asr")
{}

Result<AppOutput>
AsrApp::transcribe(const std::vector<float> &samples)
{
    AppOutput out;
    double start = nowSeconds();
    FeatureConfig config;
    nn::Tensor features = filterbankFeatures(samples, config);
    nn::Tensor spliced = spliceFrames(features,
                                      config.spliceContext);
    int64_t frames = spliced.shape().n();
    std::vector<float> data(spliced.data(),
                            spliced.data() + spliced.elems());
    out.times.preprocess = nowSeconds() - start;

    auto result = invoke(frames, data, out.times);
    if (!result.isOk())
        return result.status();

    start = nowSeconds();
    // Fold 4000 senone activations down to the 40-phone inventory
    // (senone s belongs to phone s % 40), then Viterbi with a
    // self-loop bonus and run collapsing.
    const auto &senones = result.value();
    int64_t phones = static_cast<int64_t>(phoneNames().size());
    nn::Tensor phone_scores(nn::Shape(frames, phones),
                            -1e30f);
    for (int64_t f = 0; f < frames; ++f) {
        const float *row = senones.data() + f * 4000;
        float *dst = phone_scores.sample(f);
        for (int64_t s = 0; s < 4000; ++s) {
            int64_t p = s % phones;
            dst[p] = std::max(dst[p], row[s]);
        }
    }
    auto transitions = selfLoopTransitions(phones, 2.0f);
    auto path = viterbiDecode(phone_scores, transitions);
    auto collapsed = collapseRuns(path);
    for (size_t i = 0; i < collapsed.size(); ++i) {
        if (i)
            out.text += ' ';
        out.text += phoneNames()[collapsed[i]];
        out.labels.push_back(collapsed[i]);
    }
    out.times.postprocess = nowSeconds() - start;
    return out;
}

// NLP helpers --------------------------------------------------------

namespace {

/**
 * Shared NLP flow: window features -> service -> Viterbi over the
 * tag scores (flat transitions).
 */
Result<AppOutput>
tagSentence(TonicApp &app, core::DjinnClient &client,
            const std::string &model, const std::string &sentence,
            const std::vector<std::string> &tag_names,
            const std::vector<int> *aux_tags, PhaseTimes seed_times,
            std::function<Result<std::vector<float>>(
                int64_t, const std::vector<float> &, PhaseTimes &)>
                invoke)
{
    (void)app;
    (void)client;
    (void)model;
    AppOutput out;
    out.times = seed_times;
    double start = nowSeconds();
    auto tokens = tokenize(sentence);
    if (tokens.empty())
        return Status::invalidArgument("empty sentence");
    TextConfig config;
    nn::Tensor features = aux_tags
        ? windowFeaturesWithTags(tokens, *aux_tags, config)
        : windowFeatures(tokens, config);
    int64_t rows = features.shape().n();
    std::vector<float> data(features.data(),
                            features.data() + features.elems());
    out.times.preprocess += nowSeconds() - start;

    auto result = invoke(rows, data, out.times);
    if (!result.isOk())
        return result.status();

    start = nowSeconds();
    int64_t tags = static_cast<int64_t>(tag_names.size());
    nn::Tensor scores = toScoreTensor(result.value(), rows, tags);
    std::vector<float> transitions(
        static_cast<size_t>(tags * tags), 0.0f);
    auto path = viterbiDecode(scores, transitions);
    for (size_t i = 0; i < path.size(); ++i) {
        if (i)
            out.text += ' ';
        out.text += tokens[i] + "/" + tag_names[path[i]];
        out.labels.push_back(path[i]);
    }
    out.times.postprocess += nowSeconds() - start;
    return out;
}

} // namespace

// POS ---------------------------------------------------------------

PosApp::PosApp(core::DjinnClient &client)
    : TonicApp(client, "senna_pos")
{}

Result<AppOutput>
PosApp::tag(const std::string &sentence)
{
    return tagSentence(
        *this, client_, model_, sentence, posTagNames(), nullptr,
        PhaseTimes{},
        [this](int64_t rows, const std::vector<float> &data,
               PhaseTimes &times) {
            return invoke(rows, data, times);
        });
}

// CHK ---------------------------------------------------------------

ChkApp::ChkApp(core::DjinnClient &client)
    : TonicApp(client, "senna_chk"), pos_(client)
{}

Result<AppOutput>
ChkApp::chunk(const std::string &sentence)
{
    // Internal POS request first (paper Section 3.2.3).
    auto pos_result = pos_.tag(sentence);
    if (!pos_result.isOk())
        return pos_result.status();
    const AppOutput &pos_out = pos_result.value();

    return tagSentence(
        *this, client_, model_, sentence, chunkTagNames(),
        &pos_out.labels, pos_out.times,
        [this](int64_t rows, const std::vector<float> &data,
               PhaseTimes &times) {
            return invoke(rows, data, times);
        });
}

// NER ---------------------------------------------------------------

NerApp::NerApp(core::DjinnClient &client)
    : TonicApp(client, "senna_ner")
{}

Result<AppOutput>
NerApp::recognize(const std::string &sentence)
{
    return tagSentence(
        *this, client_, model_, sentence, nerTagNames(), nullptr,
        PhaseTimes{},
        [this](int64_t rows, const std::vector<float> &data,
               PhaseTimes &times) {
            return invoke(rows, data, times);
        });
}

void
registerTonicModels(core::ModelRegistry &registry, uint64_t seed)
{
    for (nn::zoo::Model model : nn::zoo::allModels()) {
        Status s = registry.addZooModel(model, seed);
        if (!s.isOk())
            fatal("registerTonicModels: %s", s.toString().c_str());
    }
}

} // namespace tonic
} // namespace djinn
