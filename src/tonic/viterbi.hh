/**
 * @file
 * Viterbi decoding over per-step class scores, the post-processing
 * step shared by ASR (most likely senone/phone sequence) and the
 * NLP tasks (most likely tag sequence), per paper Section 3.2.
 */

#ifndef DJINN_TONIC_VITERBI_HH
#define DJINN_TONIC_VITERBI_HH

#include <cstdint>
#include <vector>

#include "nn/tensor.hh"

namespace djinn {
namespace tonic {

/**
 * Find the maximum-score state path.
 *
 * @param scores (steps x states) per-step state scores (e.g. log
 *        probabilities from the DNN service).
 * @param transitions (states x states) additive transition scores;
 *        transitions[i*states + j] scores moving from state i to j.
 * @return one state index per step.
 */
std::vector<int> viterbiDecode(const nn::Tensor &scores,
                               const std::vector<float> &transitions);

/**
 * Build a simple self-loop-biased transition matrix: staying in the
 * same state scores @p self_bonus, any move scores 0. Used by the
 * ASR phone decoder.
 */
std::vector<float> selfLoopTransitions(int64_t states,
                                       float self_bonus);

/** Collapse consecutive duplicate states (CTC-style). */
std::vector<int> collapseRuns(const std::vector<int> &path);

} // namespace tonic
} // namespace djinn

#endif // DJINN_TONIC_VITERBI_HH
