/**
 * @file
 * Image handling for the Tonic image tasks (IMC, DIG, FACE): a PPM
 * (P6) / PGM (P5) codec, bilinear resizing, CHW float conversion
 * with mean subtraction, and deterministic synthetic image
 * generation standing in for ImageNet / MNIST / PubFig83+LFW inputs.
 */

#ifndef DJINN_TONIC_IMAGE_HH
#define DJINN_TONIC_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/status.hh"
#include "nn/tensor.hh"

namespace djinn {
namespace tonic {

/** An 8-bit interleaved image (RGB when channels==3, gray when 1). */
struct Image {
    int64_t width = 0;
    int64_t height = 0;
    int64_t channels = 0;
    std::vector<uint8_t> pixels; // H x W x C interleaved

    /** Total pixel component count. */
    int64_t size() const { return width * height * channels; }

    /** Component at (x, y, c). */
    uint8_t &
    at(int64_t x, int64_t y, int64_t c)
    {
        return pixels[(y * width + x) * channels + c];
    }

    /** Read-only component at (x, y, c). */
    uint8_t
    at(int64_t x, int64_t y, int64_t c) const
    {
        return pixels[(y * width + x) * channels + c];
    }
};

/** Encode an image as PPM (P6, 3 channels) or PGM (P5, 1 channel). */
std::vector<uint8_t> encodePnm(const Image &image);

/** Decode a binary PPM/PGM buffer. */
Result<Image> decodePnm(const std::vector<uint8_t> &data);

/** Write an image to a .ppm/.pgm file. */
Status savePnm(const Image &image, const std::string &path);

/** Read an image from a .ppm/.pgm file. */
Result<Image> loadPnm(const std::string &path);

/** Bilinear resize to (width x height). */
Image resize(const Image &image, int64_t width, int64_t height);

/**
 * Convert to a CHW float tensor (batch 1) with per-channel mean
 * subtraction.
 *
 * @param mean value subtracted from every component (0-255 scale).
 */
nn::Tensor toTensor(const Image &image, float mean = 0.0f);

/**
 * Deterministic synthetic photo: smooth color gradients plus
 * speckle, exercising the same decode/resize/normalize path a real
 * dataset image would.
 */
Image synthesizePhoto(int64_t width, int64_t height, int64_t channels,
                      Rng &rng);

/** Deterministic synthetic handwritten digit (28x28 grayscale). */
Image synthesizeDigit(int digit, Rng &rng);

} // namespace tonic
} // namespace djinn

#endif // DJINN_TONIC_IMAGE_HH
