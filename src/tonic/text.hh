/**
 * @file
 * Text front end for the NLP tasks (POS, CHK, NER): SENNA-style
 * window features. Sentences are tokenized, each token mapped to a
 * deterministic 50-dim embedding (hash-derived, standing in for the
 * Wikipedia-trained SENNA embeddings), and a 5-token window around
 * each position is concatenated into the 250-float network input.
 */

#ifndef DJINN_TONIC_TEXT_HH
#define DJINN_TONIC_TEXT_HH

#include <string>
#include <vector>

#include "nn/tensor.hh"

namespace djinn {
namespace tonic {

/** SENNA-style text feature parameters. */
struct TextConfig {
    /** Embedding width per token. */
    int64_t embeddingDim = 50;

    /** Tokens on each side of the target (window = 2*ctx + 1). */
    int64_t windowContext = 2;
};

/**
 * Split a sentence into lower-cased word tokens; punctuation
 * becomes its own token.
 */
std::vector<std::string> tokenize(const std::string &sentence);

/**
 * Deterministic embedding of one token: hash-seeded pseudo-random
 * unit-variance vector. The same token always maps to the same
 * embedding, and related casings share it (tokens are lower-cased
 * first).
 */
std::vector<float> embedToken(const std::string &token,
                              int64_t embedding_dim);

/**
 * Build window features for every token of a sentence: row t holds
 * the concatenated embeddings of tokens [t-ctx, t+ctx], with
 * padding embeddings past the sentence edges.
 *
 * @return a (tokens x window*embeddingDim) Tensor.
 */
nn::Tensor windowFeatures(const std::vector<std::string> &tokens,
                          const TextConfig &config);

/**
 * Window features augmented with a feature channel (e.g. POS tag
 * ids for the CHK task, paper Section 3.2.3): each window position's
 * embedding is rotated by its auxiliary id so downstream features
 * depend on the tags.
 */
nn::Tensor windowFeaturesWithTags(
    const std::vector<std::string> &tokens,
    const std::vector<int> &tags, const TextConfig &config);

/** Deterministic synthetic sentence of @p words words. */
std::string synthesizeSentence(int words, uint64_t seed);

} // namespace tonic
} // namespace djinn

#endif // DJINN_TONIC_TEXT_HH
