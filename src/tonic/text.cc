#include "tonic/text.hh"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/strings.hh"

namespace djinn {
namespace tonic {

namespace {

uint64_t
tokenHash(const std::string &token)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : token) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

const char *const word_bank[] = {
    "the", "a", "quick", "brown", "fox", "jumps", "over", "lazy",
    "dog", "server", "network", "deep", "neural", "service",
    "warehouse", "scale", "computer", "latency", "throughput",
    "query", "john", "mary", "paris", "london", "monday", "runs",
    "processes", "answers", "speaks", "listens", "fast", "slow",
    "large", "small", "red", "blue", "engineers", "design",
    "systems", "images",
};

} // namespace

std::vector<std::string>
tokenize(const std::string &sentence)
{
    std::vector<std::string> tokens;
    std::string current;
    auto flush = [&]() {
        if (!current.empty()) {
            tokens.push_back(toLower(current));
            current.clear();
        }
    };
    for (char raw : sentence) {
        unsigned char c = static_cast<unsigned char>(raw);
        if (std::isalnum(c) || raw == '\'' || raw == '-') {
            current.push_back(raw);
        } else if (std::isspace(c)) {
            flush();
        } else {
            flush();
            tokens.push_back(std::string(1, raw));
        }
    }
    flush();
    return tokens;
}

std::vector<float>
embedToken(const std::string &token, int64_t embedding_dim)
{
    Rng rng(tokenHash(toLower(token)));
    std::vector<float> out(static_cast<size_t>(embedding_dim));
    for (auto &v : out)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));
    return out;
}

nn::Tensor
windowFeatures(const std::vector<std::string> &tokens,
               const TextConfig &config)
{
    std::vector<int> no_tags(tokens.size(), 0);
    return windowFeaturesWithTags(tokens, no_tags, config);
}

nn::Tensor
windowFeaturesWithTags(const std::vector<std::string> &tokens,
                       const std::vector<int> &tags,
                       const TextConfig &config)
{
    if (tokens.empty())
        fatal("windowFeatures: empty token list");
    if (tags.size() != tokens.size())
        fatal("windowFeatures: %zu tags for %zu tokens", tags.size(),
              tokens.size());
    int64_t window = 2 * config.windowContext + 1;
    int64_t dim = config.embeddingDim;
    nn::Tensor out(nn::Shape(static_cast<int64_t>(tokens.size()),
                             window * dim));

    static const std::string padding = "<pad>";
    std::vector<float> pad_embedding = embedToken(padding, dim);

    for (int64_t t = 0; t < static_cast<int64_t>(tokens.size());
         ++t) {
        float *row = out.sample(t);
        for (int64_t w = -config.windowContext;
             w <= config.windowContext; ++w) {
            int64_t src = t + w;
            int64_t slot = w + config.windowContext;
            const std::vector<float> *embedding;
            std::vector<float> scratch;
            int tag = 0;
            if (src < 0 ||
                src >= static_cast<int64_t>(tokens.size())) {
                embedding = &pad_embedding;
            } else {
                scratch = embedToken(tokens[src], dim);
                embedding = &scratch;
                tag = tags[src];
            }
            // Rotate by the auxiliary tag id so tag features change
            // the input (the CHK task feeds POS output back in).
            for (int64_t i = 0; i < dim; ++i) {
                row[slot * dim + i] =
                    (*embedding)[(i + tag) % dim];
            }
        }
    }
    return out;
}

std::string
synthesizeSentence(int words, uint64_t seed)
{
    if (words <= 0)
        fatal("synthesizeSentence: need positive word count");
    Rng rng(seed);
    constexpr int64_t bank_size =
        static_cast<int64_t>(sizeof(word_bank) /
                             sizeof(word_bank[0]));
    std::string out;
    for (int i = 0; i < words; ++i) {
        if (i)
            out += ' ';
        out += word_bank[rng.uniformInt(0, bank_size - 1)];
    }
    out += '.';
    return out;
}

} // namespace tonic
} // namespace djinn
