#include "tonic/image.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.hh"

namespace djinn {
namespace tonic {

std::vector<uint8_t>
encodePnm(const Image &image)
{
    if (image.channels != 1 && image.channels != 3)
        fatal("encodePnm: %lld channels unsupported",
              static_cast<long long>(image.channels));
    std::string header = strprintf(
        "P%c\n%lld %lld\n255\n", image.channels == 3 ? '6' : '5',
        static_cast<long long>(image.width),
        static_cast<long long>(image.height));
    std::vector<uint8_t> out(header.begin(), header.end());
    out.insert(out.end(), image.pixels.begin(), image.pixels.end());
    return out;
}

Result<Image>
decodePnm(const std::vector<uint8_t> &data)
{
    size_t pos = 0;
    auto next_token = [&]() -> std::string {
        // Skip whitespace and '#' comment lines.
        while (pos < data.size()) {
            if (std::isspace(data[pos])) {
                ++pos;
            } else if (data[pos] == '#') {
                while (pos < data.size() && data[pos] != '\n')
                    ++pos;
            } else {
                break;
            }
        }
        std::string token;
        while (pos < data.size() && !std::isspace(data[pos]))
            token.push_back(static_cast<char>(data[pos++]));
        return token;
    };

    std::string magic = next_token();
    int64_t channels;
    if (magic == "P6") {
        channels = 3;
    } else if (magic == "P5") {
        channels = 1;
    } else {
        return Status::protocolError("not a binary PPM/PGM image");
    }
    std::string w = next_token();
    std::string h = next_token();
    std::string maxval = next_token();
    Image image;
    try {
        image.width = std::stoll(w);
        image.height = std::stoll(h);
    } catch (...) {
        return Status::protocolError("bad PNM dimensions");
    }
    if (maxval != "255")
        return Status::protocolError("only 8-bit PNM supported");
    if (image.width <= 0 || image.height <= 0 ||
        image.width > 1 << 16 || image.height > 1 << 16) {
        return Status::protocolError("bad PNM dimensions");
    }
    image.channels = channels;
    // Exactly one whitespace byte separates header from pixels.
    ++pos;
    size_t need = static_cast<size_t>(image.size());
    if (data.size() - pos < need)
        return Status::protocolError("truncated PNM pixel data");
    image.pixels.assign(data.begin() + pos, data.begin() + pos + need);
    return image;
}

Status
savePnm(const Image &image, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return Status::ioError("cannot open '" + path + "'");
    auto bytes = encodePnm(image);
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    return os ? Status::ok()
              : Status::ioError("write failed for '" + path + "'");
}

Result<Image>
loadPnm(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return Status::ioError("cannot open '" + path + "'");
    std::vector<uint8_t> data(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    return decodePnm(data);
}

Image
resize(const Image &image, int64_t width, int64_t height)
{
    Image out;
    out.width = width;
    out.height = height;
    out.channels = image.channels;
    out.pixels.resize(static_cast<size_t>(out.size()));

    double sx = static_cast<double>(image.width) / width;
    double sy = static_cast<double>(image.height) / height;
    for (int64_t y = 0; y < height; ++y) {
        double fy = (y + 0.5) * sy - 0.5;
        int64_t y0 = std::clamp<int64_t>(
            static_cast<int64_t>(std::floor(fy)), 0,
            image.height - 1);
        int64_t y1 = std::min(y0 + 1, image.height - 1);
        double wy = std::clamp(fy - y0, 0.0, 1.0);
        for (int64_t x = 0; x < width; ++x) {
            double fx = (x + 0.5) * sx - 0.5;
            int64_t x0 = std::clamp<int64_t>(
                static_cast<int64_t>(std::floor(fx)), 0,
                image.width - 1);
            int64_t x1 = std::min(x0 + 1, image.width - 1);
            double wx = std::clamp(fx - x0, 0.0, 1.0);
            for (int64_t c = 0; c < image.channels; ++c) {
                double top = image.at(x0, y0, c) * (1 - wx) +
                             image.at(x1, y0, c) * wx;
                double bottom = image.at(x0, y1, c) * (1 - wx) +
                                image.at(x1, y1, c) * wx;
                double v = top * (1 - wy) + bottom * wy;
                out.at(x, y, c) = static_cast<uint8_t>(
                    std::clamp(v + 0.5, 0.0, 255.0));
            }
        }
    }
    return out;
}

nn::Tensor
toTensor(const Image &image, float mean)
{
    nn::Tensor t(nn::Shape(1, image.channels, image.height,
                           image.width));
    for (int64_t c = 0; c < image.channels; ++c) {
        for (int64_t y = 0; y < image.height; ++y) {
            for (int64_t x = 0; x < image.width; ++x) {
                t.at(0, c, y, x) =
                    static_cast<float>(image.at(x, y, c)) - mean;
            }
        }
    }
    return t;
}

Image
synthesizePhoto(int64_t width, int64_t height, int64_t channels,
                Rng &rng)
{
    Image image;
    image.width = width;
    image.height = height;
    image.channels = channels;
    image.pixels.resize(static_cast<size_t>(image.size()));

    // A few random low-frequency color waves plus speckle noise.
    double fx[3], fy[3], phase[3], base[3];
    for (int c = 0; c < 3; ++c) {
        fx[c] = rng.uniform(0.5, 3.0);
        fy[c] = rng.uniform(0.5, 3.0);
        phase[c] = rng.uniform(0.0, 2 * M_PI);
        base[c] = rng.uniform(64.0, 192.0);
    }
    for (int64_t y = 0; y < height; ++y) {
        for (int64_t x = 0; x < width; ++x) {
            for (int64_t c = 0; c < channels; ++c) {
                int k = static_cast<int>(c % 3);
                double u = static_cast<double>(x) / width;
                double v = static_cast<double>(y) / height;
                double wave = 50.0 *
                    std::sin(2 * M_PI * (fx[k] * u + fy[k] * v) +
                             phase[k]);
                double noise = rng.gaussian(0.0, 12.0);
                image.at(x, y, c) = static_cast<uint8_t>(
                    std::clamp(base[k] + wave + noise, 0.0, 255.0));
            }
        }
    }
    return image;
}

Image
synthesizeDigit(int digit, Rng &rng)
{
    if (digit < 0 || digit > 9)
        fatal("synthesizeDigit: digit %d out of range", digit);
    Image image;
    image.width = 28;
    image.height = 28;
    image.channels = 1;
    image.pixels.assign(28 * 28, 0);

    // Seven-segment style strokes jittered per sample; enough to
    // exercise the DIG pipeline with digit-dependent structure.
    const bool segs[10][7] = {
        {1, 1, 1, 0, 1, 1, 1}, {0, 0, 1, 0, 0, 1, 0},
        {1, 0, 1, 1, 1, 0, 1}, {1, 0, 1, 1, 0, 1, 1},
        {0, 1, 1, 1, 0, 1, 0}, {1, 1, 0, 1, 0, 1, 1},
        {1, 1, 0, 1, 1, 1, 1}, {1, 0, 1, 0, 0, 1, 0},
        {1, 1, 1, 1, 1, 1, 1}, {1, 1, 1, 1, 0, 1, 1},
    };
    auto hline = [&](int64_t y, int64_t x0, int64_t x1) {
        for (int64_t x = x0; x <= x1; ++x) {
            for (int64_t dy = -1; dy <= 1; ++dy) {
                int64_t yy = std::clamp<int64_t>(y + dy, 0, 27);
                image.at(x, yy, 0) = 255;
            }
        }
    };
    auto vline = [&](int64_t x, int64_t y0, int64_t y1) {
        for (int64_t y = y0; y <= y1; ++y) {
            for (int64_t dx = -1; dx <= 1; ++dx) {
                int64_t xx = std::clamp<int64_t>(x + dx, 0, 27);
                image.at(xx, y, 0) = 255;
            }
        }
    };
    int64_t jx = rng.uniformInt(-2, 2);
    int64_t jy = rng.uniformInt(-2, 2);
    int64_t left = 8 + jx, right = 19 + jx;
    int64_t top = 5 + jy, mid = 14 + jy, bottom = 23 + jy;
    const bool *s = segs[digit];
    if (s[0]) hline(top, left, right);
    if (s[1]) vline(left, top, mid);
    if (s[2]) vline(right, top, mid);
    if (s[3]) hline(mid, left, right);
    if (s[4]) vline(left, mid, bottom);
    if (s[5]) vline(right, mid, bottom);
    if (s[6]) hline(bottom, left, right);

    // Light noise so samples differ.
    for (auto &p : image.pixels) {
        double v = p + rng.gaussian(0.0, 8.0);
        p = static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
    }
    return image;
}

} // namespace tonic
} // namespace djinn
