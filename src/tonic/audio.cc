#include "tonic/audio.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"

namespace djinn {
namespace tonic {

namespace {

double
hzToMel(double hz)
{
    return 1127.0 * std::log(1.0 + hz / 700.0);
}

double
melToHz(double mel)
{
    return 700.0 * (std::exp(mel / 1127.0) - 1.0);
}

} // namespace

std::vector<float>
synthesizeUtterance(double seconds, Rng &rng, double sample_rate)
{
    if (seconds <= 0.0)
        fatal("synthesizeUtterance: non-positive duration %f",
              seconds);
    int64_t n = static_cast<int64_t>(seconds * sample_rate);
    std::vector<float> out(static_cast<size_t>(n));

    // Speech-like: a pitch contour with harmonics, amplitude
    // modulated into syllable-like bursts, plus breath noise.
    double f0 = rng.uniform(90.0, 220.0);
    double drift = rng.uniform(-20.0, 20.0);
    double syllable_rate = rng.uniform(3.0, 5.0);
    double phase[5] = {0, 0, 0, 0, 0};
    for (int64_t i = 0; i < n; ++i) {
        double t = static_cast<double>(i) / sample_rate;
        double pitch = f0 + drift * t +
                       10.0 * std::sin(2 * M_PI * 2.3 * t);
        double envelope =
            0.4 + 0.6 * std::pow(
                std::fabs(std::sin(M_PI * syllable_rate * t)), 2.0);
        double sample = 0.0;
        for (int h = 0; h < 5; ++h) {
            phase[h] += 2 * M_PI * pitch * (h + 1) / sample_rate;
            sample += std::sin(phase[h]) / (h + 1.5);
        }
        sample = sample * envelope * 0.25 +
                 0.02 * rng.gaussian();
        out[static_cast<size_t>(i)] = static_cast<float>(sample);
    }
    return out;
}

int64_t
frameCount(int64_t samples, const FeatureConfig &config)
{
    int64_t frame_len = static_cast<int64_t>(
        config.frameLength * config.sampleRate);
    int64_t shift = static_cast<int64_t>(
        config.frameShift * config.sampleRate);
    if (samples < frame_len)
        return 0;
    return (samples - frame_len) / shift + 1;
}

nn::Tensor
filterbankFeatures(const std::vector<float> &samples,
                   const FeatureConfig &config)
{
    int64_t frame_len = static_cast<int64_t>(
        config.frameLength * config.sampleRate);
    int64_t shift = static_cast<int64_t>(
        config.frameShift * config.sampleRate);
    int64_t frames = frameCount(
        static_cast<int64_t>(samples.size()), config);
    if (frames <= 0)
        fatal("filterbankFeatures: utterance shorter than one frame");

    // FFT length: next power of two >= frame length.
    int64_t nfft = 1;
    while (nfft < frame_len)
        nfft <<= 1;
    int64_t nbins = nfft / 2 + 1;

    // Precompute the Hamming window.
    std::vector<double> window(static_cast<size_t>(frame_len));
    for (int64_t i = 0; i < frame_len; ++i) {
        window[i] = 0.54 - 0.46 * std::cos(2 * M_PI * i /
                                           (frame_len - 1));
    }

    // Precompute triangular mel filters over the power bins.
    double mel_lo = hzToMel(20.0);
    double mel_hi = hzToMel(config.sampleRate / 2.0);
    std::vector<double> centers(
        static_cast<size_t>(config.melBins) + 2);
    for (int64_t m = 0; m < config.melBins + 2; ++m) {
        double mel = mel_lo + (mel_hi - mel_lo) * m /
                     (config.melBins + 1);
        centers[m] = melToHz(mel) / (config.sampleRate / 2.0) *
                     (nbins - 1);
    }

    nn::Tensor features(nn::Shape(frames, config.melBins));

    std::vector<double> re(static_cast<size_t>(nbins));
    std::vector<double> im(static_cast<size_t>(nbins));
    std::vector<double> frame(static_cast<size_t>(frame_len));

    for (int64_t f = 0; f < frames; ++f) {
        const float *src = samples.data() + f * shift;
        // Pre-emphasis + window.
        frame[0] = src[0] * window[0];
        for (int64_t i = 1; i < frame_len; ++i) {
            frame[i] = (src[i] - config.preEmphasis * src[i - 1]) *
                       window[i];
        }
        // Real DFT (direct form; frame_len is a few hundred points).
        for (int64_t k = 0; k < nbins; ++k) {
            double sr = 0.0, si = 0.0;
            double w = -2.0 * M_PI * k / nfft;
            for (int64_t i = 0; i < frame_len; ++i) {
                sr += frame[i] * std::cos(w * i);
                si += frame[i] * std::sin(w * i);
            }
            re[k] = sr;
            im[k] = si;
        }
        // Mel filterbank over the power spectrum, log compressed.
        for (int64_t m = 0; m < config.melBins; ++m) {
            double left = centers[m];
            double center = centers[m + 1];
            double right = centers[m + 2];
            double acc = 0.0;
            int64_t k0 = std::max<int64_t>(
                static_cast<int64_t>(std::ceil(left)), 0);
            int64_t k1 = std::min<int64_t>(
                static_cast<int64_t>(std::floor(right)), nbins - 1);
            for (int64_t k = k0; k <= k1; ++k) {
                double weight = k <= center
                    ? (k - left) / std::max(center - left, 1e-9)
                    : (right - k) / std::max(right - center, 1e-9);
                weight = std::clamp(weight, 0.0, 1.0);
                acc += weight * (re[k] * re[k] + im[k] * im[k]);
            }
            features.at(f, m, 0, 0) =
                static_cast<float>(std::log(acc + 1e-10));
        }
    }
    return features;
}

nn::Tensor
spliceFrames(const nn::Tensor &features, int64_t splice_context)
{
    int64_t frames = features.shape().n();
    int64_t dims = features.shape().sampleElems();
    int64_t width = 2 * splice_context + 1;
    nn::Tensor out(nn::Shape(frames, width * dims));
    for (int64_t f = 0; f < frames; ++f) {
        for (int64_t c = -splice_context; c <= splice_context; ++c) {
            int64_t src = std::clamp<int64_t>(f + c, 0, frames - 1);
            std::memcpy(
                out.sample(f) + (c + splice_context) * dims,
                features.sample(src),
                static_cast<size_t>(dims) * sizeof(float));
        }
    }
    return out;
}

} // namespace tonic
} // namespace djinn
