/**
 * @file
 * Label tables for the Tonic applications: POS/chunk/NER tag sets
 * (SENNA-style), the ASR phone inventory, and synthetic class names
 * for the image tasks.
 */

#ifndef DJINN_TONIC_LABELS_HH
#define DJINN_TONIC_LABELS_HH

#include <string>
#include <vector>

namespace djinn {
namespace tonic {

/** The 45 Penn Treebank POS tags used by the POS task. */
const std::vector<std::string> &posTagNames();

/** The 23 chunk tags (begin/inside phrase labels plus O). */
const std::vector<std::string> &chunkTagNames();

/** The 9 named-entity tags (PER/LOC/ORG/MISC begin/inside plus O). */
const std::vector<std::string> &nerTagNames();

/** The 40-phone inventory the ASR decoder emits. */
const std::vector<std::string> &phoneNames();

/** Synthetic ImageNet-style class name for class @p index. */
std::string imagenetClassName(int index);

/** Synthetic PubFig-style identity name for identity @p index. */
std::string celebrityName(int index);

} // namespace tonic
} // namespace djinn

#endif // DJINN_TONIC_LABELS_HH
