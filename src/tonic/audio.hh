/**
 * @file
 * Audio front end for the ASR task: waveform synthesis plus a real
 * filterbank feature pipeline (pre-emphasis, framing, Hamming
 * window, DFT power spectrum, mel filterbank, log compression,
 * context splicing), the role Kaldi's feature extraction plays in
 * the paper's ASR preprocessing.
 */

#ifndef DJINN_TONIC_AUDIO_HH
#define DJINN_TONIC_AUDIO_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "nn/tensor.hh"

namespace djinn {
namespace tonic {

/** Feature pipeline configuration (Kaldi-style defaults). */
struct FeatureConfig {
    /** Input sample rate, Hz. */
    double sampleRate = 16000.0;

    /** Frame length, seconds (25 ms). */
    double frameLength = 0.025;

    /** Frame shift, seconds (10 ms). */
    double frameShift = 0.010;

    /** Mel filterbank size. */
    int64_t melBins = 40;

    /** Pre-emphasis coefficient. */
    double preEmphasis = 0.97;

    /** Context frames spliced on each side (11-frame window). */
    int64_t spliceContext = 5;
};

/**
 * Synthesize @p seconds of deterministic speech-like audio: a
 * wandering fundamental with harmonics and noise bursts.
 */
std::vector<float> synthesizeUtterance(double seconds, Rng &rng,
                                       double sample_rate = 16000.0);

/**
 * Compute log-mel filterbank features.
 *
 * @param samples mono waveform.
 * @param config pipeline parameters.
 * @return (frames x melBins) feature matrix as a Tensor with shape
 *         (frames, melBins, 1, 1).
 */
nn::Tensor filterbankFeatures(const std::vector<float> &samples,
                              const FeatureConfig &config);

/**
 * Splice each frame with +/- spliceContext neighbours (edges
 * clamped), producing the (frames x (2*ctx+1)*melBins) input the
 * acoustic model consumes.
 */
nn::Tensor spliceFrames(const nn::Tensor &features,
                        int64_t splice_context);

/** Number of frames the pipeline yields for a sample count. */
int64_t frameCount(int64_t samples, const FeatureConfig &config);

} // namespace tonic
} // namespace djinn

#endif // DJINN_TONIC_AUDIO_HH
