/**
 * @file
 * The DjiNN server (paper Section 3.1): a standalone DNN service
 * accepting framed requests over TCP/IP. At initialization it loads
 * every configured model into memory once; each accepted connection
 * is served by a worker thread with read-only access to the shared
 * models. Optionally, concurrent queries to the same model are
 * batched into combined forward passes.
 */

#ifndef DJINN_CORE_DJINN_SERVER_HH
#define DJINN_CORE_DJINN_SERVER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hh"
#include "core/batcher.hh"
#include "core/model_registry.hh"
#include "core/protocol.hh"
#include "serve/scheduler.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/health.hh"
#include "telemetry/metrics.hh"
#include "telemetry/slo.hh"
#include "telemetry/timeseries.hh"
#include "telemetry/trace.hh"
#include "telemetry/tracer.hh"

namespace djinn {
namespace core {

class HttpEndpoint;

/** DjiNN server configuration. */
struct ServerConfig {
    /** TCP port to bind; 0 picks an ephemeral port. */
    uint16_t port = 0;

    /** Bind address; defaults to loopback. */
    std::string bindAddress = "127.0.0.1";

    /** Enable cross-request batching per model (Section 5.1). */
    bool batching = false;

    /** Batching policy when enabled. */
    BatchOptions batchOptions;

    /** Cap on input rows accepted in a single request. */
    int64_t maxRowsPerRequest = 4096;

    /**
     * Per-connection frame I/O timeout, seconds (`djinnd
     * --io-timeout-ms`). Once a peer starts sending a frame it
     * must deliver the whole thing within this budget, and a
     * response write must complete within it; expiry drops the
     * connection and counts in `djinn_io_timeouts_total`. An idle
     * connection between requests is unaffected. <= 0 disables
     * (reads/writes may then block forever — the pre-robustness
     * behaviour).
     */
    double ioTimeoutSeconds = 10.0;

    /**
     * Graceful-drain budget for stop(), seconds (`djinnd
     * --drain-timeout-ms`): how long stop() waits for in-flight
     * requests to finish (and their responses to flush) before
     * cutting connections. Requests arriving during the drain are
     * rejected with an Overloaded status. <= 0 skips the drain
     * phase and cuts connections immediately.
     */
    double drainTimeoutSeconds = 5.0;

    /**
     * Fault-injection spec applied to every connection's server
     * side (core/fault.hh; `djinnd --fault` / DJINN_FAULT). Empty
     * disables. Test/drill use only.
     */
    std::string faultSpec;

    /**
     * Intra-layer compute pool size applied at start() (the
     * `djinnd --compute-threads` flag). 0 keeps the automatic
     * choice: the DJINN_COMPUTE_THREADS environment variable if
     * set, otherwise the hardware concurrency. Exported as the
     * `djinn_compute_threads` gauge.
     */
    int computeThreads = 0;

    /**
     * Record spans for sampled requests into the in-memory trace
     * ring (DESIGN.md "End-to-end tracing").
     */
    bool tracing = true;

    /**
     * HTTP scrape port (/healthz, /metrics, /trace). Negative
     * disables the endpoint; 0 picks an ephemeral port.
     */
    int32_t httpPort = -1;

    /**
     * Background sampler period in seconds (queue depth, RSS, and
     * other gauges as counter tracks). Non-positive disables the
     * sampler; it also only runs when tracing is on.
     */
    double samplerPeriod = 0.25;

    /** Trace ring capacity, in events. */
    size_t traceCapacity = 16384;

    /**
     * Continuous sampling-profiler rate in samples per consumed
     * CPU-second (`djinnd --profile-hz`). 0 leaves the profiler
     * off; `/profile?seconds=N` still works via a temporary
     * window. Started at start(), stopped at stop().
     */
    int profileHz = 0;

    /**
     * Default per-model latency SLO target, seconds
     * (`djinnd --slo-ms`). Non-positive disables SLO tracking.
     */
    double sloTargetSeconds = 0.050;

    /** SLO availability objective (error budget 1 - objective). */
    double sloObjective = 0.99;

    /**
     * Flight-recorder ring capacity in per-request records (the
     * always-on tail-latency recorder; DESIGN.md "Tail attribution
     * & flight recorder"). Must be positive.
     */
    size_t flightCapacity = 4096;

    /**
     * Flight-recorder tail-reservoir capacity: the slowest requests
     * kept across ring wraps. 0 disables the reservoir.
     */
    size_t flightReservoir = 256;

    /**
     * Time-series store retention, in sampler-period slots
     * (`djinnd --timeseries-cap`). With the default 0.25 s sampler
     * period, 600 slots keep 2.5 minutes of history. The store
     * only runs when tracing and the sampler are on.
     */
    size_t timeseriesCapacity = 600;

    /** Health-rule thresholds for the watchdog over the store. */
    telemetry::HealthOptions healthOptions;

    /**
     * Adaptive scheduling (`djinnd --sched adaptive`): size each
     * model's dispatch batch from its observed arrival rate and
     * SLO, and fair-share the compute pool across tenants. Only
     * meaningful with batching on. Off keeps the paper's static
     * tuned-batch policy.
     */
    bool adaptiveScheduling = false;

    /** Scheduler policy knobs when adaptiveScheduling is on; the
     * maxBatch/SLO fields are overridden from batchOptions and
     * sloTargetSeconds at construction. */
    serve::SchedulerOptions schedulerOptions;

    /**
     * Tenant weights (`djinnd --tenant NAME=MODEL[:WEIGHT]`): maps
     * each tenant name to its fair-share weight. Model-to-tenant
     * bindings ride in tenantModels.
     */
    std::map<std::string, double> tenantWeights;

    /** Model name -> tenant name bindings for fair sharing. */
    std::map<std::string, std::string> tenantModels;

    /**
     * Declared per-model serving precisions (`djinnd --precision
     * <model>=int8|bf16|f32`). The registry's networks are lowered
     * when they are built; this map is the deployment's declared
     * intent, validated against the registry at start() — a model
     * listed here that is missing or was built at a different
     * precision fails startup instead of silently serving the
     * wrong numerics. Every registered model's actual precision is
     * exported as the `djinn_model_precision` gauge regardless.
     */
    std::map<std::string, nn::Precision> modelPrecisions;
};

/**
 * The DjiNN service. Owns the listening socket, the acceptor
 * thread, and the per-connection worker threads.
 */
class DjinnServer
{
  public:
    /**
     * @param registry models to serve; must outlive the server.
     * @param config server options.
     */
    DjinnServer(const ModelRegistry &registry,
                const ServerConfig &config);

    /** Stops the server if still running. */
    ~DjinnServer();

    DjinnServer(const DjinnServer &) = delete;
    DjinnServer &operator=(const DjinnServer &) = delete;

    /** Bind, listen, and start accepting connections. */
    Status start();

    /**
     * Stop the server: stop accepting, drain in-flight requests
     * (bounded by ServerConfig::drainTimeoutSeconds; new requests
     * are rejected with Overloaded while draining), then close
     * connections and join all threads.
     */
    void stop();

    /** The bound TCP port (valid after start()). */
    uint16_t port() const { return port_; }

    /** True while the server is accepting connections. */
    bool running() const { return running_.load(); }

    /** Total inference requests served. */
    uint64_t requestsServed() const { return requests_.load(); }

    /** Connections accepted so far. */
    uint64_t connectionsAccepted() const { return accepted_.load(); }

    /**
     * Live worker-thread registry size: connections being served
     * plus finished workers not yet reaped (the acceptor reaps on
     * every accept, so this stays bounded under connection churn
     * instead of growing by one thread per connection ever
     * accepted).
     */
    size_t workerCount() const;

    /** Requests currently being processed (frame read, response
     * not yet written). Drained by stop(). */
    int64_t inflight() const { return inflight_.load(); }

    /** True while stop() is draining in-flight requests. */
    bool draining() const { return draining_.load(); }

    /**
     * Per-model service counters: a view over the telemetry
     * registry (the `djinn_requests_total` / `djinn_rows_total`
     * counters and the `djinn_phase_seconds{phase="service"}`
     * histogram).
     */
    struct ModelStats {
        std::string model;
        uint64_t requests = 0;
        uint64_t rows = 0;
        double serviceSeconds = 0.0;

        /** Service-time percentiles, milliseconds. */
        double p50ServiceMs = 0.0;
        double p95ServiceMs = 0.0;
        double p99ServiceMs = 0.0;
    };

    /**
     * Snapshot of the per-model counters, sorted by model name.
     * Models appear once they have served a successful request.
     */
    std::vector<ModelStats> stats() const;

    /**
     * The server's telemetry registry: request counters, phase
     * (decode / queue_wait / forward / encode / service)
     * histograms, batching instruments. See DESIGN.md "Telemetry".
     */
    telemetry::MetricRegistry &metrics() { return metrics_; }
    const telemetry::MetricRegistry &metrics() const
    {
        return metrics_;
    }

    /**
     * The server's span ring: request/phase/per-layer spans for
     * sampled traced requests plus sampler counter tracks. Export
     * with telemetry::renderChromeTrace, the Metrics wire verb
     * ("trace" format), or GET /trace.
     */
    telemetry::Tracer &tracer() { return tracer_; }
    const telemetry::Tracer &tracer() const { return tracer_; }

    /**
     * The server's SLO tracker (good/bad counters and burn-rate
     * gauges over the telemetry registry); null when SLO tracking
     * is disabled. Valid after construction.
     */
    telemetry::SloTracker *slo() { return slo_.get(); }

    /**
     * The adaptive batching / fair-share policy engine; null
     * unless ServerConfig::adaptiveScheduling (and batching) is
     * on. Drives the batcher's per-model dispatch targets and the
     * tenant dispatch gate; its state backs the `sched` Metrics
     * verb and the djinn_sched_* gauges.
     */
    serve::AdaptiveScheduler *scheduler()
    {
        return scheduler_.get();
    }
    const serve::AdaptiveScheduler *scheduler() const
    {
        return scheduler_.get();
    }

    /** Bound HTTP scrape port; 0 when the endpoint is disabled. */
    uint16_t httpPort() const;

    /**
     * The always-on per-request flight recorder: phase breakdowns,
     * batch context, and outcomes for every inference request, with
     * tail-biased retention. Queried by /debug/tail, /debug/flight,
     * and the `tail` Metrics-verb format.
     */
    telemetry::FlightRecorder &flightRecorder()
    {
        return flightRecorder_;
    }
    const telemetry::FlightRecorder &flightRecorder() const
    {
        return flightRecorder_;
    }

    /**
     * The continuous time-series store over the registry, fed by
     * the background sampler; null when tracing or the sampler is
     * disabled. Stays queryable after stop() so post-mortem reads
     * of the final history work.
     */
    const telemetry::TimeSeriesStore *timeSeries() const
    {
        return timeseries_.get();
    }

    /**
     * The health watchdog over the store; null when the store is.
     * Its verdict backs /healthz and the `health` Metrics verb.
     */
    const telemetry::HealthMonitor *health() const
    {
        return health_.get();
    }

  private:
    /** Identity of one traced request's server-side span. */
    struct WireSpan {
        telemetry::TraceContext trace;
        uint64_t serverSpan = 0;
        std::string track;
    };

    void acceptLoop();
    void serveConnection(int fd);

    /** Join workers whose connections have finished; caller holds
     * workersMutex_. */
    void reapWorkersLocked();

    Response handleRequest(const Request &request,
                           telemetry::RequestTrace *trace,
                           const WireSpan *wire,
                           std::chrono::steady_clock::time_point
                               deadline,
                           telemetry::FlightRecord *flight);
    Response handleInference(const Request &request,
                             telemetry::RequestTrace *trace,
                             const WireSpan *wire,
                             std::chrono::steady_clock::time_point
                                 deadline,
                             telemetry::FlightRecord *flight);

    const ModelRegistry &registry_;
    ServerConfig config_;
    telemetry::MetricRegistry metrics_;
    telemetry::Tracer tracer_;
    telemetry::FlightRecorder flightRecorder_;
    std::unique_ptr<BatchingExecutor> batcher_;
    std::unique_ptr<serve::AdaptiveScheduler> scheduler_;
    std::unique_ptr<telemetry::SloTracker> slo_;
    std::unique_ptr<telemetry::TimeSeriesStore> timeseries_;
    std::unique_ptr<telemetry::HealthMonitor> health_;
    std::unique_ptr<telemetry::BackgroundSampler> sampler_;
    std::unique_ptr<HttpEndpoint> http_;
    double startTraceSeconds_ = -1.0;
    bool profilerStarted_ = false;

    /** Parsed ServerConfig::faultSpec (core/fault.hh bitmask). */
    uint32_t faultMask_ = 0;

    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};
    std::atomic<int64_t> inflight_{0};
    std::thread acceptor_;

    /** One entry per live (or not-yet-reaped) connection worker.
     * The done flag is the worker's last store before exit, so a
     * joiner observing it true joins a finished thread. */
    struct WorkerSlot {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };
    mutable std::mutex workersMutex_;
    std::vector<WorkerSlot> workers_;
    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> accepted_{0};

    // Live connection sockets. The acceptor registers every
    // accepted fd here *before* spawning its worker, so stop() can
    // always shut the socket down: no fd is ever in flight but
    // untracked. Workers deregister and close their fd on exit.
    std::mutex connMutex_;
    std::set<int> activeFds_;
};

} // namespace core
} // namespace djinn

#endif // DJINN_CORE_DJINN_SERVER_HH
