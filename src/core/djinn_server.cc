#include "core/djinn_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.hh"
#include "common/strings.hh"

namespace djinn {
namespace core {

DjinnServer::DjinnServer(const ModelRegistry &registry,
                         const ServerConfig &config)
    : registry_(registry), config_(config)
{
    if (config_.batching) {
        batcher_ = std::make_unique<BatchingExecutor>(
            registry_, config_.batchOptions);
    }
}

DjinnServer::~DjinnServer()
{
    stop();
}

Status
DjinnServer::start()
{
    if (running_.load())
        return Status::invalidArgument("server already running");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return Status::ioError(std::string("socket: ") +
                               std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        return Status::invalidArgument("bad bind address '" +
                                       config_.bindAddress + "'");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        Status s = Status::ioError(std::string("bind: ") +
                                   std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return s;
    }
    if (::listen(listenFd_, 128) < 0) {
        Status s = Status::ioError(std::string("listen: ") +
                                   std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return s;
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0) {
        port_ = ntohs(addr.sin_port);
    }

    running_.store(true);
    acceptor_ = std::thread([this]() { acceptLoop(); });
    inform("DjiNN listening on %s:%u with %zu models",
           config_.bindAddress.c_str(), port_, registry_.size());
    return Status::ok();
}

void
DjinnServer::stop()
{
    if (!running_.exchange(false)) {
        if (acceptor_.joinable())
            acceptor_.join();
        return;
    }
    // Closing the listening socket unblocks accept().
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptor_.joinable())
        acceptor_.join();
    // Unblock workers parked in read() on idle connections. Fds in
    // the registry are guaranteed not yet closed (workers remove
    // theirs under the same lock before closing).
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (int fd : activeFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> workers;
    {
        std::lock_guard<std::mutex> lock(workersMutex_);
        workers.swap(workers_);
    }
    for (auto &w : workers) {
        if (w.joinable())
            w.join();
    }
}

void
DjinnServer::acceptLoop()
{
    while (running_.load()) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // Listening socket was closed during stop().
            break;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        accepted_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(workersMutex_);
        workers_.emplace_back([this, fd]() { serveConnection(fd); });
    }
}

void
DjinnServer::serveConnection(int fd)
{
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        activeFds_.insert(fd);
    }
    FrameIo io(fd);
    while (running_.load()) {
        auto frame = io.readFrame();
        if (!frame.isOk())
            break; // Peer closed or protocol failure; drop quietly.
        auto request = decodeRequest(frame.value());
        Response response;
        if (!request.isOk()) {
            response.status = WireStatus::BadRequest;
            response.message = request.status().toString();
        } else {
            response = handleRequest(request.value());
        }
        Status s = io.writeFrame(encodeResponse(response));
        if (!s.isOk())
            break;
    }
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        activeFds_.erase(fd);
        ::close(fd);
    }
}

Response
DjinnServer::handleRequest(const Request &request)
{
    Response response;
    switch (request.type) {
      case RequestType::Ping:
        response.message = "pong";
        return response;
      case RequestType::ListModels:
        response.message = join(registry_.modelNames(), ",");
        return response;
      case RequestType::Describe:
        {
            auto network = registry_.find(request.model);
            if (!network) {
                response.status = WireStatus::UnknownModel;
                response.message =
                    "unknown model '" + request.model + "'";
                return response;
            }
            const nn::Shape &in = network->inputShape();
            response.message = strprintf(
                "input=%lldx%lldx%lld output=%lld",
                static_cast<long long>(in.c()),
                static_cast<long long>(in.h()),
                static_cast<long long>(in.w()),
                static_cast<long long>(
                    network->outputShape().sampleElems()));
            return response;
        }
      case RequestType::Stats:
        {
            std::string lines;
            for (const ModelStats &s : stats()) {
                double mean_ms = s.requests
                    ? s.serviceSeconds / s.requests * 1e3
                    : 0.0;
                lines += strprintf("%s,%llu,%llu,%.3f\n",
                                   s.model.c_str(),
                                   static_cast<unsigned long long>(
                                       s.requests),
                                   static_cast<unsigned long long>(
                                       s.rows),
                                   mean_ms);
            }
            response.message = lines;
            return response;
        }
      case RequestType::Inference:
        return handleInference(request);
    }
    response.status = WireStatus::BadRequest;
    response.message = "unknown request type";
    return response;
}

void
DjinnServer::recordService(const std::string &model, uint64_t rows,
                           double seconds)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    ModelStats &s = stats_[model];
    s.model = model;
    ++s.requests;
    s.rows += rows;
    s.serviceSeconds += seconds;
}

std::vector<DjinnServer::ModelStats>
DjinnServer::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    std::vector<ModelStats> out;
    out.reserve(stats_.size());
    for (const auto &[name, s] : stats_)
        out.push_back(s);
    return out;
}

Response
DjinnServer::handleInference(const Request &request)
{
    Response response;
    auto network = registry_.find(request.model);
    if (!network) {
        response.status = WireStatus::UnknownModel;
        response.message = "unknown model '" + request.model + "'";
        return response;
    }
    int64_t rows = request.rows;
    int64_t sample_elems = network->inputShape().sampleElems();
    if (rows <= 0 || rows > config_.maxRowsPerRequest ||
        static_cast<int64_t>(request.payload.size()) !=
            rows * sample_elems) {
        response.status = WireStatus::BadRequest;
        response.message = strprintf(
            "payload must be rows x %lld floats (1 <= rows <= %lld); "
            "got %u rows, %zu floats",
            static_cast<long long>(sample_elems),
            static_cast<long long>(config_.maxRowsPerRequest),
            request.rows, request.payload.size());
        return response;
    }

    auto start = std::chrono::steady_clock::now();
    try {
        if (batcher_) {
            auto future = batcher_->submit(request.model, rows,
                                           request.payload);
            InferenceResult result = future.get();
            if (!result.status.isOk()) {
                response.status = WireStatus::ServerError;
                response.message = result.status.toString();
                return response;
            }
            response.payload = std::move(result.output);
        } else {
            nn::Tensor input(network->inputShape().withBatch(rows));
            std::memcpy(input.data(), request.payload.data(),
                        request.payload.size() * sizeof(float));
            nn::Tensor output = network->forward(input);
            response.payload.assign(output.data(),
                                    output.data() + output.elems());
        }
    } catch (const FatalError &e) {
        response.status = WireStatus::ServerError;
        response.message = e.what();
        return response;
    }
    double seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    recordService(request.model, rows, seconds);
    requests_.fetch_add(1, std::memory_order_relaxed);
    return response;
}

} // namespace core
} // namespace djinn
