#include "core/djinn_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "common/logging.hh"
#include "common/strings.hh"
#include "common/thread_pool.hh"
#include "core/fault.hh"
#include "core/http_endpoint.hh"
#include "core/perf_sink.hh"
#include "nn/profile.hh"
#include "telemetry/attribution.hh"
#include "telemetry/build_info.hh"
#include "telemetry/dashboard.hh"
#include "telemetry/exposition.hh"
#include "telemetry/perf_counters.hh"
#include "telemetry/profiler.hh"

namespace djinn {
namespace core {

namespace {

// Registry metric families the server maintains (documented in
// DESIGN.md "Telemetry").
const char *const requestsTotalName = "djinn_requests_total";
const char *const rowsTotalName = "djinn_rows_total";
const char *const errorsTotalName = "djinn_request_errors_total";
const char *const connectionsTotalName = "djinn_connections_total";
const char *const acceptErrorsName = "djinn_accept_errors";
const char *const protocolErrorsName = "djinn_protocol_errors";
const char *const ioTimeoutsName = "djinn_io_timeouts_total";
const char *const shedTotalName = "djinn_shed_total";

/** Wire-status label for the error counter. */
const char *
errorReason(WireStatus status)
{
    switch (status) {
      case WireStatus::UnknownModel:
        return "unknown_model";
      case WireStatus::BadRequest:
        return "bad_request";
      case WireStatus::ServerError:
        return "server_error";
      case WireStatus::Overloaded:
        return "overloaded";
      case WireStatus::DeadlineExceeded:
        return "deadline_exceeded";
      case WireStatus::Ok:
        break;
    }
    return "ok";
}

/** Bucket a ProtocolError message into the `reason` label of
 * djinn_protocol_errors. */
const char *
protocolErrorReason(const std::string &message)
{
    if (message.find("too large") != std::string::npos)
        return "oversize";
    if (message.find("truncated") != std::string::npos)
        return "truncated";
    if (message.find("trailing bytes") != std::string::npos)
        return "trailing_bytes";
    return "malformed";
}

/** Accept() errnos worth retrying: transient resource exhaustion
 * or a connection that died in the backlog. */
bool
acceptErrnoTransient(int err)
{
    return err == EMFILE || err == ENFILE || err == ENOBUFS ||
           err == ENOMEM || err == ECONNABORTED || err == EAGAIN ||
           err == EWOULDBLOCK || err == EPROTO;
}

/** Flight-record outcome for a finished inference response. */
telemetry::FlightOutcome
flightOutcomeOf(WireStatus status)
{
    switch (status) {
      case WireStatus::Ok:
        return telemetry::FlightOutcome::Ok;
      case WireStatus::Overloaded:
        return telemetry::FlightOutcome::ShedQueueFull;
      case WireStatus::DeadlineExceeded:
        return telemetry::FlightOutcome::ShedDeadline;
      default:
        return telemetry::FlightOutcome::Error;
    }
}

} // namespace

DjinnServer::DjinnServer(const ModelRegistry &registry,
                         const ServerConfig &config)
    : registry_(registry), config_(config),
      tracer_(config.traceCapacity),
      flightRecorder_(config.flightCapacity, config.flightReservoir,
                      &metrics_)
{
    if (config_.batching) {
        batcher_ = std::make_unique<BatchingExecutor>(
            registry_, config_.batchOptions, &metrics_);
        if (config_.tracing)
            batcher_->setTracer(&tracer_);
    }
    if (config_.adaptiveScheduling && batcher_) {
        serve::SchedulerOptions sched_opts =
            config_.schedulerOptions;
        sched_opts.maxBatch = config_.batchOptions.maxQueries;
        sched_opts.maxDeficitSeconds = std::max(
            sched_opts.maxDeficitSeconds, config_.samplerPeriod);
        if (config_.sloTargetSeconds > 0.0)
            sched_opts.defaultSloSeconds =
                config_.sloTargetSeconds;
        scheduler_ = std::make_unique<serve::AdaptiveScheduler>(
            sched_opts, &metrics_);
        for (const auto &[tenant, weight] : config_.tenantWeights)
            scheduler_->addTenant(tenant, weight);
        for (const auto &[model, tenant] : config_.tenantModels)
            scheduler_->assignModel(model, tenant);
        serve::AdaptiveScheduler *sched = scheduler_.get();
        // Calibrate service time and charge the tenant's deficit
        // per dispatched batch; gate dispatches on fair share only
        // when tenants are actually configured.
        batcher_->setBatchObserver(
            [sched](const std::string &model, int64_t queries,
                    double seconds) {
                sched->observeBatch(model, queries, seconds);
                sched->chargeDispatch(model, seconds);
            });
        // The gate needs the sampler tick to refill deficits, so
        // it only arms when the sampler will actually run.
        if (!config_.tenantWeights.empty() && config_.tracing &&
            config_.samplerPeriod > 0.0) {
            batcher_->setDispatchGate(
                [sched](const std::string &model) {
                    return sched->allowDispatch(model);
                });
        }
    }
    if (config_.sloTargetSeconds > 0.0) {
        telemetry::SloOptions slo_opts;
        slo_opts.defaultTargetSeconds = config_.sloTargetSeconds;
        slo_opts.objective = config_.sloObjective;
        slo_ = std::make_unique<telemetry::SloTracker>(metrics_,
                                                       slo_opts);
    }
    if (!config_.faultSpec.empty()) {
        std::string error;
        faultMask_ = parseFaultSpec(config_.faultSpec, &error);
        if (!error.empty())
            inform("ignoring unknown fault(s): %s", error.c_str());
        if (faultMask_ != FaultNone) {
            inform("FAULT INJECTION ACTIVE: %s",
                   config_.faultSpec.c_str());
        }
    }
}

DjinnServer::~DjinnServer()
{
    stop();
}

Status
DjinnServer::start()
{
    if (running_.load())
        return Status::invalidArgument("server already running");

    // Size the shared compute pool before the first forward pass;
    // 0 keeps the automatic choice (DJINN_COMPUTE_THREADS
    // environment variable, then hardware concurrency).
    if (config_.computeThreads > 0)
        common::setComputeThreads(config_.computeThreads);
    metrics_.gauge("djinn_compute_threads")
        .set(static_cast<double>(common::computeThreads()));

    // Provenance gauges (djinn_build_info, djinn_start_time_seconds)
    // plus the trace-clock start time that backs /healthz uptime.
    telemetry::exportBuildInfo(metrics_);
    startTraceSeconds_ = telemetry::traceNowUs() * 1e-6;

    // Probe hardware counter availability once and export it: the
    // gauge tells scrapers whether djinn_phase_cycles carries
    // cycles (1) or fallback wall nanoseconds (0).
    metrics_.gauge(telemetry::perfAvailableMetricName)
        .set(telemetry::perfCountersAvailable() ? 1.0 : 0.0);

    // Validate declared per-model precisions against what the
    // registry actually holds, then export every model's serving
    // precision so scrapers can see mixed-precision deployments.
    for (const auto &[model, precision] : config_.modelPrecisions) {
        auto network = registry_.find(model);
        if (!network) {
            return Status::invalidArgument(
                "precision configured for unknown model '" + model +
                "'");
        }
        if (network->precision() != precision) {
            return Status::invalidArgument(strprintf(
                "model '%s' was built at precision %s but is "
                "configured for %s", model.c_str(),
                nn::precisionName(network->precision()),
                nn::precisionName(precision)));
        }
    }
    for (const std::string &model : registry_.modelNames()) {
        auto network = registry_.find(model);
        if (!network)
            continue;
        metrics_
            .gauge("djinn_model_precision",
                   {{"model", model},
                    {"precision",
                     nn::precisionName(network->precision())}})
            .set(1.0);
    }

    if (config_.profileHz > 0) {
        Status prof =
            telemetry::Profiler::instance().start(config_.profileHz);
        if (prof.isOk()) {
            profilerStarted_ = true;
            inform("sampling profiler on at %d Hz",
                   telemetry::Profiler::instance().hz());
        } else {
            inform("sampling profiler unavailable: %s",
                   prof.toString().c_str());
        }
    }

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return Status::ioError(std::string("socket: ") +
                               std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        return Status::invalidArgument("bad bind address '" +
                                       config_.bindAddress + "'");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        Status s = Status::ioError(std::string("bind: ") +
                                   std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return s;
    }
    if (::listen(listenFd_, 128) < 0) {
        Status s = Status::ioError(std::string("listen: ") +
                                   std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return s;
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0) {
        port_ = ntohs(addr.sin_port);
    }

    running_.store(true);
    acceptor_ = std::thread([this]() { acceptLoop(); });
    inform("DjiNN listening on %s:%u with %zu models",
           config_.bindAddress.c_str(), port_, registry_.size());

    if (config_.tracing && config_.samplerPeriod > 0.0) {
        // The continuous layer rides the sampler: every tick first
        // refreshes derived gauges (update hook), then sweeps the
        // tracer's counter tracks, then (post-sweep hook) appends
        // one time-series slot and re-evaluates health. Recreated
        // on every start() so a restarted server gets fresh
        // history.
        telemetry::TimeSeriesOptions ts_opts;
        ts_opts.capacity = config_.timeseriesCapacity;
        timeseries_ = std::make_unique<telemetry::TimeSeriesStore>(
            metrics_, ts_opts);
        health_ = std::make_unique<telemetry::HealthMonitor>(
            *timeseries_, metrics_, config_.healthOptions);
        // All saturation signals flow through this one sampling
        // path: the update hook refreshes the gauges whose sources
        // are not registry-backed (compute-pool busy count,
        // aggregate batcher backlog, SLO burn rates), then the
        // sweep exports every gauge as a counter track.
        sampler_ = std::make_unique<telemetry::BackgroundSampler>(
            tracer_, metrics_, config_.samplerPeriod,
            [this](telemetry::Tracer &) {
                timeseries_->sample(telemetry::traceNowUs() * 1e-6);
                health_->tick();
            },
            [this]() {
                common::ThreadPool &pool = common::computePool();
                metrics_.gauge("djinn_compute_pool_busy")
                    .set(static_cast<double>(pool.activeWorkers()));
                if (batcher_) {
                    metrics_.gauge("djinn_batch_queue_depth_total")
                        .set(static_cast<double>(
                            batcher_->queueDepthTotal()));
                }
                if (slo_)
                    slo_->updateBurnRates();
                if (scheduler_ && batcher_) {
                    // One control-loop step: feed the scheduler
                    // the latest backlog and burn signals, advance
                    // its EWMAs and deficits, then push the new
                    // per-model dispatch targets into the batcher.
                    for (const auto &model :
                         registry_.modelNames()) {
                        scheduler_->setBacklog(
                            model, batcher_->queueDepth(model));
                        if (slo_) {
                            scheduler_->observeBurnRate(
                                model, slo_->burnRate(model));
                        }
                    }
                    scheduler_->tick(telemetry::traceNowUs() *
                                     1e-6);
                    for (const auto &model :
                         registry_.modelNames()) {
                        batcher_->setBatchTarget(
                            model,
                            scheduler_->batchTarget(model));
                    }
                }
            });
        sampler_->start();
    }
    if (config_.httpPort >= 0) {
        http_ = std::make_unique<HttpEndpoint>(metrics_, tracer_);
        http_->setFlightRecorder(&flightRecorder_);
        http_->setTimeSeriesStore(timeseries_.get());
        http_->setHealthMonitor(health_.get());
        http_->setStartTime(startTraceSeconds_);
        Status s = http_->start(
            config_.bindAddress,
            static_cast<uint16_t>(config_.httpPort));
        if (!s.isOk()) {
            stop();
            return s;
        }
    }
    return Status::ok();
}

uint16_t
DjinnServer::httpPort() const
{
    return http_ ? http_->port() : 0;
}

void
DjinnServer::stop()
{
    // Flag the drain before tearing the sampler down so the last
    // health ticks (and any concurrent /healthz evaluation) know
    // the stall they may observe is intentional. The store and
    // monitor themselves survive stop() for post-mortem queries;
    // start() replaces them.
    if (health_)
        health_->setDraining(true);
    http_.reset();
    sampler_.reset();
    if (profilerStarted_) {
        telemetry::Profiler::instance().stop();
        profilerStarted_ = false;
    }
    if (!running_.exchange(false)) {
        if (acceptor_.joinable())
            acceptor_.join();
        return;
    }
    // Shutting the listening socket down unblocks accept(). The fd
    // is closed only after the acceptor has been joined: closing it
    // here would let the kernel reuse the number for a connection
    // socket while accept() may still reference it.
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptor_.joinable())
        acceptor_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    // Graceful drain: wait (bounded) for in-flight requests to
    // finish and flush their responses before cutting connections.
    // Workers observe running_ false and reject any request that
    // arrives during the drain with an Overloaded response; they
    // increment inflight_ BEFORE re-checking running_, so a request
    // whose frame was read just as running_ flipped is either
    // counted here (and drained) or rejected — never silently
    // dropped mid-execution.
    if (config_.drainTimeoutSeconds > 0.0) {
        draining_.store(true);
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                config_.drainTimeoutSeconds));
        while (inflight_.load() > 0 &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        draining_.store(false);
    }
    // The acceptor has exited, and it registered every accepted fd
    // in activeFds_ before spawning the fd's worker (draining late
    // accepts itself), so this pass is guaranteed to reach every
    // live connection: no worker can stay parked in read(). Fds in
    // the set are not yet closed (workers remove theirs under the
    // same lock before closing).
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (int fd : activeFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<WorkerSlot> workers;
    {
        std::lock_guard<std::mutex> lock(workersMutex_);
        workers.swap(workers_);
    }
    for (auto &w : workers) {
        if (w.thread.joinable())
            w.thread.join();
    }
}

size_t
DjinnServer::workerCount() const
{
    std::lock_guard<std::mutex> lock(workersMutex_);
    return workers_.size();
}

void
DjinnServer::reapWorkersLocked()
{
    size_t kept = 0;
    for (size_t i = 0; i < workers_.size(); ++i) {
        if (workers_[i].done->load(std::memory_order_acquire)) {
            // The done flag is the worker's last act, so the join
            // below finds a finished thread and returns at once.
            workers_[i].thread.join();
            continue;
        }
        if (kept != i)
            workers_[kept] = std::move(workers_[i]);
        ++kept;
    }
    workers_.resize(kept);
}

void
DjinnServer::acceptLoop()
{
    while (running_.load()) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (!running_.load())
                break; // Listening socket shut down by stop().
            // A transient accept failure (fd exhaustion, a
            // connection that died in the backlog, memory
            // pressure) must not kill the acceptor: the pending
            // backlog would strand and the server would serve
            // nothing ever again while appearing healthy. Count
            // it, back off briefly so a full fd table isn't a
            // busy-loop, and keep accepting.
            int err = errno;
            metrics_.counter(acceptErrorsName).inc();
            if (acceptErrnoTransient(err)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                continue;
            }
            inform("accept: %s; acceptor exiting",
                   std::strerror(err));
            break;
        }
        if (!running_.load()) {
            // Accepted in the window between stop() flipping
            // running_ and the listen-socket shutdown taking
            // effect: drain it here instead of leaking a
            // connection thread.
            ::shutdown(fd, SHUT_RDWR);
            ::close(fd);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        accepted_.fetch_add(1, std::memory_order_relaxed);
        metrics_.counter(connectionsTotalName).inc();
        // Register the fd before the worker exists so a concurrent
        // stop() always finds it in activeFds_.
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            activeFds_.insert(fd);
        }
        std::lock_guard<std::mutex> lock(workersMutex_);
        // Reap finished workers before adding one: the registry
        // stays proportional to live connections instead of
        // growing by one joinable-but-dead thread per connection
        // ever accepted (unbounded under connection churn).
        reapWorkersLocked();
        auto done = std::make_shared<std::atomic<bool>>(false);
        WorkerSlot slot;
        slot.done = done;
        slot.thread = std::thread([this, fd, done]() {
            serveConnection(fd);
            done->store(true, std::memory_order_release);
        });
        workers_.push_back(std::move(slot));
    }
}

void
DjinnServer::serveConnection(int fd)
{
    using Clock = std::chrono::steady_clock;
    common::setCurrentThreadName(
        strprintf("worker-%d", fd).c_str());
    FrameIo io(fd);
    if (config_.ioTimeoutSeconds > 0.0)
        io.setTimeout(config_.ioTimeoutSeconds);
    io.setFaults(faultMask_);
    while (running_.load()) {
        auto frame = io.readFrame();
        if (!frame.isOk()) {
            // Classify before dropping the connection: a stalled
            // or trickling peer shows up in djinn_io_timeouts_total,
            // a truncated or oversized frame in
            // djinn_protocol_errors; a clean close stays quiet.
            StatusCode code = frame.status().code();
            if (code == StatusCode::DeadlineExceeded) {
                metrics_.counter(ioTimeoutsName, {{"op", "read"}})
                    .inc();
            } else if (code == StatusCode::ProtocolError) {
                metrics_
                    .counter(protocolErrorsName,
                             {{"reason",
                               protocolErrorReason(
                                   frame.status().message())}})
                    .inc();
            }
            break;
        }

        // Anchor the request's deadline budget at frame arrival,
        // before decode: queueing and decode time spend from the
        // same budget the client measures against.
        auto arrival = Clock::now();

        // Frame-ingest time (first byte to complete frame): a
        // trickling peer inflates this and nothing else, so the
        // flight recorder can finger it as a tail contributor.
        double read_seconds = io.lastReadSeconds();

        // Drain/shutdown admission: count the request in-flight
        // BEFORE re-checking running_. stop() flips running_ and
        // then waits for inflight_ to reach zero, so a frame read
        // concurrently with stop() is either rejected here with
        // Overloaded (safe for the client to retry elsewhere) or
        // drained to a full response — never abandoned mid-way.
        inflight_.fetch_add(1, std::memory_order_acq_rel);
        if (!running_.load()) {
            Response rejected;
            rejected.status = WireStatus::Overloaded;
            rejected.message = "server draining";
            metrics_
                .counter(errorsTotalName,
                         {{"reason",
                           errorReason(rejected.status)}})
                .inc();
            io.writeFrame(encodeResponse(rejected));
            inflight_.fetch_sub(1, std::memory_order_acq_rel);
            break;
        }

        // The request span for cycle accounting runs from here
        // (frame in hand, before decode) to just after encode; the
        // per-phase deltas below are its constituents.
        auto request_begin = telemetry::threadCounterSet().snapshot();

        int64_t request_us =
            config_.tracing ? telemetry::traceNowUs() : 0;
        auto decode_start = Clock::now();
        telemetry::CounterScope decode_scope;
        auto request = decodeRequest(frame.value());
        const telemetry::CounterDelta &decode_delta =
            decode_scope.stop();
        double decode_seconds = std::chrono::duration<double>(
            Clock::now() - decode_start).count();

        // Phase tracing covers inference requests; control verbs
        // (ping/list/stats/...) are not load and would only add
        // label noise.
        std::optional<telemetry::RequestTrace> trace;
        if (request.isOk() &&
            request.value().type == RequestType::Inference) {
            trace.emplace(metrics_, request.value().model);
            trace->record(telemetry::Phase::Decode, decode_seconds);
            trace->recordWork(telemetry::Phase::Decode,
                              decode_delta);
        }

        // Wire-propagated trace context: sampled inference requests
        // get a server-side span tree on this worker's track.
        std::optional<WireSpan> wire_span;
        if (config_.tracing && trace &&
            request.value().trace.valid() &&
            request.value().trace.sampled()) {
            wire_span.emplace();
            wire_span->trace = request.value().trace;
            wire_span->serverSpan = tracer_.nextSpanId();
            wire_span->track = strprintf("worker-%d", fd);

            telemetry::TraceEvent e;
            e.name = "decode";
            e.category = "server";
            e.track = wire_span->track;
            e.traceId = wire_span->trace.traceId;
            e.spanId = tracer_.nextSpanId();
            e.parentSpanId = wire_span->serverSpan;
            e.startUs = request_us;
            e.durationUs =
                static_cast<int64_t>(decode_seconds * 1e6);
            tracer_.record(std::move(e));
        }

        Response response;
        telemetry::FlightRecord flight;
        if (!request.isOk()) {
            response.status = WireStatus::BadRequest;
            response.message = request.status().toString();
            metrics_
                .counter(protocolErrorsName,
                         {{"reason", protocolErrorReason(
                               request.status().message())}})
                .inc();
        } else {
            // A zero budget means no deadline; otherwise the
            // relative budget is anchored at frame arrival.
            auto deadline = BatchingExecutor::noDeadline();
            if (request.value().deadlineMs > 0) {
                deadline = arrival + std::chrono::milliseconds(
                                         request.value().deadlineMs);
            }
            response = handleRequest(
                request.value(), trace ? &*trace : nullptr,
                wire_span ? &*wire_span : nullptr, deadline,
                trace ? &flight : nullptr);
        }
        if (response.status != WireStatus::Ok) {
            metrics_
                .counter(errorsTotalName,
                         {{"reason", errorReason(response.status)}})
                .inc();
        }

        std::vector<uint8_t> wire;
        int64_t encode_us = wire_span ? telemetry::traceNowUs() : 0;
        auto encode_start = Clock::now();
        if (trace) {
            auto span = trace->span(telemetry::Phase::Encode);
            telemetry::CounterScope encode_scope;
            wire = encodeResponse(response);
            trace->recordWork(telemetry::Phase::Encode,
                              encode_scope.stop());
        } else {
            wire = encodeResponse(response);
        }
        double encode_seconds = std::chrono::duration<double>(
            Clock::now() - encode_start).count();
        if (trace) {
            telemetry::CounterDelta request_delta =
                telemetry::CounterSet::delta(
                    request_begin,
                    telemetry::threadCounterSet().snapshot());
            trace->recordRequestWork(request_delta);

            // Complete and publish the flight record: the phases
            // handleInference could not see (frame read, decode,
            // encode), the end-to-end total, the outcome, and the
            // whole-request perf-counter deltas. The exemplar on
            // djinn_request_seconds points the record's bucket at
            // this concrete request.
            flight.traceId = request.value().trace.traceId;
            flight.timestampUs = telemetry::traceNowUs();
            flight.readSeconds = read_seconds;
            flight.decodeSeconds = decode_seconds;
            flight.encodeSeconds = encode_seconds;
            flight.totalSeconds =
                read_seconds + std::chrono::duration<double>(
                                   Clock::now() - arrival)
                                   .count();
            flight.outcome = flightOutcomeOf(response.status);
            flight.hardware = request_delta.hardware;
            flight.cycles = request_delta.cycles;
            flight.instructions = request_delta.instructions;
            flight.cacheMisses = request_delta.cacheMisses;
            uint64_t record_ref = flightRecorder_.record(flight);

            telemetry::HistogramOptions request_opts;
            request_opts.exemplars = true;
            metrics_
                .histogram(telemetry::requestSecondsMetricName,
                           {{"model", request.value().model}},
                           request_opts)
                .record(flight.totalSeconds, flight.traceId,
                        record_ref);
        }
        if (wire_span) {
            int64_t done_us = telemetry::traceNowUs();
            telemetry::TraceEvent enc;
            enc.name = "encode";
            enc.category = "server";
            enc.track = wire_span->track;
            enc.traceId = wire_span->trace.traceId;
            enc.spanId = tracer_.nextSpanId();
            enc.parentSpanId = wire_span->serverSpan;
            enc.startUs = encode_us;
            enc.durationUs = done_us - encode_us;
            tracer_.record(std::move(enc));

            telemetry::TraceEvent req;
            req.name = "request " + request.value().model;
            req.category = "server";
            req.track = wire_span->track;
            req.traceId = wire_span->trace.traceId;
            req.spanId = wire_span->serverSpan;
            req.parentSpanId = wire_span->trace.spanId;
            req.startUs = request_us;
            req.durationUs = done_us - request_us;
            req.args.emplace_back("model", request.value().model);
            req.args.emplace_back(
                "rows", strprintf("%u", request.value().rows));
            req.args.emplace_back("status",
                                  errorReason(response.status));
            tracer_.record(std::move(req));
        }
        Status s = io.writeFrame(wire);
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
        if (!s.isOk()) {
            if (s.code() == StatusCode::DeadlineExceeded) {
                metrics_.counter(ioTimeoutsName, {{"op", "write"}})
                    .inc();
            }
            break;
        }
    }
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        activeFds_.erase(fd);
        ::close(fd);
    }
}

Response
DjinnServer::handleRequest(const Request &request,
                           telemetry::RequestTrace *trace,
                           const WireSpan *wire,
                           std::chrono::steady_clock::time_point
                               deadline,
                           telemetry::FlightRecord *flight)
{
    Response response;
    switch (request.type) {
      case RequestType::Ping:
        response.message = "pong";
        return response;
      case RequestType::ListModels:
        response.message = join(registry_.modelNames(), ",");
        return response;
      case RequestType::Describe:
        {
            auto network = registry_.find(request.model);
            if (!network) {
                response.status = WireStatus::UnknownModel;
                response.message =
                    "unknown model '" + request.model + "'";
                return response;
            }
            const nn::Shape &in = network->inputShape();
            response.message = strprintf(
                "input=%lldx%lldx%lld output=%lld precision=%s",
                static_cast<long long>(in.c()),
                static_cast<long long>(in.h()),
                static_cast<long long>(in.w()),
                static_cast<long long>(
                    network->outputShape().sampleElems()),
                nn::precisionName(network->precision()));
            return response;
        }
      case RequestType::Stats:
        {
            std::string lines;
            for (const ModelStats &s : stats()) {
                double mean_ms = s.requests
                    ? s.serviceSeconds / s.requests * 1e3
                    : 0.0;
                lines += strprintf("%s,%llu,%llu,%.3f\n",
                                   s.model.c_str(),
                                   static_cast<unsigned long long>(
                                       s.requests),
                                   static_cast<unsigned long long>(
                                       s.rows),
                                   mean_ms);
            }
            response.message = lines;
            return response;
        }
      case RequestType::Metrics:
        {
            // The model field selects the exposition format.
            std::string format = toLower(request.model);
            auto samples = metrics_.snapshot();
            if (format.empty() || format == "prometheus") {
                response.message =
                    telemetry::renderPrometheus(samples);
            } else if (format == "json") {
                response.message = telemetry::renderJson(samples);
            } else if (format == "trace") {
                response.message = telemetry::renderChromeTrace(
                    tracer_.events());
            } else if (format == "requests") {
                response.message = telemetry::renderRequestsCsv(
                    tracer_.recentRequests());
            } else if (format == "tail" ||
                       format.rfind("tail:", 0) == 0) {
                // "tail" attributes p99; "tail:N" percentile N.
                // One fleet-wide report, then one per model.
                double pct = 99.0;
                if (format.size() > 5)
                    pct = std::atof(format.c_str() + 5);
                auto records = flightRecorder_.snapshot();
                std::string out = telemetry::renderTailReport(
                    telemetry::attributeTail(records, pct));
                for (const telemetry::TailReport &report :
                     telemetry::attributeTailByModel(records, pct))
                    out += telemetry::renderTailReport(report);
                response.message = out;
            } else if (format == "profile" ||
                       format.rfind("profile:", 0) == 0) {
                // "profile" samples for one second; "profile:N"
                // for N seconds. Returns collapsed stacks.
                double window = 1.0;
                if (format.size() > 8)
                    window = std::atof(format.c_str() + 8);
                auto collapsed =
                    telemetry::Profiler::instance().collect(window);
                if (!collapsed.isOk()) {
                    response.status = WireStatus::ServerError;
                    response.message =
                        collapsed.status().toString();
                } else {
                    response.message = collapsed.value();
                }
            } else if (format == "health") {
                if (!health_) {
                    response.status = WireStatus::ServerError;
                    response.message =
                        "health monitor disabled (tracing or "
                        "sampler off)";
                } else {
                    double uptime = startTraceSeconds_ >= 0
                        ? telemetry::traceNowUs() * 1e-6
                            - startTraceSeconds_
                        : -1.0;
                    response.message = telemetry::renderHealthJson(
                        health_->evaluateNow(), uptime);
                }
            } else if (format == "top" ||
                       format.rfind("top:", 0) == 0) {
                // "top" renders the 60 s dashboard; "top:W" a W-
                // second window. Backs `djinn_cli top`.
                if (!timeseries_) {
                    response.status = WireStatus::ServerError;
                    response.message =
                        "time-series store disabled (tracing or "
                        "sampler off)";
                } else {
                    telemetry::DashboardOptions dash;
                    if (format.size() > 4) {
                        double w = std::atof(format.c_str() + 4);
                        if (w > 0)
                            dash.windowSeconds = w;
                    }
                    response.message = telemetry::renderTopDashboard(
                        *timeseries_, health_.get(), dash);
                }
            } else if (format == "sched") {
                // The adaptive scheduler's policy state (dispatch
                // targets, arrival/service EWMAs, tenant deficit
                // accounting). Backs `djinn_cli sched`.
                if (!scheduler_) {
                    response.status = WireStatus::ServerError;
                    response.message =
                        "adaptive scheduler disabled (--sched "
                        "adaptive requires --batching)";
                } else {
                    response.message = scheduler_->renderJson();
                }
            } else if (format.rfind("series:", 0) == 0) {
                // "series:<metric>" or "series:<metric>:<window>".
                if (!timeseries_) {
                    response.status = WireStatus::ServerError;
                    response.message =
                        "time-series store disabled (tracing or "
                        "sampler off)";
                } else {
                    telemetry::TimeSeriesStore::Window window;
                    std::string spec = request.model.substr(7);
                    size_t colon = spec.find(':');
                    if (colon != std::string::npos) {
                        double w =
                            std::atof(spec.c_str() + colon + 1);
                        if (w > 0)
                            window.seconds = w;
                        spec = spec.substr(0, colon);
                    }
                    window.name = spec;
                    if (window.name.empty()) {
                        response.status = WireStatus::BadRequest;
                        response.message =
                            "series spec needs a metric name";
                    } else {
                        response.message =
                            telemetry::renderTimeSeriesJson(
                                *timeseries_, window)
                            + "\n";
                    }
                }
            } else {
                response.status = WireStatus::BadRequest;
                response.message = "unknown metrics format '" +
                                   request.model + "'";
            }
            return response;
        }
      case RequestType::Inference:
        return handleInference(request, trace, wire, deadline,
                               flight);
    }
    response.status = WireStatus::BadRequest;
    response.message = "unknown request type";
    return response;
}

std::vector<DjinnServer::ModelStats>
DjinnServer::stats() const
{
    // A view over the telemetry registry: models enter the result
    // once they have a successful request recorded.
    std::map<std::string, ModelStats> by_model;
    auto samples = metrics_.snapshot();
    for (const telemetry::MetricSample &sample : samples) {
        auto model_it = sample.labels.find("model");
        if (model_it == sample.labels.end())
            continue;
        const std::string &model = model_it->second;
        if (sample.name == requestsTotalName) {
            by_model[model].requests =
                static_cast<uint64_t>(sample.value);
        } else if (sample.name == rowsTotalName) {
            by_model[model].rows =
                static_cast<uint64_t>(sample.value);
        } else if (sample.name == telemetry::phaseMetricName) {
            auto phase_it = sample.labels.find("phase");
            if (phase_it == sample.labels.end() ||
                phase_it->second !=
                    telemetry::phaseName(
                        telemetry::Phase::Service)) {
                continue;
            }
            ModelStats &s = by_model[model];
            s.serviceSeconds = sample.histogram.sum;
            s.p50ServiceMs = sample.histogram.quantile(0.5) * 1e3;
            s.p95ServiceMs = sample.histogram.quantile(0.95) * 1e3;
            s.p99ServiceMs = sample.histogram.quantile(0.99) * 1e3;
        }
    }
    std::vector<ModelStats> out;
    out.reserve(by_model.size());
    for (auto &[model, s] : by_model) {
        if (s.requests == 0)
            continue; // never served successfully; phase noise only
        s.model = model;
        out.push_back(std::move(s));
    }
    return out;
}

Response
DjinnServer::handleInference(const Request &request,
                             telemetry::RequestTrace *trace,
                             const WireSpan *wire,
                             std::chrono::steady_clock::time_point
                                 deadline,
                             telemetry::FlightRecord *flight)
{
    Response response;
    if (flight) {
        flight->setModel(request.model);
        flight->rows = request.rows;
    }
    auto network = registry_.find(request.model);
    if (!network) {
        response.status = WireStatus::UnknownModel;
        response.message = "unknown model '" + request.model + "'";
        return response;
    }
    int64_t rows = request.rows;
    int64_t sample_elems = network->inputShape().sampleElems();
    if (rows <= 0 || rows > config_.maxRowsPerRequest ||
        static_cast<int64_t>(request.payload.size()) !=
            rows * sample_elems) {
        response.status = WireStatus::BadRequest;
        response.message = strprintf(
            "payload must be rows x %lld floats (1 <= rows <= %lld); "
            "got %u rows, %zu floats",
            static_cast<long long>(sample_elems),
            static_cast<long long>(config_.maxRowsPerRequest),
            request.rows, request.payload.size());
        return response;
    }

    int64_t batch_rows = rows;
    auto start = std::chrono::steady_clock::now();
    try {
        if (batcher_) {
            // The batching executor records the queue-wait and
            // (per-pass) forward phases itself, and emits the batch
            // and per-layer spans for traced requests. Cycle
            // accounting: the worker's blocked span (submit to
            // resolution) is this request's queue_wait work — near
            // zero cycles while parked, honestly reflecting that
            // waiting burns no CPU — while the pass's forward
            // cycles are recorded per batch by the dispatcher.
            if (scheduler_)
                scheduler_->observeArrival(request.model, 1);
            telemetry::CounterScope wait_scope;
            auto future =
                wire ? batcher_->submit(request.model, rows,
                                        request.payload, wire->trace,
                                        wire->serverSpan, deadline)
                     : batcher_->submit(request.model, rows,
                                        request.payload, deadline);
            InferenceResult result = future.get();
            if (trace) {
                trace->recordWork(telemetry::Phase::QueueWait,
                                  wait_scope.stop());
            }
            if (flight) {
                flight->queueWaitSeconds = result.queueWaitSeconds;
                flight->forwardSeconds = result.forwardSeconds;
                flight->batchQueries =
                    static_cast<int32_t>(result.batchQueries);
                flight->batchRows =
                    static_cast<int32_t>(result.batchRows);
                flight->batchPosition =
                    static_cast<int32_t>(result.batchPosition);
                flight->admitQueueDepth =
                    static_cast<int32_t>(result.admitQueueDepth);
            }
            if (!result.status.isOk()) {
                // Admission and deadline sheds keep their own wire
                // statuses so clients can tell "retry after
                // backoff" (Overloaded — never executed) from a
                // genuine failure.
                if (result.status.code() == StatusCode::Overloaded)
                    response.status = WireStatus::Overloaded;
                else if (result.status.code() ==
                         StatusCode::DeadlineExceeded)
                    response.status = WireStatus::DeadlineExceeded;
                else
                    response.status = WireStatus::ServerError;
                response.message = result.status.message();
                return response;
            }
            response.payload = std::move(result.output);
            batch_rows = result.batchRows;
        } else {
            // Without the batcher there is no dequeue point, so
            // enforce the deadline here: shed before the forward
            // pass rather than burn a full pass on a result the
            // client has already written off.
            if (deadline != BatchingExecutor::noDeadline() &&
                std::chrono::steady_clock::now() >= deadline) {
                metrics_
                    .counter(shedTotalName,
                             {{"model", request.model},
                              {"reason", "deadline"}})
                    .inc();
                response.status = WireStatus::DeadlineExceeded;
                response.message =
                    "deadline expired before forward pass";
                return response;
            }
            nn::Tensor input(network->inputShape().withBatch(rows));
            std::memcpy(input.data(), request.payload.data(),
                        request.payload.size() * sizeof(float));
            std::optional<telemetry::RequestTrace::Span> span;
            if (trace)
                span.emplace(*trace, telemetry::Phase::Forward);
            CountingProfileSink profile;
            int64_t fwd_start_us =
                wire ? telemetry::traceNowUs() : 0;
            auto fwd_clock_start = std::chrono::steady_clock::now();
            telemetry::CounterScope forward_scope;
            nn::Tensor output =
                network->forward(input, wire ? &profile : nullptr);
            const telemetry::CounterDelta &forward_delta =
                forward_scope.stop();
            if (flight) {
                flight->forwardSeconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() -
                        fwd_clock_start)
                        .count();
                flight->batchQueries = 1;
                flight->batchRows = static_cast<int32_t>(rows);
                flight->batchPosition = 0;
            }
            if (span)
                span->stop();
            if (trace) {
                trace->recordWork(telemetry::Phase::Forward,
                                  forward_delta);
            }
            if (wire) {
                int64_t fwd_end_us = telemetry::traceNowUs();
                uint64_t fwd_span = tracer_.nextSpanId();
                telemetry::TraceEvent fwd;
                fwd.name = "forward";
                fwd.category = "server";
                fwd.track = wire->track;
                fwd.traceId = wire->trace.traceId;
                fwd.spanId = fwd_span;
                fwd.parentSpanId = wire->serverSpan;
                fwd.startUs = fwd_start_us;
                fwd.durationUs = fwd_end_us - fwd_start_us;
                tracer_.record(std::move(fwd));
                int64_t layer_start = fwd_start_us;
                for (size_t i = 0; i < profile.profiles().size();
                     ++i) {
                    const nn::LayerProfile &lp =
                        profile.profiles()[i];
                    telemetry::TraceEvent e;
                    e.name = lp.name;
                    e.category = "layer";
                    e.track = wire->track;
                    e.traceId = wire->trace.traceId;
                    e.spanId = tracer_.nextSpanId();
                    e.parentSpanId = fwd_span;
                    e.startUs = layer_start;
                    e.durationUs =
                        static_cast<int64_t>(lp.seconds * 1e6);
                    e.args.emplace_back(
                        "kind", nn::layerKindName(lp.kind));
                    e.args.emplace_back(
                        "flops",
                        strprintf("%llu",
                                  static_cast<unsigned long long>(
                                      lp.flops)));
                    e.args.emplace_back(
                        "activation_bytes",
                        strprintf("%llu",
                                  static_cast<unsigned long long>(
                                      lp.activationBytes)));
                    if (i < profile.deltas().size() &&
                        profile.deltas()[i].hardware) {
                        const telemetry::CounterDelta &d =
                            profile.deltas()[i];
                        e.args.emplace_back(
                            "cycles",
                            strprintf(
                                "%llu",
                                static_cast<unsigned long long>(
                                    d.cycles)));
                        e.args.emplace_back(
                            "instructions",
                            strprintf(
                                "%llu",
                                static_cast<unsigned long long>(
                                    d.instructions)));
                        e.args.emplace_back(
                            "ipc", strprintf("%.3f", d.ipc()));
                    }
                    layer_start += e.durationUs;
                    tracer_.record(std::move(e));
                }
            }
            response.payload.assign(output.data(),
                                    output.data() + output.elems());
        }
    } catch (const FatalError &e) {
        response.status = WireStatus::ServerError;
        response.message = e.what();
        return response;
    }
    double seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    if (trace)
        trace->record(telemetry::Phase::Service, seconds);
    if (slo_)
        slo_->record(request.model, seconds);
    if (config_.tracing) {
        tracer_.recordRequest({request.trace.traceId, request.model,
                               rows, batch_rows, seconds * 1e3});
    }
    telemetry::LabelMap model_label{{"model", request.model}};
    metrics_.counter(requestsTotalName, model_label).inc();
    metrics_.counter(rowsTotalName, model_label)
        .inc(static_cast<uint64_t>(rows));
    requests_.fetch_add(1, std::memory_order_relaxed);
    return response;
}

} // namespace core
} // namespace djinn
