/**
 * @file
 * A minimal embedded HTTP scrape endpoint so standard tooling can
 * observe a DjiNN server without speaking the wire protocol:
 *
 *   GET /healthz            -> 200 "ok"; with a HealthMonitor
 *                              attached, a structured JSON verdict
 *                              instead (status/uptime/reasons; 503
 *                              only when unhealthy)
 *   GET /metrics            -> Prometheus text exposition; with
 *                              `Accept: application/openmetrics-text`
 *                              the OpenMetrics rendering instead
 *                              (histogram buckets with exemplars)
 *   GET /trace?last=N       -> Chrome trace-event JSON (last N
 *                              events; omit for the whole ring)
 *   GET /profile?seconds=N  -> collapsed stacks from an N-second
 *                              sampling window (flamegraph.pl
 *                              input; 503 when the profiler cannot
 *                              run)
 *   GET /debug/tail?model=M&pct=P
 *                           -> tail-attribution JSON: which phase
 *                              (read/decode/queue_wait/forward/
 *                              encode) the pP cohort's excess
 *                              latency comes from, per model
 *   GET /debug/flight?record=N (or ?trace_id=HEX)
 *                           -> one flight record as JSON; resolves
 *                              /metrics exemplar refs
 *   GET /debug/timeseries?metric=M&window=W&step=S
 *                           -> windowed per-track series of one
 *                              metric family from the in-process
 *                              TimeSeriesStore, as JSON
 *
 * Error responses carry a consistent JSON body
 * (`{"error": ..., "status": N}`) with 400 for malformed
 * parameters, 404 for unknown routes or missing data, and 503 for
 * a subsystem that is not attached.
 *
 * The endpoint serves one connection at a time with HTTP/1.0
 * close-after-response semantics, which is all scrapers and
 * `curl` need; it is not a general web server.
 */

#ifndef DJINN_CORE_HTTP_ENDPOINT_HH
#define DJINN_CORE_HTTP_ENDPOINT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/health.hh"
#include "telemetry/metrics.hh"
#include "telemetry/timeseries.hh"
#include "telemetry/tracer.hh"

namespace djinn {
namespace core {

/** Embedded observability HTTP server (see file comment). */
class HttpEndpoint
{
  public:
    /**
     * @param metrics registry served under /metrics (non-const:
     *        the endpoint also counts its own I/O timeouts there,
     *        as `djinn_http_timeouts_total`).
     * @param tracer trace ring served under /trace.
     * Both must outlive the endpoint.
     */
    HttpEndpoint(telemetry::MetricRegistry &metrics,
                 const telemetry::Tracer &tracer);

    /** Stops the endpoint if still running. */
    ~HttpEndpoint();

    HttpEndpoint(const HttpEndpoint &) = delete;
    HttpEndpoint &operator=(const HttpEndpoint &) = delete;

    /**
     * Bind and start serving.
     *
     * @param bind_address IPv4 address to bind.
     * @param port TCP port; 0 picks an ephemeral port.
     */
    Status start(const std::string &bind_address, uint16_t port);

    /** Stop serving and join the acceptor thread. */
    void stop();

    /** The bound TCP port (valid after start()). */
    uint16_t port() const { return port_; }

    /** True while the endpoint is accepting connections. */
    bool running() const { return running_.load(); }

    /**
     * Per-connection socket I/O timeout, seconds (SO_RCVTIMEO /
     * SO_SNDTIMEO on accepted fds). A scraper that stalls its
     * request gets 408 instead of parking the single-threaded
     * acceptor forever (slowloris). Call before start(); <= 0
     * disables. Default 5 seconds.
     */
    void setIoTimeout(double seconds)
    {
        ioTimeoutSeconds_ = seconds;
    }

    /**
     * Attach the flight recorder behind /debug/tail and
     * /debug/flight. Call before start(); must outlive the
     * endpoint. Without one those routes answer 503.
     */
    void setFlightRecorder(
        const telemetry::FlightRecorder *recorder)
    {
        flightRecorder_ = recorder;
    }

    /**
     * Attach the time-series store behind /debug/timeseries. Call
     * before start(); must outlive the endpoint. Without one the
     * route answers 503.
     */
    void setTimeSeriesStore(const telemetry::TimeSeriesStore *store)
    {
        timeseries_ = store;
    }

    /**
     * Attach the health monitor: /healthz upgrades from the plain
     * "ok" to the structured JSON verdict. Call before start();
     * must outlive the endpoint.
     */
    void setHealthMonitor(const telemetry::HealthMonitor *monitor)
    {
        health_ = monitor;
    }

    /**
     * Server start time on the trace clock (traceNowUs()-seconds),
     * used to report uptime in /healthz. Negative omits uptime.
     */
    void setStartTime(double traceSeconds)
    {
        startTraceSeconds_ = traceSeconds;
    }

    /**
     * Dispatch one already-parsed request; exposed for tests.
     *
     * @param target the request target, e.g. "/trace?last=10".
     * @param accept the request's Accept header value (may be
     *        empty): `application/openmetrics-text` selects the
     *        exemplar-bearing OpenMetrics rendering of /metrics.
     * @param content_type out: the response content type.
     * @param body out: the response body.
     * @return the HTTP status code.
     */
    int handle(const std::string &target, const std::string &accept,
               std::string &content_type, std::string &body) const;

    /** Dispatch with an empty Accept header. */
    int
    handle(const std::string &target, std::string &content_type,
           std::string &body) const
    {
        return handle(target, std::string(), content_type, body);
    }

  private:
    void acceptLoop();
    void serveConnection(int fd);

    telemetry::MetricRegistry &metrics_;
    const telemetry::Tracer &tracer_;
    const telemetry::FlightRecorder *flightRecorder_ = nullptr;
    const telemetry::TimeSeriesStore *timeseries_ = nullptr;
    const telemetry::HealthMonitor *health_ = nullptr;
    double startTraceSeconds_ = -1.0;

    double ioTimeoutSeconds_ = 5.0;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::thread acceptor_;
};

} // namespace core
} // namespace djinn

#endif // DJINN_CORE_HTTP_ENDPOINT_HH
