#include "core/djinn_client.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/strings.hh"
#include "telemetry/tracer.hh"

namespace djinn {
namespace core {

DjinnClient::~DjinnClient()
{
    disconnect();
}

Status
DjinnClient::connect(const std::string &host, uint16_t port)
{
    if (fd_ >= 0)
        return Status::invalidArgument("already connected");
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::ioError(std::string("socket: ") +
                               std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return Status::invalidArgument("bad host address '" + host +
                                       "'");
    }
    if (connectTimeoutSeconds_ > 0.0) {
        // Bounded connect: start non-blocking, poll for the
        // handshake, then restore blocking mode for FrameIo.
        int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr));
        if (rc < 0 && errno != EINPROGRESS) {
            Status s = Status::ioError(std::string("connect: ") +
                                       std::strerror(errno));
            ::close(fd);
            return s;
        }
        if (rc < 0) {
            pollfd pfd{};
            pfd.fd = fd;
            pfd.events = POLLOUT;
            int timeout_ms = static_cast<int>(
                std::ceil(connectTimeoutSeconds_ * 1e3));
            int ready;
            do {
                ready = ::poll(&pfd, 1, timeout_ms);
            } while (ready < 0 && errno == EINTR);
            if (ready == 0) {
                ::close(fd);
                return Status::deadlineExceeded(
                    "connect timed out");
            }
            int err = 0;
            socklen_t err_len = sizeof(err);
            if (ready < 0 ||
                ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err,
                             &err_len) < 0 ||
                err != 0) {
                Status s = Status::ioError(
                    std::string("connect: ") +
                    std::strerror(err ? err : errno));
                ::close(fd);
                return s;
            }
        }
        ::fcntl(fd, F_SETFL, flags);
    } else if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)) < 0) {
        Status s = Status::ioError(std::string("connect: ") +
                                   std::strerror(errno));
        ::close(fd);
        return s;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fd_ = fd;
    host_ = host;
    port_ = port;
    return Status::ok();
}

void
DjinnClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Result<Response>
DjinnClient::roundTrip(const Request &request, FailureStage *stage)
{
    if (stage)
        *stage = FailureStage::Connect;
    if (fd_ < 0)
        return Status::unavailable("not connected");
    FrameIo io(fd_);
    if (requestTimeoutSeconds_ > 0.0) {
        io.setTimeout(requestTimeoutSeconds_);
        // The client's idle wait IS the request round trip, so the
        // same budget bounds the response's first byte.
        io.setIdleTimeout(requestTimeoutSeconds_);
    }
    io.setFaults(faults_);
    if (stage)
        *stage = FailureStage::Send;
    Status s = io.writeFrame(encodeRequest(request));
    if (!s.isOk())
        return s;
    if (stage)
        *stage = FailureStage::Receive;
    auto frame = io.readFrame();
    if (!frame.isOk())
        return frame.status();
    return decodeResponse(frame.value());
}

Result<std::vector<float>>
DjinnClient::infer(const std::string &model, int64_t rows,
                   const std::vector<float> &data)
{
    Request request;
    request.type = RequestType::Inference;
    request.model = model;
    request.rows = static_cast<uint32_t>(rows);
    request.payload = data;
    request.deadlineMs = deadlineMs_;

    for (int attempt = 0;; ++attempt) {
        if (tracing_) {
            // A fresh context per attempt: each try is its own
            // server-side span tree.
            request.trace = telemetry::makeTraceContext();
            lastTrace_ = request.trace;
        }
        FailureStage stage = FailureStage::Connect;
        auto result = inferOnce(request, &stage);
        if (result.isOk() ||
            !retryableFailure(result.status(), stage) ||
            attempt + 1 >= retryPolicy_.maxAttempts) {
            return result;
        }
        ++retries_;
        double backoff =
            retryBackoffSeconds(retryPolicy_, attempt, retryRng_);
        if (backoff > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(backoff)));
        }
        // A connect/send failure leaves the connection unusable;
        // reconnect to the remembered address before the retry. A
        // failed reconnect falls through to the next attempt's
        // "not connected" (Unavailable at Connect stage), which
        // keeps retrying until the attempt budget runs out.
        if (fd_ < 0 || stage != FailureStage::Receive) {
            disconnect();
            if (!host_.empty())
                connect(host_, port_);
        }
    }
}

Result<std::vector<float>>
DjinnClient::inferOnce(const Request &request, FailureStage *stage)
{
    int64_t start_us =
        tracing_ && tracer_ ? telemetry::traceNowUs() : 0;
    auto response = roundTrip(request, stage);
    if (tracing_ && tracer_) {
        telemetry::TraceEvent e;
        e.name = "infer " + request.model;
        e.category = "client";
        e.track = "client";
        e.traceId = request.trace.traceId;
        e.spanId = request.trace.spanId;
        e.startUs = start_us;
        e.durationUs = telemetry::traceNowUs() - start_us;
        e.args.emplace_back("model", request.model);
        tracer_->record(std::move(e));
    }
    if (!response.isOk())
        return response.status();
    const Response &r = response.value();
    if (r.status != WireStatus::Ok) {
        switch (r.status) {
          case WireStatus::UnknownModel:
            return Status::notFound(r.message);
          case WireStatus::BadRequest:
            return Status::invalidArgument(r.message);
          case WireStatus::Overloaded:
            return Status::overloaded(r.message);
          case WireStatus::DeadlineExceeded:
            return Status::deadlineExceeded(r.message);
          default:
            return Status::internal(r.message);
        }
    }
    return std::vector<float>(r.payload);
}

Result<std::vector<std::string>>
DjinnClient::listModels()
{
    Request request;
    request.type = RequestType::ListModels;
    auto response = roundTrip(request);
    if (!response.isOk())
        return response.status();
    const Response &r = response.value();
    if (r.status != WireStatus::Ok)
        return Status::internal(r.message);
    if (r.message.empty())
        return std::vector<std::string>{};
    return split(r.message, ',');
}

Result<DjinnClient::ModelInfo>
DjinnClient::describeModel(const std::string &model)
{
    Request request;
    request.type = RequestType::Describe;
    request.model = model;
    auto response = roundTrip(request);
    if (!response.isOk())
        return response.status();
    const Response &r = response.value();
    if (r.status == WireStatus::UnknownModel)
        return Status::notFound(r.message);
    if (r.status != WireStatus::Ok)
        return Status::internal(r.message);
    // Parse "input=CxHxW output=N [precision=P]"; the precision
    // field is absent from pre-quantization servers.
    ModelInfo info;
    char precision[16];
    int fields = std::sscanf(
        r.message.c_str(),
        "input=%" SCNd64 "x%" SCNd64 "x%" SCNd64
        " output=%" SCNd64 " precision=%15s",
        &info.channels, &info.height, &info.width, &info.outputs,
        precision);
    if (fields < 4) {
        return Status::protocolError("malformed describe reply '" +
                                     r.message + "'");
    }
    if (fields == 5)
        info.precision = precision;
    return info;
}

Result<std::vector<DjinnClient::ModelStats>>
DjinnClient::serverStats()
{
    Request request;
    request.type = RequestType::Stats;
    auto response = roundTrip(request);
    if (!response.isOk())
        return response.status();
    if (response.value().status != WireStatus::Ok)
        return Status::internal(response.value().message);

    std::vector<ModelStats> out;
    for (const std::string &line :
         split(response.value().message, '\n')) {
        if (line.empty())
            continue;
        auto fields = split(line, ',');
        if (fields.size() != 4) {
            return Status::protocolError(
                "malformed stats line '" + line + "'");
        }
        ModelStats s;
        s.model = fields[0];
        int64_t requests, rows;
        double mean;
        if (!parseInt(fields[1], requests) ||
            !parseInt(fields[2], rows) ||
            !parseDouble(fields[3], mean)) {
            return Status::protocolError(
                "malformed stats line '" + line + "'");
        }
        s.requests = static_cast<uint64_t>(requests);
        s.rows = static_cast<uint64_t>(rows);
        s.meanServiceMs = mean;
        out.push_back(std::move(s));
    }
    return out;
}

Result<std::string>
DjinnClient::metricsExposition(const std::string &format)
{
    Request request;
    request.type = RequestType::Metrics;
    request.model = format;
    auto response = roundTrip(request);
    if (!response.isOk())
        return response.status();
    if (response.value().status == WireStatus::BadRequest)
        return Status::invalidArgument(response.value().message);
    if (response.value().status != WireStatus::Ok)
        return Status::internal(response.value().message);
    return std::string(response.value().message);
}

Result<std::string>
DjinnClient::traceJson()
{
    return metricsExposition("trace");
}

Result<std::string>
DjinnClient::requestsCsv()
{
    return metricsExposition("requests");
}

Status
DjinnClient::ping()
{
    Request request;
    request.type = RequestType::Ping;
    auto response = roundTrip(request);
    if (!response.isOk())
        return response.status();
    if (response.value().message != "pong")
        return Status::protocolError("unexpected ping reply");
    return Status::ok();
}

} // namespace core
} // namespace djinn
