#include "core/protocol.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "core/fault.hh"

namespace djinn {
namespace core {

namespace {

constexpr uint32_t requestMagic = 0x444a4e52;  // 'DJNR'
constexpr uint32_t responseMagic = 0x444a4e41; // 'DJNA'

void
putU16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v & 0xff));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void
putBytes(std::vector<uint8_t> &out, const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    out.insert(out.end(), p, p + len);
}

/** Bounds-checked little-endian reader over a byte buffer. */
class Reader
{
  public:
    explicit Reader(const std::vector<uint8_t> &data) : data_(data) {}

    bool
    u8(uint8_t &v)
    {
        if (pos_ + 1 > data_.size())
            return false;
        v = data_[pos_];
        pos_ += 1;
        return true;
    }

    bool
    u16(uint16_t &v)
    {
        if (pos_ + 2 > data_.size())
            return false;
        v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
        pos_ += 2;
        return true;
    }

    bool
    u32(uint32_t &v)
    {
        if (pos_ + 4 > data_.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return true;
    }

    bool
    u64(uint64_t &v)
    {
        if (pos_ + 8 > data_.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return true;
    }

    bool
    str(std::string &out, size_t len)
    {
        if (pos_ + len > data_.size())
            return false;
        out.assign(reinterpret_cast<const char *>(&data_[pos_]), len);
        pos_ += len;
        return true;
    }

    bool
    floats(std::vector<float> &out, size_t count)
    {
        size_t bytes = count * sizeof(float);
        if (pos_ + bytes > data_.size())
            return false;
        out.resize(count);
        if (count)
            std::memcpy(out.data(), &data_[pos_], bytes);
        pos_ += bytes;
        return true;
    }

    bool atEnd() const { return pos_ == data_.size(); }

  private:
    const std::vector<uint8_t> &data_;
    size_t pos_ = 0;
};

} // namespace

std::vector<uint8_t>
encodeRequest(const Request &request)
{
    std::vector<uint8_t> out;
    bool traced = request.trace.valid();
    bool deadlined = request.deadlineMs > 0;
    uint16_t version = deadlined ? protocolVersionDeadline
                       : traced  ? protocolVersionTraced
                                 : protocolVersion;
    out.reserve(45 + request.model.size() +
                request.payload.size() * sizeof(float));
    putU32(out, requestMagic);
    putU16(out, version);
    putU16(out, static_cast<uint16_t>(request.type));
    putU32(out, static_cast<uint32_t>(request.model.size()));
    putBytes(out, request.model.data(), request.model.size());
    putU32(out, request.rows);
    putU64(out, request.payload.size());
    putBytes(out, request.payload.data(),
             request.payload.size() * sizeof(float));
    if (traced || deadlined) {
        // The v3 frame always carries the trace block (all-zero
        // when untraced) so the deadline block sits at a fixed
        // offset from the payload.
        putU64(out, request.trace.traceId);
        putU64(out, request.trace.spanId);
        out.push_back(request.trace.flags);
    }
    if (deadlined)
        putU32(out, request.deadlineMs);
    return out;
}

std::vector<uint8_t>
encodeResponse(const Response &response)
{
    std::vector<uint8_t> out;
    out.reserve(20 + response.message.size() +
                response.payload.size() * sizeof(float));
    putU32(out, responseMagic);
    putU16(out, protocolVersion);
    putU16(out, static_cast<uint16_t>(response.status));
    putU32(out, static_cast<uint32_t>(response.message.size()));
    putBytes(out, response.message.data(), response.message.size());
    putU64(out, response.payload.size());
    putBytes(out, response.payload.data(),
             response.payload.size() * sizeof(float));
    return out;
}

Result<Request>
decodeRequest(const std::vector<uint8_t> &data)
{
    Reader r(data);
    uint32_t magic;
    uint16_t version, type;
    if (!r.u32(magic) || magic != requestMagic)
        return Status::protocolError("bad request magic");
    if (!r.u16(version) ||
        (version != protocolVersion &&
         version != protocolVersionTraced &&
         version != protocolVersionDeadline))
        return Status::protocolError("unsupported protocol version");
    if (!r.u16(type))
        return Status::protocolError("truncated request header");
    Request request;
    switch (type) {
      case static_cast<uint16_t>(RequestType::Inference):
      case static_cast<uint16_t>(RequestType::ListModels):
      case static_cast<uint16_t>(RequestType::Ping):
      case static_cast<uint16_t>(RequestType::Describe):
      case static_cast<uint16_t>(RequestType::Stats):
      case static_cast<uint16_t>(RequestType::Metrics):
        request.type = static_cast<RequestType>(type);
        break;
      default:
        return Status::protocolError("unknown request type");
    }
    uint32_t name_len;
    if (!r.u32(name_len) || name_len > 4096)
        return Status::protocolError("bad model name length");
    if (!r.str(request.model, name_len))
        return Status::protocolError("truncated model name");
    uint64_t count;
    if (!r.u32(request.rows) || !r.u64(count))
        return Status::protocolError("truncated request payload "
                                     "header");
    if (!r.floats(request.payload, count))
        return Status::protocolError("truncated request payload");
    if (version >= protocolVersionTraced) {
        if (!r.u64(request.trace.traceId) ||
            !r.u64(request.trace.spanId) ||
            !r.u8(request.trace.flags))
            return Status::protocolError("truncated trace context");
    }
    if (version >= protocolVersionDeadline) {
        if (!r.u32(request.deadlineMs))
            return Status::protocolError("truncated deadline block");
    }
    if (!r.atEnd())
        return Status::protocolError("trailing bytes after request");
    return request;
}

Result<Response>
decodeResponse(const std::vector<uint8_t> &data)
{
    Reader r(data);
    uint32_t magic;
    uint16_t version, status;
    if (!r.u32(magic) || magic != responseMagic)
        return Status::protocolError("bad response magic");
    if (!r.u16(version) || version != protocolVersion)
        return Status::protocolError("unsupported protocol version");
    if (!r.u16(status) ||
        status > static_cast<uint16_t>(WireStatus::DeadlineExceeded))
        return Status::protocolError("bad response status");
    Response response;
    response.status = static_cast<WireStatus>(status);
    uint32_t msg_len;
    if (!r.u32(msg_len) || msg_len > 1u << 20)
        return Status::protocolError("bad response message length");
    if (!r.str(response.message, msg_len))
        return Status::protocolError("truncated response message");
    uint64_t count;
    if (!r.u64(count))
        return Status::protocolError("truncated response payload "
                                     "header");
    if (!r.floats(response.payload, count))
        return Status::protocolError("truncated response payload");
    if (!r.atEnd())
        return Status::protocolError("trailing bytes after response");
    return response;
}

namespace {

/**
 * Wait for @p events on @p fd for up to @p seconds (negative waits
 * indefinitely). DeadlineExceeded on expiry.
 */
Status
waitFd(int fd, short events, double seconds)
{
    for (;;) {
        struct pollfd p;
        p.fd = fd;
        p.events = events;
        p.revents = 0;
        int timeout_ms =
            seconds < 0.0
                ? -1
                : static_cast<int>(std::ceil(seconds * 1e3));
        int n = ::poll(&p, 1, timeout_ms);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("poll: ") +
                                   std::strerror(errno));
        }
        if (n == 0)
            return Status::deadlineExceeded("I/O timeout");
        return Status::ok();
    }
}

} // namespace

Status
FrameIo::writeFrame(const std::vector<uint8_t> &frame)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    uint8_t header[4];
    uint32_t len = static_cast<uint32_t>(frame.size());
    for (int i = 0; i < 4; ++i)
        header[i] = static_cast<uint8_t>((len >> (8 * i)) & 0xff);

    // The transfer timeout bounds the whole frame write, armed at
    // call entry: a peer that stops draining its receive window
    // cannot park this thread past the budget.
    auto write_all = [&](const uint8_t *data,
                         size_t size) -> Status {
        size_t sent = 0;
        while (sent < size) {
            if (timeout_ > 0.0) {
                double remaining =
                    timeout_ - std::chrono::duration<double>(
                                   Clock::now() - start).count();
                if (remaining <= 0.0)
                    return Status::deadlineExceeded(
                        "frame write timed out");
                Status w = waitFd(fd_, POLLOUT, remaining);
                if (!w.isOk())
                    return w.code() == StatusCode::DeadlineExceeded
                               ? Status::deadlineExceeded(
                                     "frame write timed out")
                               : w;
            }
            // MSG_NOSIGNAL: a peer that hung up must surface as
            // EPIPE, not a process-killing SIGPIPE.
            ssize_t n = ::send(fd_, data + sent, size - sent,
                               MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return Status::ioError(
                    std::string("write: ") + std::strerror(errno));
            }
            sent += static_cast<size_t>(n);
        }
        return Status::ok();
    };

    Status s = write_all(header, sizeof(header));
    if (!s.isOk())
        return s;
    if (faults_ & FaultStallAfterHeader) {
        // Leave the peer parked mid-frame: the length prefix
        // promises a body that never comes.
        return Status::ok();
    }
    if (faults_ & FaultMidFrameClose) {
        (void)write_all(frame.data(), frame.size() / 2);
        ::shutdown(fd_, SHUT_RDWR);
        return Status::ioError("fault: closed mid-frame");
    }
    return write_all(frame.data(), frame.size());
}

Result<std::vector<uint8_t>>
FrameIo::readFrame(uint32_t max_bytes)
{
    using Clock = std::chrono::steady_clock;
    // The transfer timeout arms at the frame's first byte: an idle
    // connection is not stalled, but once a peer starts a frame it
    // must deliver the whole thing within the budget (defeats
    // slowloris trickling as well as outright stalls).
    Clock::time_point armed{};
    bool transfer_started = false;

    auto read_all = [&](uint8_t *data, size_t size) -> Status {
        size_t got = 0;
        while (got < size) {
            if (!transfer_started) {
                if (idleTimeout_ > 0.0) {
                    Status w = waitFd(fd_, POLLIN, idleTimeout_);
                    if (!w.isOk())
                        return w.code() ==
                                       StatusCode::DeadlineExceeded
                                   ? Status::deadlineExceeded(
                                         "idle read timed out")
                                   : w;
                }
            } else if (timeout_ > 0.0) {
                double remaining =
                    timeout_ - std::chrono::duration<double>(
                                   Clock::now() - armed).count();
                if (remaining <= 0.0)
                    return Status::deadlineExceeded(
                        "frame read timed out");
                Status w = waitFd(fd_, POLLIN, remaining);
                if (!w.isOk())
                    return w.code() == StatusCode::DeadlineExceeded
                               ? Status::deadlineExceeded(
                                     "frame read timed out")
                               : w;
            }
            size_t want = size - got;
            if (faults_ & FaultSlowRead) {
                want = 1;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            }
            ssize_t n = ::read(fd_, data + got, want);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return Status::ioError(
                    std::string("read: ") + std::strerror(errno));
            }
            if (n == 0) {
                // A close before any byte of the frame is a normal
                // end of stream; a close mid-frame is a truncation
                // the server should count as a protocol error.
                if (transfer_started)
                    return Status::protocolError(
                        "truncated frame: peer closed mid-frame");
                return Status::ioError("connection closed");
            }
            if (!transfer_started) {
                transfer_started = true;
                armed = Clock::now();
            }
            got += static_cast<size_t>(n);
        }
        return Status::ok();
    };

    uint8_t header[4];
    Status s = read_all(header, sizeof(header));
    if (!s.isOk())
        return s;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<uint32_t>(header[i]) << (8 * i);
    if (len > max_bytes)
        return Status::protocolError("frame too large");
    std::vector<uint8_t> frame(len);
    if (len) {
        s = read_all(frame.data(), len);
        if (!s.isOk())
            return s;
    }
    lastReadSeconds_ =
        transfer_started
            ? std::chrono::duration<double>(Clock::now() - armed)
                  .count()
            : 0.0;
    return frame;
}

} // namespace core
} // namespace djinn
