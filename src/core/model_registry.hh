/**
 * @file
 * The in-memory model registry (paper Section 3.1, "Request
 * Processing"): DjiNN loads each pre-trained model once at
 * initialization, and all worker threads share read-only access, so
 * requests never load private model copies.
 */

#ifndef DJINN_CORE_MODEL_REGISTRY_HH
#define DJINN_CORE_MODEL_REGISTRY_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hh"
#include "nn/network.hh"
#include "nn/zoo.hh"

namespace djinn {
namespace core {

/**
 * Thread-safe registry of finalized, immutable networks keyed by
 * model name.
 */
class ModelRegistry
{
  public:
    ModelRegistry() = default;

    /**
     * Register a network. Takes shared ownership; the network must
     * be finalized.
     */
    Status add(nn::NetworkPtr network);

    /**
     * Build and register a zoo model with deterministic weights.
     *
     * @param model which zoo network.
     * @param seed weight initialization seed.
     * @param precision numeric precision to lower the model to
     *        (int8 is calibrated on the zoo calibration batch).
     */
    Status addZooModel(nn::zoo::Model model, uint64_t seed = 42,
                       nn::Precision precision = nn::Precision::F32);

    /**
     * Load a model from a netdef file and optional weight file.
     *
     * @param netdef_path path to the netdef text.
     * @param weights_path path to a .djw file, or empty to keep
     *        zeroed weights.
     */
    Status loadFromFiles(const std::string &netdef_path,
                         const std::string &weights_path);

    /**
     * Register @p instance as an additional serving name sharing
     * @p base's network (multi-tenant weight sharing): both names
     * resolve to the same immutable nn::Network, so N tenant
     * instances of one architecture keep exactly one copy of the
     * weights resident. Refcounted via shared ownership — the
     * weights stay alive until the last sharing name is unloaded.
     */
    Status addInstance(const std::string &instance,
                       const std::string &base);

    /**
     * Drop one registered name. The underlying network is freed
     * only when no other name (and no in-flight request) still
     * shares it.
     */
    Status unload(const std::string &name);

    /** Registered names currently sharing @p name's network,
     * including @p name itself; 0 when @p name is absent. */
    size_t instanceCount(const std::string &name) const;

    /** Look up a model; nullptr when absent. */
    std::shared_ptr<const nn::Network> find(
        const std::string &name) const;

    /** Names of all registered models, sorted. */
    std::vector<std::string> modelNames() const;

    /** Number of registered models. */
    size_t size() const;

    /** Total resident weight bytes. Networks shared by several
     * registered names (addInstance) are counted once — resident
     * bytes, not the sum over names. */
    uint64_t totalWeightBytes() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<const nn::Network>> models_;
};

} // namespace core
} // namespace djinn

#endif // DJINN_CORE_MODEL_REGISTRY_HH
