/**
 * @file
 * Server-side query batching (paper Section 5.1): queries for the
 * same model are stacked into one larger input matrix so a single
 * forward pass serves many queries, raising accelerator occupancy.
 */

#ifndef DJINN_CORE_BATCHER_HH
#define DJINN_CORE_BATCHER_HH

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.hh"
#include "core/model_registry.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace_context.hh"

namespace djinn {
namespace telemetry {
class Tracer;
} // namespace telemetry
} // namespace djinn

namespace djinn {
namespace core {

/** Batching policy. */
struct BatchOptions {
    /** Combine at most this many queries per forward pass. */
    int64_t maxQueries = 16;

    /**
     * Dispatch a partial batch after this long, so a lone query is
     * never stranded waiting for peers. Seconds.
     */
    double maxDelay = 2e-3;

    /**
     * Admission control: cap on queued queries per model. A submit
     * against a full queue is rejected immediately with an
     * Overloaded status instead of growing the queue without
     * bound. 0 derives the cap as 4 x maxQueries.
     */
    int64_t maxQueueDepth = 0;

    /**
     * The per-model queue cap when the live dispatch target is
     * @p currentBatch queries. An explicit maxQueueDepth always
     * wins; otherwise the cap tracks the *current* batch size —
     * not the static maxQueries — so an adaptive scheduler that
     * shrinks the batch also tightens admission instead of letting
     * the queue grow to a stale, larger cap. Floored at one
     * minimum batch's worth of slack.
     */
    int64_t
    queueDepthCapFor(int64_t currentBatch) const
    {
        if (maxQueueDepth > 0)
            return maxQueueDepth;
        return 4 * std::max<int64_t>(currentBatch, 1);
    }

    /** The queue cap at the static configured batch size. */
    int64_t
    queueDepthCap() const
    {
        return queueDepthCapFor(maxQueries);
    }
};

/** Result of one batched query. */
struct InferenceResult {
    Status status;
    std::vector<float> output;

    /** Total rows of the combined forward pass that served this
     * query (>= the query's own rows when batching took effect). */
    int64_t batchRows = 0;

    /** Queries combined into the serving batch. */
    int64_t batchQueries = 0;

    /** This query's position within the serving batch. */
    int64_t batchPosition = 0;

    /** Queue depth observed at enqueue, before this query joined
     * (sampled per request, so bursts shorter than the background
     * sampler interval still show in tail attribution). */
    int64_t admitQueueDepth = 0;

    /** Seconds this query waited between enqueue and dispatch. */
    double queueWaitSeconds = 0.0;

    /** Seconds of the combined forward pass that served it. */
    double forwardSeconds = 0.0;
};

/**
 * Batches inference requests per model and executes combined
 * forward passes on dispatcher threads (one per model, created
 * lazily). Thread-safe.
 */
class BatchingExecutor
{
  public:
    /**
     * @param registry the shared model registry.
     * @param options batching policy.
     * @param metrics optional telemetry destination; when set, the
     *        executor records per-model queue-wait and forward-pass
     *        histograms, per-pass batch sizes, and the live queue
     *        depth. Must outlive the executor.
     */
    BatchingExecutor(const ModelRegistry &registry,
                     const BatchOptions &options,
                     telemetry::MetricRegistry *metrics = nullptr);

    /** Stops dispatcher threads and fails queued queries. */
    ~BatchingExecutor();

    BatchingExecutor(const BatchingExecutor &) = delete;
    BatchingExecutor &operator=(const BatchingExecutor &) = delete;

    /**
     * Absolute per-query deadline on the steady clock; max() means
     * no deadline.
     */
    using Deadline = std::chrono::steady_clock::time_point;

    /** The no-deadline sentinel. */
    static constexpr Deadline
    noDeadline()
    {
        return Deadline::max();
    }

    /**
     * Submit one query: @p rows inputs for @p model, flattened into
     * @p data (rows x sample elements).
     *
     * Admission control applies: a submit against a full queue
     * resolves immediately with an Overloaded status (the query is
     * never executed). A query whose @p deadline has passed when
     * its batch is assembled is shed before the forward pass with
     * a DeadlineExceeded status.
     *
     * @return a future resolving to the query's output rows.
     */
    std::future<InferenceResult> submit(
        const std::string &model, int64_t rows,
        std::vector<float> data,
        Deadline deadline = noDeadline());

    /**
     * Submit one traced query. When @p trace is valid and a tracer
     * is attached, the dispatcher emits queue-wait, forward-pass,
     * and per-layer spans linked back to @p trace under
     * @p parent_span (the server-side request span).
     */
    std::future<InferenceResult> submit(
        const std::string &model, int64_t rows,
        std::vector<float> data,
        const telemetry::TraceContext &trace,
        uint64_t parent_span,
        Deadline deadline = noDeadline());

    /**
     * Attach a span destination. Call before serving traffic; the
     * tracer must outlive the executor.
     */
    void setTracer(telemetry::Tracer *tracer) { tracer_ = tracer; }

    /**
     * May @p model dispatch a batch right now? A dispatcher whose
     * gate answers false parks (rechecking every millisecond and
     * on queue activity) with its queue intact — the fair-share
     * scheduler's deficit accounting hook. Call before serving
     * traffic.
     */
    using DispatchGate = std::function<bool(const std::string &)>;
    void setDispatchGate(DispatchGate gate)
    {
        gate_ = std::move(gate);
    }

    /**
     * Called after every combined forward pass with the model, the
     * number of queries served, and the pass's service seconds —
     * the scheduler's service-time calibration and dispatch-charge
     * hook. Runs on the dispatcher thread; call before serving
     * traffic.
     */
    using BatchObserver = std::function<void(
        const std::string &, int64_t, double)>;
    void setBatchObserver(BatchObserver observer)
    {
        observer_ = std::move(observer);
    }

    /**
     * Set @p model's live dispatch target (clamped to
     * [1, maxQueries]). The dispatcher assembles batches toward
     * the target instead of the static maxQueries, the admission
     * cap re-derives from it, and occupancy is reported against
     * it. Safe to call at any time; targets for models with no
     * queue yet apply when the queue is created.
     */
    void setBatchTarget(const std::string &model, int64_t target);

    /** The live dispatch target for @p model. */
    int64_t batchTarget(const std::string &model) const;

    /** Queries currently queued for @p model (0 when it has no
     * queue), for the scheduler's backlog-aware latency
     * prediction. */
    int64_t queueDepth(const std::string &model) const;

    /** Number of combined forward passes executed so far. */
    uint64_t batchesExecuted() const;

    /** Number of queries served so far. */
    uint64_t queriesServed() const;

    /** Queries rejected at enqueue because the queue was full. */
    uint64_t
    queueFullSheds() const
    {
        return shedQueueFull_.load(std::memory_order_relaxed);
    }

    /** Queries shed at dequeue because their deadline expired. */
    uint64_t
    deadlineSheds() const
    {
        return shedDeadline_.load(std::memory_order_relaxed);
    }

    /**
     * Queries currently queued across every model, for the
     * background sampler's `djinn_batch_queue_depth_total` gauge.
     * Maintained atomically on the submit/dispatch path so reading
     * it never takes a queue mutex.
     */
    int64_t
    queueDepthTotal() const
    {
        return pendingTotal_.load(std::memory_order_relaxed);
    }

  private:
    struct Pending {
        int64_t rows;
        std::vector<float> data;
        std::promise<InferenceResult> promise;
        std::chrono::steady_clock::time_point enqueued;

        /** Originating trace; invalid for untraced queries. */
        telemetry::TraceContext trace;

        /** Server-side request span the batch spans hang off. */
        uint64_t parentSpan = 0;

        /** Enqueue time on the tracer timeline (microseconds). */
        int64_t enqueuedUs = 0;

        /** Absolute deadline; max() when the query has none. */
        Deadline deadline = Deadline::max();

        /** Queue depth seen at enqueue, before this query joined. */
        int64_t admitDepth = 0;
    };

    struct ModelQueue {
        std::mutex mutex;
        std::condition_variable cv;
        std::vector<Pending> pending;
        /** The served model name — the registry key, which for a
         * tenant instance differs from network->name() (instances
         * share the base network's weights; see
         * ModelRegistry::addInstance). The scheduler gate and
         * batch observer key on this, so per-tenant accounting
         * stays per-instance. */
        std::string name;
        std::shared_ptr<const nn::Network> network;
        std::thread dispatcher;
        bool stopping = false;

        /** Live dispatch target in [1, maxQueries]; atomic so the
         * scheduler can retarget without the queue mutex. */
        std::atomic<int64_t> target{1};

        // Cached telemetry instruments (null when telemetry is
        // off); resolved once at queue creation so the hot path
        // never takes the registry lookup mutex.
        telemetry::LogHistogram *queueWaitHist = nullptr;
        telemetry::LogHistogram *forwardHist = nullptr;
        telemetry::LogHistogram *batchRowsHist = nullptr;
        telemetry::LogHistogram *admitDepthHist = nullptr;
        telemetry::Gauge *depthGauge = nullptr;
        telemetry::Gauge *occupancyGauge = nullptr;
        telemetry::Counter *batchesCounter = nullptr;

        // Cycle accounting for the pass's forward phase, recorded
        // on the dispatcher thread (the thread that burns the
        // cycles; see DESIGN.md "Cycle accounting").
        telemetry::LogHistogram *forwardCyclesHist = nullptr;
        telemetry::LogHistogram *forwardInstructionsHist = nullptr;
        telemetry::LogHistogram *forwardIpcHist = nullptr;
        telemetry::LogHistogram *forwardCacheMissHist = nullptr;

        // Shed accounting (djinn_shed_total{model,reason}).
        telemetry::Counter *shedQueueFullCounter = nullptr;
        telemetry::Counter *shedDeadlineCounter = nullptr;
    };

    void dispatchLoop(ModelQueue *queue);
    ModelQueue *queueFor(const std::string &model,
                         Status &error);

    const ModelRegistry &registry_;
    BatchOptions options_;
    telemetry::MetricRegistry *metrics_;
    telemetry::Tracer *tracer_ = nullptr;
    DispatchGate gate_;
    BatchObserver observer_;

    mutable std::mutex mapMutex_;
    std::map<std::string, std::unique_ptr<ModelQueue>> queues_;

    /** Targets set before a model's queue exists, applied at queue
     * creation. Guarded by mapMutex_. */
    std::map<std::string, int64_t> pendingTargets_;
    bool stopping_ = false;

    std::atomic<uint64_t> batches_{0};
    std::atomic<uint64_t> queries_{0};
    std::atomic<int64_t> pendingTotal_{0};
    std::atomic<uint64_t> shedQueueFull_{0};
    std::atomic<uint64_t> shedDeadline_{0};
};

} // namespace core
} // namespace djinn

#endif // DJINN_CORE_BATCHER_HH
