/**
 * @file
 * The DjiNN wire protocol: a custom framed format over TCP/IP
 * (paper Section 3.1, "Decoupled Architecture").
 *
 * Request frame (version 1):
 *   u32 magic 'DJNR' | u16 version | u16 type | u32 model name len |
 *   name bytes | u32 rows | u64 payload float count | f32 payload[]
 *
 * Request frame (version 2) appends a trace-context block after the
 * payload:
 *   ... f32 payload[] | u64 trace id | u64 span id | u8 trace flags
 *
 * Request frame (version 3) appends a deadline block after the
 * trace-context block:
 *   ... u8 trace flags | u32 deadline budget (milliseconds)
 *
 * Clients emit the lowest version that carries what the request
 * needs: version 2 only when a trace context is attached, version 3
 * only when a deadline budget is attached (the trace block is then
 * always present, all-zero when untraced). Untraced, undeadlined
 * traffic stays byte-identical to version 1 and old servers keep
 * working; servers accept all three versions.
 *
 * Response frame:
 *   u32 magic 'DJNA' | u16 version | u16 status | u32 message len |
 *   message bytes | u64 payload float count | f32 payload[]
 *
 * All integers are little-endian. Payloads are row-major float
 * matrices: `rows` inputs of the model's per-sample element count.
 */

#ifndef DJINN_CORE_PROTOCOL_HH
#define DJINN_CORE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"
#include "telemetry/trace_context.hh"

namespace djinn {
namespace core {

/** Protocol version understood by this implementation. */
constexpr uint16_t protocolVersion = 1;

/** Protocol version carrying a trailing trace-context block. */
constexpr uint16_t protocolVersionTraced = 2;

/** Protocol version carrying trace-context and deadline blocks. */
constexpr uint16_t protocolVersionDeadline = 3;

/** Request frame types. */
enum class RequestType : uint16_t {
    Inference = 1,
    ListModels = 2,
    Ping = 3,
    /** Report a model's input geometry and output width. */
    Describe = 4,
    /** Report per-model service statistics. */
    Stats = 5,

    /**
     * Report the full telemetry exposition. The request's model
     * field selects the format: "" or "prometheus" for the text
     * exposition, "json" for JSON.
     */
    Metrics = 6,
};

/** Response status codes on the wire. */
enum class WireStatus : uint16_t {
    Ok = 0,
    UnknownModel = 1,
    BadRequest = 2,
    ServerError = 3,

    /** Load shed: admission refused (queue full or draining). The
     * request was NOT executed; retrying after backoff is safe. */
    Overloaded = 4,

    /** The request's deadline budget expired before the forward
     * pass ran; the request was shed without being executed. */
    DeadlineExceeded = 5,
};

/** A parsed request frame. */
struct Request {
    RequestType type = RequestType::Ping;

    /** Target model name (inference requests). */
    std::string model;

    /** Number of input rows in the payload. */
    uint32_t rows = 0;

    /** Flat row-major input data. */
    std::vector<float> payload;

    /**
     * Distributed trace context. When valid() the request encodes
     * as version 2 with a trailing trace block; otherwise the
     * frame is byte-identical to version 1.
     */
    telemetry::TraceContext trace;

    /**
     * Per-request deadline budget in milliseconds; 0 means no
     * deadline. Non-zero budgets encode as version 3. The budget is
     * relative (a duration, not a wall-clock instant) so client and
     * server clocks need not agree; the server anchors it at frame
     * arrival and sheds the request once the budget expires.
     */
    uint32_t deadlineMs = 0;
};

/** A parsed response frame. */
struct Response {
    WireStatus status = WireStatus::Ok;

    /** Error text or model listing. */
    std::string message;

    /** Flat row-major output data. */
    std::vector<float> payload;
};

/** Serialize a request into wire bytes. */
std::vector<uint8_t> encodeRequest(const Request &request);

/** Serialize a response into wire bytes. */
std::vector<uint8_t> encodeResponse(const Response &response);

/**
 * Parse a request frame from a complete buffer.
 *
 * @param data frame bytes (exactly one frame).
 * @return the request, or a ProtocolError status.
 */
Result<Request> decodeRequest(const std::vector<uint8_t> &data);

/** Parse a response frame from a complete buffer. */
Result<Response> decodeResponse(const std::vector<uint8_t> &data);

/**
 * Blocking framed I/O over a connected stream socket. Frames on
 * the wire are preceded by a u32 byte length. Writes use
 * MSG_NOSIGNAL so a hung-up peer surfaces as an IoError instead of
 * SIGPIPE.
 *
 * Timeouts are enforced with poll() so a stalled peer can never
 * park the calling thread forever:
 *  - the transfer timeout bounds one whole frame transfer, armed
 *    at the first byte for reads (an idle connection that has sent
 *    nothing is not "stalled") and at call entry for writes;
 *  - the idle timeout additionally bounds the wait for a frame's
 *    first byte (clients use it as the request round-trip bound;
 *    servers leave it off so keep-alive connections may idle).
 * Expiry surfaces as StatusCode::DeadlineExceeded.
 */
class FrameIo
{
  public:
    /** @param fd an open, connected stream socket. */
    explicit FrameIo(int fd) : fd_(fd) {}

    /**
     * Bound one frame transfer (see class comment) to
     * @p seconds; <= 0 restores fully blocking behaviour.
     */
    void setTimeout(double seconds) { timeout_ = seconds; }

    /**
     * Bound the wait for a frame's first byte to @p seconds;
     * <= 0 (the default) waits indefinitely.
     */
    void setIdleTimeout(double seconds) { idleTimeout_ = seconds; }

    /** Inject faults on this stream (core/fault.hh bitmask). */
    void setFaults(uint32_t mask) { faults_ = mask; }

    /** Write one length-prefixed frame. */
    Status writeFrame(const std::vector<uint8_t> &frame);

    /**
     * Read one length-prefixed frame.
     *
     * @param max_bytes reject frames larger than this.
     *
     * On failure the status code distinguishes: ProtocolError for
     * an oversized or truncated frame (the peer closed mid-frame),
     * DeadlineExceeded for a timeout, IoError for a clean close
     * before any byte of the frame or a socket error.
     */
    Result<std::vector<uint8_t>> readFrame(
        uint32_t max_bytes = 256u << 20);

    /**
     * Wall seconds the last successful readFrame() spent ingesting
     * its frame, measured from the first byte (the same instant
     * that arms the transfer timeout) to frame completion. Feeds
     * the flight recorder's `read` phase, where a trickling peer
     * (e.g. the slow-read fault) shows up as tail latency that no
     * server-side phase explains.
     */
    double lastReadSeconds() const { return lastReadSeconds_; }

  private:
    int fd_;
    double timeout_ = 0.0;
    double idleTimeout_ = 0.0;
    uint32_t faults_ = 0;
    double lastReadSeconds_ = 0.0;
};

} // namespace core
} // namespace djinn

#endif // DJINN_CORE_PROTOCOL_HH
