#include "core/batcher.hh"

#include <chrono>
#include <cstring>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "core/perf_sink.hh"
#include "nn/profile.hh"
#include "telemetry/perf_counters.hh"
#include "telemetry/trace.hh"
#include "telemetry/tracer.hh"

namespace djinn {
namespace core {

BatchingExecutor::BatchingExecutor(const ModelRegistry &registry,
                                   const BatchOptions &options,
                                   telemetry::MetricRegistry *metrics)
    : registry_(registry), options_(options), metrics_(metrics)
{
    if (options.maxQueries <= 0)
        fatal("BatchingExecutor: maxQueries must be positive");
    if (options.maxDelay < 0.0)
        fatal("BatchingExecutor: maxDelay must be non-negative");
    if (options.maxQueueDepth < 0)
        fatal("BatchingExecutor: maxQueueDepth must be "
              "non-negative");
}

BatchingExecutor::~BatchingExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mapMutex_);
        stopping_ = true;
        for (auto &[name, queue] : queues_) {
            std::lock_guard<std::mutex> qlock(queue->mutex);
            queue->stopping = true;
            queue->cv.notify_all();
        }
    }
    for (auto &[name, queue] : queues_) {
        if (queue->dispatcher.joinable())
            queue->dispatcher.join();
    }
}

BatchingExecutor::ModelQueue *
BatchingExecutor::queueFor(const std::string &model, Status &error)
{
    std::lock_guard<std::mutex> lock(mapMutex_);
    if (stopping_) {
        error = Status::unavailable("executor shutting down");
        return nullptr;
    }
    auto it = queues_.find(model);
    if (it != queues_.end())
        return it->second.get();

    auto network = registry_.find(model);
    if (!network) {
        error = Status::notFound("unknown model '" + model + "'");
        return nullptr;
    }
    auto queue = std::make_unique<ModelQueue>();
    queue->name = model;
    queue->network = std::move(network);
    auto pending_target = pendingTargets_.find(model);
    queue->target.store(pending_target != pendingTargets_.end()
                            ? pending_target->second
                            : options_.maxQueries,
                        std::memory_order_relaxed);
    if (metrics_) {
        using telemetry::Phase;
        const telemetry::LabelMap model_label{{"model", model}};
        queue->queueWaitHist = &metrics_->histogram(
            telemetry::phaseMetricName,
            {{"model", model},
             {"phase", telemetry::phaseName(Phase::QueueWait)}});
        queue->forwardHist = &metrics_->histogram(
            telemetry::phaseMetricName,
            {{"model", model},
             {"phase", telemetry::phaseName(Phase::Forward)}});
        // Batch sizes are small integers; linear-ish buckets from 1
        // to 64k rows at 2x resolution.
        telemetry::HistogramOptions rows_opts;
        rows_opts.firstBound = 1.0;
        rows_opts.growth = 2.0;
        rows_opts.bucketCount = 16;
        queue->batchRowsHist = &metrics_->histogram(
            "djinn_batch_rows", model_label, rows_opts);
        // Admit-time queue depth, sampled per request at enqueue:
        // the background-sampler gauge aliases bursts shorter than
        // its interval; this histogram does not.
        queue->admitDepthHist = &metrics_->histogram(
            "djinn_admit_queue_depth", model_label, rows_opts);
        queue->depthGauge = &metrics_->gauge(
            "djinn_batch_queue_depth", model_label);
        queue->occupancyGauge = &metrics_->gauge(
            "djinn_batch_occupancy", model_label);
        queue->batchesCounter = &metrics_->counter(
            "djinn_batches_total", model_label);
        const telemetry::LabelMap forward_label{
            {"model", model},
            {"phase", telemetry::phaseName(Phase::Forward)}};
        queue->forwardCyclesHist = &metrics_->histogram(
            telemetry::phaseCyclesMetricName, forward_label);
        queue->forwardInstructionsHist = &metrics_->histogram(
            telemetry::phaseInstructionsMetricName, forward_label);
        queue->forwardIpcHist = &metrics_->histogram(
            telemetry::phaseIpcMetricName, forward_label);
        queue->forwardCacheMissHist = &metrics_->histogram(
            telemetry::phaseCacheMissMetricName, forward_label);
        queue->shedQueueFullCounter = &metrics_->counter(
            "djinn_shed_total",
            {{"model", model}, {"reason", "queue_full"}});
        queue->shedDeadlineCounter = &metrics_->counter(
            "djinn_shed_total",
            {{"model", model}, {"reason", "deadline"}});
    }
    ModelQueue *raw = queue.get();
    raw->dispatcher = std::thread([this, raw]() {
        dispatchLoop(raw);
    });
    queues_.emplace(model, std::move(queue));
    return raw;
}

std::future<InferenceResult>
BatchingExecutor::submit(const std::string &model, int64_t rows,
                         std::vector<float> data, Deadline deadline)
{
    return submit(model, rows, std::move(data),
                  telemetry::TraceContext{}, 0, deadline);
}

std::future<InferenceResult>
BatchingExecutor::submit(const std::string &model, int64_t rows,
                         std::vector<float> data,
                         const telemetry::TraceContext &trace,
                         uint64_t parent_span, Deadline deadline)
{
    std::promise<InferenceResult> promise;
    std::future<InferenceResult> future = promise.get_future();

    Status error = Status::ok();
    ModelQueue *queue = queueFor(model, error);
    if (!queue) {
        promise.set_value({error, {}});
        return future;
    }

    int64_t sample_elems = queue->network->inputShape().sampleElems();
    if (rows <= 0 ||
        static_cast<int64_t>(data.size()) != rows * sample_elems) {
        promise.set_value(
            {Status::invalidArgument(strprintf(
                 "model '%s' expects %lld floats per row, got %zu "
                 "floats for %lld rows", model.c_str(),
                 static_cast<long long>(sample_elems), data.size(),
                 static_cast<long long>(rows))),
             {}});
        return future;
    }

    {
        std::lock_guard<std::mutex> lock(queue->mutex);
        // Admission control: reject at enqueue instead of queueing
        // without bound. The caller sees Overloaded and may retry
        // after backoff; the query was never executed. The cap is
        // re-derived from the live dispatch target on every
        // submit, so a scheduler that shrinks the batch tightens
        // admission with it.
        if (static_cast<int64_t>(queue->pending.size()) >=
            options_.queueDepthCapFor(queue->target.load(
                std::memory_order_relaxed))) {
            shedQueueFull_.fetch_add(1, std::memory_order_relaxed);
            if (queue->shedQueueFullCounter)
                queue->shedQueueFullCounter->inc();
            promise.set_value(
                {Status::overloaded(strprintf(
                     "model '%s' queue full (%lld queued)",
                     model.c_str(),
                     static_cast<long long>(
                         queue->pending.size()))),
                 {}});
            return future;
        }
        int64_t admit_depth =
            static_cast<int64_t>(queue->pending.size());
        queue->pending.push_back(
            {rows, std::move(data), std::move(promise),
             std::chrono::steady_clock::now(), trace, parent_span,
             tracer_ ? telemetry::traceNowUs() : 0, deadline,
             admit_depth});
        pendingTotal_.fetch_add(1, std::memory_order_relaxed);
        if (queue->admitDepthHist)
            queue->admitDepthHist->record(
                static_cast<double>(admit_depth));
        if (queue->depthGauge) {
            queue->depthGauge->set(
                static_cast<double>(queue->pending.size()));
        }
        queue->cv.notify_all();
    }
    return future;
}

void
BatchingExecutor::dispatchLoop(ModelQueue *queue)
{
    common::setCurrentThreadName(
        ("batch-" + queue->name).c_str());
    using Clock = std::chrono::steady_clock;
    const auto max_delay = std::chrono::duration_cast<
        Clock::duration>(std::chrono::duration<double>(
        options_.maxDelay));

    while (true) {
        std::vector<Pending> batch;
        int64_t target = options_.maxQueries;
        {
            std::unique_lock<std::mutex> lock(queue->mutex);
            queue->cv.wait(lock, [&]() {
                return queue->stopping || !queue->pending.empty();
            });
            if (queue->stopping && queue->pending.empty())
                return;
            // Give peers a chance to join the batch, up to the
            // live dispatch target (re-read inside the predicate:
            // a retarget mid-wait takes effect immediately).
            target = queue->target.load(std::memory_order_relaxed);
            if (static_cast<int64_t>(queue->pending.size()) <
                target && !queue->stopping) {
                queue->cv.wait_for(lock, max_delay, [&]() {
                    target = queue->target.load(
                        std::memory_order_relaxed);
                    return queue->stopping ||
                           static_cast<int64_t>(
                               queue->pending.size()) >= target;
                });
            }
            // Fair-share gate: hold the assembled-but-undispatched
            // batch until the scheduler grants this model's tenant
            // a dispatch slot. The queue mutex is released while
            // parked, so admission keeps running; a shutdown wakes
            // the wait and dispatches the remainder.
            if (gate_ && !queue->stopping) {
                const std::string &name = queue->name;
                while (!queue->stopping && !gate_(name)) {
                    queue->cv.wait_for(
                        lock, std::chrono::milliseconds(1));
                }
                target = queue->target.load(
                    std::memory_order_relaxed);
            }
            int64_t take = std::min<int64_t>(
                target,
                static_cast<int64_t>(queue->pending.size()));
            batch.assign(
                std::make_move_iterator(queue->pending.begin()),
                std::make_move_iterator(queue->pending.begin() +
                                        take));
            queue->pending.erase(queue->pending.begin(),
                                 queue->pending.begin() + take);
            pendingTotal_.fetch_sub(take, std::memory_order_relaxed);
            if (queue->depthGauge) {
                queue->depthGauge->set(
                    static_cast<double>(queue->pending.size()));
            }
        }
        if (batch.empty())
            continue;

        // Deadline enforcement at dequeue: shed expired queries
        // BEFORE the forward pass. Spending a batch slot on an
        // answer nobody is waiting for wastes compute exactly when
        // the service is most behind.
        {
            auto now = std::chrono::steady_clock::now();
            size_t kept = 0;
            for (size_t i = 0; i < batch.size(); ++i) {
                if (batch[i].deadline <= now) {
                    shedDeadline_.fetch_add(
                        1, std::memory_order_relaxed);
                    if (queue->shedDeadlineCounter)
                        queue->shedDeadlineCounter->inc();
                    batch[i].promise.set_value(
                        {Status::deadlineExceeded(
                             "deadline expired before forward "
                             "pass"),
                         {}});
                    continue;
                }
                if (kept != i)
                    batch[kept] = std::move(batch[i]);
                ++kept;
            }
            batch.resize(kept);
        }
        if (batch.empty())
            continue;

        auto dispatch_time = std::chrono::steady_clock::now();
        if (queue->queueWaitHist) {
            for (const auto &p : batch) {
                queue->queueWaitHist->record(
                    std::chrono::duration<double>(
                        dispatch_time - p.enqueued).count());
            }
        }

        const nn::Network &net = *queue->network;
        int64_t total_rows = 0;
        for (const auto &p : batch)
            total_rows += p.rows;

        // Trace when any query in the batch carries a sampled
        // context; the batch spans link back to every such trace.
        telemetry::Tracer *tracer = tracer_;
        const Pending *primary = nullptr;
        std::string trace_ids;
        if (tracer) {
            for (const auto &p : batch) {
                if (!p.trace.valid() || !p.trace.sampled())
                    continue;
                if (!primary)
                    primary = &p;
                if (!trace_ids.empty())
                    trace_ids += ",";
                trace_ids += telemetry::traceIdToHex(
                    p.trace.traceId);
            }
        }
        const std::string track = "batch-" + net.name();
        int64_t dispatch_us = 0;
        if (primary) {
            dispatch_us = telemetry::traceNowUs();
            for (const auto &p : batch) {
                if (!p.trace.valid() || !p.trace.sampled())
                    continue;
                telemetry::TraceEvent e;
                e.name = "queue_wait";
                e.category = "batch";
                e.track = track;
                e.traceId = p.trace.traceId;
                e.spanId = tracer->nextSpanId();
                e.parentSpanId = p.parentSpan;
                e.startUs = p.enqueuedUs;
                e.durationUs = dispatch_us - p.enqueuedUs;
                e.args.emplace_back(
                    "rows", strprintf("%lld",
                                      static_cast<long long>(
                                          p.rows)));
                tracer->record(std::move(e));
            }
        }

        // Stack all queries into one combined input matrix.
        nn::Tensor input(net.inputShape().withBatch(total_rows));
        int64_t row = 0;
        for (const auto &p : batch) {
            std::memcpy(input.sample(row), p.data.data(),
                        p.data.size() * sizeof(float));
            row += p.rows;
        }

        CountingProfileSink profile;
        int64_t fwd_start_us =
            primary ? telemetry::traceNowUs() : 0;
        telemetry::CounterScope forward_scope;
        nn::Tensor output =
            net.forward(input, primary ? &profile : nullptr);
        const telemetry::CounterDelta &forward_delta =
            forward_scope.stop();
        int64_t out_elems = net.outputShape().sampleElems();

        if (primary) {
            int64_t fwd_end_us = telemetry::traceNowUs();
            uint64_t fwd_span = tracer->nextSpanId();
            telemetry::TraceEvent fwd;
            fwd.name = "forward";
            fwd.category = "batch";
            fwd.track = track;
            fwd.traceId = primary->trace.traceId;
            fwd.spanId = fwd_span;
            fwd.parentSpanId = primary->parentSpan;
            fwd.startUs = fwd_start_us;
            fwd.durationUs = fwd_end_us - fwd_start_us;
            fwd.args.emplace_back(
                "batch_rows",
                strprintf("%lld",
                          static_cast<long long>(total_rows)));
            fwd.args.emplace_back(
                "queries",
                strprintf("%zu", batch.size()));
            fwd.args.emplace_back("trace_ids", trace_ids);
            tracer->record(std::move(fwd));

            // Lay the per-layer spans out sequentially under the
            // forward span using their measured durations.
            int64_t layer_start = fwd_start_us;
            for (size_t i = 0; i < profile.profiles().size(); ++i) {
                const nn::LayerProfile &lp = profile.profiles()[i];
                telemetry::TraceEvent e;
                e.name = lp.name;
                e.category = "layer";
                e.track = track;
                e.traceId = primary->trace.traceId;
                e.spanId = tracer->nextSpanId();
                e.parentSpanId = fwd_span;
                e.startUs = layer_start;
                e.durationUs = static_cast<int64_t>(
                    lp.seconds * 1e6);
                e.args.emplace_back(
                    "kind", nn::layerKindName(lp.kind));
                e.args.emplace_back(
                    "flops",
                    strprintf("%llu",
                              static_cast<unsigned long long>(
                                  lp.flops)));
                e.args.emplace_back(
                    "activation_bytes",
                    strprintf("%llu",
                              static_cast<unsigned long long>(
                                  lp.activationBytes)));
                if (i < profile.deltas().size() &&
                    profile.deltas()[i].hardware) {
                    const telemetry::CounterDelta &d =
                        profile.deltas()[i];
                    e.args.emplace_back(
                        "cycles",
                        strprintf("%llu",
                                  static_cast<unsigned long long>(
                                      d.cycles)));
                    e.args.emplace_back(
                        "instructions",
                        strprintf("%llu",
                                  static_cast<unsigned long long>(
                                      d.instructions)));
                    e.args.emplace_back(
                        "ipc", strprintf("%.3f", d.ipc()));
                }
                layer_start += e.durationUs;
                tracer->record(std::move(e));
            }
        }

        double forward_seconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - dispatch_time)
                .count();
        if (queue->forwardHist) {
            queue->forwardHist->record(forward_seconds);
            queue->batchRowsHist->record(
                static_cast<double>(total_rows));
            queue->batchesCounter->inc();
            // Occupancy against the *live* dispatch target: with
            // an adaptive scheduler the static maxQueries would
            // read misleadingly low after a shrink (and > 1.0
            // after a grow past a stale denominator).
            queue->occupancyGauge->set(
                static_cast<double>(batch.size()) /
                static_cast<double>(std::max<int64_t>(target, 1)));
            queue->forwardCyclesHist->record(
                static_cast<double>(forward_delta.work()));
            if (forward_delta.hardware) {
                queue->forwardInstructionsHist->record(
                    static_cast<double>(forward_delta.instructions));
                queue->forwardIpcHist->record(forward_delta.ipc());
                queue->forwardCacheMissHist->record(
                    static_cast<double>(forward_delta.cacheMisses));
            }
        }

        if (observer_) {
            observer_(queue->name,
                      static_cast<int64_t>(batch.size()),
                      forward_seconds);
        }

        // Count before fulfilling the promises: a caller must never
        // observe a resolved future with stale counters.
        batches_.fetch_add(1, std::memory_order_relaxed);
        queries_.fetch_add(batch.size(), std::memory_order_relaxed);

        // Scatter results back to their queries, each annotated
        // with its own view of the batch (position, queue wait,
        // admit depth) for the flight recorder.
        row = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
            Pending &p = batch[i];
            std::vector<float> slice(
                output.sample(row),
                output.sample(row) + p.rows * out_elems);
            row += p.rows;
            InferenceResult result{Status::ok(), std::move(slice),
                                   total_rows};
            result.batchQueries =
                static_cast<int64_t>(batch.size());
            result.batchPosition = static_cast<int64_t>(i);
            result.admitQueueDepth = p.admitDepth;
            result.queueWaitSeconds =
                std::chrono::duration<double>(dispatch_time -
                                              p.enqueued)
                    .count();
            result.forwardSeconds = forward_seconds;
            p.promise.set_value(std::move(result));
        }
    }
}

void
BatchingExecutor::setBatchTarget(const std::string &model,
                                 int64_t target)
{
    target = std::max<int64_t>(
        1, std::min(target, options_.maxQueries));
    std::lock_guard<std::mutex> lock(mapMutex_);
    pendingTargets_[model] = target;
    auto it = queues_.find(model);
    if (it == queues_.end())
        return;
    ModelQueue *queue = it->second.get();
    queue->target.store(target, std::memory_order_relaxed);
    // Wake the dispatcher: a smaller target may make the current
    // backlog dispatchable right now.
    std::lock_guard<std::mutex> qlock(queue->mutex);
    queue->cv.notify_all();
}

int64_t
BatchingExecutor::batchTarget(const std::string &model) const
{
    std::lock_guard<std::mutex> lock(mapMutex_);
    auto it = queues_.find(model);
    if (it != queues_.end())
        return it->second->target.load(std::memory_order_relaxed);
    auto pending = pendingTargets_.find(model);
    return pending != pendingTargets_.end() ? pending->second
                                            : options_.maxQueries;
}

int64_t
BatchingExecutor::queueDepth(const std::string &model) const
{
    std::lock_guard<std::mutex> lock(mapMutex_);
    auto it = queues_.find(model);
    if (it == queues_.end())
        return 0;
    std::lock_guard<std::mutex> qlock(it->second->mutex);
    return static_cast<int64_t>(it->second->pending.size());
}

uint64_t
BatchingExecutor::batchesExecuted() const
{
    return batches_.load(std::memory_order_relaxed);
}

uint64_t
BatchingExecutor::queriesServed() const
{
    return queries_.load(std::memory_order_relaxed);
}

} // namespace core
} // namespace djinn
