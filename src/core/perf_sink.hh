/**
 * @file
 * A ProfileSink that augments per-layer wall profiles with
 * hardware counter deltas: onLayerStart snapshots the executing
 * thread's perf group, onLayer closes the delta, so a profiled
 * forward pass yields cycles / instructions / IPC / cache misses
 * per layer alongside the usual seconds and FLOPs. Deltas are
 * parallel to profiles() by index. With counters unavailable the
 * deltas degrade to clock-only (hardware == false) and consumers
 * fall back to wall time, exactly like the phase accounting.
 *
 * Counter caveat (DESIGN.md "Cycle accounting"): the perf group
 * counts the thread running the forward pass. Work the compute
 * pool's workers do on behalf of a layer is attributed to the
 * sampling profiler's stacks, not to this sink's deltas — the
 * caller participates in every parallelFor, so the deltas remain a
 * consistent (per-thread) share of each layer's cost.
 */

#ifndef DJINN_CORE_PERF_SINK_HH
#define DJINN_CORE_PERF_SINK_HH

#include <vector>

#include "nn/profile.hh"
#include "telemetry/perf_counters.hh"

namespace djinn {
namespace core {

/** VectorProfileSink plus per-layer counter deltas. */
class CountingProfileSink : public nn::VectorProfileSink
{
  public:
    void
    onLayerStart(const std::string &, nn::LayerKind) override
    {
        begin_ = telemetry::threadCounterSet().snapshot();
    }

    void
    onLayer(const nn::LayerProfile &profile) override
    {
        deltas_.push_back(telemetry::CounterSet::delta(
            begin_, telemetry::threadCounterSet().snapshot()));
        nn::VectorProfileSink::onLayer(profile);
    }

    /** Counter movement per layer, parallel to profiles(). */
    const std::vector<telemetry::CounterDelta> &
    deltas() const
    {
        return deltas_;
    }

    /** Sum of the per-layer deltas (the forward pass's total). */
    telemetry::CounterDelta
    total() const
    {
        telemetry::CounterDelta sum;
        for (const auto &d : deltas_)
            sum.add(d);
        return sum;
    }

  private:
    telemetry::CounterSet::Snapshot begin_;
    std::vector<telemetry::CounterDelta> deltas_;
};

} // namespace core
} // namespace djinn

#endif // DJINN_CORE_PERF_SINK_HH
