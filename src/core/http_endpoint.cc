#include "core/http_endpoint.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sys/time.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/strings.hh"
#include "telemetry/attribution.hh"
#include "telemetry/exposition.hh"
#include "telemetry/profiler.hh"

namespace djinn {
namespace core {

namespace {

const char *
statusText(int code)
{
    switch (code) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 503: return "Service Unavailable";
    }
    return "Internal Server Error";
}

/**
 * Fill the response for an error: every debug/observability error
 * answers the same JSON shape so scripted clients need one parser.
 */
int
jsonError(int code, const std::string &message,
          std::string &content_type, std::string &body)
{
    content_type = "application/json";
    body = "{\"error\": \"" + telemetry::jsonEscape(message)
        + "\", \"status\": " + std::to_string(code) + "}\n";
    return code;
}

/**
 * Upper bound for `last=`-style count parameters: large enough for
 * any real ring, small enough that a hostile value cannot ask for
 * an absurd reservation.
 */
constexpr int64_t maxCountParam = 10 * 1000 * 1000;

/** The value of `key` in an &-joined query string ("" if absent). */
std::string
queryParam(const std::string &query, const std::string &key)
{
    for (const std::string &kv : split(query, '&')) {
        size_t eq = kv.find('=');
        if (eq != std::string::npos && kv.substr(0, eq) == key)
            return kv.substr(eq + 1);
    }
    return std::string();
}

/** Case-insensitively pull one header's value out of a raw request
 * head ("" if absent). */
std::string
headerValue(const std::string &head, const std::string &name)
{
    for (const std::string &line : split(head, '\n')) {
        if (line.size() < name.size() + 1)
            continue;
        size_t i = 0;
        for (; i < name.size(); ++i)
            if (std::tolower(static_cast<unsigned char>(line[i])) !=
                std::tolower(static_cast<unsigned char>(name[i])))
                break;
        if (i < name.size() || line[i] != ':')
            continue;
        std::string value = line.substr(i + 1);
        while (!value.empty() &&
               (value.front() == ' ' || value.front() == '\t'))
            value.erase(value.begin());
        while (!value.empty() &&
               (value.back() == '\r' || value.back() == ' '))
            value.pop_back();
        return value;
    }
    return std::string();
}

} // namespace

HttpEndpoint::HttpEndpoint(telemetry::MetricRegistry &metrics,
                           const telemetry::Tracer &tracer)
    : metrics_(metrics), tracer_(tracer)
{}

HttpEndpoint::~HttpEndpoint()
{
    stop();
}

Status
HttpEndpoint::start(const std::string &bind_address, uint16_t port)
{
    if (running_.load())
        return Status::invalidArgument("endpoint already running");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return Status::ioError(std::string("socket: ") +
                               std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bind_address.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        return Status::invalidArgument("bad bind address '" +
                                       bind_address + "'");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        Status s = Status::ioError(std::string("bind: ") +
                                   std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return s;
    }
    if (::listen(listenFd_, 16) < 0) {
        Status s = Status::ioError(std::string("listen: ") +
                                   std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return s;
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0) {
        port_ = ntohs(addr.sin_port);
    }

    running_.store(true);
    acceptor_ = std::thread([this]() { acceptLoop(); });
    inform("HTTP scrape endpoint on %s:%u", bind_address.c_str(),
           port_);
    return Status::ok();
}

void
HttpEndpoint::stop()
{
    if (!running_.exchange(false)) {
        if (acceptor_.joinable())
            acceptor_.join();
        return;
    }
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptor_.joinable())
        acceptor_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
HttpEndpoint::acceptLoop()
{
    while (running_.load()) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // Listening socket shut down by stop().
        }
        if (!running_.load()) {
            ::shutdown(fd, SHUT_RDWR);
            ::close(fd);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        // The endpoint is single-threaded, so a scraper that
        // trickles or stalls its request would block every later
        // scrape (slowloris). Kernel socket timeouts bound each
        // read and write; serveConnection answers expiry with 408.
        if (ioTimeoutSeconds_ > 0.0) {
            timeval tv{};
            tv.tv_sec = static_cast<time_t>(ioTimeoutSeconds_);
            tv.tv_usec = static_cast<suseconds_t>(
                std::lround((ioTimeoutSeconds_ - tv.tv_sec) * 1e6));
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                         sizeof(tv));
            ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv,
                         sizeof(tv));
        }
        // Scrapes are short and rare; serve them serially so there
        // is no connection-thread bookkeeping.
        serveConnection(fd);
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
}

int
HttpEndpoint::handle(const std::string &target,
                     const std::string &accept,
                     std::string &content_type,
                     std::string &body) const
{
    std::string path = target;
    std::string query;
    size_t qpos = target.find('?');
    if (qpos != std::string::npos) {
        path = target.substr(0, qpos);
        query = target.substr(qpos + 1);
    }

    content_type = "text/plain; charset=utf-8";
    if (path == "/healthz") {
        if (!health_) {
            // No monitor (tracing off): the legacy liveness probe.
            body = "ok\n";
            return 200;
        }
        const telemetry::HealthVerdict verdict =
            health_->evaluateNow();
        double uptime = -1.0;
        if (startTraceSeconds_ >= 0) {
            uptime =
                telemetry::traceNowUs() * 1e-6 - startTraceSeconds_;
        }
        body = telemetry::renderHealthJson(verdict, uptime);
        content_type = "application/json";
        // Degraded still answers 200: load balancers should only
        // eject a replica that is actually unhealthy.
        return verdict.level == telemetry::HealthLevel::Unhealthy
            ? 503
            : 200;
    }
    if (path == "/metrics") {
        // Content negotiation: a scraper that asks for OpenMetrics
        // gets the exemplar-bearing rendering; everyone else gets
        // the plain Prometheus text unchanged, byte for byte.
        // Media types are case-insensitive (RFC 9110 §8.3.1).
        std::string accept_lower = accept;
        for (char &c : accept_lower)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        if (accept_lower.find("application/openmetrics-text") !=
            std::string::npos) {
            body = telemetry::renderOpenMetrics(metrics_.snapshot());
            content_type = telemetry::openMetricsContentType;
            return 200;
        }
        body = telemetry::renderPrometheus(metrics_.snapshot());
        // The exposition content type Prometheus scrapers expect.
        content_type = "text/plain; version=0.0.4; charset=utf-8";
        return 200;
    }
    if (path == "/debug/tail") {
        if (!flightRecorder_) {
            return jsonError(503, "no flight recorder attached",
                             content_type, body);
        }
        double pct = 99.0;
        std::string pct_arg = queryParam(query, "pct");
        if (!pct_arg.empty()) {
            pct = std::atof(pct_arg.c_str());
            if (!(pct > 0.0 && pct < 100.0)) {
                return jsonError(
                    400, "bad 'pct' parameter (want 0 < pct < 100)",
                    content_type, body);
            }
        }
        std::string model = queryParam(query, "model");
        std::vector<telemetry::FlightRecord> records =
            flightRecorder_->snapshot();
        body = "{\"fleet\": ";
        body += telemetry::renderTailReportJson(
            telemetry::attributeTail(records, pct, model));
        body += ", \"models\": [";
        bool first = true;
        for (const telemetry::TailReport &report :
             telemetry::attributeTailByModel(records, pct)) {
            if (!model.empty() && report.model != model)
                continue;
            if (!first)
                body += ", ";
            first = false;
            body += telemetry::renderTailReportJson(report);
        }
        body += "]}\n";
        content_type = "application/json";
        return 200;
    }
    if (path == "/debug/flight") {
        if (!flightRecorder_) {
            return jsonError(503, "no flight recorder attached",
                             content_type, body);
        }
        telemetry::FlightRecord record;
        bool found = false;
        std::string ref = queryParam(query, "record");
        std::string trace_arg = queryParam(query, "trace_id");
        if (!ref.empty()) {
            int64_t seq = 0;
            if (!parseInt(ref, seq) || seq < 0) {
                return jsonError(400, "bad 'record' parameter",
                                 content_type, body);
            }
            found = flightRecorder_->find(
                static_cast<uint64_t>(seq), record);
        } else if (!trace_arg.empty()) {
            char *end = nullptr;
            uint64_t trace_id =
                std::strtoull(trace_arg.c_str(), &end, 16);
            if (end == trace_arg.c_str() || *end != '\0') {
                return jsonError(400, "bad 'trace_id' parameter",
                                 content_type, body);
            }
            found = flightRecorder_->findByTraceId(trace_id, record);
        } else {
            return jsonError(400,
                             "need 'record' or 'trace_id' parameter",
                             content_type, body);
        }
        if (!found) {
            return jsonError(
                404, "record not found (evicted or never recorded)",
                content_type, body);
        }
        body = telemetry::renderFlightRecordJson(record) + "\n";
        content_type = "application/json";
        return 200;
    }
    if (path == "/trace") {
        size_t last_n = 0;
        for (const std::string &kv : split(query, '&')) {
            size_t eq = kv.find('=');
            if (eq == std::string::npos ||
                kv.substr(0, eq) != "last")
                continue;
            int64_t parsed = 0;
            if (!parseInt(kv.substr(eq + 1), parsed) ||
                parsed < 0 || parsed > maxCountParam) {
                return jsonError(400,
                                 "bad 'last' parameter (want 0 <= "
                                 "last <= 10000000)",
                                 content_type, body);
            }
            last_n = static_cast<size_t>(parsed);
        }
        body = telemetry::renderChromeTrace(tracer_.events(last_n));
        content_type = "application/json";
        return 200;
    }
    if (path == "/debug/timeseries") {
        if (!timeseries_) {
            return jsonError(503, "no time-series store attached",
                             content_type, body);
        }
        telemetry::TimeSeriesStore::Window window;
        window.name = queryParam(query, "metric");
        if (window.name.empty()) {
            return jsonError(400, "need 'metric' parameter",
                             content_type, body);
        }
        std::string window_arg = queryParam(query, "window");
        if (!window_arg.empty()) {
            window.seconds = std::atof(window_arg.c_str());
            if (!(window.seconds > 0.0)
                || window.seconds > 86400.0) {
                return jsonError(400,
                                 "bad 'window' parameter (want 0 < "
                                 "window <= 86400 seconds)",
                                 content_type, body);
            }
        }
        double step = 0.0;
        std::string step_arg = queryParam(query, "step");
        if (!step_arg.empty()) {
            step = std::atof(step_arg.c_str());
            if (!(step >= 0.0) || step > 86400.0) {
                return jsonError(400,
                                 "bad 'step' parameter (want 0 <= "
                                 "step <= 86400 seconds)",
                                 content_type, body);
            }
        }
        if (timeseries_->trackIds(window.name).empty()) {
            return jsonError(
                404, "unknown metric '" + window.name + "'",
                content_type, body);
        }
        body = telemetry::renderTimeSeriesJson(*timeseries_, window,
                                               step)
            + "\n";
        content_type = "application/json";
        return 200;
    }
    if (path == "/profile") {
        // Collapsed-stack sampling window; feed the output straight
        // to flamegraph.pl. ?seconds=N bounds the window (default 1,
        // max 60).
        double seconds = 1.0;
        for (const std::string &kv : split(query, '&')) {
            size_t eq = kv.find('=');
            if (eq == std::string::npos ||
                kv.substr(0, eq) != "seconds")
                continue;
            int64_t parsed = 0;
            if (!parseInt(kv.substr(eq + 1), parsed) ||
                parsed <= 0 || parsed > 60) {
                return jsonError(
                    400,
                    "bad 'seconds' parameter (want 1 <= seconds "
                    "<= 60)",
                    content_type, body);
            }
            seconds = static_cast<double>(parsed);
        }
        auto collapsed =
            telemetry::Profiler::instance().collect(seconds);
        if (!collapsed.isOk()) {
            return jsonError(503, collapsed.status().toString(),
                             content_type, body);
        }
        body = collapsed.value();
        return 200;
    }
    return jsonError(404, "not found: " + path, content_type, body);
}

void
HttpEndpoint::serveConnection(int fd)
{
    // Read until the end of the request head; scrape requests have
    // no body.
    bool timed_out = false;
    std::string head;
    char buf[2048];
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.size() < 64 * 1024) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // SO_RCVTIMEO expired: the client stalled.
                timed_out = true;
                break;
            }
            return;
        }
        if (n == 0)
            break;
        head.append(buf, static_cast<size_t>(n));
    }
    if (timed_out) {
        metrics_.counter("djinn_http_timeouts_total").inc();
        std::string body = "request timed out\n";
        std::string response = strprintf(
            "HTTP/1.0 408 %s\r\n"
            "Content-Type: text/plain; charset=utf-8\r\n"
            "Content-Length: %zu\r\n"
            "Connection: close\r\n"
            "\r\n",
            statusText(408), body.size());
        response += body;
        ::send(fd, response.data(), response.size(), MSG_NOSIGNAL);
        return;
    }

    size_t line_end = head.find("\r\n");
    std::string request_line = line_end == std::string::npos
                                   ? head
                                   : head.substr(0, line_end);
    std::vector<std::string> parts = split(request_line, ' ');

    int code;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
    if (parts.size() < 2) {
        code = 400;
        body = "malformed request line\n";
    } else if (parts[0] != "GET") {
        code = 405;
        body = "only GET is supported\n";
    } else {
        code = handle(parts[1], headerValue(head, "accept"),
                      content_type, body);
    }

    std::string response = strprintf(
        "HTTP/1.0 %d %s\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %zu\r\n"
        "Connection: close\r\n"
        "\r\n",
        code, statusText(code), content_type.c_str(), body.size());
    response += body;

    size_t sent = 0;
    while (sent < response.size()) {
        ssize_t n = ::send(fd, response.data() + sent,
                           response.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // SO_SNDTIMEO expired: the client stopped reading
                // its response. Drop it rather than stall scrapes.
                metrics_.counter("djinn_http_timeouts_total").inc();
            }
            return;
        }
        sent += static_cast<size_t>(n);
    }
}

} // namespace core
} // namespace djinn
