/**
 * @file
 * Client-side retry policy: capped jittered exponential backoff
 * plus the classification rule deciding which failures are safe to
 * retry at all.
 *
 * The safety rule follows the wire protocol's execution guarantee:
 *  - An Overloaded response means the server explicitly did NOT
 *    execute the request (admission refused or draining), so a
 *    retry can never double-execute. Always retryable.
 *  - A connect or request-send failure means the server cannot
 *    have decoded a complete frame, so it cannot have executed the
 *    request. Retryable when the failure is transient (I/O error
 *    or timeout).
 *  - A failure AFTER the request was fully sent is ambiguous: the
 *    server may have executed the request and the response was
 *    lost. Never retried — for inference a double execution wastes
 *    a forward pass and double-counts every server metric.
 */

#ifndef DJINN_CORE_RETRY_HH
#define DJINN_CORE_RETRY_HH

#include "common/rng.hh"
#include "common/status.hh"

namespace djinn {
namespace core {

/** Where in the request round-trip an attempt failed. */
enum class FailureStage {
    /** No connection was established. */
    Connect,

    /** The request frame write failed: the server cannot have
     * received (and so cannot have executed) the request. */
    Send,

    /** The response read failed after a fully-sent request:
     * execution state is unknown. */
    Receive,
};

/** Retry schedule: capped exponential backoff with jitter. */
struct RetryPolicy {
    /** Total attempts, including the first; 1 disables retries. */
    int maxAttempts = 3;

    /** Backoff before the first retry, seconds. */
    double initialBackoffSeconds = 0.010;

    /** Backoff growth factor per retry. */
    double backoffMultiplier = 2.0;

    /** Backoff cap, seconds (applied before jitter). */
    double maxBackoffSeconds = 1.0;

    /**
     * Jitter: each backoff is scaled by a uniform factor in
     * [1 - jitterFraction, 1], de-synchronizing clients that were
     * all shed by the same overload spike. 0 disables jitter; must
     * be in [0, 1].
     */
    double jitterFraction = 0.5;
};

/**
 * True when a failed attempt is safe AND useful to retry under the
 * classification rule above.
 *
 * @param status the attempt's failure status.
 * @param stage where the round-trip failed. For a decoded error
 *        response (e.g. Overloaded), pass Receive: the response
 *        arrived, and classification is by status code alone.
 */
bool retryableFailure(const Status &status, FailureStage stage);

/**
 * The backoff before retry number @p attempt (0 = first retry),
 * in seconds: min(initial * multiplier^attempt, cap) scaled by a
 * jitter factor drawn from @p rng. Deterministic for a given rng
 * state.
 */
double retryBackoffSeconds(const RetryPolicy &policy, int attempt,
                           Rng &rng);

} // namespace core
} // namespace djinn

#endif // DJINN_CORE_RETRY_HH
