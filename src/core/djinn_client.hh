/**
 * @file
 * Client library for the DjiNN service: connect over TCP and issue
 * inference / list / ping requests. Tonic applications use this to
 * reach the service (paper Figure 3).
 */

#ifndef DJINN_CORE_DJINN_CLIENT_HH
#define DJINN_CORE_DJINN_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/status.hh"
#include "core/protocol.hh"
#include "core/retry.hh"
#include "telemetry/trace_context.hh"

namespace djinn {
namespace telemetry {
class Tracer;
} // namespace telemetry
} // namespace djinn

namespace djinn {
namespace core {

/**
 * A blocking DjiNN client over one TCP connection. Not thread-safe;
 * use one client per thread.
 */
class DjinnClient
{
  public:
    DjinnClient() = default;

    /** Disconnects if connected. */
    ~DjinnClient();

    DjinnClient(const DjinnClient &) = delete;
    DjinnClient &operator=(const DjinnClient &) = delete;

    /**
     * Connect to a DjiNN server. The address is remembered so a
     * retrying infer() can reconnect after a dropped connection.
     *
     * @param host IPv4 address ("127.0.0.1").
     * @param port TCP port.
     */
    Status connect(const std::string &host, uint16_t port);

    /**
     * Bound connection establishment to @p seconds; <= 0 (the
     * default) blocks until the kernel gives up. Expiry surfaces
     * as DeadlineExceeded.
     */
    void setConnectTimeout(double seconds)
    {
        connectTimeoutSeconds_ = seconds;
    }

    /**
     * Bound each request round-trip: the request write, the wait
     * for the response's first byte, and the response transfer
     * are each limited to @p seconds. <= 0 (the default) blocks
     * indefinitely — the pre-robustness behaviour.
     */
    void setRequestTimeout(double seconds)
    {
        requestTimeoutSeconds_ = seconds;
    }

    /**
     * Retry schedule for infer() (core/retry.hh). Only failures
     * that provably did not execute are retried: Overloaded
     * responses and transient connect/send failures. The client
     * default is single-shot (maxAttempts 1); pass a policy to
     * opt in.
     */
    void setRetryPolicy(const RetryPolicy &policy)
    {
        retryPolicy_ = policy;
    }

    /** Reseed the backoff jitter stream (deterministic tests). */
    void setRetrySeed(uint64_t seed) { retryRng_ = Rng(seed); }

    /** Retries performed by infer() so far. */
    uint64_t retriesPerformed() const { return retries_; }

    /**
     * Attach a deadline budget (milliseconds) to subsequent
     * infer() requests; the frame then encodes as protocol
     * version 3 and the server sheds the request once the budget
     * expires. 0 (the default) sends no deadline.
     */
    void setDeadlineMs(uint32_t ms) { deadlineMs_ = ms; }

    /** Inject faults on this client's stream (core/fault.hh). */
    void setFaults(uint32_t mask) { faults_ = mask; }

    /** Close the connection. */
    void disconnect();

    /** True when connected. */
    bool connected() const { return fd_ >= 0; }

    /**
     * Run inference: send @p rows stacked inputs for @p model.
     *
     * @return the output rows, flattened (rows x output elements).
     */
    Result<std::vector<float>> infer(const std::string &model,
                                     int64_t rows,
                                     const std::vector<float> &data);

    /** Names of the models the server exposes. */
    Result<std::vector<std::string>> listModels();

    /** A served model's geometry, from a Describe request. */
    struct ModelInfo {
        int64_t channels = 0;
        int64_t height = 0;
        int64_t width = 0;
        int64_t outputs = 0;
        /**
         * The model's serving compute precision ("f32", "bf16",
         * "int8"). Servers predating the field omit it; it then
         * defaults to f32.
         */
        std::string precision = "f32";

        /** Floats per input row. */
        int64_t
        inputElems() const
        {
            return channels * height * width;
        }
    };

    /** Query a model's input geometry and output width. */
    Result<ModelInfo> describeModel(const std::string &model);

    /** One row of the server's per-model statistics. */
    struct ModelStats {
        std::string model;
        uint64_t requests = 0;
        uint64_t rows = 0;
        double meanServiceMs = 0.0;
    };

    /** Fetch the server's per-model service statistics. */
    Result<std::vector<ModelStats>> serverStats();

    /**
     * Fetch the server's full telemetry exposition.
     *
     * @param format "" or "prometheus" for the text exposition,
     *        "json" for JSON.
     * @return the raw exposition payload. The text form parses
     *         with telemetry::parseExposition().
     */
    Result<std::string> metricsExposition(
        const std::string &format = "");

    /** Round-trip liveness check. */
    Status ping();

    /**
     * Attach or detach trace propagation. When enabled, each
     * infer() mints a fresh TraceContext, sends it on the wire
     * (protocol version 2), and — when a tracer is attached via
     * setTracer() — records the client-side round-trip span.
     */
    void setTracing(bool enabled) { tracing_ = enabled; }

    /** True when infer() attaches trace contexts. */
    bool tracing() const { return tracing_; }

    /**
     * Span destination for client-side spans. In-process tests pass
     * the server's tracer so client and server spans share one
     * timeline. May be null; must outlive the client.
     */
    void setTracer(telemetry::Tracer *tracer) { tracer_ = tracer; }

    /** The trace context attached to the most recent infer(). */
    const telemetry::TraceContext &lastTrace() const
    {
        return lastTrace_;
    }

    /** Fetch the server's trace ring as Chrome trace-event JSON. */
    Result<std::string> traceJson();

    /**
     * Fetch the server's recent request summaries
     * (trace_id,model,rows,batch_rows,service_ms CSV).
     */
    Result<std::string> requestsCsv();

  private:
    /**
     * One request/response exchange. On failure @p stage (when
     * non-null) reports how far the exchange got, for retry
     * classification.
     */
    Result<Response> roundTrip(const Request &request,
                               FailureStage *stage = nullptr);

    /** One infer attempt; @p stage as for roundTrip(). */
    Result<std::vector<float>> inferOnce(const Request &request,
                                         FailureStage *stage);

    int fd_ = -1;
    bool tracing_ = false;
    telemetry::Tracer *tracer_ = nullptr;
    telemetry::TraceContext lastTrace_;

    std::string host_;
    uint16_t port_ = 0;
    double connectTimeoutSeconds_ = 0.0;
    double requestTimeoutSeconds_ = 0.0;
    uint32_t deadlineMs_ = 0;
    uint32_t faults_ = 0;
    /** Single-shot by default; setRetryPolicy() opts in. */
    RetryPolicy retryPolicy_{/*maxAttempts=*/1};
    Rng retryRng_{0x646a696e6eULL};
    uint64_t retries_ = 0;
};

} // namespace core
} // namespace djinn

#endif // DJINN_CORE_DJINN_CLIENT_HH
