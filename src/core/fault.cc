#include "core/fault.hh"

#include "common/strings.hh"

namespace djinn {
namespace core {

uint32_t
parseFaultSpec(const std::string &spec, std::string *error)
{
    uint32_t mask = FaultNone;
    for (const std::string &name : split(spec, ',')) {
        if (name.empty()) {
            continue;
        } else if (name == "slow-read") {
            mask |= FaultSlowRead;
        } else if (name == "stall-after-header") {
            mask |= FaultStallAfterHeader;
        } else if (name == "mid-frame-close") {
            mask |= FaultMidFrameClose;
        } else if (error) {
            if (!error->empty())
                *error += ", ";
            *error += "unknown fault '" + name + "'";
        }
    }
    return mask;
}

const char *
faultSpecHelp()
{
    return "slow-read, stall-after-header, mid-frame-close";
}

} // namespace core
} // namespace djinn
