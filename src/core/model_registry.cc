#include "core/model_registry.hh"

#include <fstream>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "nn/net_def.hh"
#include "nn/serialize.hh"

namespace djinn {
namespace core {

Status
ModelRegistry::add(nn::NetworkPtr network)
{
    if (!network)
        return Status::invalidArgument("null network");
    if (!network->finalized())
        return Status::invalidArgument("network '" + network->name() +
                                       "' is not finalized");
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = models_.emplace(network->name(),
                                          std::move(network));
    if (!inserted)
        return Status::invalidArgument("model '" + it->first +
                                       "' already registered");
    return Status::ok();
}

Status
ModelRegistry::addZooModel(nn::zoo::Model model, uint64_t seed,
                           nn::Precision precision)
{
    return add(nn::zoo::build(model, precision, seed));
}

Status
ModelRegistry::loadFromFiles(const std::string &netdef_path,
                             const std::string &weights_path)
{
    std::ifstream in(netdef_path);
    if (!in)
        return Status::ioError("cannot open netdef '" + netdef_path +
                               "'");
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = nn::parseNetDef(text.str());
    if (!parsed.isOk())
        return parsed.status();
    nn::NetworkPtr net = parsed.takeValue();
    if (!weights_path.empty()) {
        Status s = nn::loadWeights(*net, weights_path);
        if (!s.isOk())
            return s;
    }
    return add(std::move(net));
}

Status
ModelRegistry::addInstance(const std::string &instance,
                           const std::string &base)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto base_it = models_.find(base);
    if (base_it == models_.end())
        return Status::notFound("unknown model '" + base + "'");
    auto [it, inserted] = models_.emplace(instance,
                                          base_it->second);
    if (!inserted)
        return Status::invalidArgument("model '" + instance +
                                       "' already registered");
    return Status::ok();
}

Status
ModelRegistry::unload(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(name);
    if (it == models_.end())
        return Status::notFound("unknown model '" + name + "'");
    models_.erase(it);
    return Status::ok();
}

size_t
ModelRegistry::instanceCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(name);
    if (it == models_.end())
        return 0;
    size_t count = 0;
    for (const auto &[other, net] : models_) {
        if (net.get() == it->second.get())
            ++count;
    }
    return count;
}

std::shared_ptr<const nn::Network>
ModelRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(name);
    return it == models_.end() ? nullptr : it->second;
}

std::vector<std::string>
ModelRegistry::modelNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(models_.size());
    for (const auto &[name, net] : models_)
        names.push_back(name);
    return names;
}

size_t
ModelRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return models_.size();
}

uint64_t
ModelRegistry::totalWeightBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    std::set<const nn::Network *> counted;
    for (const auto &[name, net] : models_) {
        if (counted.insert(net.get()).second)
            total += net->weightBytes();
    }
    return total;
}

} // namespace core
} // namespace djinn
