#include "core/retry.hh"

#include <algorithm>
#include <cmath>

namespace djinn {
namespace core {

bool
retryableFailure(const Status &status, FailureStage stage)
{
    if (status.isOk())
        return false;
    // An Overloaded response is an explicit not-executed signal,
    // wherever it surfaced.
    if (status.code() == StatusCode::Overloaded)
        return true;
    switch (stage) {
      case FailureStage::Connect:
      case FailureStage::Send:
        // The server cannot have executed the request; retry the
        // transient failure classes only. Anything else (protocol
        // error, invalid argument) would just fail again.
        return status.code() == StatusCode::IoError ||
               status.code() == StatusCode::DeadlineExceeded ||
               status.code() == StatusCode::Unavailable;
      case FailureStage::Receive:
        // Ambiguous: the request was fully sent and may have been
        // executed. Never retried.
        return false;
    }
    return false;
}

double
retryBackoffSeconds(const RetryPolicy &policy, int attempt, Rng &rng)
{
    double base = policy.initialBackoffSeconds *
                  std::pow(policy.backoffMultiplier,
                           static_cast<double>(attempt));
    base = std::min(base, policy.maxBackoffSeconds);
    double jitter = std::clamp(policy.jitterFraction, 0.0, 1.0);
    // Scale into [1 - jitter, 1]: jitter only ever shortens the
    // wait, so maxBackoffSeconds stays a true upper bound.
    double factor = 1.0 - jitter * rng.uniform();
    return std::max(0.0, base * factor);
}

} // namespace core
} // namespace djinn
