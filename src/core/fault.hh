/**
 * @file
 * Fault injection for the robustness test battery and for manual
 * overload drills against a live daemon (DESIGN.md "Overload &
 * failure handling").
 *
 * A fault spec is a comma-separated list of fault names. Parsed
 * specs become a bitmask that is plumbed explicitly into the I/O
 * layer (FrameIo::setFaults, DjinnClient::setFaultSpec, djinnd
 * --fault / DJINN_FAULT), so an in-process test can misbehave on
 * one side of a connection without contaminating the other.
 *
 * Supported faults:
 *   slow-read        read one byte at a time with a short sleep
 *                    between chunks (slowloris reader)
 *   stall-after-header
 *                    writeFrame sends only the 4-byte length prefix
 *                    and reports success; the peer is left parked
 *                    mid-frame (stalled peer)
 *   mid-frame-close  writeFrame sends roughly half the frame, then
 *                    shuts the socket down (abrupt peer death)
 */

#ifndef DJINN_CORE_FAULT_HH
#define DJINN_CORE_FAULT_HH

#include <cstdint>
#include <string>

namespace djinn {
namespace core {

/** Fault bits for FrameIo::setFaults. */
enum FaultBit : uint32_t {
    FaultNone = 0,
    FaultSlowRead = 1u << 0,
    FaultStallAfterHeader = 1u << 1,
    FaultMidFrameClose = 1u << 2,
};

/**
 * Parse a comma-separated fault spec ("slow-read,mid-frame-close")
 * into a fault bitmask. Unknown names are reported through
 * @p error and skipped; an empty spec parses to FaultNone.
 */
uint32_t parseFaultSpec(const std::string &spec, std::string *error);

/** The fault names parseFaultSpec accepts, for usage text. */
const char *faultSpecHelp();

} // namespace core
} // namespace djinn

#endif // DJINN_CORE_FAULT_HH
