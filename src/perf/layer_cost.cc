#include "perf/layer_cost.hh"

#include <algorithm>

#include "common/logging.hh"
#include "nn/layers/convolution.hh"
#include "nn/layers/inner_product.hh"
#include "nn/layers/locally_connected.hh"
#include "nn/layers/lrn.hh"
#include "nn/layers/pooling.hh"

namespace djinn {
namespace perf {

namespace {

constexpr int64_t tile = 32;
constexpr int64_t threadsPerBlock = 256;

double
shapeBytes(const nn::Shape &s, int64_t batch)
{
    return static_cast<double>(s.sampleElems()) * batch *
           sizeof(float);
}

/** Cost of a fully connected layer: one batched GEMM. */
KernelCost
fcCost(const nn::InnerProductLayer &fc, int64_t batch)
{
    KernelCost k;
    k.flops = 2.0 * batch * fc.inputs() * fc.outputs();
    k.weightBytes = static_cast<double>(fc.paramCount()) *
                    sizeof(float);
    auto geom = gemmGeometry(batch, fc.outputs());
    k.blocks = geom.blocks;
    k.tileUtilization = geom.tileUtilization;
    k.launches = 1;
    return k;
}

/**
 * Cost of a conv layer as a cuDNN-style batched kernel: the batch is
 * folded into the GEMM's N dimension (im2col columns), weights are
 * read once with a small per-sample cache-miss tail.
 */
KernelCost
convCost(const nn::ConvolutionLayer &conv, int64_t batch)
{
    KernelCost k;
    const nn::Shape &os = conv.outputShape();
    int64_t cols = os.h() * os.w();
    int64_t in_per_group = conv.inputShape().c() / conv.groups();
    int64_t patch = in_per_group * conv.kernel() * conv.kernel();
    int64_t out_per_group = conv.outChannels() / conv.groups();
    k.flops = 2.0 * batch * conv.groups() * out_per_group * cols *
              patch;
    // Filter banks are read once per launch and mostly stay resident
    // in cache across the batch; 5% of re-reads miss.
    double params_bytes = static_cast<double>(conv.paramCount()) *
                          sizeof(float);
    k.weightBytes = params_bytes * (1.0 + 0.05 * (batch - 1));
    auto geom = gemmGeometry(out_per_group, cols * batch, 16);
    k.blocks = geom.blocks * conv.groups();
    k.tileUtilization = geom.tileUtilization;
    k.launches = 1;
    return k;
}

/** Cost of a locally connected layer: per-sample, zero weight reuse. */
KernelCost
localCost(const nn::LocallyConnectedLayer &lc, int64_t batch)
{
    KernelCost k;
    const nn::Shape &os = lc.outputShape();
    int64_t cols = os.h() * os.w();
    int64_t patch = lc.inputShape().c() * lc.kernel() * lc.kernel();
    int64_t positions = lc.outChannels() * cols;
    k.flops = 2.0 * batch * positions * patch;
    // Every output element has a private filter: the full parameter
    // set streams from DRAM once per sample, with no reuse at all.
    k.weightBytes = static_cast<double>(lc.paramCount()) *
                    sizeof(float) * batch;
    // One thread per output position, grouped into blocks.
    int64_t blocks = (positions + threadsPerBlock - 1) /
                     threadsPerBlock;
    k.blocks = blocks;
    k.tileUtilization = 1.0;
    k.launches = batch;
    return k;
}

/** Elementwise / pooling / softmax style kernels: one pass, batched. */
KernelCost
elementwiseCost(const nn::Layer &layer, int64_t batch,
                double flops_per_elem)
{
    KernelCost k;
    int64_t out_elems = layer.outputShape().sampleElems() * batch;
    k.flops = flops_per_elem * static_cast<double>(out_elems);
    int64_t blocks = (out_elems + threadsPerBlock - 1) /
                     threadsPerBlock;
    k.blocks = std::max<int64_t>(blocks, 1);
    k.tileUtilization = 1.0;
    k.launches = 1;
    return k;
}

} // namespace

GemmGeometry
gemmGeometry(int64_t m, int64_t n, int64_t tile_m)
{
    int64_t tiles_m = (m + tile_m - 1) / tile_m;
    int64_t tiles_n = (n + tile - 1) / tile;
    GemmGeometry g;
    g.blocks = std::max<int64_t>(tiles_m * tiles_n, 1);
    double util_m = static_cast<double>(m) /
                    static_cast<double>(tiles_m * tile_m);
    double util_n = static_cast<double>(n) /
                    static_cast<double>(tiles_n * tile);
    g.tileUtilization = util_m * util_n;
    return g;
}

double
NetCost::totalFlops() const
{
    double total = 0.0;
    for (const auto &k : kernels)
        total += k.flops;
    return total;
}

double
NetCost::totalBytes() const
{
    double total = 0.0;
    for (const auto &k : kernels)
        total += k.weightBytes + k.activationBytes;
    return total;
}

int64_t
NetCost::totalLaunches() const
{
    int64_t total = 0;
    for (const auto &k : kernels)
        total += k.launches;
    return total;
}

NetCost
analyzeNetwork(const nn::Network &net, int64_t batch)
{
    if (batch <= 0)
        fatal("analyzeNetwork: batch must be positive, got %lld",
              static_cast<long long>(batch));
    NetCost cost;
    cost.network = net.name();
    cost.batch = batch;

    for (size_t i = 0; i < net.layerCount(); ++i) {
        const nn::Layer &layer = net.layer(i);
        KernelCost k;
        using nn::LayerKind;
        switch (layer.kind()) {
          case LayerKind::InnerProduct:
            k = fcCost(static_cast<const nn::InnerProductLayer &>(
                layer), batch);
            break;
          case LayerKind::Convolution:
            k = convCost(static_cast<const nn::ConvolutionLayer &>(
                layer), batch);
            break;
          case LayerKind::LocallyConnected:
            k = localCost(
                static_cast<const nn::LocallyConnectedLayer &>(layer),
                batch);
            break;
          case LayerKind::MaxPool:
          case LayerKind::AvgPool:
            {
                auto &pool =
                    static_cast<const nn::PoolingLayer &>(layer);
                double window = static_cast<double>(pool.kernel()) *
                                pool.kernel();
                k = elementwiseCost(layer, batch, window);
            }
            break;
          case LayerKind::LRN:
            {
                auto &lrn = static_cast<const nn::LrnLayer &>(layer);
                k = elementwiseCost(layer, batch,
                                    3.0 * lrn.size() + 2.0);
            }
            break;
          case LayerKind::Softmax:
            k = elementwiseCost(layer, batch, 4.0);
            break;
          case LayerKind::ReLU:
          case LayerKind::Tanh:
          case LayerKind::Sigmoid:
          case LayerKind::HardTanh:
            k = elementwiseCost(layer, batch, 2.0);
            break;
          case LayerKind::Dropout:
          case LayerKind::Flatten:
            k = elementwiseCost(layer, batch, 0.0);
            break;
        }
        k.layer = layer.name();
        k.kind = layer.kind();
        k.paramBytes = static_cast<double>(layer.paramCount()) *
                       sizeof(float);
        k.activationBytes = shapeBytes(layer.inputShape(), batch) +
                            shapeBytes(layer.outputShape(), batch);
        cost.kernels.push_back(std::move(k));
    }
    return cost;
}

} // namespace perf
} // namespace djinn
