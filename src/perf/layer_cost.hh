/**
 * @file
 * Static cost analysis of a network's forward pass: per-layer FLOP
 * counts, memory traffic, and GPU kernel launch geometry. These
 * feed the CPU and GPU timing models (src/gpu) that replace the
 * paper's real Xeon/K40 measurements.
 */

#ifndef DJINN_PERF_LAYER_COST_HH
#define DJINN_PERF_LAYER_COST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.hh"

namespace djinn {
namespace perf {

/**
 * The cost of one layer's forward pass at a given batch size,
 * expressed as one GPU kernel (Caffe launches one or more kernels
 * per layer; we aggregate to one representative kernel per layer).
 */
struct KernelCost {
    /** Name of the layer this kernel implements. */
    std::string layer;

    /** Layer kind. */
    nn::LayerKind kind;

    /** Total floating point operations for the batch. */
    double flops = 0.0;

    /**
     * Parameter bytes streamed from memory during the batch.
     * Layers whose GEMM carries the batch in its M dimension (fully
     * connected) read weights once per launch; Caffe-style per-sample
     * layers (convolution via im2col, locally connected) re-stream
     * them per sample.
     */
    double weightBytes = 0.0;

    /** Activation bytes moved (inputs read + outputs written). */
    double activationBytes = 0.0;

    /** Resident parameter bytes (model footprint, batch independent). */
    double paramBytes = 0.0;

    /**
     * GEMM tile utilization in [0, 1]: the fraction of launched
     * multiply-adds that compute useful outputs. Small matrices pay
     * for full 32x32 tiles they cannot fill (e.g. an M=1 fully
     * connected pass uses 1/32 of each tile row).
     */
    double tileUtilization = 1.0;

    /** Thread blocks launched (tiled-GEMM geometry). */
    int64_t blocks = 0;

    /** Threads per block. */
    int64_t threadsPerBlock = 256;

    /**
     * Number of sequential kernel launches this layer issues for the
     * batch (per-sample layers launch once per sample).
     */
    int64_t launches = 1;
};

/** Aggregate forward-pass cost of a network at one batch size. */
struct NetCost {
    /** Network name. */
    std::string network;

    /** Batch size (total input rows / images fed at once). */
    int64_t batch = 1;

    /** Per-layer kernel costs, in execution order. */
    std::vector<KernelCost> kernels;

    /** Sum of kernel FLOPs. */
    double totalFlops() const;

    /** Sum of kernel memory traffic (weights + activations). */
    double totalBytes() const;

    /** Sum of kernel launch counts. */
    int64_t totalLaunches() const;
};

/**
 * Analyze a network's forward pass at a batch size.
 *
 * @param net a finalized network.
 * @param batch number of samples processed per query batch.
 */
NetCost analyzeNetwork(const nn::Network &net, int64_t batch);

/**
 * GEMM launch geometry used by the GPU model: 32x32 output tiles,
 * 256 threads per block.
 */
struct GemmGeometry {
    int64_t blocks;
    double tileUtilization;
};

/**
 * Compute tiled-GEMM geometry for an (m x n) output matrix.
 *
 * @param tile_m tile height: 32 for cuBLAS-style GEMM (fully
 *        connected layers), 16 for cuDNN's implicit-GEMM
 *        convolutions, which pack few-filter cases better.
 */
GemmGeometry gemmGeometry(int64_t m, int64_t n, int64_t tile_m = 32);

} // namespace perf
} // namespace djinn

#endif // DJINN_PERF_LAYER_COST_HH
