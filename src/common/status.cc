#include "common/status.hh"

namespace djinn {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "Ok";
      case StatusCode::InvalidArgument: return "InvalidArgument";
      case StatusCode::NotFound: return "NotFound";
      case StatusCode::Unavailable: return "Unavailable";
      case StatusCode::Internal: return "Internal";
      case StatusCode::ProtocolError: return "ProtocolError";
      case StatusCode::IoError: return "IoError";
      case StatusCode::Overloaded: return "Overloaded";
      case StatusCode::DeadlineExceeded: return "DeadlineExceeded";
    }
    return "Unknown";
}

std::string
Status::toString() const
{
    if (isOk())
        return "OK";
    return std::string(statusCodeName(code_)) + ": " + message_;
}

} // namespace djinn
