#include "common/thread_pool.hh"

#include <pthread.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

namespace djinn {
namespace common {

namespace {

/** Depth of pool tasks executing on this thread. */
thread_local int tl_task_depth = 0;

/** Active SerialScope count on this thread. */
thread_local int tl_serial_depth = 0;

// Plain zero-initialized storage (no dynamic thread_local ctor) so
// a signal handler can read it at any point in a thread's life.
thread_local char tl_thread_name[16] = {0};

} // namespace

void
setCurrentThreadName(const char *name)
{
    std::snprintf(tl_thread_name, sizeof(tl_thread_name), "%s",
                  name ? name : "");
#ifdef __linux__
    ::pthread_setname_np(::pthread_self(), tl_thread_name);
#endif
}

const char *
currentThreadName()
{
    return tl_thread_name;
}

ThreadPool::ThreadPool(int threads)
    : size_(std::max(threads, 1))
{
    workers_.reserve(static_cast<size_t>(size_ - 1));
    for (int i = 0; i < size_ - 1; ++i) {
        workers_.emplace_back([this, i]() {
            char name[16];
            std::snprintf(name, sizeof(name), "compute-%d", i);
            setCurrentThreadName(name);
            workerLoop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::inParallelRegion()
{
    return tl_task_depth > 0;
}

void
ThreadPool::runChunk(Job *job, int64_t index)
{
    int64_t b = job->begin + index * job->chunk;
    int64_t e = std::min(b + job->chunk, job->end);
    ++tl_task_depth;
    active_.fetch_add(1, std::memory_order_relaxed);
    bool skip;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        skip = job->failed;
    }
    try {
        if (!skip)
            (*job->body)(b, e);
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!job->failed) {
            job->failed = true;
            job->error = std::current_exception();
        }
    }
    active_.fetch_sub(1, std::memory_order_relaxed);
    --tl_task_depth;
    std::lock_guard<std::mutex> lock(mutex_);
    if (++job->done == job->chunks)
        job->doneCv.notify_all();
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait(lock,
                     [this]() { return stop_ || !jobs_.empty(); });
        if (stop_)
            return;
        Job *job = jobs_.front();
        int64_t index = job->next++;
        if (job->next >= job->chunks)
            jobs_.pop_front();
        lock.unlock();
        runChunk(job, index);
        lock.lock();
    }
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const std::function<void(int64_t, int64_t)>
                            &body)
{
    if (end <= begin)
        return;
    int64_t range = end - begin;
    if (grain < 1)
        grain = 1;
    if (size_ == 1 || range <= grain || tl_task_depth > 0 ||
        tl_serial_depth > 0) {
        body(begin, end);
        return;
    }

    // Over-decompose modestly (4 chunks per executor) so uneven
    // chunk costs still balance without work stealing.
    int64_t chunk = std::max(
        grain, (range + size_ * 4 - 1) / (size_ * 4));
    Job job;
    job.body = &body;
    job.begin = begin;
    job.end = end;
    job.chunk = chunk;
    job.chunks = (range + chunk - 1) / chunk;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobs_.push_back(&job);
    }
    workCv_.notify_all();

    // The caller participates, claiming chunks from its own job.
    for (;;) {
        int64_t index;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (job.next >= job.chunks)
                break;
            index = job.next++;
            if (job.next >= job.chunks) {
                auto it = std::find(jobs_.begin(), jobs_.end(),
                                    &job);
                if (it != jobs_.end())
                    jobs_.erase(it);
            }
        }
        runChunk(&job, index);
    }

    std::unique_lock<std::mutex> lock(mutex_);
    job.doneCv.wait(lock,
                    [&job]() { return job.done == job.chunks; });
    if (job.error)
        std::rethrow_exception(job.error);
}

SerialScope::SerialScope()
{
    ++tl_serial_depth;
}

SerialScope::~SerialScope()
{
    --tl_serial_depth;
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_requested = 0; ///< explicit setComputeThreads value; 0 = auto

int
autoThreads()
{
    if (const char *env = std::getenv("DJINN_COMPUTE_THREADS")) {
        int v = std::atoi(env);
        if (v > 0)
            return std::min(v, 256);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(std::min(hw, 256u)) : 1;
}

int
resolveThreads()
{
    return g_requested > 0 ? g_requested : autoThreads();
}

} // namespace

ThreadPool &
computePool()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(resolveThreads());
    return *g_pool;
}

int
computeThreads()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    return g_pool ? g_pool->size() : resolveThreads();
}

void
setComputeThreads(int threads)
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_requested = threads > 0 ? threads : 0;
    int want = resolveThreads();
    if (g_pool && g_pool->size() == want)
        return;
    g_pool.reset();
    g_pool = std::make_unique<ThreadPool>(want);
}

} // namespace common
} // namespace djinn
