/**
 * @file
 * Small string utilities used by parsers and the wire protocol.
 */

#ifndef DJINN_COMMON_STRINGS_HH
#define DJINN_COMMON_STRINGS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace djinn {

/** Split a string on a delimiter character; keeps empty fields. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on any whitespace run; drops empty fields. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view s);

/** True when @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** Parse a signed integer; returns false on any non-numeric input. */
bool parseInt(std::string_view s, int64_t &out);

/** Parse a double; returns false on any non-numeric input. */
bool parseDouble(std::string_view s, double &out);

/** Join items with a separator. */
std::string join(const std::vector<std::string> &items,
                 std::string_view sep);

} // namespace djinn

#endif // DJINN_COMMON_STRINGS_HH
