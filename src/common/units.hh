/**
 * @file
 * Unit constants and conversions used throughout the timing and TCO
 * models. Times are seconds (double); data sizes are bytes (double
 * in models, uint64_t on wires); rates are per-second.
 */

#ifndef DJINN_COMMON_UNITS_HH
#define DJINN_COMMON_UNITS_HH

#include <cstdint>

namespace djinn {
namespace units {

// Data sizes -------------------------------------------------------

constexpr double kB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;

constexpr double KiB = 1024.0;
constexpr double MiB = 1024.0 * 1024.0;
constexpr double GiB = 1024.0 * 1024.0 * 1024.0;

// Compute ----------------------------------------------------------

constexpr double MFLOP = 1e6;
constexpr double GFLOP = 1e9;
constexpr double TFLOP = 1e12;

// Time -------------------------------------------------------------

constexpr double usec = 1e-6;
constexpr double msec = 1e-3;
constexpr double sec = 1.0;
constexpr double minute = 60.0;
constexpr double hour = 3600.0;
constexpr double month = 3600.0 * 24.0 * 30.0;
constexpr double year = 3600.0 * 24.0 * 365.0;

// Frequencies / rates ----------------------------------------------

constexpr double MHz = 1e6;
constexpr double GHz = 1e9;

} // namespace units
} // namespace djinn

#endif // DJINN_COMMON_UNITS_HH
