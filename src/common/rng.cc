#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace djinn {

namespace {

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

uint64_t
mix64(uint64_t x)
{
    uint64_t s = x;
    return splitmix64(s);
}

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("uniformInt: lo %ld > hi %ld", lo, hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(next() % span);
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Avoid log(0).
    if (u1 < 1e-300)
        u1 = 1e-300;
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::exponential(double rate)
{
    if (rate <= 0.0)
        panic("exponential: non-positive rate %f", rate);
    double u = uniform();
    if (u < 1e-300)
        u = 1e-300;
    return -std::log(u) / rate;
}

Rng
Rng::split(uint64_t index) const
{
    uint64_t seed = state_[0] ^ mix64(index + 0x5851f42d4c957f2dULL);
    return Rng(seed);
}

} // namespace djinn
