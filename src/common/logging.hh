/**
 * @file
 * Logging and error-reporting primitives, modeled on the gem5
 * inform/warn/fatal/panic convention.
 *
 * fatal() is for user errors (bad configuration, invalid arguments):
 * it throws a FatalError so callers and tests can recover. panic() is
 * for internal invariant violations: it aborts.
 */

#ifndef DJINN_COMMON_LOGGING_HH
#define DJINN_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace djinn {

/** Severity of a log message. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Exception thrown by fatal(). Represents an unrecoverable *user*
 * error (bad config, invalid request), not an internal bug.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Set the minimum severity that is printed to stderr. */
void setLogLevel(LogLevel level);

/** Current minimum printed severity. */
LogLevel logLevel();

/** printf-style message at Debug severity. */
void logDebug(const char *fmt, ...);

/** printf-style status message users should see but not worry about. */
void inform(const char *fmt, ...);

/** printf-style message flagging suspicious but survivable behavior. */
void warn(const char *fmt, ...);

/**
 * Report an unrecoverable user error and throw FatalError.
 *
 * @param fmt printf-style format for the error message.
 */
[[noreturn]] void fatal(const char *fmt, ...);

/**
 * Report an internal invariant violation and abort the process.
 *
 * @param fmt printf-style format for the error message.
 */
[[noreturn]] void panic(const char *fmt, ...);

/** Format a printf-style message into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);

/** Format a printf-style message into a std::string. */
std::string strprintf(const char *fmt, ...);

} // namespace djinn

#endif // DJINN_COMMON_LOGGING_HH
