/**
 * @file
 * A fixed-size thread pool with a blocked parallel-for primitive,
 * shared by every compute subsystem (GEMM, layer forward passes,
 * packing). Deliberately work-stealing-free: each parallelFor call
 * becomes one job whose chunks are handed out from a single queue
 * under a mutex, so scheduling is simple to reason about and the
 * arithmetic performed for a given range never depends on how many
 * workers drained it (the determinism guarantee DESIGN.md §8
 * documents).
 */

#ifndef DJINN_COMMON_THREAD_POOL_HH
#define DJINN_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace djinn {
namespace common {

/**
 * Fixed worker-count thread pool. A pool of size N owns N-1 worker
 * threads; the thread calling parallelFor() always participates as
 * the Nth executor, so a pool of size 1 runs everything inline with
 * no synchronization at all.
 *
 * Thread safety: parallelFor() may be called concurrently from any
 * number of threads; jobs share the worker set. Calls made from
 * inside a pool task (nested parallelism) are rejected in the sense
 * that they run their whole range inline on the calling worker —
 * never deadlocking, never oversubscribing.
 */
class ThreadPool
{
  public:
    /**
     * @param threads total executor count including the caller;
     *                clamped to at least 1.
     */
    explicit ThreadPool(int threads);

    /** Joins all workers. No job may be in flight. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total executor count (workers + the calling thread). */
    int size() const { return size_; }

    /**
     * Run body(chunkBegin, chunkEnd) over [begin, end) split into
     * contiguous chunks of at least @p grain indices, in parallel
     * across the pool. Blocks until the whole range is done.
     *
     * The union of chunks is exactly [begin, end) with no overlap,
     * so per-index work runs exactly once regardless of pool size.
     * If any chunk throws, the first exception is rethrown on the
     * calling thread after the job drains (remaining chunks are
     * skipped).
     *
     * Runs inline (single call covering the whole range) when the
     * pool has one executor, the range is no larger than the grain,
     * the caller is itself a pool task, or a SerialScope is active.
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>
                         &body);

    /**
     * True while the calling thread is executing a pool task (so a
     * nested parallelFor would run inline).
     */
    static bool inParallelRegion();

    /**
     * Executors currently running a chunk (workers plus
     * participating callers). A saturation signal: equal to size()
     * while the pool is fully busy, 0 when idle. Sampled by the
     * server's BackgroundSampler into `djinn_compute_pool_busy`.
     */
    int activeWorkers() const
    {
        return active_.load(std::memory_order_relaxed);
    }

  private:
    struct Job {
        const std::function<void(int64_t, int64_t)> *body = nullptr;
        int64_t begin = 0;
        int64_t chunk = 1;
        int64_t chunks = 0;
        int64_t end = 0;
        int64_t next = 0; ///< next unclaimed chunk (pool mutex)
        int64_t done = 0; ///< completed chunks (pool mutex)
        std::exception_ptr error;
        bool failed = false;
        std::condition_variable doneCv;
    };

    void workerLoop();
    void runChunk(Job *job, int64_t index);

    int size_;
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable workCv_;
    std::deque<Job *> jobs_;
    bool stop_ = false;
    std::atomic<int> active_{0};
};

/**
 * Suppress pool parallelism on the current thread for the scope's
 * lifetime: every parallelFor runs inline. Used by Network when its
 * parallel run option is off, and by tests pinning execution order.
 */
class SerialScope
{
  public:
    SerialScope();
    ~SerialScope();

    SerialScope(const SerialScope &) = delete;
    SerialScope &operator=(const SerialScope &) = delete;
};

/**
 * The process-wide compute pool shared by the nn hot paths. Created
 * on first use with the size from setComputeThreads(), the
 * DJINN_COMPUTE_THREADS environment variable, or
 * hardware_concurrency, in that precedence order.
 */
ThreadPool &computePool();

/** Executor count the compute pool has (or would be created with). */
int computeThreads();

/**
 * Set the compute pool size. @p threads <= 0 re-applies the
 * automatic choice (environment variable, then hardware
 * concurrency). Recreates the pool; must not race with in-flight
 * parallelFor calls — configure at startup or between runs.
 */
void setComputeThreads(int threads);

/**
 * Register a name for the calling thread, visible to tooling two
 * ways: as the pthread name (top, /proc) and as the root frame of
 * the thread's stacks in the sampling profiler's collapsed
 * output. Pool workers self-register as "compute-N"; the server
 * names its acceptor, connection workers, and batch dispatchers.
 * Truncated to 15 characters (the pthread limit).
 */
void setCurrentThreadName(const char *name);

/**
 * The name registered by setCurrentThreadName on this thread, or
 * "" when it never registered. Async-signal-safe (a plain
 * thread-local array read), which is why the profiler's SIGPROF
 * handler may call it.
 */
const char *currentThreadName();

} // namespace common
} // namespace djinn

#endif // DJINN_COMMON_THREAD_POOL_HH
