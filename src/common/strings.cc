#include "common/strings.hh"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace djinn {

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
parseInt(std::string_view s, int64_t &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc() && ptr == s.data() + s.size();
}

bool
parseDouble(std::string_view s, double &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    // std::from_chars for double is not available everywhere; strtod
    // on a NUL-terminated copy is portable and strict enough here.
    std::string buf(s);
    char *end = nullptr;
    out = std::strtod(buf.c_str(), &end);
    return end == buf.c_str() + buf.size();
}

std::string
join(const std::vector<std::string> &items, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

} // namespace djinn
