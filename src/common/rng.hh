/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the library flows through Rng so experiments are
 * bit-reproducible across runs and machines. The core generator is
 * splitmix64 feeding xoshiro256**.
 */

#ifndef DJINN_COMMON_RNG_HH
#define DJINN_COMMON_RNG_HH

#include <cstdint>

namespace djinn {

/**
 * Deterministic random number generator (xoshiro256**, seeded via
 * splitmix64). Not cryptographically secure; used for synthetic
 * workloads and weight initialization.
 */
class Rng
{
  public:
    /** Construct with a 64-bit seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal sample (Box-Muller). */
    double gaussian();

    /** Normal sample with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Exponential sample with the given rate (mean 1/rate). */
    double exponential(double rate);

    /**
     * Split off an independent child generator. Children of the same
     * parent with distinct indices produce independent streams.
     */
    Rng split(uint64_t index) const;

  private:
    uint64_t state_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/** Stateless 64-bit mix suitable for hashing keys to seeds. */
uint64_t mix64(uint64_t x);

} // namespace djinn

#endif // DJINN_COMMON_RNG_HH
