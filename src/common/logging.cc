#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace djinn {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
logDebug(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug", vstrprintf(fmt, ap));
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", vstrprintf(fmt, ap));
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn", vstrprintf(fmt, ap));
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    emit("fatal", msg);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    emit("panic", msg);
    std::abort();
}

} // namespace djinn
