/**
 * @file
 * Lightweight Status / Result error-handling types for recoverable
 * errors on I/O and protocol boundaries. Internal invariants use
 * panic(); user configuration errors use fatal().
 */

#ifndef DJINN_COMMON_STATUS_HH
#define DJINN_COMMON_STATUS_HH

#include <string>
#include <utility>
#include <variant>

#include "common/logging.hh"

namespace djinn {

/** Machine-readable category of a Status. */
enum class StatusCode {
    Ok,
    InvalidArgument,
    NotFound,
    Unavailable,
    Internal,
    ProtocolError,
    IoError,

    /** Load was shed: queue full, admission refused, or draining. */
    Overloaded,

    /** A deadline or I/O timeout expired before completion. */
    DeadlineExceeded,
};

/** Printable name of a status code. */
const char *statusCodeName(StatusCode code);

/**
 * A success-or-error value. Cheap to copy on the success path (no
 * allocation when ok).
 */
class Status
{
  public:
    /** Construct an OK status. */
    Status() = default;

    /** Construct an error status with a message. */
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    /** Factory for an OK status. */
    static Status ok() { return Status(); }

    /** Factory for an InvalidArgument error. */
    static Status
    invalidArgument(std::string msg)
    {
        return Status(StatusCode::InvalidArgument, std::move(msg));
    }

    /** Factory for a NotFound error. */
    static Status
    notFound(std::string msg)
    {
        return Status(StatusCode::NotFound, std::move(msg));
    }

    /** Factory for an Unavailable error. */
    static Status
    unavailable(std::string msg)
    {
        return Status(StatusCode::Unavailable, std::move(msg));
    }

    /** Factory for an Internal error. */
    static Status
    internal(std::string msg)
    {
        return Status(StatusCode::Internal, std::move(msg));
    }

    /** Factory for a ProtocolError. */
    static Status
    protocolError(std::string msg)
    {
        return Status(StatusCode::ProtocolError, std::move(msg));
    }

    /** Factory for an IoError. */
    static Status
    ioError(std::string msg)
    {
        return Status(StatusCode::IoError, std::move(msg));
    }

    /** Factory for an Overloaded error. */
    static Status
    overloaded(std::string msg)
    {
        return Status(StatusCode::Overloaded, std::move(msg));
    }

    /** Factory for a DeadlineExceeded error. */
    static Status
    deadlineExceeded(std::string msg)
    {
        return Status(StatusCode::DeadlineExceeded, std::move(msg));
    }

    /** True when this status represents success. */
    bool isOk() const { return code_ == StatusCode::Ok; }

    /** The status category. */
    StatusCode code() const { return code_; }

    /** Human-readable error message; empty when ok. */
    const std::string &message() const { return message_; }

    /** "OK" or "<Code>: <message>". */
    std::string toString() const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * A value or an error Status. Use on fallible boundaries (parsing,
 * sockets) where throwing is inappropriate.
 */
template <typename T>
class Result
{
  public:
    /** Construct from a success value. */
    Result(T value) : data_(std::move(value)) {}

    /** Construct from an error status; must not be OK. */
    Result(Status status) : data_(std::move(status))
    {
        if (std::get<Status>(data_).isOk())
            panic("Result constructed from OK status");
    }

    /** True when a value is held. */
    bool isOk() const { return std::holds_alternative<T>(data_); }

    /** The error status, or OK when a value is held. */
    Status
    status() const
    {
        if (isOk())
            return Status::ok();
        return std::get<Status>(data_);
    }

    /** Access the value; panics if this holds an error. */
    const T &
    value() const
    {
        if (!isOk())
            panic("Result::value() on error: %s",
                  std::get<Status>(data_).toString().c_str());
        return std::get<T>(data_);
    }

    /** Move the value out; panics if this holds an error. */
    T &&
    takeValue()
    {
        if (!isOk())
            panic("Result::takeValue() on error: %s",
                  std::get<Status>(data_).toString().c_str());
        return std::move(std::get<T>(data_));
    }

  private:
    std::variant<T, Status> data_;
};

} // namespace djinn

#endif // DJINN_COMMON_STATUS_HH
