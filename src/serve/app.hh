/**
 * @file
 * The seven DjiNN service applications and their service-level
 * parameters (paper Table 3): query input/output sizes, DNN rows per
 * query, the tuned batch size, and the CPU-side pre/post-processing
 * share (paper Figure 4).
 */

#ifndef DJINN_SERVE_APP_HH
#define DJINN_SERVE_APP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/zoo.hh"

namespace djinn {
namespace serve {

/** The Tonic Suite applications. */
enum class App {
    IMC,
    DIG,
    FACE,
    ASR,
    POS,
    CHK,
    NER,
};

/** Service-level description of one application (Table 3 row). */
struct AppSpec {
    /** Which application. */
    App app;

    /** Short upper-case name ("IMC"). */
    std::string name;

    /** The zoo network that backs the app. */
    nn::zoo::Model model;

    /**
     * DNN input rows contained in one query: 1 image for IMC/FACE,
     * 100 images for DIG, 548 feature vectors for ASR, 28 words for
     * the NLP tasks.
     */
    int64_t samplesPerQuery;

    /** Query payload sent to the service, bytes (Table 3). */
    double inputBytes;

    /** Response payload returned by the service, bytes. */
    double outputBytes;

    /**
     * The throughput/latency-balanced batch size chosen in the
     * paper (queries per combined GPU pass, Table 3 last column).
     */
    int64_t tunedBatch;

    /**
     * CPU pre-processing time as a fraction of the app's
     * single-core CPU DNN time (drives Figure 4).
     */
    double preprocFraction;

    /** CPU post-processing fraction, same normalization. */
    double postprocFraction;

    /** DNN fraction of total single-core execution (Figure 4). */
    double
    dnnFraction() const
    {
        return 1.0 / (1.0 + preprocFraction + postprocFraction);
    }
};

/** The spec for one application. */
const AppSpec &appSpec(App app);

/** Look up an application by its short name; fatal() on unknown. */
App appFromName(const std::string &name);

/** All seven applications in Table 3 order. */
const std::vector<App> &allApps();

/** Short name of an application. */
const char *appName(App app);

} // namespace serve
} // namespace djinn

#endif // DJINN_SERVE_APP_HH
