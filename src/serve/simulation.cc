#include "serve/simulation.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "gpu/gpu_model.hh"
#include "nn/net_def.hh"
#include "serve/resources.hh"
#include "sim/stats.hh"

namespace djinn {
namespace serve {

SimConfig::SimConfig()
{
    // Dual-socket root complex: two PCIe v3 x16 pipes feed the GPUs.
    hostLink = gpu::pcieV3();
    hostLink.name = "host root complex (2x PCIe v3 x16)";
    hostLink.peakBandwidth *= 2.0;
}

const nn::Network &
sharedNetwork(nn::zoo::Model model)
{
    static std::mutex mutex;
    static std::map<nn::zoo::Model, nn::NetworkPtr> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(model);
    if (it == cache.end()) {
        // Weights stay zero: timing only depends on shapes.
        auto net = nn::parseNetDefOrDie(nn::zoo::netDef(model));
        it = cache.emplace(model, std::move(net)).first;
    }
    return *it->second;
}

double
cpuQueryTime(App app, const gpu::CpuSpec &spec)
{
    const AppSpec &as = appSpec(app);
    const nn::Network &net = sharedNetwork(as.model);
    perf::NetCost cost = perf::analyzeNetwork(net,
                                              as.samplesPerQuery);
    return gpu::cpuForwardTime(cost, spec);
}

namespace {

/** One in-flight or queued query. */
struct Query {
    double issueTime;
};

/**
 * Per-tenant measurement sink. Latency goes through the telemetry
 * log-bucketed histogram — the one percentile implementation shared
 * with the live service and the cluster simulator. Non-movable
 * (atomic buckets), so instances live in a deque.
 */
struct TenantStats {
    explicit TenantStats(App a)
        : app(a), latency(sim::latencyHistogramOptions())
    {}

    App app;
    uint64_t completed = 0;
    telemetry::LogHistogram latency;
};

/** Everything shared by the instances of one simulation run. */
struct SimState {
    sim::EventQueue eq;
    const SimConfig &config;

    std::unique_ptr<FifoLink> link;
    std::unique_ptr<CpuPool> cpu;
    std::vector<std::unique_ptr<GpuResource>> gpus;

    // Lazily computed forward profiles per (model, rows).
    std::map<std::pair<nn::zoo::Model, int64_t>,
             gpu::ForwardProfile>
        profiles;

    bool measuring = false;
    std::deque<TenantStats> tenants;
    double gpuWorkAtStart = 0.0;
    double linkBytesAtStart = 0.0;
    double linkBusyAtStart = 0.0;
    double cpuBusyAtStart = 0.0;

    explicit SimState(const SimConfig &cfg) : config(cfg)
    {
        link = std::make_unique<FifoLink>(eq, cfg.hostLink);
        cpu = std::make_unique<CpuPool>(eq, cfg.hostCores);
        for (int g = 0; g < cfg.gpuCount; ++g) {
            gpus.push_back(std::make_unique<GpuResource>(
                eq, cfg.gpuSpec, cfg.mps));
        }
    }

    const gpu::ForwardProfile &
    profileFor(nn::zoo::Model model, int64_t rows)
    {
        auto key = std::make_pair(model, rows);
        auto it = profiles.find(key);
        if (it == profiles.end()) {
            const nn::Network &net = sharedNetwork(model);
            perf::NetCost cost = perf::analyzeNetwork(net, rows);
            it = profiles.emplace(
                key,
                gpu::profileForward(cost, config.gpuSpec)).first;
        }
        return it->second;
    }

    double
    totalGpuWork() const
    {
        double total = 0.0;
        for (const auto &g : gpus)
            total += g->workDone();
        return total;
    }
};

/**
 * One DNN service instance (a process in the paper's setup): owns a
 * query queue and pipelines batches through prep, transfer-in, GPU,
 * and transfer-out.
 */
class Instance
{
  public:
    Instance(SimState &state, int id, GpuResource &gpu,
             const AppSpec &spec, int64_t batch, size_t tenant,
             bool closed_loop)
        : state_(state), id_(id), gpu_(gpu), spec_(spec),
          batch_limit_(batch), tenant_(tenant),
          closedLoop_(closed_loop)
    {}

    /** Hand a fresh query to this instance. */
    void
    enqueue(double issue_time)
    {
        queue_.push_back({issue_time});
        maybeStart();
    }

  private:
    /**
     * Deterministic +/-2% jitter per batch. Real servers never run
     * in perfect lockstep; without this, the homogeneous closed
     * loop phase-locks all instances onto the same GPU submission
     * instants and throughput becomes an artifact of resonance.
     */
    double
    jitter()
    {
        uint64_t h = mix64(static_cast<uint64_t>(id_) * 0x9e3779b9 +
                           batchCount_++);
        double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
        return 1.0 + 0.04 * (unit - 0.5);
    }

    void
    maybeStart()
    {
        if (busy_ || queue_.empty())
            return;
        busy_ = true;
        int64_t take = std::min<int64_t>(
            batch_limit_, static_cast<int64_t>(queue_.size()));
        batch_.assign(queue_.begin(), queue_.begin() + take);
        queue_.erase(queue_.begin(), queue_.begin() + take);

        double prep = static_cast<double>(take) *
                      (state_.config.hostPrepFixed +
                       state_.config.hostPrepPerByte *
                           spec_.inputBytes) *
                      jitter();
        state_.cpu->run(prep, [this, take]() {
            state_.link->transfer(
                spec_.inputBytes * take,
                [this, take]() { runGpu(take); });
        });
    }

    void
    runGpu(int64_t take)
    {
        const gpu::ForwardProfile &profile = state_.profileFor(
            spec_.model, take * spec_.samplesPerQuery);
        GpuResource::Job job;
        job.soloTime = profile.totalTime * jitter();
        job.occupancy = profile.occupancy;
        job.instance = id_;
        job.done = [this, take]() {
            state_.link->transfer(spec_.outputBytes * take,
                                  [this]() { complete(); });
        };
        gpu_.submit(std::move(job));
    }

    void
    complete()
    {
        double now = state_.eq.now();
        TenantStats &stats = state_.tenants[tenant_];
        for (const Query &q : batch_) {
            if (state_.measuring) {
                ++stats.completed;
                stats.latency.record(now - q.issueTime);
            }
        }
        size_t finished = batch_.size();
        batch_.clear();
        busy_ = false;
        if (closedLoop_) {
            // Each completed client immediately reissues.
            for (size_t i = 0; i < finished; ++i)
                enqueue(now);
        }
        maybeStart();
    }

    SimState &state_;
    int id_;
    GpuResource &gpu_;
    const AppSpec &spec_;
    int64_t batch_limit_;
    size_t tenant_;
    bool closedLoop_;
    std::vector<Query> queue_;
    std::vector<Query> batch_;
    bool busy_ = false;
    uint64_t batchCount_ = 0;
};

/** Poisson arrival source feeding a tenant's instances round-robin. */
class ArrivalSource
{
  public:
    ArrivalSource(SimState &state, std::vector<Instance *> targets,
                  double rate, uint64_t seed)
        : state_(state), targets_(std::move(targets)), rate_(rate),
          rng_(seed)
    {
        if (rate_ > 0.0 && !targets_.empty())
            scheduleNext();
    }

  private:
    void
    scheduleNext()
    {
        double gap = rng_.exponential(rate_);
        state_.eq.scheduleAfter(gap, [this]() {
            targets_[next_ % targets_.size()]->enqueue(
                state_.eq.now());
            ++next_;
            scheduleNext();
        });
    }

    SimState &state_;
    std::vector<Instance *> targets_;
    double rate_;
    Rng rng_;
    size_t next_ = 0;
};

/**
 * Check the co-resident models and activations fit device memory
 * (the paper's K40 has 12 GB; DeepFace at large batch is the
 * pressure case).
 */
void
checkGpuMemory(SimState &state,
               const std::vector<TenantConfig> &tenants)
{
    // Conservative: every tenant's model + batch activations
    // resident on every GPU it runs on.
    double footprint = 0.0;
    for (const TenantConfig &tenant : tenants) {
        const AppSpec &spec = appSpec(tenant.app);
        footprint += state.profileFor(
            spec.model,
            tenant.batch * spec.samplesPerQuery).memoryFootprint;
    }
    if (footprint > state.config.gpuSpec.memoryBytes) {
        fatal("configuration needs %.1f GB of GPU memory but the "
              "%s has %.1f GB",
              footprint / 1e9, state.config.gpuSpec.name.c_str(),
              state.config.gpuSpec.memoryBytes / 1e9);
    }
}

MixedSimResult
runSim(const SimConfig &config,
       const std::vector<TenantConfig> &tenants)
{
    if (config.gpuCount <= 0)
        fatal("runSim: gpuCount must be positive");
    if (tenants.empty())
        fatal("runSim: need at least one tenant");
    for (const TenantConfig &tenant : tenants) {
        if (tenant.batch <= 0 || tenant.instances <= 0)
            fatal("runSim: tenant batch and instances must be "
                  "positive");
    }
    if (config.loadMode == LoadMode::Open &&
        config.arrivalRate <= 0.0) {
        fatal("runSim: open-loop mode requires a positive "
              "arrivalRate");
    }

    SimState state(config);
    checkGpuMemory(state, tenants);

    bool closed = config.loadMode == LoadMode::Closed;
    std::vector<std::unique_ptr<Instance>> instances;
    std::vector<std::vector<Instance *>> per_tenant(tenants.size());
    int id = 0;
    int gpu_rr = 0;
    int total_instances = 0;
    for (size_t t = 0; t < tenants.size(); ++t) {
        const TenantConfig &tenant = tenants[t];
        state.tenants.emplace_back(tenant.app);
        for (int i = 0; i < tenant.instances; ++i) {
            instances.push_back(std::make_unique<Instance>(
                state, id++, *state.gpus[gpu_rr % config.gpuCount],
                appSpec(tenant.app), tenant.batch, t, closed));
            per_tenant[t].push_back(instances.back().get());
            ++gpu_rr;
            ++total_instances;
        }
    }

    std::vector<std::unique_ptr<ArrivalSource>> sources;
    if (closed) {
        // Closed-loop population: clientBatches batches per
        // instance, seeded at staggered times so the deterministic
        // simulation does not phase-lock.
        size_t index = 0;
        for (size_t t = 0; t < tenants.size(); ++t) {
            int64_t per_instance =
                config.clientBatches * tenants[t].batch;
            for (Instance *inst : per_tenant[t]) {
                double offset =
                    1e-6 * static_cast<double>(index++);
                state.eq.scheduleAt(
                    offset, [inst, per_instance, offset]() {
                        for (int64_t c = 0; c < per_instance; ++c)
                            inst->enqueue(offset);
                    });
            }
        }
    } else {
        // Open loop: split the aggregate rate over tenants by
        // instance share.
        for (size_t t = 0; t < tenants.size(); ++t) {
            double share = static_cast<double>(
                               tenants[t].instances) /
                           total_instances;
            sources.push_back(std::make_unique<ArrivalSource>(
                state, per_tenant[t], config.arrivalRate * share,
                mix64(config.seed + t)));
        }
    }

    state.eq.runUntil(config.warmupTime);
    state.measuring = true;
    state.gpuWorkAtStart = state.totalGpuWork();
    state.linkBytesAtStart = state.link->bytesMoved();
    state.linkBusyAtStart = state.link->busyTime();
    state.cpuBusyAtStart = state.cpu->busyTime();

    state.eq.runUntil(config.warmupTime + config.measureTime);

    MixedSimResult result;
    for (TenantStats &stats : state.tenants) {
        TenantResult tenant;
        tenant.app = stats.app;
        tenant.completedQueries = stats.completed;
        tenant.throughputQps =
            static_cast<double>(stats.completed) /
            config.measureTime;
        tenant.meanLatency = stats.latency.mean();
        tenant.p99Latency = stats.latency.quantile(0.99);
        result.tenants.push_back(tenant);
    }
    result.gpuUtilization =
        (state.totalGpuWork() - state.gpuWorkAtStart) /
        (config.measureTime * config.gpuCount);
    result.hostLinkUtilization =
        (state.link->busyTime() - state.linkBusyAtStart) /
        config.measureTime;
    return result;
}

} // namespace

SimResult
runServingSim(const SimConfig &config)
{
    if (config.batch <= 0 || config.gpuCount <= 0 ||
        config.instancesPerGpu <= 0) {
        fatal("runServingSim: batch, gpuCount and instancesPerGpu "
              "must be positive");
    }

    SimState state(config);
    const AppSpec &spec = appSpec(config.app);
    std::vector<TenantConfig> tenants{
        {config.app, config.batch,
         config.gpuCount * config.instancesPerGpu}};
    checkGpuMemory(state, tenants);

    bool closed = config.loadMode == LoadMode::Closed;
    std::vector<std::unique_ptr<Instance>> instances;
    std::vector<Instance *> raw;
    state.tenants.emplace_back(config.app);
    int id = 0;
    for (int g = 0; g < config.gpuCount; ++g) {
        for (int i = 0; i < config.instancesPerGpu; ++i) {
            instances.push_back(std::make_unique<Instance>(
                state, id++, *state.gpus[g], spec, config.batch, 0,
                closed));
            raw.push_back(instances.back().get());
        }
    }

    std::unique_ptr<ArrivalSource> source;
    if (closed) {
        int64_t per_instance = config.clientBatches * config.batch;
        for (size_t i = 0; i < raw.size(); ++i) {
            double offset = 1e-6 * static_cast<double>(i);
            Instance *inst = raw[i];
            state.eq.scheduleAt(
                offset, [inst, per_instance, offset]() {
                    for (int64_t c = 0; c < per_instance; ++c)
                        inst->enqueue(offset);
                });
        }
    } else {
        if (config.arrivalRate <= 0.0)
            fatal("runServingSim: open-loop mode requires a "
                  "positive arrivalRate");
        source = std::make_unique<ArrivalSource>(
            state, raw, config.arrivalRate, config.seed);
    }

    state.eq.runUntil(config.warmupTime);
    state.measuring = true;
    state.gpuWorkAtStart = state.totalGpuWork();
    state.linkBytesAtStart = state.link->bytesMoved();
    state.linkBusyAtStart = state.link->busyTime();
    state.cpuBusyAtStart = state.cpu->busyTime();

    state.eq.runUntil(config.warmupTime + config.measureTime);

    TenantStats &stats = state.tenants.front();
    SimResult result;
    result.completedQueries = stats.completed;
    result.throughputQps = static_cast<double>(stats.completed) /
                           config.measureTime;
    result.meanLatency = stats.latency.mean();
    result.p99Latency = stats.latency.quantile(0.99);
    result.p95Latency = stats.latency.quantile(0.95);
    result.medianLatency = stats.latency.quantile(0.5);
    result.gpuOccupancy = state.profileFor(
        spec.model,
        config.batch * spec.samplesPerQuery).occupancy;
    result.gpuUtilization =
        (state.totalGpuWork() - state.gpuWorkAtStart) /
        (config.measureTime * config.gpuCount);
    result.hostLinkUtilization =
        (state.link->busyTime() - state.linkBusyAtStart) /
        config.measureTime;
    result.hostLinkBytesPerSec =
        (state.link->bytesMoved() - state.linkBytesAtStart) /
        config.measureTime;

    // Energy: GPUs draw an idle floor plus utilization-proportional
    // dynamic power; the host contributes its busy core share.
    if (stats.completed > 0) {
        constexpr double gpu_idle_fraction = 0.25;
        constexpr double host_core_watts = 80.0 / 12.0;
        double gpu_watts = config.gpuCount *
                           config.gpuSpec.powerWatts *
                           (gpu_idle_fraction +
                            (1.0 - gpu_idle_fraction) *
                                std::min(result.gpuUtilization,
                                         1.0));
        double cpu_busy =
            state.cpu->busyTime() - state.cpuBusyAtStart;
        double host_energy = cpu_busy * host_core_watts * 12.0 /
                             config.hostCores;
        double energy = gpu_watts * config.measureTime +
                        host_energy;
        result.energyPerQuery =
            energy / static_cast<double>(stats.completed);
    }
    return result;
}

MixedSimResult
runMixedSim(const SimConfig &config,
            const std::vector<TenantConfig> &tenants)
{
    return runSim(config, tenants);
}

} // namespace serve
} // namespace djinn
