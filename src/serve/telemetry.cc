#include "serve/telemetry.hh"

namespace djinn {
namespace serve {

void
recordSimResult(telemetry::MetricRegistry &registry,
                const std::string &scenario,
                const SimConfig &config, const SimResult &result)
{
    const telemetry::LabelMap base{{"app", appName(config.app)},
                                   {"scenario", scenario}};
    auto set = [&](const char *name, double value) {
        registry.gauge(name, base).set(value);
    };
    auto latency = [&](const char *stat, double value) {
        telemetry::LabelMap labels = base;
        labels["stat"] = stat;
        registry.gauge("djinn_sim_latency_seconds", labels)
            .set(value);
    };

    set("djinn_sim_throughput_qps", result.throughputQps);
    latency("mean", result.meanLatency);
    latency("p50", result.medianLatency);
    latency("p95", result.p95Latency);
    latency("p99", result.p99Latency);
    set("djinn_sim_completed_queries",
        static_cast<double>(result.completedQueries));
    set("djinn_sim_gpu_occupancy", result.gpuOccupancy);
    set("djinn_sim_gpu_utilization", result.gpuUtilization);
    set("djinn_sim_host_link_utilization",
        result.hostLinkUtilization);
    set("djinn_sim_host_link_bytes_per_sec",
        result.hostLinkBytesPerSec);
    set("djinn_sim_energy_joules_per_query", result.energyPerQuery);
}

} // namespace serve
} // namespace djinn
