#include "serve/tuner.hh"

#include <algorithm>

#include "common/logging.hh"

namespace djinn {
namespace serve {

TunerResult
tuneBatchSize(App app, const SimConfig &base_config,
              const TunerOptions &options)
{
    if (options.candidates.empty())
        fatal("tuneBatchSize: no candidate batch sizes");
    if (!std::is_sorted(options.candidates.begin(),
                        options.candidates.end())) {
        fatal("tuneBatchSize: candidates must be ascending");
    }

    TunerResult result;
    for (int64_t batch : options.candidates) {
        SimConfig config = base_config;
        config.app = app;
        config.batch = batch;
        // Let enough batches complete to measure the big ones.
        config.measureTime = std::max(
            base_config.measureTime,
            0.25 * static_cast<double>(batch));
        SimResult sim = runServingSim(config);
        result.sweep.push_back(
            {batch, sim.throughputQps, sim.meanLatency, false});
    }

    double latency_cap = options.latencySlack *
                         result.sweep.front().meanLatency;
    double best = 0.0;
    for (TunerPoint &point : result.sweep) {
        point.admissible = point.meanLatency <= latency_cap;
        if (point.admissible)
            best = std::max(best, point.throughputQps);
    }
    for (const TunerPoint &point : result.sweep) {
        if (point.admissible &&
            point.throughputQps >=
                options.throughputFraction * best) {
            result.batch = point.batch;
            return result;
        }
    }
    result.batch = options.candidates.front();
    return result;
}

} // namespace serve
} // namespace djinn
