#include "serve/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace djinn {
namespace serve {

AdaptiveScheduler::AdaptiveScheduler(
    const SchedulerOptions &options,
    telemetry::MetricRegistry *metrics)
    : options_(options), metrics_(metrics)
{
    if (options_.minBatch <= 0)
        fatal("AdaptiveScheduler: minBatch must be positive");
    if (options_.maxBatch < options_.minBatch)
        fatal("AdaptiveScheduler: maxBatch must be >= minBatch");
    if (options_.defaultSloSeconds <= 0.0)
        fatal("AdaptiveScheduler: SLO must be positive");
    if (options_.headroom <= 0.0 || options_.headroom > 1.0)
        fatal("AdaptiveScheduler: headroom must be in (0, 1]");
    if (options_.shrinkHeadroom <= 0.0 ||
        options_.shrinkHeadroom > options_.headroom)
        fatal("AdaptiveScheduler: shrinkHeadroom must be in "
              "(0, headroom]");
    if (options_.arrivalAlpha <= 0.0 || options_.arrivalAlpha > 1.0 ||
        options_.serviceAlpha <= 0.0 || options_.serviceAlpha > 1.0)
        fatal("AdaptiveScheduler: EWMA weights must be in (0, 1]");
    if (options_.maxDeficitSeconds <= 0.0)
        fatal("AdaptiveScheduler: maxDeficitSeconds must be "
              "positive");
    if (options_.poolSeconds <= 0.0)
        fatal("AdaptiveScheduler: poolSeconds must be positive");
}

AdaptiveScheduler::Model &
AdaptiveScheduler::modelFor(const std::string &model)
{
    auto it = models_.find(model);
    if (it != models_.end())
        return it->second;

    Model m;
    m.tenant = "default";
    m.maxBatch = options_.maxBatch;
    m.target = options_.maxBatch;
    m.sloSeconds = options_.defaultSloSeconds;
    if (metrics_) {
        const telemetry::LabelMap labels{{"model", model}};
        m.targetGauge =
            &metrics_->gauge("djinn_sched_batch_target", labels);
        m.arrivalGauge =
            &metrics_->gauge("djinn_sched_arrival_qps", labels);
        m.serviceGauge =
            &metrics_->gauge("djinn_sched_service_seconds", labels);
        m.targetGauge->set(static_cast<double>(m.target));
    }
    tenantFor(m.tenant);
    return models_.emplace(model, std::move(m)).first->second;
}

AdaptiveScheduler::Tenant &
AdaptiveScheduler::tenantFor(const std::string &tenant)
{
    auto it = tenants_.find(tenant);
    if (it != tenants_.end())
        return it->second;

    Tenant t;
    if (metrics_) {
        const telemetry::LabelMap labels{{"tenant", tenant}};
        t.weightGauge =
            &metrics_->gauge("djinn_sched_tenant_weight", labels);
        t.deficitGauge =
            &metrics_->gauge("djinn_sched_tenant_deficit", labels);
        t.shareGauge =
            &metrics_->gauge("djinn_sched_tenant_share", labels);
        t.weightGauge->set(t.weight);
    }
    return tenants_.emplace(tenant, std::move(t)).first->second;
}

void
AdaptiveScheduler::addTenant(const std::string &tenant,
                             double weight)
{
    if (weight <= 0.0)
        fatal("AdaptiveScheduler: tenant weight must be positive");
    std::lock_guard<std::mutex> lock(mutex_);
    Tenant &t = tenantFor(tenant);
    t.weight = weight;
    if (t.weightGauge)
        t.weightGauge->set(weight);
}

void
AdaptiveScheduler::assignModel(const std::string &model,
                               const std::string &tenant)
{
    std::lock_guard<std::mutex> lock(mutex_);
    tenantFor(tenant);
    modelFor(model).tenant = tenant;
}

void
AdaptiveScheduler::setSlo(const std::string &model, double seconds)
{
    if (seconds <= 0.0)
        fatal("AdaptiveScheduler: SLO must be positive");
    std::lock_guard<std::mutex> lock(mutex_);
    modelFor(model).sloSeconds = seconds;
}

void
AdaptiveScheduler::setMaxBatch(const std::string &model,
                               int64_t maxBatch)
{
    if (maxBatch < options_.minBatch)
        fatal("AdaptiveScheduler: model maxBatch below minBatch");
    std::lock_guard<std::mutex> lock(mutex_);
    Model &m = modelFor(model);
    m.maxBatch = maxBatch;
    m.target = std::min(m.target, maxBatch);
    if (m.target <= 0)
        m.target = maxBatch;
}

void
AdaptiveScheduler::observeArrival(const std::string &model,
                                  int64_t queries)
{
    std::lock_guard<std::mutex> lock(mutex_);
    modelFor(model).arrivalsSinceTick += queries;
}

void
AdaptiveScheduler::observeBatch(const std::string &model,
                                int64_t queries,
                                double serviceSeconds)
{
    if (queries <= 0 || serviceSeconds < 0.0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    Model &m = modelFor(model);
    double per = serviceSeconds / static_cast<double>(queries);
    m.serviceEwma = m.serviceEwma == 0.0
        ? per
        : options_.serviceAlpha * per +
              (1.0 - options_.serviceAlpha) * m.serviceEwma;
}

void
AdaptiveScheduler::observeBurnRate(const std::string &model,
                                   double burnRate)
{
    std::lock_guard<std::mutex> lock(mutex_);
    modelFor(model).burnRate = burnRate;
}

void
AdaptiveScheduler::setBacklog(const std::string &model,
                              int64_t depth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    modelFor(model).backlog = std::max<int64_t>(depth, 0);
}

int64_t
AdaptiveScheduler::computeTarget(const Model &m) const
{
    // Uncalibrated models run the paper's static policy: the tuned
    // maximum. There is no latency model to size against yet.
    if (m.serviceEwma <= 0.0)
        return m.maxBatch;

    const double headroom =
        m.burnRate >= options_.shrinkBurnThreshold
            ? options_.shrinkHeadroom
            : options_.headroom;
    const double budget = headroom * m.sloSeconds;
    const double per = m.serviceEwma;

    // Largest b whose predicted latency fits the budget:
    //   backlog drain + batch assembly ((b-1)/lambda) + service.
    // Each term is monotone in b, so a linear scan suffices (the
    // ceiling is a tuned batch, tens at most).
    const double backlog_wait =
        static_cast<double>(m.backlog) * per;
    int64_t best = 0;
    for (int64_t b = options_.minBatch; b <= m.maxBatch; ++b) {
        double assembly = 0.0;
        if (b > 1) {
            if (m.arrivalEwma <= 0.0)
                break; // no traffic: nothing will fill a bigger b
            assembly =
                static_cast<double>(b - 1) / m.arrivalEwma;
        }
        double predicted =
            backlog_wait + assembly + per * static_cast<double>(b);
        if (predicted > budget)
            break;
        best = b;
    }

    // Even a lone query misses the budget: the model is overloaded
    // (or the SLO is unattainable), and shrinking further only
    // costs throughput — fall back to the throughput-optimal tuned
    // maximum.
    if (best == 0)
        return m.maxBatch;
    return best;
}

void
AdaptiveScheduler::tick(double nowSeconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const double dt =
        lastTick_ >= 0.0 && nowSeconds > lastTick_
            ? nowSeconds - lastTick_
            : 0.0;

    // Which tenants are contending for the pool this interval?
    // Only they accrue credit: fair sharing stays work-conserving
    // (a lone active tenant gets the whole pool), and an idle
    // tenant cannot bank credit to burst with later.
    std::map<std::string, bool> active;
    for (const auto &[name, m] : models_) {
        if (m.backlog > 0 || m.arrivalsSinceTick > 0)
            active[m.tenant] = true;
    }

    for (auto &[name, m] : models_) {
        if (dt > 0.0) {
            double inst =
                static_cast<double>(m.arrivalsSinceTick) / dt;
            m.arrivalEwma = m.haveArrivalRate
                ? options_.arrivalAlpha * inst +
                      (1.0 - options_.arrivalAlpha) * m.arrivalEwma
                : inst;
            m.haveArrivalRate = true;
            m.arrivalsSinceTick = 0;
        }
        m.target = computeTarget(m);
    }

    if (dt > 0.0 && !active.empty()) {
        double weight_sum = 0.0;
        for (const auto &[name, is_active] : active)
            weight_sum += tenantFor(name).weight;
        for (auto &[name, t] : tenants_) {
            if (active.count(name)) {
                t.deficitSeconds += dt * options_.poolSeconds *
                                    t.weight / weight_sum;
                t.deficitSeconds =
                    std::min(t.deficitSeconds,
                             options_.maxDeficitSeconds);
            } else {
                // Standard DRR: an emptied queue forfeits its
                // residual credit.
                t.deficitSeconds = std::min(t.deficitSeconds, 0.0);
            }
        }
    }

    lastTick_ = nowSeconds;
    exportGauges();
}

void
AdaptiveScheduler::exportGauges()
{
    if (!metrics_)
        return;
    for (auto &[name, m] : models_) {
        m.targetGauge->set(static_cast<double>(m.target));
        m.arrivalGauge->set(m.arrivalEwma);
        m.serviceGauge->set(m.serviceEwma);
    }
    double charged_total = 0.0;
    for (const auto &[name, t] : tenants_)
        charged_total += t.chargedSeconds;
    for (auto &[name, t] : tenants_) {
        t.weightGauge->set(t.weight);
        t.deficitGauge->set(t.deficitSeconds);
        t.shareGauge->set(charged_total > 0.0
                              ? t.chargedSeconds / charged_total
                              : 0.0);
    }
}

int64_t
AdaptiveScheduler::batchTarget(const std::string &model) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(model);
    return it != models_.end() ? it->second.target
                               : options_.maxBatch;
}

bool
AdaptiveScheduler::allowDispatch(const std::string &model) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(model);
    if (it == models_.end())
        return true;
    auto t = tenants_.find(it->second.tenant);
    return t == tenants_.end() || t->second.deficitSeconds >= 0.0;
}

void
AdaptiveScheduler::chargeDispatch(const std::string &model,
                                  double serviceSeconds)
{
    if (serviceSeconds < 0.0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    Tenant &t = tenantFor(modelFor(model).tenant);
    t.deficitSeconds -= serviceSeconds;
    t.chargedSeconds += serviceSeconds;
}

double
AdaptiveScheduler::arrivalRate(const std::string &model) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(model);
    return it != models_.end() ? it->second.arrivalEwma : 0.0;
}

double
AdaptiveScheduler::tenantDeficit(const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(tenant);
    return it != tenants_.end() ? it->second.deficitSeconds : 0.0;
}

std::vector<ModelSchedState>
AdaptiveScheduler::modelStates() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ModelSchedState> out;
    out.reserve(models_.size());
    for (const auto &[name, m] : models_) {
        ModelSchedState s;
        s.model = name;
        s.tenant = m.tenant;
        s.target = m.target;
        s.maxBatch = m.maxBatch;
        s.backlog = m.backlog;
        s.arrivalQps = m.arrivalEwma;
        s.serviceSecondsPerQuery = m.serviceEwma;
        s.sloSeconds = m.sloSeconds;
        s.burnRate = m.burnRate;
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<TenantSchedState>
AdaptiveScheduler::tenantStates() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    double charged_total = 0.0;
    for (const auto &[name, t] : tenants_)
        charged_total += t.chargedSeconds;
    std::vector<TenantSchedState> out;
    out.reserve(tenants_.size());
    for (const auto &[name, t] : tenants_) {
        TenantSchedState s;
        s.tenant = name;
        s.weight = t.weight;
        s.deficitSeconds = t.deficitSeconds;
        s.chargedSeconds = t.chargedSeconds;
        s.share = charged_total > 0.0
                      ? t.chargedSeconds / charged_total
                      : 0.0;
        out.push_back(std::move(s));
    }
    return out;
}

std::string
AdaptiveScheduler::renderJson() const
{
    std::string out = "{\"models\": [";
    bool first = true;
    for (const auto &m : modelStates()) {
        if (!first)
            out += ", ";
        first = false;
        out += strprintf(
            "{\"model\": \"%s\", \"tenant\": \"%s\", "
            "\"target\": %lld, \"max_batch\": %lld, "
            "\"backlog\": %lld, \"arrival_qps\": %.6g, "
            "\"service_ms\": %.6g, \"slo_ms\": %.6g, "
            "\"burn_rate\": %.6g}",
            m.model.c_str(), m.tenant.c_str(),
            static_cast<long long>(m.target),
            static_cast<long long>(m.maxBatch),
            static_cast<long long>(m.backlog), m.arrivalQps,
            m.serviceSecondsPerQuery * 1e3, m.sloSeconds * 1e3,
            m.burnRate);
    }
    out += "], \"tenants\": [";
    first = true;
    for (const auto &t : tenantStates()) {
        if (!first)
            out += ", ";
        first = false;
        out += strprintf(
            "{\"tenant\": \"%s\", \"weight\": %.6g, "
            "\"deficit_ms\": %.6g, \"charged_seconds\": %.6g, "
            "\"share\": %.6g}",
            t.tenant.c_str(), t.weight, t.deficitSeconds * 1e3,
            t.chargedSeconds, t.share);
    }
    out += "]}\n";
    return out;
}

} // namespace serve
} // namespace djinn
