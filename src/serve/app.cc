#include "serve/app.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace djinn {
namespace serve {

namespace {

using nn::zoo::Model;
using namespace units;

/**
 * Table 3, plus the pre/post-processing fractions implied by
 * Figure 4 (image tasks are nearly pure DNN; ASR splits roughly
 * half; the NLP tasks spend about a third outside the DNN).
 * Output sizes follow the service responses: a classification for
 * the image tasks, per-input probability vectors for ASR and NLP.
 */
const AppSpec catalog[] = {
    {App::IMC, "IMC", Model::AlexNet, 1, 604 * KiB, 4 * KiB, 16,
     0.015, 0.005},
    {App::DIG, "DIG", Model::Mnist, 100, 307 * KiB, 4 * KiB, 16,
     0.02, 0.01},
    {App::FACE, "FACE", Model::DeepFace, 1, 271 * KiB, 0.4 * KiB, 2,
     0.015, 0.005},
    {App::ASR, "ASR", Model::KaldiAsr, 548, 4594 * KiB, 8766 * KiB, 2,
     0.72, 0.40},
    {App::POS, "POS", Model::SennaPos, 28, 38 * KiB, 5 * KiB, 64,
     0.30, 0.19},
    {App::CHK, "CHK", Model::SennaChk, 28, 75 * KiB, 2.6 * KiB, 64,
     0.33, 0.21},
    {App::NER, "NER", Model::SennaNer, 28, 43 * KiB, 1.0 * KiB, 64,
     0.27, 0.16},
};

} // namespace

const AppSpec &
appSpec(App app)
{
    for (const auto &spec : catalog) {
        if (spec.app == app)
            return spec;
    }
    panic("appSpec: unknown app %d", static_cast<int>(app));
}

App
appFromName(const std::string &name)
{
    for (const auto &spec : catalog) {
        if (spec.name == name)
            return spec.app;
    }
    fatal("unknown application '%s'", name.c_str());
}

const std::vector<App> &
allApps()
{
    static const std::vector<App> apps = {
        App::IMC, App::DIG, App::FACE, App::ASR,
        App::POS, App::CHK, App::NER,
    };
    return apps;
}

const char *
appName(App app)
{
    return appSpec(app).name.c_str();
}

} // namespace serve
} // namespace djinn
