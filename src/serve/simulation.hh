/**
 * @file
 * The DNN-serving simulator: clients drive batched queries through
 * host preparation, the host interconnect, and one or more
 * (possibly MPS-shared) GPUs. This reproduces the paper's
 * single-server experiments (Figures 5, 7, 8, 9, 10, 11, 12) and
 * extends them with open-loop arrivals, heterogeneous co-location,
 * and energy accounting.
 */

#ifndef DJINN_SERVE_SIMULATION_HH
#define DJINN_SERVE_SIMULATION_HH

#include <cstdint>
#include <vector>

#include "gpu/gpu_spec.hh"
#include "gpu/link.hh"
#include "nn/zoo.hh"
#include "serve/app.hh"

namespace djinn {
namespace serve {

/** How load is offered to the service. */
enum class LoadMode {
    /**
     * Closed loop: a fixed client population; every completion
     * immediately reissues. Measures peak throughput (the paper's
     * stress-test methodology).
     */
    Closed,

    /**
     * Open loop: Poisson arrivals at a fixed rate, split
     * round-robin over instances. Measures latency at a target
     * load.
     */
    Open,
};

/** Configuration of one serving experiment. */
struct SimConfig {
    /** The application under test. */
    App app = App::IMC;

    /** Queries combined into one GPU pass (paper Section 5.1). */
    int64_t batch = 1;

    /** GPUs in the server (paper Section 5.3 scales 1-8). */
    int gpuCount = 1;

    /** Concurrent DNN service instances per GPU (Section 5.2). */
    int instancesPerGpu = 1;

    /** Share each GPU via MPS (true) or time-slicing (false). */
    bool mps = true;

    /** Device model. */
    gpu::GpuSpec gpuSpec;

    /**
     * The host-side interconnect all GPU traffic crosses. Defaults
     * to the dual-socket root-complex equivalent of two PCIe v3 x16
     * links; use gpu::unlimitedLink() for the paper's pinned-input
     * experiment (Figure 12).
     */
    gpu::LinkSpec hostLink;

    /** Host cores available for query preparation. */
    int hostCores = 12;

    /** Fixed host preparation cost per query, seconds. */
    double hostPrepFixed = 2e-6;

    /** Host preparation cost per query payload byte, seconds. */
    double hostPrepPerByte = 1.0 / 10e9;

    /** Load generation mode. */
    LoadMode loadMode = LoadMode::Closed;

    /**
     * Closed loop: clients per service instance, expressed in
     * batches: concurrency = clientBatches * batch queries.
     */
    int clientBatches = 2;

    /** Open loop: aggregate query arrival rate, queries/second. */
    double arrivalRate = 0.0;

    /** Seed for the open-loop arrival process. */
    uint64_t seed = 1;

    /** Simulated warmup before measurement, seconds. */
    double warmupTime = 0.25;

    /** Simulated measurement window, seconds. */
    double measureTime = 1.0;

    SimConfig();
};

/** Measured results of one serving experiment. */
struct SimResult {
    /** Steady-state queries per second. */
    double throughputQps = 0.0;

    /** Mean query sojourn time (queue + service), seconds. */
    double meanLatency = 0.0;

    /** 99th percentile query latency, seconds. */
    double p99Latency = 0.0;

    /** 95th percentile query latency, seconds. */
    double p95Latency = 0.0;

    /** Median query latency, seconds. */
    double medianLatency = 0.0;

    /** Queries completed inside the measurement window. */
    uint64_t completedQueries = 0;

    /** Average achieved GPU occupancy of the batched forward pass. */
    double gpuOccupancy = 0.0;

    /** Fraction of the window each GPU spent executing kernels. */
    double gpuUtilization = 0.0;

    /** Fraction of the window the host link spent busy. */
    double hostLinkUtilization = 0.0;

    /** Host-link bytes moved per second during the window. */
    double hostLinkBytesPerSec = 0.0;

    /**
     * Server energy per query, joules: GPUs (idle floor plus
     * utilization-proportional dynamic power) plus the host CPU
     * share, divided by completed queries.
     */
    double energyPerQuery = 0.0;
};

/** Run one serving experiment. */
SimResult runServingSim(const SimConfig &config);

/** One application's slice of a co-located (mixed) experiment. */
struct TenantConfig {
    /** The application. */
    App app = App::IMC;

    /** Queries per combined GPU pass for this tenant. */
    int64_t batch = 1;

    /** Service instances this tenant runs (spread across GPUs). */
    int instances = 1;
};

/** Per-tenant results of a mixed experiment. */
struct TenantResult {
    App app = App::IMC;
    double throughputQps = 0.0;
    double meanLatency = 0.0;
    double p99Latency = 0.0;
    uint64_t completedQueries = 0;
};

/**
 * Results of a co-located experiment: the shared-server totals plus
 * one entry per tenant.
 */
struct MixedSimResult {
    std::vector<TenantResult> tenants;
    double gpuUtilization = 0.0;
    double hostLinkUtilization = 0.0;
};

/**
 * Run several applications concurrently against the same GPU server
 * (the DjiNN deployment model: one service, many applications).
 * Uses the SimConfig's server-side knobs (gpuCount, mps, hostLink,
 * load mode); per-tenant batch/instances come from @p tenants, and
 * SimConfig::app is ignored.
 */
MixedSimResult runMixedSim(const SimConfig &config,
                           const std::vector<TenantConfig> &tenants);

/**
 * A process-lifetime cache of zoo networks built with zeroed
 * weights (cost analysis only needs shapes). Thread-safe.
 */
const nn::Network &sharedNetwork(nn::zoo::Model model);

/**
 * Single-core CPU time for one query's DNN portion of @p app
 * (batch of one query), used as the baseline for the paper's
 * GPU-vs-CPU throughput ratios.
 */
double cpuQueryTime(App app, const gpu::CpuSpec &spec);

} // namespace serve
} // namespace djinn

#endif // DJINN_SERVE_SIMULATION_HH
