/**
 * @file
 * Contended resources inside the serving simulator: a FIFO data
 * link (PCIe / NIC), a pool of host CPU cores, and a GPU that is
 * either time-shared between processes (non-MPS) or shared
 * concurrently via processor sharing (NVIDIA MPS, paper Section
 * 5.2).
 */

#ifndef DJINN_SERVE_RESOURCES_HH
#define DJINN_SERVE_RESOURCES_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <list>

#include "gpu/gpu_spec.hh"
#include "gpu/link.hh"
#include "sim/event_queue.hh"

namespace djinn {
namespace serve {

/**
 * A shared data link serving transfers in FIFO order at its
 * effective bandwidth. Models the host-side interconnect that all
 * GPU input/output traffic crosses.
 */
class FifoLink
{
  public:
    /**
     * @param eq the simulation event queue.
     * @param spec link bandwidth description.
     */
    FifoLink(sim::EventQueue &eq, const gpu::LinkSpec &spec);

    /** Queue a transfer; @p done fires when the bytes have moved. */
    void transfer(double bytes, std::function<void()> done);

    /** Total bytes moved so far. */
    double bytesMoved() const { return bytesMoved_; }

    /** Total time the link has spent busy. */
    double busyTime() const { return busyTime_; }

    /** The link description. */
    const gpu::LinkSpec &spec() const { return spec_; }

  private:
    struct Pending {
        double bytes;
        std::function<void()> done;
    };

    void startNext();

    sim::EventQueue &eq_;
    gpu::LinkSpec spec_;
    std::deque<Pending> queue_;
    bool busy_ = false;
    double bytesMoved_ = 0.0;
    double busyTime_ = 0.0;
};

/**
 * A pool of identical host CPU cores running fixed-duration jobs
 * (query pre-processing / serialization) in FIFO order.
 */
class CpuPool
{
  public:
    /**
     * @param eq the simulation event queue.
     * @param cores number of cores in the pool.
     */
    CpuPool(sim::EventQueue &eq, int cores);

    /** Queue a job of @p duration seconds; @p done fires at end. */
    void run(double duration, std::function<void()> done);

    /** Aggregate busy core-seconds so far. */
    double busyTime() const { return busyTime_; }

  private:
    struct Pending {
        double duration;
        std::function<void()> done;
    };

    void dispatch();

    sim::EventQueue &eq_;
    int cores_;
    int busyCores_ = 0;
    std::deque<Pending> queue_;
    double busyTime_ = 0.0;
};

/**
 * One GPU executing batch forward passes submitted by service
 * instances (processes).
 *
 * Without MPS, processes time-share: jobs run one at a time and a
 * context switch is charged whenever ownership changes.
 *
 * With MPS, kernels from different processes run concurrently under
 * processor sharing: while the sum of the running jobs' occupancies
 * is below 1 they proceed at full speed (they occupy complementary
 * SMs); beyond that they slow down proportionally.
 */
class GpuResource
{
  public:
    /** A batch forward pass to execute. */
    struct Job {
        /** Solo execution time of the batch, seconds. */
        double soloTime;

        /** Average achieved occupancy of the batch's kernels. */
        double occupancy;

        /** Submitting process (service instance) id. */
        int instance;

        /** Fires when the batch completes. */
        std::function<void()> done;
    };

    /**
     * @param eq the simulation event queue.
     * @param spec device description.
     * @param mps true to share concurrently via MPS.
     */
    GpuResource(sim::EventQueue &eq, const gpu::GpuSpec &spec,
                bool mps);

    /** Submit a batch for execution. */
    void submit(Job job);

    /** Total solo-work seconds completed. */
    double workDone() const { return workDone_; }

    /** True when MPS sharing is enabled. */
    bool mps() const { return mps_; }

  private:
    struct Running {
        Job job;
        double remaining;
    };

    // Exclusive (non-MPS) path.
    void startNextExclusive();

    // MPS processor-sharing path.
    void advance();
    void reschedule();
    double currentRate() const;

    sim::EventQueue &eq_;
    gpu::GpuSpec spec_;
    bool mps_;

    std::deque<Job> queue_;
    bool busy_ = false;
    int lastInstance_ = -1;
    double workDone_ = 0.0;

    std::list<Running> running_;
    double lastUpdate_ = 0.0;
    sim::EventId completionEvent_ = sim::InvalidEventId;
};

} // namespace serve
} // namespace djinn

#endif // DJINN_SERVE_RESOURCES_HH
