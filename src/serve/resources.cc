#include "serve/resources.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace djinn {
namespace serve {

// FifoLink ---------------------------------------------------------

FifoLink::FifoLink(sim::EventQueue &eq, const gpu::LinkSpec &spec)
    : eq_(eq), spec_(spec)
{}

void
FifoLink::transfer(double bytes, std::function<void()> done)
{
    queue_.push_back({bytes, std::move(done)});
    if (!busy_)
        startNext();
}

void
FifoLink::startNext()
{
    if (queue_.empty()) {
        busy_ = false;
        return;
    }
    busy_ = true;
    Pending item = std::move(queue_.front());
    queue_.pop_front();
    double duration = spec_.transferTime(item.bytes);
    bytesMoved_ += item.bytes;
    busyTime_ += duration;
    eq_.scheduleAfter(duration,
                      [this, done = std::move(item.done)]() {
                          done();
                          startNext();
                      });
}

// CpuPool ----------------------------------------------------------

CpuPool::CpuPool(sim::EventQueue &eq, int cores)
    : eq_(eq), cores_(cores)
{
    if (cores <= 0)
        fatal("CpuPool: need at least one core, got %d", cores);
}

void
CpuPool::run(double duration, std::function<void()> done)
{
    queue_.push_back({duration, std::move(done)});
    dispatch();
}

void
CpuPool::dispatch()
{
    while (busyCores_ < cores_ && !queue_.empty()) {
        Pending item = std::move(queue_.front());
        queue_.pop_front();
        ++busyCores_;
        busyTime_ += item.duration;
        eq_.scheduleAfter(item.duration,
                          [this, done = std::move(item.done)]() {
                              --busyCores_;
                              done();
                              dispatch();
                          });
    }
}

// GpuResource ------------------------------------------------------

GpuResource::GpuResource(sim::EventQueue &eq, const gpu::GpuSpec &spec,
                         bool mps)
    : eq_(eq), spec_(spec), mps_(mps)
{}

void
GpuResource::submit(Job job)
{
    if (job.soloTime <= 0.0)
        fatal("GpuResource: non-positive job time %g", job.soloTime);
    if (!mps_) {
        queue_.push_back(std::move(job));
        if (!busy_)
            startNextExclusive();
        return;
    }

    // MPS: admit up to the process limit, overflow waits FIFO.
    if (static_cast<int64_t>(running_.size()) >=
        spec_.mpsMaxProcesses) {
        queue_.push_back(std::move(job));
        return;
    }
    advance();
    running_.push_back({std::move(job), 0.0});
    running_.back().remaining = running_.back().job.soloTime;
    reschedule();
}

void
GpuResource::startNextExclusive()
{
    if (queue_.empty()) {
        busy_ = false;
        return;
    }
    busy_ = true;
    Job job = std::move(queue_.front());
    queue_.pop_front();
    double duration = job.soloTime;
    if (lastInstance_ != -1 && lastInstance_ != job.instance)
        duration += spec_.contextSwitchOverhead;
    lastInstance_ = job.instance;
    workDone_ += job.soloTime;
    eq_.scheduleAfter(duration,
                      [this, done = std::move(job.done)]() {
                          done();
                          startNextExclusive();
                      });
}

double
GpuResource::currentRate() const
{
    double total_occ = 0.0;
    for (const auto &r : running_)
        total_occ += r.job.occupancy;
    if (total_occ <= 1.0)
        return 1.0;
    return 1.0 / total_occ;
}

void
GpuResource::advance()
{
    double now = eq_.now();
    double dt = now - lastUpdate_;
    lastUpdate_ = now;
    if (dt <= 0.0 || running_.empty())
        return;
    double rate = currentRate();
    for (auto &r : running_)
        r.remaining -= dt * rate;
}

void
GpuResource::reschedule()
{
    if (completionEvent_ != sim::InvalidEventId) {
        eq_.cancel(completionEvent_);
        completionEvent_ = sim::InvalidEventId;
    }
    if (running_.empty())
        return;
    double min_remaining = 1e300;
    for (const auto &r : running_)
        min_remaining = std::min(min_remaining, r.remaining);
    min_remaining = std::max(min_remaining, 0.0);
    double delay = min_remaining / currentRate();
    completionEvent_ = eq_.scheduleAfter(delay, [this]() {
        completionEvent_ = sim::InvalidEventId;
        advance();
        // Collect completed jobs (remaining within epsilon).
        std::vector<std::function<void()>> done_callbacks;
        for (auto it = running_.begin(); it != running_.end();) {
            if (it->remaining <= 1e-12) {
                workDone_ += it->job.soloTime;
                done_callbacks.push_back(std::move(it->job.done));
                it = running_.erase(it);
            } else {
                ++it;
            }
        }
        // Admit queued jobs up to the MPS process limit.
        while (!queue_.empty() &&
               static_cast<int64_t>(running_.size()) <
                   spec_.mpsMaxProcesses) {
            Job job = std::move(queue_.front());
            queue_.pop_front();
            running_.push_back({std::move(job), 0.0});
            running_.back().remaining =
                running_.back().job.soloTime;
        }
        reschedule();
        for (auto &cb : done_callbacks)
            cb();
    });
}

} // namespace serve
} // namespace djinn
