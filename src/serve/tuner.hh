/**
 * @file
 * Batch-size auto-tuning: the paper selects each application's
 * batch size by sweeping Figure 7 and picking "high throughput
 * while limiting query latency impact" (Section 5.1, Table 3 last
 * column). This formalizes that rule as a library call.
 */

#ifndef DJINN_SERVE_TUNER_HH
#define DJINN_SERVE_TUNER_HH

#include <cstdint>
#include <vector>

#include "serve/simulation.hh"

namespace djinn {
namespace serve {

/** Tuning policy. */
struct TunerOptions {
    /** Candidate batch sizes, ascending. */
    std::vector<int64_t> candidates{1, 2, 4, 8, 16, 32, 64, 128};

    /**
     * Latency budget as a multiple of the unbatched mean latency;
     * candidates beyond it are rejected.
     */
    double latencySlack = 6.0;

    /**
     * Accept the smallest batch whose throughput reaches this
     * fraction of the best admissible throughput.
     */
    double throughputFraction = 0.9;
};

/** One point of the tuning sweep. */
struct TunerPoint {
    int64_t batch = 0;
    double throughputQps = 0.0;
    double meanLatency = 0.0;
    bool admissible = false;
};

/** The tuning result: the chosen batch plus the full sweep. */
struct TunerResult {
    int64_t batch = 1;
    std::vector<TunerPoint> sweep;
};

/**
 * Sweep batch sizes for @p app on the server described by
 * @p base_config (its batch field is ignored) and select per the
 * paper's rule.
 */
TunerResult tuneBatchSize(App app, const SimConfig &base_config,
                          const TunerOptions &options = {});

} // namespace serve
} // namespace djinn

#endif // DJINN_SERVE_TUNER_HH
