/**
 * @file
 * SLO-driven adaptive batching and multi-tenant fair sharing.
 *
 * DjiNN dispatches with a static tuned batch (Table 3) and a fixed
 * 2 ms delay; the throughput-vs-latency tradeoff that policy bakes
 * in (paper Section 5.1 / Fig 9) is decided once, offline. The
 * AdaptiveScheduler decides it continuously instead: each model's
 * dispatch target grows toward its tuned maximum while the
 * predicted latency — queue drain + batch assembly + calibrated
 * batch service time — stays inside a headroom fraction of the
 * model's SLO, and shrinks when the SLO burn rate says the budget
 * is being consumed too fast. Co-located tenants share the compute
 * pool under deficit-weighted fair sharing accounted at
 * batch-dispatch granularity, so one hot model cannot starve its
 * neighbours.
 *
 * The class is clock-free: every time-dependent entry point takes
 * an explicit `now` in seconds, so the same policy drives the live
 * server (trace-clock seconds) and the deterministic cluster
 * simulator (virtual event time) unchanged.
 */

#ifndef DJINN_SERVE_SCHEDULER_HH
#define DJINN_SERVE_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hh"

namespace djinn {
namespace serve {

/** Policy knobs for the adaptive scheduler. */
struct SchedulerOptions {
    /** Smallest dispatch target a model can shrink to. */
    int64_t minBatch = 1;

    /** Ceiling for models without an explicit setMaxBatch() (the
     * live server passes its --batch-size here). */
    int64_t maxBatch = 16;

    /** SLO applied to models without an explicit setSlo(),
     * seconds. */
    double defaultSloSeconds = 0.050;

    /** Fraction of the SLO the predicted latency may use; the rest
     * absorbs prediction error and network/protocol overhead. */
    double headroom = 0.8;

    /** Tightened headroom applied while a model's burn rate is at
     * or above shrinkBurnThreshold: the batch shrinks until the
     * predicted latency fits the reduced budget. */
    double shrinkHeadroom = 0.4;

    /** Burn rate at or above which the tightened headroom kicks
     * in (1.0 = consuming the error budget exactly as fast as the
     * objective allows). */
    double shrinkBurnThreshold = 1.0;

    /** EWMA weight for new arrival-rate observations. */
    double arrivalAlpha = 0.3;

    /** EWMA weight for new per-query service-time observations. */
    double serviceAlpha = 0.2;

    /** Cap on a tenant's accumulated dispatch credit, seconds of
     * compute; bounds how bursty a long-idle-then-hot tenant can
     * be at its neighbours' expense. */
    double maxDeficitSeconds = 0.050;

    /** Compute-pool seconds accrued per elapsed second (the number
     * of parallel executors the tenants share). */
    double poolSeconds = 1.0;
};

/** One model's policy state, as rendered by the `sched` verb and
 * asserted by tests. */
struct ModelSchedState {
    std::string model;
    std::string tenant;
    int64_t target = 0;
    int64_t maxBatch = 0;
    int64_t backlog = 0;
    double arrivalQps = 0.0;
    double serviceSecondsPerQuery = 0.0;
    double sloSeconds = 0.0;
    double burnRate = 0.0;
};

/** One tenant's fair-share accounting. */
struct TenantSchedState {
    std::string tenant;
    double weight = 1.0;
    double deficitSeconds = 0.0;
    double chargedSeconds = 0.0;

    /** This tenant's fraction of all compute seconds charged so
     * far; 0 until anything dispatches. */
    double share = 0.0;
};

/**
 * The adaptive batching + weighted fair sharing policy engine.
 * Thread-safe; every method takes one short mutex hold. Models and
 * tenants are created lazily on first mention with default policy
 * (tenant "default", weight 1).
 */
class AdaptiveScheduler
{
  public:
    explicit AdaptiveScheduler(
        const SchedulerOptions &options = {},
        telemetry::MetricRegistry *metrics = nullptr);

    AdaptiveScheduler(const AdaptiveScheduler &) = delete;
    AdaptiveScheduler &operator=(const AdaptiveScheduler &) = delete;

    /** Register @p tenant with relative @p weight (> 0). */
    void addTenant(const std::string &tenant, double weight);

    /** Bind @p model's dispatches to @p tenant's quota. */
    void assignModel(const std::string &model,
                     const std::string &tenant);

    /** Override @p model's latency SLO, seconds. */
    void setSlo(const std::string &model, double seconds);

    /** Override @p model's dispatch-target ceiling (its tuned
     * batch). */
    void setMaxBatch(const std::string &model, int64_t maxBatch);

    /** Count @p queries arriving for @p model; folded into the
     * arrival-rate EWMA at the next tick(). */
    void observeArrival(const std::string &model, int64_t queries);

    /** Fold one completed batch into the per-query service-time
     * EWMA. */
    void observeBatch(const std::string &model, int64_t queries,
                      double serviceSeconds);

    /** Report @p model's current SLO burn rate (SloTracker). */
    void observeBurnRate(const std::string &model, double burnRate);

    /** Report @p model's queued-query depth (admission backlog). */
    void setBacklog(const std::string &model, int64_t depth);

    /**
     * Advance the control loop to @p nowSeconds: fold arrival
     * counts into rate EWMAs, recompute every model's dispatch
     * target, refill tenant deficits in proportion to weight
     * (active tenants only — fair sharing is work-conserving), and
     * export the djinn_sched_* gauges.
     */
    void tick(double nowSeconds);

    /** Current dispatch target for @p model (its ceiling when the
     * model is unknown or uncalibrated). */
    int64_t batchTarget(const std::string &model) const;

    /** May @p model dispatch a batch now? True unless its tenant
     * has exhausted its dispatch credit. */
    bool allowDispatch(const std::string &model) const;

    /** Charge @p serviceSeconds of compute to @p model's tenant;
     * call once per dispatched batch. */
    void chargeDispatch(const std::string &model,
                        double serviceSeconds);

    /** Smoothed arrival rate for @p model, queries/second. */
    double arrivalRate(const std::string &model) const;

    /** @p tenant's dispatch credit, seconds (negative while paying
     * off an overshoot). */
    double tenantDeficit(const std::string &tenant) const;

    /** Per-model policy state, sorted by model name. */
    std::vector<ModelSchedState> modelStates() const;

    /** Per-tenant accounting, sorted by tenant name. */
    std::vector<TenantSchedState> tenantStates() const;

    /** The full policy state as one JSON object (the `sched` wire
     * verb's payload). Deterministic field order. */
    std::string renderJson() const;

  private:
    struct Tenant {
        double weight = 1.0;
        double deficitSeconds = 0.0;
        double chargedSeconds = 0.0;
        telemetry::Gauge *weightGauge = nullptr;
        telemetry::Gauge *deficitGauge = nullptr;
        telemetry::Gauge *shareGauge = nullptr;
    };

    struct Model {
        std::string tenant;
        int64_t maxBatch = 0;
        int64_t target = 0;
        int64_t backlog = 0;
        int64_t arrivalsSinceTick = 0;
        double sloSeconds = 0.0;
        double arrivalEwma = 0.0;
        bool haveArrivalRate = false;
        double serviceEwma = 0.0; ///< seconds per query; 0 until
                                  ///< the first batch calibrates it
        double burnRate = 0.0;
        telemetry::Gauge *targetGauge = nullptr;
        telemetry::Gauge *arrivalGauge = nullptr;
        telemetry::Gauge *serviceGauge = nullptr;
    };

    Model &modelFor(const std::string &model);
    Tenant &tenantFor(const std::string &tenant);
    int64_t computeTarget(const Model &m) const;
    void exportGauges();

    SchedulerOptions options_;
    telemetry::MetricRegistry *metrics_;

    mutable std::mutex mutex_;
    std::map<std::string, Model> models_;
    std::map<std::string, Tenant> tenants_;
    double lastTick_ = -1.0;
};

} // namespace serve
} // namespace djinn

#endif // DJINN_SERVE_SCHEDULER_HH
