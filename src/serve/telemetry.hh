/**
 * @file
 * Bridge from the serving simulator to the telemetry subsystem:
 * records a SimResult into a MetricRegistry so simulated
 * experiments and the live DjiNN service expose their numbers in
 * the same metric families and exposition formats (the benchmark
 * harness dumps them as JSON for BENCH_*.json trajectories).
 */

#ifndef DJINN_SERVE_TELEMETRY_HH
#define DJINN_SERVE_TELEMETRY_HH

#include <string>

#include "serve/simulation.hh"
#include "telemetry/metrics.hh"

namespace djinn {
namespace serve {

/**
 * Record one serving experiment into @p registry as gauges under
 * `djinn_sim_*`, labeled {app, scenario}:
 * throughput_qps, latency_seconds (mean/p50/p95/p99 variants),
 * gpu_occupancy, gpu_utilization, host_link_utilization,
 * energy_joules_per_query, completed_queries.
 *
 * @param registry destination registry.
 * @param scenario experiment tag, e.g. "batch=16,mps=4".
 * @param config the experiment's configuration (labels the app).
 * @param result the measured experiment.
 */
void recordSimResult(telemetry::MetricRegistry &registry,
                     const std::string &scenario,
                     const SimConfig &config,
                     const SimResult &result);

} // namespace serve
} // namespace djinn

#endif // DJINN_SERVE_TELEMETRY_HH
