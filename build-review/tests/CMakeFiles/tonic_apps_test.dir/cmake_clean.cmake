file(REMOVE_RECURSE
  "CMakeFiles/tonic_apps_test.dir/tonic/apps_test.cc.o"
  "CMakeFiles/tonic_apps_test.dir/tonic/apps_test.cc.o.d"
  "tonic_apps_test"
  "tonic_apps_test.pdb"
  "tonic_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tonic_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
