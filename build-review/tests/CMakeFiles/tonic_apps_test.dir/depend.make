# Empty dependencies file for tonic_apps_test.
# This may be replaced when dependencies are built.
