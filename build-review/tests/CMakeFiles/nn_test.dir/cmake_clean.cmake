file(REMOVE_RECURSE
  "CMakeFiles/nn_test.dir/nn/gemm_diff_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/gemm_diff_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/gemm_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/gemm_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/layers_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/layers_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/net_def_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/net_def_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/network_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/network_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/profile_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/profile_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/property_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/property_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/serialize_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/serialize_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/tensor_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/tensor_test.cc.o.d"
  "nn_test"
  "nn_test.pdb"
  "nn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
