file(REMOVE_RECURSE
  "CMakeFiles/tonic_test.dir/tonic/audio_test.cc.o"
  "CMakeFiles/tonic_test.dir/tonic/audio_test.cc.o.d"
  "CMakeFiles/tonic_test.dir/tonic/image_test.cc.o"
  "CMakeFiles/tonic_test.dir/tonic/image_test.cc.o.d"
  "CMakeFiles/tonic_test.dir/tonic/text_test.cc.o"
  "CMakeFiles/tonic_test.dir/tonic/text_test.cc.o.d"
  "CMakeFiles/tonic_test.dir/tonic/viterbi_test.cc.o"
  "CMakeFiles/tonic_test.dir/tonic/viterbi_test.cc.o.d"
  "tonic_test"
  "tonic_test.pdb"
  "tonic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tonic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
