# Empty dependencies file for tonic_test.
# This may be replaced when dependencies are built.
