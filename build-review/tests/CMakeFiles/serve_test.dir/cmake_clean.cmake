file(REMOVE_RECURSE
  "CMakeFiles/serve_test.dir/serve/app_test.cc.o"
  "CMakeFiles/serve_test.dir/serve/app_test.cc.o.d"
  "CMakeFiles/serve_test.dir/serve/mixed_sim_test.cc.o"
  "CMakeFiles/serve_test.dir/serve/mixed_sim_test.cc.o.d"
  "CMakeFiles/serve_test.dir/serve/resources_test.cc.o"
  "CMakeFiles/serve_test.dir/serve/resources_test.cc.o.d"
  "CMakeFiles/serve_test.dir/serve/simulation_test.cc.o"
  "CMakeFiles/serve_test.dir/serve/simulation_test.cc.o.d"
  "CMakeFiles/serve_test.dir/serve/tuner_test.cc.o"
  "CMakeFiles/serve_test.dir/serve/tuner_test.cc.o.d"
  "serve_test"
  "serve_test.pdb"
  "serve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
