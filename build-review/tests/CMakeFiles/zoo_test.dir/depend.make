# Empty dependencies file for zoo_test.
# This may be replaced when dependencies are built.
