file(REMOVE_RECURSE
  "CMakeFiles/zoo_test.dir/nn/determinism_test.cc.o"
  "CMakeFiles/zoo_test.dir/nn/determinism_test.cc.o.d"
  "CMakeFiles/zoo_test.dir/nn/zoo_profile_test.cc.o"
  "CMakeFiles/zoo_test.dir/nn/zoo_profile_test.cc.o.d"
  "CMakeFiles/zoo_test.dir/nn/zoo_test.cc.o"
  "CMakeFiles/zoo_test.dir/nn/zoo_test.cc.o.d"
  "zoo_test"
  "zoo_test.pdb"
  "zoo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
