file(REMOVE_RECURSE
  "CMakeFiles/wsc_test.dir/wsc/bandwidth_test.cc.o"
  "CMakeFiles/wsc_test.dir/wsc/bandwidth_test.cc.o.d"
  "CMakeFiles/wsc_test.dir/wsc/capacity_test.cc.o"
  "CMakeFiles/wsc_test.dir/wsc/capacity_test.cc.o.d"
  "CMakeFiles/wsc_test.dir/wsc/designs_test.cc.o"
  "CMakeFiles/wsc_test.dir/wsc/designs_test.cc.o.d"
  "CMakeFiles/wsc_test.dir/wsc/network_config_test.cc.o"
  "CMakeFiles/wsc_test.dir/wsc/network_config_test.cc.o.d"
  "CMakeFiles/wsc_test.dir/wsc/tco_params_test.cc.o"
  "CMakeFiles/wsc_test.dir/wsc/tco_params_test.cc.o.d"
  "CMakeFiles/wsc_test.dir/wsc/workload_mix_test.cc.o"
  "CMakeFiles/wsc_test.dir/wsc/workload_mix_test.cc.o.d"
  "wsc_test"
  "wsc_test.pdb"
  "wsc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
