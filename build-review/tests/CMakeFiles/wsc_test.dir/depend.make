# Empty dependencies file for wsc_test.
# This may be replaced when dependencies are built.
