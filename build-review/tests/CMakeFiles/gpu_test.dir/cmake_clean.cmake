file(REMOVE_RECURSE
  "CMakeFiles/gpu_test.dir/gpu/gpu_model_test.cc.o"
  "CMakeFiles/gpu_test.dir/gpu/gpu_model_test.cc.o.d"
  "CMakeFiles/gpu_test.dir/gpu/kernel_model_test.cc.o"
  "CMakeFiles/gpu_test.dir/gpu/kernel_model_test.cc.o.d"
  "CMakeFiles/gpu_test.dir/gpu/link_test.cc.o"
  "CMakeFiles/gpu_test.dir/gpu/link_test.cc.o.d"
  "gpu_test"
  "gpu_test.pdb"
  "gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
