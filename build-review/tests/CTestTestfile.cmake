# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/common_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/nn_test[1]_include.cmake")
include("/root/repo/build-review/tests/zoo_test[1]_include.cmake")
include("/root/repo/build-review/tests/train_test[1]_include.cmake")
include("/root/repo/build-review/tests/perf_test[1]_include.cmake")
include("/root/repo/build-review/tests/gpu_test[1]_include.cmake")
include("/root/repo/build-review/tests/calibration_test[1]_include.cmake")
include("/root/repo/build-review/tests/serve_test[1]_include.cmake")
include("/root/repo/build-review/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_test[1]_include.cmake")
include("/root/repo/build-review/tests/tonic_test[1]_include.cmake")
include("/root/repo/build-review/tests/tonic_apps_test[1]_include.cmake")
include("/root/repo/build-review/tests/wsc_test[1]_include.cmake")
