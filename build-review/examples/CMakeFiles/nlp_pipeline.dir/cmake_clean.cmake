file(REMOVE_RECURSE
  "CMakeFiles/nlp_pipeline.dir/nlp_pipeline.cpp.o"
  "CMakeFiles/nlp_pipeline.dir/nlp_pipeline.cpp.o.d"
  "nlp_pipeline"
  "nlp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
