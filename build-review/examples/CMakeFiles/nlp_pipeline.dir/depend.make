# Empty dependencies file for nlp_pipeline.
# This may be replaced when dependencies are built.
