# Empty dependencies file for wsc_planner.
# This may be replaced when dependencies are built.
