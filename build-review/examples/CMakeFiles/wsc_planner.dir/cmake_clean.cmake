file(REMOVE_RECURSE
  "CMakeFiles/wsc_planner.dir/wsc_planner.cpp.o"
  "CMakeFiles/wsc_planner.dir/wsc_planner.cpp.o.d"
  "wsc_planner"
  "wsc_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
