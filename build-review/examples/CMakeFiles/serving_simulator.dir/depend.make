# Empty dependencies file for serving_simulator.
# This may be replaced when dependencies are built.
