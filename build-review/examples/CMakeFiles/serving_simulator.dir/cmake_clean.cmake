file(REMOVE_RECURSE
  "CMakeFiles/serving_simulator.dir/serving_simulator.cpp.o"
  "CMakeFiles/serving_simulator.dir/serving_simulator.cpp.o.d"
  "serving_simulator"
  "serving_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
