# Empty dependencies file for speech_transcriber.
# This may be replaced when dependencies are built.
