file(REMOVE_RECURSE
  "CMakeFiles/speech_transcriber.dir/speech_transcriber.cpp.o"
  "CMakeFiles/speech_transcriber.dir/speech_transcriber.cpp.o.d"
  "speech_transcriber"
  "speech_transcriber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speech_transcriber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
