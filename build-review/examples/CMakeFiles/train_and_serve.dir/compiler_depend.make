# Empty compiler generated dependencies file for train_and_serve.
# This may be replaced when dependencies are built.
