# Empty compiler generated dependencies file for djinnd.
# This may be replaced when dependencies are built.
