file(REMOVE_RECURSE
  "CMakeFiles/djinnd.dir/djinnd.cc.o"
  "CMakeFiles/djinnd.dir/djinnd.cc.o.d"
  "djinnd"
  "djinnd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djinnd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
