file(REMOVE_RECURSE
  "CMakeFiles/djinn_cli.dir/djinn_cli.cc.o"
  "CMakeFiles/djinn_cli.dir/djinn_cli.cc.o.d"
  "djinn_cli"
  "djinn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djinn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
