# Empty dependencies file for djinn_cli.
# This may be replaced when dependencies are built.
