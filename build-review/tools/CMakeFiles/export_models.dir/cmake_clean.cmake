file(REMOVE_RECURSE
  "CMakeFiles/export_models.dir/export_models.cc.o"
  "CMakeFiles/export_models.dir/export_models.cc.o.d"
  "export_models"
  "export_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
