file(REMOVE_RECURSE
  "CMakeFiles/scrape_check.dir/scrape_check.cc.o"
  "CMakeFiles/scrape_check.dir/scrape_check.cc.o.d"
  "scrape_check"
  "scrape_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrape_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
