
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/scrape_check.cc" "tools/CMakeFiles/scrape_check.dir/scrape_check.cc.o" "gcc" "tools/CMakeFiles/scrape_check.dir/scrape_check.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/telemetry/CMakeFiles/djinn_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/djinn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
