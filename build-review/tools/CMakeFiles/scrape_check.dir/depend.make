# Empty dependencies file for scrape_check.
# This may be replaced when dependencies are built.
