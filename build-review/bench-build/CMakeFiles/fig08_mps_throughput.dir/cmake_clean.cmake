file(REMOVE_RECURSE
  "../bench/fig08_mps_throughput"
  "../bench/fig08_mps_throughput.pdb"
  "CMakeFiles/fig08_mps_throughput.dir/fig08_mps_throughput.cc.o"
  "CMakeFiles/fig08_mps_throughput.dir/fig08_mps_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_mps_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
