# Empty dependencies file for fig08_mps_throughput.
# This may be replaced when dependencies are built.
