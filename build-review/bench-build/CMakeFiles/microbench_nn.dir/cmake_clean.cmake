file(REMOVE_RECURSE
  "../bench/microbench_nn"
  "../bench/microbench_nn.pdb"
  "CMakeFiles/microbench_nn.dir/microbench_nn.cc.o"
  "CMakeFiles/microbench_nn.dir/microbench_nn.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
