# Empty compiler generated dependencies file for microbench_nn.
# This may be replaced when dependencies are built.
