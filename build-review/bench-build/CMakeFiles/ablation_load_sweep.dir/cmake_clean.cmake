file(REMOVE_RECURSE
  "../bench/ablation_load_sweep"
  "../bench/ablation_load_sweep.pdb"
  "CMakeFiles/ablation_load_sweep.dir/ablation_load_sweep.cc.o"
  "CMakeFiles/ablation_load_sweep.dir/ablation_load_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_load_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
