# Empty dependencies file for ablation_load_sweep.
# This may be replaced when dependencies are built.
