file(REMOVE_RECURSE
  "../bench/fig14_designs"
  "../bench/fig14_designs.pdb"
  "CMakeFiles/fig14_designs.dir/fig14_designs.cc.o"
  "CMakeFiles/fig14_designs.dir/fig14_designs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
