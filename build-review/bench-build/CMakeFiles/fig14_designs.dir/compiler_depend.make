# Empty compiler generated dependencies file for fig14_designs.
# This may be replaced when dependencies are built.
