# Empty dependencies file for ablation_prepost_tco.
# This may be replaced when dependencies are built.
