file(REMOVE_RECURSE
  "../bench/ablation_prepost_tco"
  "../bench/ablation_prepost_tco.pdb"
  "CMakeFiles/ablation_prepost_tco.dir/ablation_prepost_tco.cc.o"
  "CMakeFiles/ablation_prepost_tco.dir/ablation_prepost_tco.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prepost_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
