# Empty dependencies file for fig12_scaling_nopcie.
# This may be replaced when dependencies are built.
