file(REMOVE_RECURSE
  "../bench/fig12_scaling_nopcie"
  "../bench/fig12_scaling_nopcie.pdb"
  "CMakeFiles/fig12_scaling_nopcie.dir/fig12_scaling_nopcie.cc.o"
  "CMakeFiles/fig12_scaling_nopcie.dir/fig12_scaling_nopcie.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_scaling_nopcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
