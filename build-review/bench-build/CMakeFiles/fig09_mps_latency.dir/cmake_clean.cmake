file(REMOVE_RECURSE
  "../bench/fig09_mps_latency"
  "../bench/fig09_mps_latency.pdb"
  "CMakeFiles/fig09_mps_latency.dir/fig09_mps_latency.cc.o"
  "CMakeFiles/fig09_mps_latency.dir/fig09_mps_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mps_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
