# Empty dependencies file for table3_service.
# This may be replaced when dependencies are built.
