file(REMOVE_RECURSE
  "../bench/table3_service"
  "../bench/table3_service.pdb"
  "CMakeFiles/table3_service.dir/table3_service.cc.o"
  "CMakeFiles/table3_service.dir/table3_service.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
