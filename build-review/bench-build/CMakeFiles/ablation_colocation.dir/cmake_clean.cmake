file(REMOVE_RECURSE
  "../bench/ablation_colocation"
  "../bench/ablation_colocation.pdb"
  "CMakeFiles/ablation_colocation.dir/ablation_colocation.cc.o"
  "CMakeFiles/ablation_colocation.dir/ablation_colocation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
