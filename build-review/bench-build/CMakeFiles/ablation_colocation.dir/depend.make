# Empty dependencies file for ablation_colocation.
# This may be replaced when dependencies are built.
