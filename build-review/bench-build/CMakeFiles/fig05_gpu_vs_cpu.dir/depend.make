# Empty dependencies file for fig05_gpu_vs_cpu.
# This may be replaced when dependencies are built.
