file(REMOVE_RECURSE
  "../bench/fig05_gpu_vs_cpu"
  "../bench/fig05_gpu_vs_cpu.pdb"
  "CMakeFiles/fig05_gpu_vs_cpu.dir/fig05_gpu_vs_cpu.cc.o"
  "CMakeFiles/fig05_gpu_vs_cpu.dir/fig05_gpu_vs_cpu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_gpu_vs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
