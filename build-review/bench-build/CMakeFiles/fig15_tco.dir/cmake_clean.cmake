file(REMOVE_RECURSE
  "../bench/fig15_tco"
  "../bench/fig15_tco.pdb"
  "CMakeFiles/fig15_tco.dir/fig15_tco.cc.o"
  "CMakeFiles/fig15_tco.dir/fig15_tco.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
