# Empty compiler generated dependencies file for fig15_tco.
# This may be replaced when dependencies are built.
