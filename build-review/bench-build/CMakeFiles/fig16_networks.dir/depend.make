# Empty dependencies file for fig16_networks.
# This may be replaced when dependencies are built.
