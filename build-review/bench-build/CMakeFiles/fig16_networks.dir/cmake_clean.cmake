file(REMOVE_RECURSE
  "../bench/fig16_networks"
  "../bench/fig16_networks.pdb"
  "CMakeFiles/fig16_networks.dir/fig16_networks.cc.o"
  "CMakeFiles/fig16_networks.dir/fig16_networks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
