
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig16_networks.cc" "bench-build/CMakeFiles/fig16_networks.dir/fig16_networks.cc.o" "gcc" "bench-build/CMakeFiles/fig16_networks.dir/fig16_networks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/wsc/CMakeFiles/djinn_wsc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tonic/CMakeFiles/djinn_tonic.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/djinn_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/serve/CMakeFiles/djinn_serve.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gpu/CMakeFiles/djinn_gpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/perf/CMakeFiles/djinn_perf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/djinn_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/djinn_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/telemetry/CMakeFiles/djinn_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/djinn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
