file(REMOVE_RECURSE
  "../bench/fig07_batching"
  "../bench/fig07_batching.pdb"
  "CMakeFiles/fig07_batching.dir/fig07_batching.cc.o"
  "CMakeFiles/fig07_batching.dir/fig07_batching.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
