# Empty dependencies file for fig07_batching.
# This may be replaced when dependencies are built.
