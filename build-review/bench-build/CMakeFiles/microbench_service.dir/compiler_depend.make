# Empty compiler generated dependencies file for microbench_service.
# This may be replaced when dependencies are built.
