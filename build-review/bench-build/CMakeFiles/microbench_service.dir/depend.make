# Empty dependencies file for microbench_service.
# This may be replaced when dependencies are built.
