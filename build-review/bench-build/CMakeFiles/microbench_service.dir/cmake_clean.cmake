file(REMOVE_RECURSE
  "../bench/microbench_service"
  "../bench/microbench_service.pdb"
  "CMakeFiles/microbench_service.dir/microbench_service.cc.o"
  "CMakeFiles/microbench_service.dir/microbench_service.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
