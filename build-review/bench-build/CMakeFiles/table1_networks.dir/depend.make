# Empty dependencies file for table1_networks.
# This may be replaced when dependencies are built.
