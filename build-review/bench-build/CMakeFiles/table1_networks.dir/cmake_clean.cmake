file(REMOVE_RECURSE
  "../bench/table1_networks"
  "../bench/table1_networks.pdb"
  "CMakeFiles/table1_networks.dir/table1_networks.cc.o"
  "CMakeFiles/table1_networks.dir/table1_networks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
