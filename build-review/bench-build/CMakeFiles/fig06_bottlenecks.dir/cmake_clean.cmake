file(REMOVE_RECURSE
  "../bench/fig06_bottlenecks"
  "../bench/fig06_bottlenecks.pdb"
  "CMakeFiles/fig06_bottlenecks.dir/fig06_bottlenecks.cc.o"
  "CMakeFiles/fig06_bottlenecks.dir/fig06_bottlenecks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_bottlenecks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
