# Empty compiler generated dependencies file for fig06_bottlenecks.
# This may be replaced when dependencies are built.
