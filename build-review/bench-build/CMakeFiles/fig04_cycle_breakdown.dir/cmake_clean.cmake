file(REMOVE_RECURSE
  "../bench/fig04_cycle_breakdown"
  "../bench/fig04_cycle_breakdown.pdb"
  "CMakeFiles/fig04_cycle_breakdown.dir/fig04_cycle_breakdown.cc.o"
  "CMakeFiles/fig04_cycle_breakdown.dir/fig04_cycle_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cycle_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
