file(REMOVE_RECURSE
  "../bench/fig10_optimized"
  "../bench/fig10_optimized.pdb"
  "CMakeFiles/fig10_optimized.dir/fig10_optimized.cc.o"
  "CMakeFiles/fig10_optimized.dir/fig10_optimized.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_optimized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
