# Empty dependencies file for fig10_optimized.
# This may be replaced when dependencies are built.
