file(REMOVE_RECURSE
  "../bench/ablation_tail_latency"
  "../bench/ablation_tail_latency.pdb"
  "CMakeFiles/ablation_tail_latency.dir/ablation_tail_latency.cc.o"
  "CMakeFiles/ablation_tail_latency.dir/ablation_tail_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
