# Empty dependencies file for ablation_tail_latency.
# This may be replaced when dependencies are built.
