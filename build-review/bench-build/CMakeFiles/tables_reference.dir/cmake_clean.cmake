file(REMOVE_RECURSE
  "../bench/tables_reference"
  "../bench/tables_reference.pdb"
  "CMakeFiles/tables_reference.dir/tables_reference.cc.o"
  "CMakeFiles/tables_reference.dir/tables_reference.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
