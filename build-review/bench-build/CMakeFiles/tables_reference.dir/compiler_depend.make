# Empty compiler generated dependencies file for tables_reference.
# This may be replaced when dependencies are built.
