file(REMOVE_RECURSE
  "CMakeFiles/djinn_telemetry.dir/exposition.cc.o"
  "CMakeFiles/djinn_telemetry.dir/exposition.cc.o.d"
  "CMakeFiles/djinn_telemetry.dir/histogram.cc.o"
  "CMakeFiles/djinn_telemetry.dir/histogram.cc.o.d"
  "CMakeFiles/djinn_telemetry.dir/metrics.cc.o"
  "CMakeFiles/djinn_telemetry.dir/metrics.cc.o.d"
  "CMakeFiles/djinn_telemetry.dir/trace.cc.o"
  "CMakeFiles/djinn_telemetry.dir/trace.cc.o.d"
  "CMakeFiles/djinn_telemetry.dir/trace_context.cc.o"
  "CMakeFiles/djinn_telemetry.dir/trace_context.cc.o.d"
  "CMakeFiles/djinn_telemetry.dir/tracer.cc.o"
  "CMakeFiles/djinn_telemetry.dir/tracer.cc.o.d"
  "libdjinn_telemetry.a"
  "libdjinn_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djinn_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
