# Empty dependencies file for djinn_telemetry.
# This may be replaced when dependencies are built.
