file(REMOVE_RECURSE
  "libdjinn_telemetry.a"
)
