file(REMOVE_RECURSE
  "libdjinn_perf.a"
)
