# Empty dependencies file for djinn_perf.
# This may be replaced when dependencies are built.
