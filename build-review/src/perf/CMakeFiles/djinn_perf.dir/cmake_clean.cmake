file(REMOVE_RECURSE
  "CMakeFiles/djinn_perf.dir/layer_cost.cc.o"
  "CMakeFiles/djinn_perf.dir/layer_cost.cc.o.d"
  "libdjinn_perf.a"
  "libdjinn_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djinn_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
