file(REMOVE_RECURSE
  "CMakeFiles/djinn_serve.dir/app.cc.o"
  "CMakeFiles/djinn_serve.dir/app.cc.o.d"
  "CMakeFiles/djinn_serve.dir/resources.cc.o"
  "CMakeFiles/djinn_serve.dir/resources.cc.o.d"
  "CMakeFiles/djinn_serve.dir/simulation.cc.o"
  "CMakeFiles/djinn_serve.dir/simulation.cc.o.d"
  "CMakeFiles/djinn_serve.dir/telemetry.cc.o"
  "CMakeFiles/djinn_serve.dir/telemetry.cc.o.d"
  "CMakeFiles/djinn_serve.dir/tuner.cc.o"
  "CMakeFiles/djinn_serve.dir/tuner.cc.o.d"
  "libdjinn_serve.a"
  "libdjinn_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djinn_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
