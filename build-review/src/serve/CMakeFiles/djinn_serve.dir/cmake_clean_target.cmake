file(REMOVE_RECURSE
  "libdjinn_serve.a"
)
