# Empty dependencies file for djinn_serve.
# This may be replaced when dependencies are built.
