file(REMOVE_RECURSE
  "libdjinn_common.a"
)
