# Empty dependencies file for djinn_common.
# This may be replaced when dependencies are built.
