file(REMOVE_RECURSE
  "CMakeFiles/djinn_common.dir/logging.cc.o"
  "CMakeFiles/djinn_common.dir/logging.cc.o.d"
  "CMakeFiles/djinn_common.dir/rng.cc.o"
  "CMakeFiles/djinn_common.dir/rng.cc.o.d"
  "CMakeFiles/djinn_common.dir/status.cc.o"
  "CMakeFiles/djinn_common.dir/status.cc.o.d"
  "CMakeFiles/djinn_common.dir/strings.cc.o"
  "CMakeFiles/djinn_common.dir/strings.cc.o.d"
  "CMakeFiles/djinn_common.dir/thread_pool.cc.o"
  "CMakeFiles/djinn_common.dir/thread_pool.cc.o.d"
  "libdjinn_common.a"
  "libdjinn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djinn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
