# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("telemetry")
subdirs("sim")
subdirs("nn")
subdirs("train")
subdirs("perf")
subdirs("gpu")
subdirs("serve")
subdirs("core")
subdirs("tonic")
subdirs("wsc")
