# Empty dependencies file for djinn_wsc.
# This may be replaced when dependencies are built.
