file(REMOVE_RECURSE
  "CMakeFiles/djinn_wsc.dir/bandwidth.cc.o"
  "CMakeFiles/djinn_wsc.dir/bandwidth.cc.o.d"
  "CMakeFiles/djinn_wsc.dir/capacity.cc.o"
  "CMakeFiles/djinn_wsc.dir/capacity.cc.o.d"
  "CMakeFiles/djinn_wsc.dir/designs.cc.o"
  "CMakeFiles/djinn_wsc.dir/designs.cc.o.d"
  "CMakeFiles/djinn_wsc.dir/network_config.cc.o"
  "CMakeFiles/djinn_wsc.dir/network_config.cc.o.d"
  "CMakeFiles/djinn_wsc.dir/tco_params.cc.o"
  "CMakeFiles/djinn_wsc.dir/tco_params.cc.o.d"
  "CMakeFiles/djinn_wsc.dir/workload_mix.cc.o"
  "CMakeFiles/djinn_wsc.dir/workload_mix.cc.o.d"
  "libdjinn_wsc.a"
  "libdjinn_wsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djinn_wsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
