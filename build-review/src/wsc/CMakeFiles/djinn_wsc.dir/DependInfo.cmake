
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsc/bandwidth.cc" "src/wsc/CMakeFiles/djinn_wsc.dir/bandwidth.cc.o" "gcc" "src/wsc/CMakeFiles/djinn_wsc.dir/bandwidth.cc.o.d"
  "/root/repo/src/wsc/capacity.cc" "src/wsc/CMakeFiles/djinn_wsc.dir/capacity.cc.o" "gcc" "src/wsc/CMakeFiles/djinn_wsc.dir/capacity.cc.o.d"
  "/root/repo/src/wsc/designs.cc" "src/wsc/CMakeFiles/djinn_wsc.dir/designs.cc.o" "gcc" "src/wsc/CMakeFiles/djinn_wsc.dir/designs.cc.o.d"
  "/root/repo/src/wsc/network_config.cc" "src/wsc/CMakeFiles/djinn_wsc.dir/network_config.cc.o" "gcc" "src/wsc/CMakeFiles/djinn_wsc.dir/network_config.cc.o.d"
  "/root/repo/src/wsc/tco_params.cc" "src/wsc/CMakeFiles/djinn_wsc.dir/tco_params.cc.o" "gcc" "src/wsc/CMakeFiles/djinn_wsc.dir/tco_params.cc.o.d"
  "/root/repo/src/wsc/workload_mix.cc" "src/wsc/CMakeFiles/djinn_wsc.dir/workload_mix.cc.o" "gcc" "src/wsc/CMakeFiles/djinn_wsc.dir/workload_mix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/serve/CMakeFiles/djinn_serve.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gpu/CMakeFiles/djinn_gpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/djinn_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/perf/CMakeFiles/djinn_perf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/djinn_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/djinn_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/telemetry/CMakeFiles/djinn_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
