file(REMOVE_RECURSE
  "libdjinn_wsc.a"
)
