file(REMOVE_RECURSE
  "libdjinn_nn.a"
)
