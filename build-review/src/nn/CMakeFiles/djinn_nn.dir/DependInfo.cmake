
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gemm.cc" "src/nn/CMakeFiles/djinn_nn.dir/gemm.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/gemm.cc.o.d"
  "/root/repo/src/nn/gemm_naive.cc" "src/nn/CMakeFiles/djinn_nn.dir/gemm_naive.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/gemm_naive.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/djinn_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/nn/CMakeFiles/djinn_nn.dir/layer.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/layer.cc.o.d"
  "/root/repo/src/nn/layers/activation.cc" "src/nn/CMakeFiles/djinn_nn.dir/layers/activation.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/layers/activation.cc.o.d"
  "/root/repo/src/nn/layers/convolution.cc" "src/nn/CMakeFiles/djinn_nn.dir/layers/convolution.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/layers/convolution.cc.o.d"
  "/root/repo/src/nn/layers/inner_product.cc" "src/nn/CMakeFiles/djinn_nn.dir/layers/inner_product.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/layers/inner_product.cc.o.d"
  "/root/repo/src/nn/layers/locally_connected.cc" "src/nn/CMakeFiles/djinn_nn.dir/layers/locally_connected.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/layers/locally_connected.cc.o.d"
  "/root/repo/src/nn/layers/lrn.cc" "src/nn/CMakeFiles/djinn_nn.dir/layers/lrn.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/layers/lrn.cc.o.d"
  "/root/repo/src/nn/layers/pooling.cc" "src/nn/CMakeFiles/djinn_nn.dir/layers/pooling.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/layers/pooling.cc.o.d"
  "/root/repo/src/nn/layers/softmax.cc" "src/nn/CMakeFiles/djinn_nn.dir/layers/softmax.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/layers/softmax.cc.o.d"
  "/root/repo/src/nn/net_def.cc" "src/nn/CMakeFiles/djinn_nn.dir/net_def.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/net_def.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/nn/CMakeFiles/djinn_nn.dir/network.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/network.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/djinn_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/nn/CMakeFiles/djinn_nn.dir/tensor.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/tensor.cc.o.d"
  "/root/repo/src/nn/zoo.cc" "src/nn/CMakeFiles/djinn_nn.dir/zoo.cc.o" "gcc" "src/nn/CMakeFiles/djinn_nn.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/djinn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
