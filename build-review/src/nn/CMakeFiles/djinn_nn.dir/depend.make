# Empty dependencies file for djinn_nn.
# This may be replaced when dependencies are built.
