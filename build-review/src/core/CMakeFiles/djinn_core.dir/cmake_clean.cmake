file(REMOVE_RECURSE
  "CMakeFiles/djinn_core.dir/batcher.cc.o"
  "CMakeFiles/djinn_core.dir/batcher.cc.o.d"
  "CMakeFiles/djinn_core.dir/djinn_client.cc.o"
  "CMakeFiles/djinn_core.dir/djinn_client.cc.o.d"
  "CMakeFiles/djinn_core.dir/djinn_server.cc.o"
  "CMakeFiles/djinn_core.dir/djinn_server.cc.o.d"
  "CMakeFiles/djinn_core.dir/http_endpoint.cc.o"
  "CMakeFiles/djinn_core.dir/http_endpoint.cc.o.d"
  "CMakeFiles/djinn_core.dir/model_registry.cc.o"
  "CMakeFiles/djinn_core.dir/model_registry.cc.o.d"
  "CMakeFiles/djinn_core.dir/protocol.cc.o"
  "CMakeFiles/djinn_core.dir/protocol.cc.o.d"
  "libdjinn_core.a"
  "libdjinn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djinn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
