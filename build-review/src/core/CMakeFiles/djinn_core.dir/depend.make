# Empty dependencies file for djinn_core.
# This may be replaced when dependencies are built.
