file(REMOVE_RECURSE
  "libdjinn_core.a"
)
