
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batcher.cc" "src/core/CMakeFiles/djinn_core.dir/batcher.cc.o" "gcc" "src/core/CMakeFiles/djinn_core.dir/batcher.cc.o.d"
  "/root/repo/src/core/djinn_client.cc" "src/core/CMakeFiles/djinn_core.dir/djinn_client.cc.o" "gcc" "src/core/CMakeFiles/djinn_core.dir/djinn_client.cc.o.d"
  "/root/repo/src/core/djinn_server.cc" "src/core/CMakeFiles/djinn_core.dir/djinn_server.cc.o" "gcc" "src/core/CMakeFiles/djinn_core.dir/djinn_server.cc.o.d"
  "/root/repo/src/core/http_endpoint.cc" "src/core/CMakeFiles/djinn_core.dir/http_endpoint.cc.o" "gcc" "src/core/CMakeFiles/djinn_core.dir/http_endpoint.cc.o.d"
  "/root/repo/src/core/model_registry.cc" "src/core/CMakeFiles/djinn_core.dir/model_registry.cc.o" "gcc" "src/core/CMakeFiles/djinn_core.dir/model_registry.cc.o.d"
  "/root/repo/src/core/protocol.cc" "src/core/CMakeFiles/djinn_core.dir/protocol.cc.o" "gcc" "src/core/CMakeFiles/djinn_core.dir/protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/nn/CMakeFiles/djinn_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/telemetry/CMakeFiles/djinn_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/djinn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
