file(REMOVE_RECURSE
  "libdjinn_train.a"
)
