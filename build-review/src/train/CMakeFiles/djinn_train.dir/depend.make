# Empty dependencies file for djinn_train.
# This may be replaced when dependencies are built.
