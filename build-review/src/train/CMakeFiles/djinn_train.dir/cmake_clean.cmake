file(REMOVE_RECURSE
  "CMakeFiles/djinn_train.dir/sgd.cc.o"
  "CMakeFiles/djinn_train.dir/sgd.cc.o.d"
  "libdjinn_train.a"
  "libdjinn_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djinn_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
