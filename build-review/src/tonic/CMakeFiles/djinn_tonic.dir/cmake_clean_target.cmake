file(REMOVE_RECURSE
  "libdjinn_tonic.a"
)
