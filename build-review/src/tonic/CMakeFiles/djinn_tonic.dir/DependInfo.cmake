
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tonic/apps.cc" "src/tonic/CMakeFiles/djinn_tonic.dir/apps.cc.o" "gcc" "src/tonic/CMakeFiles/djinn_tonic.dir/apps.cc.o.d"
  "/root/repo/src/tonic/audio.cc" "src/tonic/CMakeFiles/djinn_tonic.dir/audio.cc.o" "gcc" "src/tonic/CMakeFiles/djinn_tonic.dir/audio.cc.o.d"
  "/root/repo/src/tonic/image.cc" "src/tonic/CMakeFiles/djinn_tonic.dir/image.cc.o" "gcc" "src/tonic/CMakeFiles/djinn_tonic.dir/image.cc.o.d"
  "/root/repo/src/tonic/labels.cc" "src/tonic/CMakeFiles/djinn_tonic.dir/labels.cc.o" "gcc" "src/tonic/CMakeFiles/djinn_tonic.dir/labels.cc.o.d"
  "/root/repo/src/tonic/text.cc" "src/tonic/CMakeFiles/djinn_tonic.dir/text.cc.o" "gcc" "src/tonic/CMakeFiles/djinn_tonic.dir/text.cc.o.d"
  "/root/repo/src/tonic/viterbi.cc" "src/tonic/CMakeFiles/djinn_tonic.dir/viterbi.cc.o" "gcc" "src/tonic/CMakeFiles/djinn_tonic.dir/viterbi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/djinn_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/djinn_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/djinn_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/telemetry/CMakeFiles/djinn_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
