file(REMOVE_RECURSE
  "CMakeFiles/djinn_tonic.dir/apps.cc.o"
  "CMakeFiles/djinn_tonic.dir/apps.cc.o.d"
  "CMakeFiles/djinn_tonic.dir/audio.cc.o"
  "CMakeFiles/djinn_tonic.dir/audio.cc.o.d"
  "CMakeFiles/djinn_tonic.dir/image.cc.o"
  "CMakeFiles/djinn_tonic.dir/image.cc.o.d"
  "CMakeFiles/djinn_tonic.dir/labels.cc.o"
  "CMakeFiles/djinn_tonic.dir/labels.cc.o.d"
  "CMakeFiles/djinn_tonic.dir/text.cc.o"
  "CMakeFiles/djinn_tonic.dir/text.cc.o.d"
  "CMakeFiles/djinn_tonic.dir/viterbi.cc.o"
  "CMakeFiles/djinn_tonic.dir/viterbi.cc.o.d"
  "libdjinn_tonic.a"
  "libdjinn_tonic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djinn_tonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
