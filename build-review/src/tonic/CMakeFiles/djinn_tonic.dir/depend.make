# Empty dependencies file for djinn_tonic.
# This may be replaced when dependencies are built.
