# Empty dependencies file for djinn_gpu.
# This may be replaced when dependencies are built.
