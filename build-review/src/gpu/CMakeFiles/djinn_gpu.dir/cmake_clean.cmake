file(REMOVE_RECURSE
  "CMakeFiles/djinn_gpu.dir/gpu_model.cc.o"
  "CMakeFiles/djinn_gpu.dir/gpu_model.cc.o.d"
  "CMakeFiles/djinn_gpu.dir/kernel_model.cc.o"
  "CMakeFiles/djinn_gpu.dir/kernel_model.cc.o.d"
  "CMakeFiles/djinn_gpu.dir/link.cc.o"
  "CMakeFiles/djinn_gpu.dir/link.cc.o.d"
  "libdjinn_gpu.a"
  "libdjinn_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djinn_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
