file(REMOVE_RECURSE
  "libdjinn_gpu.a"
)
