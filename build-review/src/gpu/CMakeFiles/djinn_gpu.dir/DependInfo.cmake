
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/gpu_model.cc" "src/gpu/CMakeFiles/djinn_gpu.dir/gpu_model.cc.o" "gcc" "src/gpu/CMakeFiles/djinn_gpu.dir/gpu_model.cc.o.d"
  "/root/repo/src/gpu/kernel_model.cc" "src/gpu/CMakeFiles/djinn_gpu.dir/kernel_model.cc.o" "gcc" "src/gpu/CMakeFiles/djinn_gpu.dir/kernel_model.cc.o.d"
  "/root/repo/src/gpu/link.cc" "src/gpu/CMakeFiles/djinn_gpu.dir/link.cc.o" "gcc" "src/gpu/CMakeFiles/djinn_gpu.dir/link.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/perf/CMakeFiles/djinn_perf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/djinn_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/djinn_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
