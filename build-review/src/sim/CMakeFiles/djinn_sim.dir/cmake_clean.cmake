file(REMOVE_RECURSE
  "CMakeFiles/djinn_sim.dir/event_queue.cc.o"
  "CMakeFiles/djinn_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/djinn_sim.dir/stats.cc.o"
  "CMakeFiles/djinn_sim.dir/stats.cc.o.d"
  "libdjinn_sim.a"
  "libdjinn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/djinn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
