file(REMOVE_RECURSE
  "libdjinn_sim.a"
)
