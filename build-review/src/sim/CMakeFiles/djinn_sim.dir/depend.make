# Empty dependencies file for djinn_sim.
# This may be replaced when dependencies are built.
