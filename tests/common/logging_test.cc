#include "common/logging.hh"

#include <gtest/gtest.h>

namespace djinn {
namespace {

TEST(Logging, StrprintfFormatsArguments)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 3, "abc"), "x=3 y=abc");
}

TEST(Logging, StrprintfEmpty)
{
    EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(Logging, StrprintfLongString)
{
    std::string big(10000, 'a');
    EXPECT_EQ(strprintf("%s", big.c_str()), big);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad user input %d", 7), FatalError);
}

TEST(Logging, FatalMessagePreserved)
{
    try {
        fatal("code %d", 42);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "code 42");
    }
}

TEST(Logging, LogLevelRoundTrips)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(before);
}

TEST(Logging, InformAndWarnDoNotThrow)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Error); // silence output in tests
    EXPECT_NO_THROW(inform("hello %d", 1));
    EXPECT_NO_THROW(warn("watch out %s", "x"));
    EXPECT_NO_THROW(logDebug("dbg"));
    setLogLevel(before);
}

} // namespace
} // namespace djinn
