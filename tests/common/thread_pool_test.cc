#include "common/thread_pool.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace djinn {
namespace common {
namespace {

/** Restores the global pool to its automatic size on scope exit. */
struct PoolSizeGuard {
    ~PoolSizeGuard() { setComputeThreads(0); }
};

/**
 * parallelFor must visit every index exactly once, whatever the
 * range/grain/pool-size combination.
 */
void
expectExactCoverage(ThreadPool &pool, int64_t begin, int64_t end,
                    int64_t grain)
{
    std::vector<std::atomic<int>> hits(
        static_cast<size_t>(std::max<int64_t>(end - begin, 0)));
    pool.parallelFor(begin, end, grain,
                     [&](int64_t b, int64_t e) {
                         ASSERT_LE(begin, b);
                         ASSERT_LE(b, e);
                         ASSERT_LE(e, end);
                         for (int64_t i = b; i < e; ++i)
                             hits[static_cast<size_t>(i - begin)]
                                 .fetch_add(1);
                     });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SizeClampedToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1);
    ThreadPool pool4(4);
    EXPECT_EQ(pool4.size(), 4);
}

TEST(ThreadPool, EmptyAndReversedRangesAreNoOps)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
    pool.parallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
    pool.parallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingletonRangeRunsInlineOnce)
{
    ThreadPool pool(4);
    std::thread::id caller = std::this_thread::get_id();
    int calls = 0;
    pool.parallelFor(3, 4, 1, [&](int64_t b, int64_t e) {
        EXPECT_EQ(b, 3);
        EXPECT_EQ(e, 4);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, CoversOddRanges)
{
    for (int threads : {1, 2, 3, 8}) {
        ThreadPool pool(threads);
        expectExactCoverage(pool, 0, 1, 1);
        expectExactCoverage(pool, 0, 7, 2);
        expectExactCoverage(pool, -13, 12, 3);
        expectExactCoverage(pool, 0, 1000, 1);
        expectExactCoverage(pool, 5, 1029, 64);
        expectExactCoverage(pool, 0, 3, 100); // grain > range
    }
}

TEST(ThreadPool, NestedCallRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int64_t> total{0};
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    pool.parallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
        EXPECT_TRUE(ThreadPool::inParallelRegion());
        std::thread::id outer = std::this_thread::get_id();
        // The nested call must execute serially on this thread.
        pool.parallelFor(0, 100, 1, [&](int64_t nb, int64_t ne) {
            EXPECT_EQ(std::this_thread::get_id(), outer);
            total.fetch_add((ne - nb) * (e - b));
        });
    });
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPool, SerialScopeForcesInline)
{
    ThreadPool pool(4);
    std::thread::id caller = std::this_thread::get_id();
    SerialScope serial;
    int calls = 0;
    pool.parallelFor(0, 1000, 1, [&](int64_t b, int64_t e) {
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 1000);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 64, 1,
                         [](int64_t b, int64_t) {
                             if (b == 0)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool must stay usable after a failed job.
    expectExactCoverage(pool, 0, 100, 1);
}

TEST(ThreadPool, ManyTaskChurn)
{
    ThreadPool pool(4);
    std::atomic<int64_t> sum{0};
    for (int round = 0; round < 500; ++round) {
        pool.parallelFor(0, 17 + round % 5, 1,
                         [&](int64_t b, int64_t e) {
                             for (int64_t i = b; i < e; ++i)
                                 sum.fetch_add(i);
                         });
    }
    int64_t expected = 0;
    for (int round = 0; round < 500; ++round) {
        int64_t n = 17 + round % 5;
        expected += n * (n - 1) / 2;
    }
    EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, ConcurrentCallersShareWorkers)
{
    ThreadPool pool(4);
    std::atomic<int64_t> sum{0};
    std::vector<std::thread> callers;
    for (int t = 0; t < 4; ++t) {
        callers.emplace_back([&]() {
            for (int round = 0; round < 100; ++round) {
                pool.parallelFor(0, 64, 1,
                                 [&](int64_t b, int64_t e) {
                                     sum.fetch_add(e - b);
                                 });
            }
        });
    }
    for (auto &c : callers)
        c.join();
    EXPECT_EQ(sum.load(), 4 * 100 * 64);
}

TEST(ComputePool, SetComputeThreadsResizes)
{
    PoolSizeGuard guard;
    setComputeThreads(3);
    EXPECT_EQ(computeThreads(), 3);
    EXPECT_EQ(computePool().size(), 3);
    setComputeThreads(1);
    EXPECT_EQ(computeThreads(), 1);
    expectExactCoverage(computePool(), 0, 50, 1);
}

TEST(ComputePool, AutomaticSizeIsPositive)
{
    PoolSizeGuard guard;
    setComputeThreads(0);
    EXPECT_GE(computeThreads(), 1);
}

} // namespace
} // namespace common
} // namespace djinn
