#include "common/strings.hh"

#include <gtest/gtest.h>

namespace djinn {
namespace {

TEST(Strings, SplitBasic)
{
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields)
{
    auto parts = split("a,,c,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField)
{
    auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWhitespaceDropsEmpties)
{
    auto parts = splitWhitespace("  a \t b\n c  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitWhitespaceEmptyInput)
{
    EXPECT_TRUE(splitWhitespace("").empty());
    EXPECT_TRUE(splitWhitespace("   \t\n").empty());
}

TEST(Strings, TrimBothEnds)
{
    EXPECT_EQ(trim("  abc \n"), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("layer conv1", "layer"));
    EXPECT_FALSE(startsWith("lay", "layer"));
    EXPECT_TRUE(startsWith("abc", ""));
}

TEST(Strings, ToLower)
{
    EXPECT_EQ(toLower("AbC-12"), "abc-12");
}

TEST(Strings, ParseIntValid)
{
    int64_t v = 0;
    EXPECT_TRUE(parseInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt("-7", v));
    EXPECT_EQ(v, -7);
    EXPECT_TRUE(parseInt("  13 ", v));
    EXPECT_EQ(v, 13);
}

TEST(Strings, ParseIntRejectsJunk)
{
    int64_t v = 0;
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("abc", v));
    EXPECT_FALSE(parseInt("12x", v));
    EXPECT_FALSE(parseInt("1.5", v));
}

TEST(Strings, ParseDoubleValid)
{
    double v = 0;
    EXPECT_TRUE(parseDouble("3.25", v));
    EXPECT_DOUBLE_EQ(v, 3.25);
    EXPECT_TRUE(parseDouble("-1e3", v));
    EXPECT_DOUBLE_EQ(v, -1000.0);
}

TEST(Strings, ParseDoubleRejectsJunk)
{
    double v = 0;
    EXPECT_FALSE(parseDouble("", v));
    EXPECT_FALSE(parseDouble("x", v));
    EXPECT_FALSE(parseDouble("1.5z", v));
}

TEST(Strings, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"only"}, ","), "only");
}

} // namespace
} // namespace djinn
