#include "common/rng.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace djinn {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(99);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(5);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values appear
}

TEST(Rng, UniformIntSingleValue)
{
    Rng rng(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(7, 7), 7);
}

TEST(Rng, GaussianMomentsMatch)
{
    Rng rng(31);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(31);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(17);
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        double e = rng.exponential(4.0);
        EXPECT_GE(e, 0.0);
        sum += e;
    }
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, SplitStreamsIndependent)
{
    Rng parent(42);
    Rng c0 = parent.split(0);
    Rng c1 = parent.split(1);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (c0.next() == c1.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, SplitDeterministic)
{
    Rng parent(42);
    Rng a = parent.split(3);
    Rng b = parent.split(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, Mix64Deterministic)
{
    EXPECT_EQ(mix64(12345), mix64(12345));
    EXPECT_NE(mix64(12345), mix64(12346));
}

} // namespace
} // namespace djinn
