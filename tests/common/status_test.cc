#include "common/status.hh"

#include <gtest/gtest.h>

namespace djinn {
namespace {

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_EQ(s.toString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage)
{
    EXPECT_EQ(Status::invalidArgument("x").code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(Status::notFound("x").code(), StatusCode::NotFound);
    EXPECT_EQ(Status::unavailable("x").code(),
              StatusCode::Unavailable);
    EXPECT_EQ(Status::internal("x").code(), StatusCode::Internal);
    EXPECT_EQ(Status::protocolError("x").code(),
              StatusCode::ProtocolError);
    EXPECT_EQ(Status::ioError("x").code(), StatusCode::IoError);
    EXPECT_EQ(Status::notFound("missing thing").message(),
              "missing thing");
}

TEST(Status, ToStringIncludesCodeName)
{
    Status s = Status::protocolError("bad magic");
    EXPECT_EQ(s.toString(), "ProtocolError: bad magic");
}

TEST(Status, CodeNamesDistinct)
{
    EXPECT_STREQ(statusCodeName(StatusCode::Ok), "Ok");
    EXPECT_STREQ(statusCodeName(StatusCode::IoError), "IoError");
    EXPECT_STRNE(statusCodeName(StatusCode::NotFound),
                 statusCodeName(StatusCode::Internal));
}

TEST(Result, HoldsValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value(), 42);
    EXPECT_TRUE(r.status().isOk());
}

TEST(Result, HoldsError)
{
    Result<int> r(Status::notFound("nope"));
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), StatusCode::NotFound);
    EXPECT_EQ(r.status().message(), "nope");
}

TEST(Result, TakeValueMovesOut)
{
    Result<std::string> r(std::string("payload"));
    std::string v = r.takeValue();
    EXPECT_EQ(v, "payload");
}

TEST(Result, WorksWithVectors)
{
    Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value().size(), 3u);
}

} // namespace
} // namespace djinn
