#include "nn/gemm.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.hh"

namespace djinn {
namespace nn {
namespace {

/** Textbook reference GEMM for validation. */
void
referenceGemm(Trans trans_a, Trans trans_b, int64_t m, int64_t n,
              int64_t k, float alpha, const float *a, int64_t lda,
              const float *b, int64_t ldb, float beta, float *c,
              int64_t ldc)
{
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (int64_t p = 0; p < k; ++p) {
                float av = trans_a == Trans::No ? a[i * lda + p]
                                                : a[p * lda + i];
                float bv = trans_b == Trans::No ? b[p * ldb + j]
                                                : b[j * ldb + p];
                acc += static_cast<double>(av) * bv;
            }
            c[i * ldc + j] = static_cast<float>(
                alpha * acc + beta * c[i * ldc + j]);
        }
    }
}

std::vector<float>
randomMatrix(int64_t elems, Rng &rng)
{
    std::vector<float> out(static_cast<size_t>(elems));
    for (auto &v : out)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return out;
}

void
expectClose(const std::vector<float> &got,
            const std::vector<float> &want, double tol = 1e-4)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        ASSERT_NEAR(got[i], want[i], tol) << "at index " << i;
}

TEST(Gemm, TinyKnownValues)
{
    // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
    std::vector<float> a{1, 2, 3, 4}, b{5, 6, 7, 8}, c(4, 0.0f);
    sgemm(2, 2, 2, a.data(), b.data(), c.data());
    EXPECT_FLOAT_EQ(c[0], 19);
    EXPECT_FLOAT_EQ(c[1], 22);
    EXPECT_FLOAT_EQ(c[2], 43);
    EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Gemm, BetaAccumulates)
{
    std::vector<float> a{1, 0, 0, 1}, b{2, 3, 4, 5};
    std::vector<float> c{10, 10, 10, 10};
    sgemm(Trans::No, Trans::No, 2, 2, 2, 1.0f, a.data(), 2, b.data(),
          2, 1.0f, c.data(), 2);
    EXPECT_FLOAT_EQ(c[0], 12);
    EXPECT_FLOAT_EQ(c[3], 15);
}

TEST(Gemm, AlphaScales)
{
    std::vector<float> a{1, 1}, b{1, 1}, c(1, 0.0f);
    sgemm(Trans::No, Trans::No, 1, 1, 2, 2.5f, a.data(), 2, b.data(),
          1, 0.0f, c.data(), 1);
    EXPECT_FLOAT_EQ(c[0], 5.0f);
}

TEST(Gemm, ZeroKZeroesOutput)
{
    std::vector<float> c{3, 3};
    sgemm(Trans::No, Trans::No, 1, 2, 0, 1.0f, nullptr, 1, nullptr,
          2, 0.0f, c.data(), 2);
    EXPECT_FLOAT_EQ(c[0], 0.0f);
    EXPECT_FLOAT_EQ(c[1], 0.0f);
}

TEST(Gemm, ZeroAlphaOnlyAppliesBeta)
{
    std::vector<float> a{1, 1}, b{1, 1}, c{4};
    sgemm(Trans::No, Trans::No, 1, 1, 2, 0.0f, a.data(), 2, b.data(),
          1, 0.5f, c.data(), 1);
    EXPECT_FLOAT_EQ(c[0], 2.0f);
}

TEST(Gemv, MatchesManual)
{
    // A = [1 2 3; 4 5 6], x = [1, 1, 1] -> y = [6, 15]
    std::vector<float> a{1, 2, 3, 4, 5, 6}, x{1, 1, 1}, y(2);
    sgemv(2, 3, a.data(), x.data(), y.data());
    EXPECT_FLOAT_EQ(y[0], 6);
    EXPECT_FLOAT_EQ(y[1], 15);
}

/** Property sweep: sgemm equals the reference over shapes/flags. */
class GemmProperty
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, int, int>>
{};

TEST_P(GemmProperty, MatchesReference)
{
    auto [m, n, k, ta, tb] = GetParam();
    Trans trans_a = ta ? Trans::Yes : Trans::No;
    Trans trans_b = tb ? Trans::Yes : Trans::No;
    Rng rng(static_cast<uint64_t>(m * 73856093 + n * 19349663 +
                                  k * 83492791 + ta * 7 + tb));
    int64_t lda = trans_a == Trans::No ? k : m;
    int64_t ldb = trans_b == Trans::No ? n : k;
    auto a = randomMatrix(trans_a == Trans::No ? m * k : k * m, rng);
    auto b = randomMatrix(trans_b == Trans::No ? k * n : n * k, rng);
    auto c = randomMatrix(m * n, rng);
    auto expected = c;
    referenceGemm(trans_a, trans_b, m, n, k, 1.3f, a.data(), lda,
                  b.data(), ldb, 0.7f, expected.data(), n);
    sgemm(trans_a, trans_b, m, n, k, 1.3f, a.data(), lda, b.data(),
          ldb, 0.7f, c.data(), n);
    expectClose(c, expected, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmProperty,
    ::testing::Values(
        std::make_tuple(1, 1, 1, 0, 0),
        std::make_tuple(1, 128, 64, 0, 0),
        std::make_tuple(128, 1, 64, 0, 0),
        std::make_tuple(3, 5, 7, 0, 0),
        std::make_tuple(3, 5, 7, 1, 0),
        std::make_tuple(3, 5, 7, 0, 1),
        std::make_tuple(3, 5, 7, 1, 1),
        std::make_tuple(32, 32, 32, 0, 0),
        std::make_tuple(33, 65, 129, 0, 0),
        std::make_tuple(33, 65, 129, 0, 1),
        std::make_tuple(64, 256, 256, 0, 0),
        std::make_tuple(65, 257, 300, 1, 1),
        std::make_tuple(100, 10, 320, 0, 1),
        std::make_tuple(28, 45, 600, 0, 1)));

/** Blocked path crosses block boundaries (k > blockK etc.). */
TEST(Gemm, LargeBlockedMatchesReference)
{
    Rng rng(7);
    int64_t m = 70, n = 300, k = 520;
    auto a = randomMatrix(m * k, rng);
    auto b = randomMatrix(k * n, rng);
    std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
    auto expected = c;
    referenceGemm(Trans::No, Trans::No, m, n, k, 1.0f, a.data(), k,
                  b.data(), n, 0.0f, expected.data(), n);
    sgemm(m, n, k, a.data(), b.data(), c.data());
    expectClose(c, expected, 5e-3);
}

} // namespace
} // namespace nn
} // namespace djinn
