#include "nn/serialize.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nn/init.hh"
#include "nn/net_def.hh"

namespace djinn {
namespace nn {
namespace {

class SerializeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "/weights_test.djw";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::shared_ptr<Network>
    makeNet(uint64_t seed)
    {
        auto net = parseNetDefOrDie(
            "name s\ninput 1 4 4\n"
            "layer conv conv out 2 kernel 3\n"
            "layer fc fc out 5\n");
        initializeWeights(*net, seed);
        return net;
    }

    std::string path_;
};

TEST_F(SerializeTest, RoundTripPreservesWeights)
{
    auto src = makeNet(11);
    ASSERT_TRUE(saveWeights(*src, path_).isOk());

    auto dst = makeNet(99); // different weights before load
    ASSERT_TRUE(loadWeights(*dst, path_).isOk());

    for (size_t l = 0; l < src->layerCount(); ++l) {
        auto ps = src->layer(l).params();
        auto pd = dst->layer(l).params();
        ASSERT_EQ(ps.size(), pd.size());
        for (size_t p = 0; p < ps.size(); ++p) {
            for (int64_t i = 0; i < ps[p]->elems(); ++i)
                ASSERT_FLOAT_EQ((*ps[p])[i], (*pd[p])[i]);
        }
    }
}

TEST_F(SerializeTest, LoadedNetworkComputesSameOutputs)
{
    auto src = makeNet(21);
    ASSERT_TRUE(saveWeights(*src, path_).isOk());
    auto dst = makeNet(22);
    ASSERT_TRUE(loadWeights(*dst, path_).isOk());

    Tensor in(Shape(1, 1, 4, 4), 0.3f);
    Tensor a = src->forward(in);
    Tensor b = dst->forward(in);
    for (int64_t i = 0; i < a.elems(); ++i)
        EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST_F(SerializeTest, MissingFileReportsIoError)
{
    auto net = makeNet(1);
    Status s = loadWeights(*net, path_ + ".nope");
    EXPECT_EQ(s.code(), StatusCode::IoError);
}

TEST_F(SerializeTest, BadMagicRejected)
{
    std::ofstream os(path_, std::ios::binary);
    os << "NOTAWEIGHTFILE";
    os.close();
    auto net = makeNet(1);
    Status s = loadWeights(*net, path_);
    EXPECT_EQ(s.code(), StatusCode::ProtocolError);
}

TEST_F(SerializeTest, TruncatedFileRejected)
{
    auto src = makeNet(5);
    ASSERT_TRUE(saveWeights(*src, path_).isOk());
    // Truncate the file to half its size.
    std::ifstream is(path_, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    is.close();
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(data.data(),
             static_cast<std::streamsize>(data.size() / 2));
    os.close();

    auto dst = makeNet(5);
    Status s = loadWeights(*dst, path_);
    EXPECT_FALSE(s.isOk());
}

TEST_F(SerializeTest, StructureMismatchRejected)
{
    auto src = makeNet(5);
    ASSERT_TRUE(saveWeights(*src, path_).isOk());

    auto other = parseNetDefOrDie(
        "name o\ninput 1 4 4\nlayer fc fc out 5\n");
    Status s = loadWeights(*other, path_);
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.message().find("layers"), std::string::npos);
}

TEST_F(SerializeTest, LayerNameMismatchRejected)
{
    auto src = makeNet(5);
    ASSERT_TRUE(saveWeights(*src, path_).isOk());

    auto other = parseNetDefOrDie(
        "name o\ninput 1 4 4\n"
        "layer convX conv out 2 kernel 3\n"
        "layer fc fc out 5\n");
    Status s = loadWeights(*other, path_);
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.message().find("name mismatch"),
              std::string::npos);
}

TEST_F(SerializeTest, ElementCountMismatchRejected)
{
    auto src = makeNet(5);
    ASSERT_TRUE(saveWeights(*src, path_).isOk());

    auto other = parseNetDefOrDie(
        "name o\ninput 1 4 4\n"
        "layer conv conv out 2 kernel 3\n"
        "layer fc fc out 6\n"); // 6 outputs instead of 5
    Status s = loadWeights(*other, path_);
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
}

TEST_F(SerializeTest, QuantizationTrailerRoundTrips)
{
    for (Precision p : {Precision::Bf16, Precision::Int8}) {
        SCOPED_TRACE(precisionName(p));
        auto src = makeNet(31);
        Tensor calib(Shape(2, 1, 4, 4), 0.25f);
        src->quantize(p, calib);
        ASSERT_EQ(src->precision(), p);
        ASSERT_TRUE(saveWeights(*src, path_).isOk());

        // An f32 load target picks up the QNT1 trailer: precision,
        // activation mappings, and weight scales all restored.
        auto dst = makeNet(77);
        ASSERT_TRUE(loadWeights(*dst, path_).isOk());
        ASSERT_EQ(dst->precision(), p);
        for (size_t l = 0; l < src->layerCount(); ++l) {
            ASSERT_EQ(dst->layer(l).precision(),
                      src->layer(l).precision())
                << "layer " << l;
            ASSERT_TRUE(dst->layer(l).quant().act ==
                        src->layer(l).quant().act)
                << "layer " << l;
            ASSERT_EQ(dst->layer(l).quant().weightScales,
                      src->layer(l).quant().weightScales)
                << "layer " << l;
        }

        Tensor in(Shape(1, 1, 4, 4), 0.3f);
        Tensor a = src->forward(in);
        Tensor b = dst->forward(in);
        for (int64_t i = 0; i < a.elems(); ++i)
            EXPECT_EQ(a[i], b[i]) << "output diverges at " << i;
    }
}

TEST_F(SerializeTest, PlainFileLoadsIntoF32)
{
    // A pre-quantization .djw (no trailer) must keep loading, and
    // leave the target at f32.
    auto src = makeNet(8);
    ASSERT_TRUE(saveWeights(*src, path_).isOk());
    auto dst = makeNet(9);
    ASSERT_TRUE(loadWeights(*dst, path_).isOk());
    EXPECT_EQ(dst->precision(), Precision::F32);
}

TEST_F(SerializeTest, CorruptQuantTrailerRejected)
{
    auto src = makeNet(13);
    Tensor calib(Shape(2, 1, 4, 4), 0.25f);
    src->quantize(Precision::Int8, calib);
    ASSERT_TRUE(saveWeights(*src, path_).isOk());

    // Flip the trailer tag: trailing garbage must not be silently
    // ignored as "no trailer".
    std::ifstream is(path_, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    is.close();
    size_t tag = data.rfind("QNT1");
    ASSERT_NE(tag, std::string::npos);
    data[tag] = 'X';
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(data.data(),
             static_cast<std::streamsize>(data.size()));
    os.close();

    auto dst = makeNet(13);
    Status s = loadWeights(*dst, path_);
    EXPECT_EQ(s.code(), StatusCode::ProtocolError);
}

} // namespace
} // namespace nn
} // namespace djinn
