#include "nn/net_def.hh"

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace djinn {
namespace nn {
namespace {

const char *valid_def = R"(
# a small test network
name tiny
input 1 8 8
layer conv1 conv out 4 kernel 3 pad 1
layer relu1 relu
layer pool1 maxpool kernel 2 stride 2
layer fc1 fc out 10
layer prob softmax
)";

TEST(NetDef, ParsesValidDefinition)
{
    auto result = parseNetDef(valid_def);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    auto net = result.value();
    EXPECT_EQ(net->name(), "tiny");
    EXPECT_EQ(net->layerCount(), 5u);
    EXPECT_EQ(net->inputShape(), Shape(1, 1, 8, 8));
    EXPECT_EQ(net->outputShape(), Shape(1, 10));
    EXPECT_TRUE(net->finalized());
}

TEST(NetDef, CommentsAndBlanksIgnored)
{
    auto result = parseNetDef(
        "name x\n\n# comment\ninput 1 2 2\n\nlayer fc fc out 3\n");
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value()->layerCount(), 1u);
}

TEST(NetDef, DefaultOptionValues)
{
    auto result = parseNetDef(
        "input 1 6 6\nlayer c conv out 2 kernel 3\n");
    ASSERT_TRUE(result.isOk());
    // stride 1, pad 0 -> 4x4 output.
    EXPECT_EQ(result.value()->outputShape(), Shape(1, 2, 4, 4));
}

TEST(NetDef, LayerBeforeInputRejected)
{
    auto result = parseNetDef("layer fc fc out 3\n");
    EXPECT_FALSE(result.isOk());
    EXPECT_NE(result.status().message().find("before 'input'"),
              std::string::npos);
}

TEST(NetDef, UnknownDirectiveRejected)
{
    auto result = parseNetDef("input 1 2 2\nfrobnicate yes\n");
    EXPECT_FALSE(result.isOk());
}

TEST(NetDef, UnknownLayerKindRejected)
{
    auto result = parseNetDef("input 1 2 2\nlayer x warp out 3\n");
    EXPECT_FALSE(result.isOk());
    EXPECT_NE(result.status().message().find("unknown layer kind"),
              std::string::npos);
}

TEST(NetDef, UnknownOptionRejected)
{
    auto result = parseNetDef(
        "input 1 2 2\nlayer x fc out 3 frob 7\n");
    EXPECT_FALSE(result.isOk());
    EXPECT_NE(result.status().message().find("unknown option"),
              std::string::npos);
}

TEST(NetDef, MissingOptionValueRejected)
{
    auto result = parseNetDef("input 1 2 2\nlayer x fc out\n");
    EXPECT_FALSE(result.isOk());
}

TEST(NetDef, NonIntegerOptionRejected)
{
    auto result = parseNetDef("input 1 2 2\nlayer x fc out abc\n");
    EXPECT_FALSE(result.isOk());
}

TEST(NetDef, FcRequiresOut)
{
    auto result = parseNetDef("input 1 2 2\nlayer x fc\n");
    EXPECT_FALSE(result.isOk());
}

TEST(NetDef, ConvRequiresKernel)
{
    auto result = parseNetDef("input 1 4 4\nlayer x conv out 2\n");
    EXPECT_FALSE(result.isOk());
}

TEST(NetDef, PoolRequiresKernel)
{
    auto result = parseNetDef("input 1 4 4\nlayer x maxpool\n");
    EXPECT_FALSE(result.isOk());
}

TEST(NetDef, BadInputGeometryRejected)
{
    EXPECT_FALSE(parseNetDef("input 0 2 2\nlayer x fc out 1\n")
                     .isOk());
    EXPECT_FALSE(parseNetDef("input 1 2\nlayer x fc out 1\n")
                     .isOk());
}

TEST(NetDef, EmptyDocumentRejected)
{
    EXPECT_FALSE(parseNetDef("").isOk());
    EXPECT_FALSE(parseNetDef("name x\ninput 1 2 2\n").isOk());
}

TEST(NetDef, DuplicateLayerNameRejected)
{
    auto result = parseNetDef(
        "input 1 2 2\nlayer a fc out 2\nlayer a fc out 2\n");
    EXPECT_FALSE(result.isOk());
}

TEST(NetDef, ErrorsCarryLineNumbers)
{
    auto result = parseNetDef(
        "input 1 2 2\nlayer ok fc out 2\nlayer bad warp\n");
    ASSERT_FALSE(result.isOk());
    EXPECT_NE(result.status().message().find("line 3"),
              std::string::npos);
}

TEST(NetDef, ParseOrDieThrowsOnBadInput)
{
    EXPECT_THROW(parseNetDefOrDie("garbage"), FatalError);
}

TEST(NetDef, FormatRoundTrips)
{
    auto net = parseNetDefOrDie(valid_def);
    std::string text = formatNetDef(*net);
    auto reparsed = parseNetDef(text);
    ASSERT_TRUE(reparsed.isOk()) << reparsed.status().toString();
    auto net2 = reparsed.value();
    EXPECT_EQ(net2->layerCount(), net->layerCount());
    EXPECT_EQ(net2->paramCount(), net->paramCount());
    EXPECT_EQ(net2->outputShape(), net->outputShape());
    for (size_t i = 0; i < net->layerCount(); ++i) {
        EXPECT_EQ(net2->layer(i).name(), net->layer(i).name());
        EXPECT_EQ(net2->layer(i).kind(), net->layer(i).kind());
    }
}

TEST(NetDef, AllLayerKindsParse)
{
    const char *def = R"(
input 2 8 8
layer c conv out 4 kernel 3 pad 1 stride 1 group 2
layer lc local out 2 kernel 3
layer mp maxpool kernel 2 stride 2
layer ap avgpool kernel 3 stride 1
layer r relu
layer t tanh
layer s sigmoid
layer h hardtanh
layer l lrn size 3
layer d dropout
layer f flatten
layer fc fc out 6
layer sm softmax
)";
    auto result = parseNetDef(def);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_EQ(result.value()->layerCount(), 13u);
}

} // namespace
} // namespace nn
} // namespace djinn
