#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "nn/layers/activation.hh"
#include "nn/layers/convolution.hh"
#include "nn/layers/inner_product.hh"
#include "nn/layers/locally_connected.hh"
#include "nn/layers/lrn.hh"
#include "nn/layers/pooling.hh"
#include "nn/layers/softmax.hh"

namespace djinn {
namespace nn {
namespace {

Tensor
randomTensor(const Shape &shape, uint64_t seed)
{
    Rng rng(seed);
    Tensor t(shape);
    for (int64_t i = 0; i < t.elems(); ++i)
        t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    return t;
}

void
fillParams(Layer &layer, uint64_t seed)
{
    Rng rng(seed);
    for (Tensor *param : layer.params()) {
        for (int64_t i = 0; i < param->elems(); ++i)
            (*param)[i] = static_cast<float>(rng.uniform(-0.5, 0.5));
    }
}

// InnerProduct -----------------------------------------------------

TEST(InnerProduct, ShapesAndParams)
{
    InnerProductLayer fc("fc", 10);
    fc.setup(Shape(1, 4, 2, 3));
    EXPECT_EQ(fc.inputs(), 24);
    EXPECT_EQ(fc.outputShape(), Shape(1, 10));
    EXPECT_EQ(fc.paramCount(), 24u * 10 + 10);
}

TEST(InnerProduct, NoBiasParamCount)
{
    InnerProductLayer fc("fc", 5, false);
    fc.setup(Shape(1, 8));
    EXPECT_EQ(fc.paramCount(), 40u);
    EXPECT_EQ(fc.params().size(), 1u);
}

TEST(InnerProduct, ComputesAffineMap)
{
    InnerProductLayer fc("fc", 2);
    fc.setup(Shape(1, 3));
    auto params = fc.params();
    // W = [[1,2,3],[4,5,6]], b = [0.5, -1]
    float w[] = {1, 2, 3, 4, 5, 6};
    for (int i = 0; i < 6; ++i)
        (*params[0])[i] = w[i];
    (*params[1])[0] = 0.5f;
    (*params[1])[1] = -1.0f;

    Tensor in(Shape(2, 3));
    for (int i = 0; i < 6; ++i)
        in[i] = static_cast<float>(i + 1); // [1,2,3],[4,5,6]
    Tensor out;
    fc.forward(in, out);
    // Row 0: [1*1+2*2+3*3+0.5, 4+10+18-1] = [14.5, 31]
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 14.5f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), 31.0f);
    // Row 1: [4+10+18+0.5, 16+25+36-1] = [32.5, 76]
    EXPECT_FLOAT_EQ(out.at(1, 0, 0, 0), 32.5f);
    EXPECT_FLOAT_EQ(out.at(1, 1, 0, 0), 76.0f);
}

TEST(InnerProduct, RejectsWrongInputGeometry)
{
    InnerProductLayer fc("fc", 2);
    fc.setup(Shape(1, 3));
    Tensor in(Shape(1, 4));
    Tensor out;
    EXPECT_THROW(fc.forward(in, out), FatalError);
}

TEST(InnerProduct, RejectsNonPositiveOutputs)
{
    EXPECT_THROW(InnerProductLayer("fc", 0), FatalError);
}

// Convolution ------------------------------------------------------

/** Direct convolution reference (no im2col). */
Tensor
referenceConv(const Tensor &in, const ConvolutionLayer &conv,
              const Tensor &weights, const Tensor &bias)
{
    const Shape &is = conv.inputShape();
    const Shape &os = conv.outputShape();
    int64_t groups = conv.groups();
    int64_t in_per_group = is.c() / groups;
    int64_t out_per_group = os.c() / groups;
    Tensor out(os.withBatch(in.shape().n()));
    for (int64_t n = 0; n < in.shape().n(); ++n) {
        for (int64_t oc = 0; oc < os.c(); ++oc) {
            int64_t g = oc / out_per_group;
            for (int64_t oh = 0; oh < os.h(); ++oh) {
                for (int64_t ow = 0; ow < os.w(); ++ow) {
                    double acc = bias.empty() ? 0.0 : bias[oc];
                    for (int64_t ic = 0; ic < in_per_group; ++ic) {
                        for (int64_t kh = 0; kh < conv.kernel();
                             ++kh) {
                            for (int64_t kw = 0; kw < conv.kernel();
                                 ++kw) {
                                int64_t ih = oh * conv.stride() -
                                             conv.pad() + kh;
                                int64_t iw = ow * conv.stride() -
                                             conv.pad() + kw;
                                if (ih < 0 || ih >= is.h() ||
                                    iw < 0 || iw >= is.w()) {
                                    continue;
                                }
                                acc += in.at(n,
                                             g * in_per_group + ic,
                                             ih, iw) *
                                       weights.at(oc, ic, kh, kw);
                            }
                        }
                    }
                    out.at(n, oc, oh, ow) =
                        static_cast<float>(acc);
                }
            }
        }
    }
    return out;
}

struct ConvCase {
    int64_t in_c, in_h, out_c, kernel, stride, pad, groups, batch;
};

class ConvProperty : public ::testing::TestWithParam<ConvCase>
{};

TEST_P(ConvProperty, MatchesDirectConvolution)
{
    ConvCase p = GetParam();
    ConvolutionLayer conv("conv", p.out_c, p.kernel, p.stride, p.pad,
                          p.groups);
    conv.setup(Shape(1, p.in_c, p.in_h, p.in_h));
    fillParams(conv, 11);
    Tensor in = randomTensor(
        Shape(p.batch, p.in_c, p.in_h, p.in_h), 22);
    Tensor out;
    conv.forward(in, out);
    auto params = conv.params();
    Tensor expected = referenceConv(in, conv, *params[0],
                                    *params[1]);
    ASSERT_EQ(out.shape(), expected.shape());
    for (int64_t i = 0; i < out.elems(); ++i)
        ASSERT_NEAR(out[i], expected[i], 1e-3) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvProperty,
    ::testing::Values(
        ConvCase{1, 8, 4, 3, 1, 0, 1, 1},
        ConvCase{3, 12, 8, 3, 1, 1, 1, 2},
        ConvCase{2, 9, 6, 3, 2, 0, 1, 1},
        ConvCase{4, 11, 8, 5, 2, 2, 2, 2},
        ConvCase{6, 7, 6, 1, 1, 0, 3, 1},
        ConvCase{3, 15, 4, 5, 3, 1, 1, 3},
        ConvCase{8, 6, 8, 3, 1, 1, 4, 2}));

TEST(Convolution, OutputGeometryAlexNetConv1)
{
    ConvolutionLayer conv("conv1", 96, 11, 4, 0);
    conv.setup(Shape(1, 3, 227, 227));
    EXPECT_EQ(conv.outputShape(), Shape(1, 96, 55, 55));
}

TEST(Convolution, GroupMismatchFatal)
{
    ConvolutionLayer conv("conv", 4, 3, 1, 0, 2);
    EXPECT_THROW(conv.setup(Shape(1, 3, 8, 8)), FatalError);
}

TEST(Convolution, OutputsNotDivisibleByGroupsFatal)
{
    EXPECT_THROW(ConvolutionLayer("conv", 5, 3, 1, 0, 2),
                 FatalError);
}

TEST(Convolution, WindowLargerThanInputFatal)
{
    ConvolutionLayer conv("conv", 4, 9);
    EXPECT_THROW(conv.setup(Shape(1, 1, 4, 4)), FatalError);
}

TEST(Im2col, IdentityKernelCopiesPixels)
{
    // 1x1 kernel, stride 1: columns are just the flattened image.
    float data[] = {1, 2, 3, 4};
    float col[4];
    im2col(data, 1, 2, 2, 1, 1, 0, 1, col);
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(col[i], data[i]);
}

TEST(Im2col, PadsWithZeros)
{
    float data[] = {5};
    float col[9];
    im2col(data, 1, 1, 1, 3, 3, 1, 1, col);
    // Center tap sees the pixel, all other taps padded zero.
    EXPECT_FLOAT_EQ(col[4], 5.0f);
    for (int i = 0; i < 9; ++i) {
        if (i != 4) {
            EXPECT_FLOAT_EQ(col[i], 0.0f);
        }
    }
}

// LocallyConnected --------------------------------------------------

TEST(LocallyConnected, ParamsScaleWithOutputMap)
{
    LocallyConnectedLayer lc("lc", 2, 3);
    lc.setup(Shape(1, 2, 5, 5));
    // out 2 x 3 x 3 positions, each with private 2x3x3 filter.
    EXPECT_EQ(lc.outputShape(), Shape(1, 2, 3, 3));
    EXPECT_EQ(lc.paramCount(),
              2u * 3 * 3 * (2 * 3 * 3) + 2u * 3 * 3);
}

TEST(LocallyConnected, UntiedWeightsDifferFromConvolution)
{
    // With all-ones inputs, a conv layer yields identical outputs at
    // all interior positions, while LC weights differ per position.
    LocallyConnectedLayer lc("lc", 1, 3);
    lc.setup(Shape(1, 1, 5, 5));
    fillParams(lc, 33);
    Tensor in(Shape(1, 1, 5, 5), 1.0f);
    Tensor out;
    lc.forward(in, out);
    EXPECT_NE(out.at(0, 0, 0, 0), out.at(0, 0, 1, 1));
}

TEST(LocallyConnected, MatchesManualDotProduct)
{
    LocallyConnectedLayer lc("lc", 1, 2, 1, 0, false);
    lc.setup(Shape(1, 1, 3, 3));
    auto params = lc.params();
    ASSERT_EQ(params.size(), 1u);
    // 2x2 output positions, each with a private 2x2 filter.
    for (int64_t i = 0; i < params[0]->elems(); ++i)
        (*params[0])[i] = static_cast<float>(i + 1);

    Tensor in(Shape(1, 1, 3, 3));
    for (int i = 0; i < 9; ++i)
        in[i] = static_cast<float>(i); // 0..8
    Tensor out;
    lc.forward(in, out);
    // Position (0,0): filter [1,2,3,4] . patch [0,1,3,4] = 27.
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 27.0f);
    // Position (0,1): filter [5,6,7,8] . patch [1,2,4,5] = 85.
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 85.0f);
    // Position (1,0): filter [9,10,11,12] . patch [3,4,6,7] = 217.
    EXPECT_FLOAT_EQ(out.at(0, 0, 1, 0), 217.0f);
    // Position (1,1): filter [13,14,15,16] . patch [4,5,7,8] = 355.
    EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 355.0f);
}

TEST(LocallyConnected, BatchIndependence)
{
    LocallyConnectedLayer lc("lc", 2, 3, 2, 1);
    lc.setup(Shape(1, 2, 6, 6));
    fillParams(lc, 44);
    Tensor a = randomTensor(Shape(1, 2, 6, 6), 1);
    Tensor b = randomTensor(Shape(1, 2, 6, 6), 2);
    Tensor batch(Shape(2, 2, 6, 6));
    std::copy(a.data(), a.data() + a.elems(), batch.sample(0));
    std::copy(b.data(), b.data() + b.elems(), batch.sample(1));
    Tensor out_a, out_b, out_batch;
    lc.forward(a, out_a);
    lc.forward(b, out_b);
    lc.forward(batch, out_batch);
    for (int64_t i = 0; i < out_a.elems(); ++i) {
        EXPECT_FLOAT_EQ(out_batch.sample(0)[i], out_a[i]);
        EXPECT_FLOAT_EQ(out_batch.sample(1)[i], out_b[i]);
    }
}

// Pooling -----------------------------------------------------------

TEST(Pooling, MaxPoolPicksMaximum)
{
    PoolingLayer pool("pool", LayerKind::MaxPool, 2, 2);
    pool.setup(Shape(1, 1, 4, 4));
    Tensor in(Shape(1, 1, 4, 4));
    for (int i = 0; i < 16; ++i)
        in[i] = static_cast<float>(i);
    Tensor out;
    pool.forward(in, out);
    EXPECT_EQ(out.shape(), Shape(1, 1, 2, 2));
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 7.0f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1, 0), 13.0f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 15.0f);
}

TEST(Pooling, AvgPoolAverages)
{
    PoolingLayer pool("pool", LayerKind::AvgPool, 2, 2);
    pool.setup(Shape(1, 1, 2, 2));
    Tensor in(Shape(1, 1, 2, 2));
    in[0] = 1;
    in[1] = 2;
    in[2] = 3;
    in[3] = 6;
    Tensor out;
    pool.forward(in, out);
    EXPECT_FLOAT_EQ(out[0], 3.0f);
}

TEST(Pooling, CeilModeMatchesAlexNetPyramid)
{
    // AlexNet: 55 -> 27 -> 13 -> 6 with kernel 3, stride 2.
    EXPECT_EQ(poolOutSize(55, 3, 0, 2), 27);
    EXPECT_EQ(poolOutSize(27, 3, 0, 2), 13);
    EXPECT_EQ(poolOutSize(13, 3, 0, 2), 6);
}

TEST(Pooling, AvgIgnoresOutOfBoundsInCount)
{
    // 3x3 input, kernel 2, stride 2, ceil mode -> 2x2 output; the
    // bottom-right window covers a single pixel.
    PoolingLayer pool("pool", LayerKind::AvgPool, 2, 2);
    pool.setup(Shape(1, 1, 3, 3));
    Tensor in(Shape(1, 1, 3, 3), 6.0f);
    Tensor out;
    pool.forward(in, out);
    EXPECT_EQ(out.shape(), Shape(1, 1, 2, 2));
    EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 6.0f);
}

TEST(Pooling, NegativeInputsSurviveMax)
{
    PoolingLayer pool("pool", LayerKind::MaxPool, 2, 2);
    pool.setup(Shape(1, 1, 2, 2));
    Tensor in(Shape(1, 1, 2, 2), -4.0f);
    in[2] = -1.0f;
    Tensor out;
    pool.forward(in, out);
    EXPECT_FLOAT_EQ(out[0], -1.0f);
}

// Activations -------------------------------------------------------

TEST(Activation, ReluClampsNegative)
{
    ActivationLayer relu("relu", LayerKind::ReLU);
    relu.setup(Shape(1, 4));
    Tensor in(Shape(1, 4));
    in[0] = -2;
    in[1] = -0.5;
    in[2] = 0;
    in[3] = 3;
    Tensor out;
    relu.forward(in, out);
    EXPECT_FLOAT_EQ(out[0], 0);
    EXPECT_FLOAT_EQ(out[1], 0);
    EXPECT_FLOAT_EQ(out[2], 0);
    EXPECT_FLOAT_EQ(out[3], 3);
}

TEST(Activation, TanhMatchesStd)
{
    ActivationLayer tanh_layer("tanh", LayerKind::Tanh);
    tanh_layer.setup(Shape(1, 3));
    Tensor in(Shape(1, 3));
    in[0] = -1;
    in[1] = 0;
    in[2] = 2;
    Tensor out;
    tanh_layer.forward(in, out);
    EXPECT_FLOAT_EQ(out[0], std::tanh(-1.0f));
    EXPECT_FLOAT_EQ(out[1], 0.0f);
    EXPECT_FLOAT_EQ(out[2], std::tanh(2.0f));
}

TEST(Activation, SigmoidRangeAndMidpoint)
{
    ActivationLayer sig("sig", LayerKind::Sigmoid);
    sig.setup(Shape(1, 3));
    Tensor in(Shape(1, 3));
    in[0] = -50;
    in[1] = 0;
    in[2] = 50;
    Tensor out;
    sig.forward(in, out);
    EXPECT_NEAR(out[0], 0.0f, 1e-6);
    EXPECT_FLOAT_EQ(out[1], 0.5f);
    EXPECT_NEAR(out[2], 1.0f, 1e-6);
}

TEST(Activation, HardTanhClamps)
{
    ActivationLayer ht("ht", LayerKind::HardTanh);
    ht.setup(Shape(1, 4));
    Tensor in(Shape(1, 4));
    in[0] = -3;
    in[1] = -0.5;
    in[2] = 0.5;
    in[3] = 3;
    Tensor out;
    ht.forward(in, out);
    EXPECT_FLOAT_EQ(out[0], -1.0f);
    EXPECT_FLOAT_EQ(out[1], -0.5f);
    EXPECT_FLOAT_EQ(out[2], 0.5f);
    EXPECT_FLOAT_EQ(out[3], 1.0f);
}

// LRN ----------------------------------------------------------------

TEST(Lrn, PreservesShapeAndNormalizes)
{
    LrnLayer lrn("lrn", 5, 1e-4f, 0.75f, 1.0f);
    lrn.setup(Shape(1, 8, 2, 2));
    Tensor in = randomTensor(Shape(2, 8, 2, 2), 5);
    Tensor out;
    lrn.forward(in, out);
    EXPECT_EQ(out.shape(), in.shape());
    // With tiny alpha, output is close to input but slightly
    // attenuated.
    for (int64_t i = 0; i < in.elems(); ++i)
        EXPECT_NEAR(out[i], in[i], 0.01);
}

TEST(Lrn, StrongNormalizationShrinksLargeActivations)
{
    LrnLayer lrn("lrn", 3, 1.0f, 0.75f, 1.0f);
    lrn.setup(Shape(1, 3, 1, 1));
    Tensor in(Shape(1, 3, 1, 1), 3.0f);
    Tensor out;
    lrn.forward(in, out);
    // Denominator (1 + 1/3*sum(9*2 or 3 terms))^0.75 > 1.
    EXPECT_LT(out[0], in[0]);
}

TEST(Lrn, EvenWindowFatal)
{
    EXPECT_THROW(LrnLayer("lrn", 4), FatalError);
}

// Softmax / Dropout / Flatten ----------------------------------------

TEST(Softmax, RowsSumToOne)
{
    SoftmaxLayer sm("prob");
    sm.setup(Shape(1, 10));
    Tensor in = randomTensor(Shape(4, 10), 9);
    Tensor out;
    sm.forward(in, out);
    for (int64_t n = 0; n < 4; ++n) {
        double sum = 0.0;
        for (int64_t i = 0; i < 10; ++i)
            sum += out.sample(n)[i];
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Softmax, LargeLogitsStayFinite)
{
    SoftmaxLayer sm("prob");
    sm.setup(Shape(1, 3));
    Tensor in(Shape(1, 3));
    in[0] = 1000.0f;
    in[1] = 999.0f;
    in[2] = -1000.0f;
    Tensor out;
    sm.forward(in, out);
    EXPECT_TRUE(std::isfinite(out[0]));
    EXPECT_GT(out[0], out[1]);
    EXPECT_NEAR(out[2], 0.0f, 1e-6);
}

TEST(Softmax, PreservesArgmax)
{
    SoftmaxLayer sm("prob");
    sm.setup(Shape(1, 5));
    Tensor in = randomTensor(Shape(3, 5), 77);
    Tensor out;
    sm.forward(in, out);
    for (int64_t n = 0; n < 3; ++n)
        EXPECT_EQ(in.argmaxSample(n), out.argmaxSample(n));
}

TEST(Dropout, IdentityAtInference)
{
    DropoutLayer drop("drop");
    drop.setup(Shape(1, 6));
    Tensor in = randomTensor(Shape(2, 6), 3);
    Tensor out;
    drop.forward(in, out);
    for (int64_t i = 0; i < in.elems(); ++i)
        EXPECT_FLOAT_EQ(out[i], in[i]);
}

TEST(Flatten, CollapsesGeometry)
{
    FlattenLayer flat("flat");
    flat.setup(Shape(1, 2, 3, 4));
    EXPECT_EQ(flat.outputShape(), Shape(1, 24));
    Tensor in = randomTensor(Shape(2, 2, 3, 4), 8);
    Tensor out;
    flat.forward(in, out);
    EXPECT_EQ(out.shape(), Shape(2, 24));
    for (int64_t i = 0; i < in.elems(); ++i)
        EXPECT_FLOAT_EQ(out[i], in[i]);
}

// Layer base ----------------------------------------------------------

TEST(Layer, KindNamesRoundTrip)
{
    for (LayerKind kind : {
             LayerKind::InnerProduct, LayerKind::Convolution,
             LayerKind::LocallyConnected, LayerKind::MaxPool,
             LayerKind::AvgPool, LayerKind::ReLU, LayerKind::Tanh,
             LayerKind::Sigmoid, LayerKind::HardTanh, LayerKind::LRN,
             LayerKind::Softmax, LayerKind::Dropout,
             LayerKind::Flatten}) {
        EXPECT_EQ(layerKindFromName(layerKindName(kind)), kind);
    }
}

TEST(Layer, UnknownKindNameFatal)
{
    EXPECT_THROW(layerKindFromName("warp"), FatalError);
}

TEST(Layer, DescribeMentionsNameAndShape)
{
    InnerProductLayer fc("classifier", 4);
    fc.setup(Shape(1, 8));
    std::string desc = fc.describe();
    EXPECT_NE(desc.find("classifier"), std::string::npos);
    EXPECT_NE(desc.find("1x4"), std::string::npos);
}

} // namespace
} // namespace nn
} // namespace djinn
