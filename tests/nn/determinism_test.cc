/**
 * @file
 * Determinism regression: the forward pass of every zoo network
 * must be bit-identical across runs and across compute-thread
 * counts. The committed golden checksums additionally pin the
 * numerics against accidental kernel changes: the GEMM core is
 * compiled with -ffp-contract=off and fixes its reduction order, so
 * these values are stable across rebuilds and across machines with
 * the same libm.
 *
 * If a checksum changes *intentionally* (e.g. a deliberate kernel
 * reblocking), rerun this test and update the table below with the
 * printed values — that is a reviewable numerics change, which is
 * the point.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>

#include "common/thread_pool.hh"
#include "nn/tensor.hh"
#include "nn/zoo.hh"

namespace djinn {
namespace nn {
namespace {

/** Restores the global pool to its automatic size on scope exit. */
struct PoolSizeGuard {
    ~PoolSizeGuard() { common::setComputeThreads(0); }
};

/** FNV-1a over the float bit patterns of a tensor. */
uint64_t
bitChecksum(const Tensor &t)
{
    uint64_t h = 1469598103934665603ULL;
    const float *data = t.data();
    int64_t elems = t.shape().elems();
    for (int64_t e = 0; e < elems; ++e) {
        uint32_t bits;
        std::memcpy(&bits, &data[e], sizeof(bits));
        for (int i = 0; i < 4; ++i) {
            h ^= (bits >> (8 * i)) & 0xffu;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

/** A deterministic, sample-varying input batch. */
Tensor
testInput(const Network &net, int64_t batch)
{
    Tensor in(net.inputShape().withBatch(batch));
    float *data = in.data();
    int64_t elems = in.shape().elems();
    // Low-discrepancy fill in [-1, 1): cheap, reproducible, and not
    // constant across pixels or samples.
    uint64_t state = 0x243f6a8885a308d3ULL;
    for (int64_t e = 0; e < elems; ++e) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        data[e] = static_cast<float>(
                      static_cast<uint32_t>(state >> 40)) /
                      8388608.0f -
                  1.0f;
    }
    return in;
}

/**
 * Golden output checksums for seed 42, batch 2, the testInput()
 * fill above. Computed once and committed; see the file comment for
 * the update procedure.
 */
const std::map<std::string, uint64_t> kGolden = {
    {"alexnet", 0xf4815ca21ec919daULL},
    {"mnist", 0x211f0f470da91a94ULL},
    {"deepface", 0x900b69d4762626aaULL},
    {"kaldi_asr", 0x97072a72c3445e62ULL},
    {"senna_pos", 0x2527cede646cf47dULL},
    {"senna_chk", 0x4b847f5e8d3edb78ULL},
    {"senna_ner", 0x87ab2d3e7c55bcf0ULL},
};

/**
 * Golden output checksums for the quantized zoo (DESIGN.md §14):
 * same seed/batch/input as kGolden, lowered with zoo::build(model,
 * precision). bf16 only reorders operand storage bits and int8
 * accumulates in integers, so both are bit-stable across thread
 * counts, runs, and machines; the committed values pin the
 * quantization scheme (calibration batch, scale derivation, rounding)
 * against accidental change.
 */
const std::map<std::string, uint64_t> kGoldenBf16 = {
    {"alexnet", 0x1f59275baaac37e5ULL},
    {"mnist", 0x9fc978b5732128a3ULL},
    {"deepface", 0xcd8f630eb9d14cebULL},
    {"kaldi_asr", 0xd5a3277eae4abd74ULL},
    {"senna_pos", 0xfa2eefc14ab5985bULL},
    {"senna_chk", 0x899ed9e8482cf5afULL},
    {"senna_ner", 0x1f29660b604c16b9ULL},
};

const std::map<std::string, uint64_t> kGoldenInt8 = {
    {"alexnet", 0xa9444c34c64ef463ULL},
    {"mnist", 0x7ebbe47425989e02ULL},
    {"deepface", 0x302869f22f18e802ULL},
    {"kaldi_asr", 0xc7110d9fbfeb3ae2ULL},
    {"senna_pos", 0xb8e9082b4fbbf014ULL},
    {"senna_chk", 0xcc8d8ae03f050b25ULL},
    {"senna_ner", 0x3a33aef0a26f9deaULL},
};

TEST(Determinism, ZooForwardBitIdenticalAcrossRunsAndThreads)
{
    PoolSizeGuard guard;
    bool goldenMismatch = false;
    for (zoo::Model model : zoo::allModels()) {
        std::string name = zoo::modelName(model);
        SCOPED_TRACE(name);
        NetworkPtr net = zoo::build(model, 42);
        Tensor in = testInput(*net, 2);

        // Two runs at the same thread count: run-to-run stability.
        common::setComputeThreads(2);
        uint64_t sum = bitChecksum(net->forward(in));
        EXPECT_EQ(bitChecksum(net->forward(in)), sum)
            << name << ": forward pass is not run-to-run stable";

        // Across thread counts: the fixed reduction order must make
        // the output independent of the pool size.
        for (int threads : {1, 8}) {
            common::setComputeThreads(threads);
            EXPECT_EQ(bitChecksum(net->forward(in)), sum)
                << name << ": output depends on thread count "
                << threads;
        }

        // With the parallel run option off entirely.
        net->setParallel(false);
        EXPECT_EQ(bitChecksum(net->forward(in)), sum)
            << name << ": setParallel(false) changes the output";
        net->setParallel(true);

        auto it = kGolden.find(name);
        ASSERT_NE(it, kGolden.end()) << "no golden for " << name;
        if (sum != it->second) {
            goldenMismatch = true;
            ADD_FAILURE()
                << name << ": golden checksum mismatch, got 0x"
                << std::hex << sum << " want 0x" << it->second
                << " (update kGolden if this change is intended)";
        }
    }
    if (goldenMismatch) {
        // Print the full refreshed table for easy copy-paste.
        std::string table;
        common::setComputeThreads(1);
        for (zoo::Model model : zoo::allModels()) {
            NetworkPtr net = zoo::build(model, 42);
            Tensor in = testInput(*net, 2);
            char line[96];
            std::snprintf(line, sizeof(line),
                          "    {\"%s\", 0x%016llxULL},\n",
                          zoo::modelName(model),
                          static_cast<unsigned long long>(
                              bitChecksum(net->forward(in))));
            table += line;
        }
        ADD_FAILURE() << "refreshed golden table:\n" << table;
    }
}

TEST(Determinism, QuantizedZooForwardBitIdenticalAcrossRunsAndThreads)
{
    PoolSizeGuard guard;
    struct PrecisionGolden {
        Precision precision;
        const std::map<std::string, uint64_t> *golden;
    };
    const PrecisionGolden tables[] = {
        {Precision::Bf16, &kGoldenBf16},
        {Precision::Int8, &kGoldenInt8},
    };
    for (const PrecisionGolden &t : tables) {
        bool goldenMismatch = false;
        const char *prec = precisionName(t.precision);
        for (zoo::Model model : zoo::allModels()) {
            std::string name = zoo::modelName(model);
            SCOPED_TRACE(name + "/" + prec);
            // Calibration itself must be thread-count independent
            // for the weights/scales to be reproducible; build under
            // one pool size, forward under others.
            common::setComputeThreads(2);
            NetworkPtr net = zoo::build(model, t.precision, 42);
            ASSERT_EQ(net->precision(), t.precision);
            Tensor in = testInput(*net, 2);

            uint64_t sum = bitChecksum(net->forward(in));
            EXPECT_EQ(bitChecksum(net->forward(in)), sum)
                << name << "/" << prec
                << ": forward pass is not run-to-run stable";

            for (int threads : {1, 8}) {
                common::setComputeThreads(threads);
                EXPECT_EQ(bitChecksum(net->forward(in)), sum)
                    << name << "/" << prec
                    << ": output depends on thread count " << threads;
            }

            // With the parallel run option off entirely.
            net->setParallel(false);
            EXPECT_EQ(bitChecksum(net->forward(in)), sum)
                << name << "/" << prec
                << ": setParallel(false) changes the output";
            net->setParallel(true);

            // A rebuilt network reproduces the same bits: the
            // calibration pipeline has no hidden state.
            common::setComputeThreads(1);
            NetworkPtr again = zoo::build(model, t.precision, 42);
            EXPECT_EQ(bitChecksum(again->forward(in)), sum)
                << name << "/" << prec
                << ": rebuild does not reproduce the output";

            auto it = t.golden->find(name);
            ASSERT_NE(it, t.golden->end())
                << "no golden for " << name << "/" << prec;
            if (sum != it->second) {
                goldenMismatch = true;
                ADD_FAILURE()
                    << name << "/" << prec
                    << ": golden checksum mismatch, got 0x"
                    << std::hex << sum << " want 0x" << it->second
                    << " (update the table if this change is "
                       "intended)";
            }
        }
        if (goldenMismatch) {
            std::string table;
            common::setComputeThreads(1);
            for (zoo::Model model : zoo::allModels()) {
                NetworkPtr net = zoo::build(model, t.precision, 42);
                Tensor in = testInput(*net, 2);
                char line[96];
                std::snprintf(line, sizeof(line),
                              "    {\"%s\", 0x%016llxULL},\n",
                              zoo::modelName(model),
                              static_cast<unsigned long long>(
                                  bitChecksum(net->forward(in))));
                table += line;
            }
            ADD_FAILURE() << "refreshed " << prec
                          << " golden table:\n" << table;
        }
    }
}

} // namespace
} // namespace nn
} // namespace djinn
