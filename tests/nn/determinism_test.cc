/**
 * @file
 * Determinism regression: the forward pass of every zoo network
 * must be bit-identical across runs and across compute-thread
 * counts. The committed golden checksums additionally pin the
 * numerics against accidental kernel changes: the GEMM core is
 * compiled with -ffp-contract=off and fixes its reduction order, so
 * these values are stable across rebuilds and across machines with
 * the same libm.
 *
 * If a checksum changes *intentionally* (e.g. a deliberate kernel
 * reblocking), rerun this test and update the table below with the
 * printed values — that is a reviewable numerics change, which is
 * the point.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>

#include "common/thread_pool.hh"
#include "nn/tensor.hh"
#include "nn/zoo.hh"

namespace djinn {
namespace nn {
namespace {

/** Restores the global pool to its automatic size on scope exit. */
struct PoolSizeGuard {
    ~PoolSizeGuard() { common::setComputeThreads(0); }
};

/** FNV-1a over the float bit patterns of a tensor. */
uint64_t
bitChecksum(const Tensor &t)
{
    uint64_t h = 1469598103934665603ULL;
    const float *data = t.data();
    int64_t elems = t.shape().elems();
    for (int64_t e = 0; e < elems; ++e) {
        uint32_t bits;
        std::memcpy(&bits, &data[e], sizeof(bits));
        for (int i = 0; i < 4; ++i) {
            h ^= (bits >> (8 * i)) & 0xffu;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

/** A deterministic, sample-varying input batch. */
Tensor
testInput(const Network &net, int64_t batch)
{
    Tensor in(net.inputShape().withBatch(batch));
    float *data = in.data();
    int64_t elems = in.shape().elems();
    // Low-discrepancy fill in [-1, 1): cheap, reproducible, and not
    // constant across pixels or samples.
    uint64_t state = 0x243f6a8885a308d3ULL;
    for (int64_t e = 0; e < elems; ++e) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        data[e] = static_cast<float>(
                      static_cast<uint32_t>(state >> 40)) /
                      8388608.0f -
                  1.0f;
    }
    return in;
}

/**
 * Golden output checksums for seed 42, batch 2, the testInput()
 * fill above. Computed once and committed; see the file comment for
 * the update procedure.
 */
const std::map<std::string, uint64_t> kGolden = {
    {"alexnet", 0xf4815ca21ec919daULL},
    {"mnist", 0x211f0f470da91a94ULL},
    {"deepface", 0x900b69d4762626aaULL},
    {"kaldi_asr", 0x97072a72c3445e62ULL},
    {"senna_pos", 0x2527cede646cf47dULL},
    {"senna_chk", 0x4b847f5e8d3edb78ULL},
    {"senna_ner", 0x87ab2d3e7c55bcf0ULL},
};

TEST(Determinism, ZooForwardBitIdenticalAcrossRunsAndThreads)
{
    PoolSizeGuard guard;
    bool goldenMismatch = false;
    for (zoo::Model model : zoo::allModels()) {
        std::string name = zoo::modelName(model);
        SCOPED_TRACE(name);
        NetworkPtr net = zoo::build(model, 42);
        Tensor in = testInput(*net, 2);

        // Two runs at the same thread count: run-to-run stability.
        common::setComputeThreads(2);
        uint64_t sum = bitChecksum(net->forward(in));
        EXPECT_EQ(bitChecksum(net->forward(in)), sum)
            << name << ": forward pass is not run-to-run stable";

        // Across thread counts: the fixed reduction order must make
        // the output independent of the pool size.
        for (int threads : {1, 8}) {
            common::setComputeThreads(threads);
            EXPECT_EQ(bitChecksum(net->forward(in)), sum)
                << name << ": output depends on thread count "
                << threads;
        }

        // With the parallel run option off entirely.
        net->setParallel(false);
        EXPECT_EQ(bitChecksum(net->forward(in)), sum)
            << name << ": setParallel(false) changes the output";
        net->setParallel(true);

        auto it = kGolden.find(name);
        ASSERT_NE(it, kGolden.end()) << "no golden for " << name;
        if (sum != it->second) {
            goldenMismatch = true;
            ADD_FAILURE()
                << name << ": golden checksum mismatch, got 0x"
                << std::hex << sum << " want 0x" << it->second
                << " (update kGolden if this change is intended)";
        }
    }
    if (goldenMismatch) {
        // Print the full refreshed table for easy copy-paste.
        std::string table;
        common::setComputeThreads(1);
        for (zoo::Model model : zoo::allModels()) {
            NetworkPtr net = zoo::build(model, 42);
            Tensor in = testInput(*net, 2);
            char line[96];
            std::snprintf(line, sizeof(line),
                          "    {\"%s\", 0x%016llxULL},\n",
                          zoo::modelName(model),
                          static_cast<unsigned long long>(
                              bitChecksum(net->forward(in))));
            table += line;
        }
        ADD_FAILURE() << "refreshed golden table:\n" << table;
    }
}

} // namespace
} // namespace nn
} // namespace djinn
