/**
 * @file
 * Tests for per-layer forward profiling: sink ordering, FLOP
 * counts against hand-computed values, activation byte accounting,
 * and output equivalence of the profiled and unprofiled paths.
 */

#include "nn/profile.hh"

#include <gtest/gtest.h>

#include "nn/init.hh"
#include "nn/layers/activation.hh"
#include "nn/layers/convolution.hh"
#include "nn/layers/inner_product.hh"
#include "nn/layers/pooling.hh"
#include "nn/layers/softmax.hh"
#include "nn/network.hh"

namespace djinn {
namespace nn {
namespace {

std::shared_ptr<Network>
smallConvNet()
{
    // 2x8x8 input -> conv(4 filters, 3x3, pad 1) -> relu ->
    // maxpool(2x2, stride 2) -> fc 10 -> softmax.
    auto net = std::make_shared<Network>("prof", Shape(1, 2, 8, 8));
    net->add(std::make_unique<ConvolutionLayer>("conv", 4, 3, 1, 1));
    net->add(std::make_unique<ActivationLayer>("relu",
                                               LayerKind::ReLU));
    net->add(std::make_unique<PoolingLayer>("pool",
                                            LayerKind::MaxPool, 2,
                                            2));
    net->add(std::make_unique<InnerProductLayer>("fc", 10));
    net->add(std::make_unique<SoftmaxLayer>("prob"));
    net->finalize();
    initializeWeights(*net, 11);
    return net;
}

TEST(Profile, SinkSeesEveryLayerInOrder)
{
    auto net = smallConvNet();
    Tensor in(net->inputShape().withBatch(1), 0.5f);
    VectorProfileSink sink;
    (void)net->forward(in, &sink);

    ASSERT_EQ(sink.profiles().size(), 5u);
    const char *names[] = {"conv", "relu", "pool", "fc", "prob"};
    LayerKind kinds[] = {LayerKind::Convolution, LayerKind::ReLU,
                         LayerKind::MaxPool, LayerKind::InnerProduct,
                         LayerKind::Softmax};
    for (size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(sink.profiles()[i].name, names[i]);
        EXPECT_EQ(sink.profiles()[i].kind, kinds[i]);
        EXPECT_GE(sink.profiles()[i].seconds, 0.0);
    }
}

TEST(Profile, FlopsMatchHandComputedValues)
{
    auto net = smallConvNet();
    Tensor in(net->inputShape().withBatch(1), 0.5f);
    VectorProfileSink sink;
    (void)net->forward(in, &sink);
    const auto &p = sink.profiles();
    ASSERT_EQ(p.size(), 5u);

    // conv: 2 * out_c * (oh*ow) * (in_c*k*k) = 2*4*64*18.
    EXPECT_EQ(p[0].flops, 2ull * 4 * 64 * (2 * 3 * 3));
    // relu: 2 * out_elems = 2 * 4*8*8.
    EXPECT_EQ(p[1].flops, 2ull * 4 * 8 * 8);
    // pool: k^2 * out_elems = 4 * 4*4*4.
    EXPECT_EQ(p[2].flops, 4ull * 4 * 4 * 4);
    // fc: 2 * in * out = 2 * 64 * 10.
    EXPECT_EQ(p[3].flops, 2ull * 64 * 10);
    // softmax: 4 * out.
    EXPECT_EQ(p[4].flops, 4ull * 10);
}

TEST(Profile, FlopsAndBytesScaleWithBatch)
{
    auto net = smallConvNet();
    Tensor in1(net->inputShape().withBatch(1), 0.5f);
    Tensor in3(net->inputShape().withBatch(3), 0.5f);
    VectorProfileSink s1, s3;
    (void)net->forward(in1, &s1);
    (void)net->forward(in3, &s3);
    ASSERT_EQ(s1.profiles().size(), s3.profiles().size());
    for (size_t i = 0; i < s1.profiles().size(); ++i) {
        EXPECT_EQ(s3.profiles()[i].flops,
                  3 * s1.profiles()[i].flops);
        EXPECT_EQ(s3.profiles()[i].activationBytes,
                  3 * s1.profiles()[i].activationBytes);
    }
}

TEST(Profile, ActivationBytesAreOutputElemsTimesFour)
{
    auto net = smallConvNet();
    Tensor in(net->inputShape().withBatch(2), 0.5f);
    VectorProfileSink sink;
    (void)net->forward(in, &sink);
    const auto &p = sink.profiles();
    ASSERT_EQ(p.size(), 5u);
    // conv/relu out: 2 x 4x8x8, pool out: 2 x 4x4x4, fc/prob: 2x10.
    EXPECT_EQ(p[0].activationBytes, 2ull * 4 * 8 * 8 * 4);
    EXPECT_EQ(p[1].activationBytes, 2ull * 4 * 8 * 8 * 4);
    EXPECT_EQ(p[2].activationBytes, 2ull * 4 * 4 * 4 * 4);
    EXPECT_EQ(p[3].activationBytes, 2ull * 10 * 4);
    EXPECT_EQ(p[4].activationBytes, 2ull * 10 * 4);
}

TEST(Profile, ProfiledForwardMatchesUnprofiled)
{
    auto net = smallConvNet();
    Tensor in(net->inputShape().withBatch(2));
    for (int64_t i = 0; i < in.elems(); ++i)
        in.data()[i] = static_cast<float>(i % 7) * 0.125f;

    Tensor plain = net->forward(in);
    VectorProfileSink sink;
    Tensor profiled = net->forward(in, &sink);
    ASSERT_EQ(plain.shape(), profiled.shape());
    for (int64_t i = 0; i < plain.elems(); ++i)
        EXPECT_FLOAT_EQ(plain[i], profiled[i]);

    // The null-sink overload is the unprofiled path.
    Tensor null_sink = net->forward(in, nullptr);
    for (int64_t i = 0; i < plain.elems(); ++i)
        EXPECT_FLOAT_EQ(plain[i], null_sink[i]);
}

TEST(Profile, SinkClearResets)
{
    auto net = smallConvNet();
    Tensor in(net->inputShape().withBatch(1), 0.5f);
    VectorProfileSink sink;
    (void)net->forward(in, &sink);
    EXPECT_EQ(sink.profiles().size(), 5u);
    sink.clear();
    EXPECT_TRUE(sink.profiles().empty());
    (void)net->forward(in, &sink);
    EXPECT_EQ(sink.profiles().size(), 5u);
}

} // namespace
} // namespace nn
} // namespace djinn
